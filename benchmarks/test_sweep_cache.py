"""Bench: persistent artifact cache + parallel sweep runner.

Two measurements for the sweep/caching tentpole, written to
``results/BENCH_sweep.json`` so future PRs can track the trajectory:

- **cold_vs_warm** — a driver subset (``table1``, ``fig9``, ``table9``:
  5 FlashMem compiles + 10 framework baselines) run cold against an empty
  ``ArtifactStore``, then rerun with cleared in-process caches so every
  result is served from the persistent store. Acceptance: warm is >= 3x
  faster and every rendered table is byte-for-byte identical.
- **serial_vs_parallel** — six independent FlashMem compile cells run
  through the sweep runner with the store disabled (so both sides do the
  full compile work), serial vs a 2-worker process pool. Acceptance: the
  pool beats serial wall-clock when more than one core is available;
  on a single-core box it can only assert bounded pool overhead.
"""

import json
import os

from conftest import RESULTS_DIR

from repro.experiments import common
from repro.sweep.cells import Cell
from repro.sweep.runner import SweepRunner
from repro.sweep.suite import run_suite

#: Drivers for the cold/warm half: compile-heavy (fig9) plus cheap tables.
DRIVERS = ["table1", "fig9", "table9"]

#: Independent compile cells for the serial/parallel half.
PARALLEL_MODELS = ["ViT", "DeepViT", "GPTN-S", "Whisp-M", "ResNet50", "DepA-S"]


def _run_suite_timed(names, cache_dir, results_dir):
    common.clear_caches()
    report = run_suite(names, jobs=1, cache_dir=cache_dir, results_dir=results_dir)
    assert report.ok, report.summary()
    return report


def _cold_vs_warm(tmp_path):
    cache = tmp_path / "cache"
    cold = _run_suite_timed(DRIVERS, cache, tmp_path / "cold")
    warm = _run_suite_timed(DRIVERS, cache, tmp_path / "warm")
    identical = all(
        (tmp_path / "cold" / f"{n}.txt").read_bytes()
        == (tmp_path / "warm" / f"{n}.txt").read_bytes()
        for n in DRIVERS
    )
    return {
        "drivers": DRIVERS,
        "cold_s": round(cold.wall_s, 3),
        "warm_s": round(warm.wall_s, 3),
        "speedup": round(cold.wall_s / max(warm.wall_s, 1e-9), 1),
        "warm_all_driver_hits": all(o.cache_hit for o in warm.drivers.outcomes),
        "outputs_identical": identical,
        "cold_store": cold.store_totals(),
        "warm_store": warm.store_totals(),
    }


def _serial_vs_parallel():
    cells = [Cell("flashmem", m, "OnePlus 12", "FlashMem") for m in PARALLEL_MODELS]
    cores = len(os.sched_getaffinity(0))
    walls = {}
    for jobs in (1, 2):
        common.clear_caches()
        # Worker spawn + imports + store init happen before the timed run —
        # on short sweeps pool startup used to eat the whole parallel win.
        # The context manager guarantees the pre-warmed pool is torn down
        # even when the timed run raises.
        with SweepRunner(jobs=jobs, cache_dir=None) as runner:
            runner.prewarm()
            report = runner.run(cells)
        assert not report.failures, report.render()
        walls[jobs] = report.wall_s
    return {
        "cells": [c.label() for c in cells],
        "serial_s": round(walls[1], 3),
        "parallel_s": round(walls[2], 3),
        "speedup": round(walls[1] / max(walls[2], 1e-9), 2),
        "jobs": 2,
        "cores": cores,
        # On a single usable core the two sides are the same CPU-bound work
        # interleaved on one core: the speedup number is annotated as
        # meaningless rather than asserted against.
        "single_core_skip": cores < 2,
    }


def test_sweep_cache(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: {
            "cold_vs_warm": _cold_vs_warm(tmp_path),
            "serial_vs_parallel": _serial_vs_parallel(),
        },
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(json.dumps(result, indent=2) + "\n")

    cw, sp = result["cold_vs_warm"], result["serial_vs_parallel"]
    print(
        f"\ncold suite: {cw['cold_s']:.2f}s   warm suite: {cw['warm_s']:.2f}s   "
        f"({cw['speedup']:.1f}x, outputs identical: {cw['outputs_identical']})\n"
        f"serial sweep: {sp['serial_s']:.2f}s   2-worker sweep: {sp['parallel_s']:.2f}s   "
        f"({sp['speedup']:.2f}x over {len(sp['cells'])} cells, {sp['cores']} core(s))"
    )

    # Acceptance bars for the artifact-cache tentpole.
    assert cw["speedup"] >= 3.0
    assert cw["outputs_identical"] and cw["warm_all_driver_hits"]
    assert cw["warm_store"]["stores"] == 0

    # A 2-worker pool must beat serial on independent compile cells — but
    # only when the kernel actually grants more than one core. On a
    # single-core box both sides are CPU-bound on the same core
    # (single_core_skip annotates this in BENCH_sweep.json), so the honest
    # bar is bounded pool overhead rather than a fake speedup.
    if sp["single_core_skip"]:
        assert sp["parallel_s"] < 1.5 * sp["serial_s"]
    else:
        assert sp["parallel_s"] < sp["serial_s"]
