"""Bench: regenerate Figure 8 — memory/latency trade-off vs preload ratio."""

from conftest import report, run_once

from repro.experiments import fig8


def test_fig8_tradeoff(benchmark):
    result = run_once(benchmark, fig8.run)
    report("fig8", result.render())
    for model in {p.model for p in result.points}:
        series = result.series(model)
        assert series[-1].exec_ms < series[0].exec_ms     # preload lowers exec
        assert series[-1].avg_memory_mb > series[0].avg_memory_mb
