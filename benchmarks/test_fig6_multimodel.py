"""Bench: regenerate Figure 6 — multi-model FIFO memory over time."""

from conftest import report, run_once

from repro.experiments import fig6


def test_fig6_multimodel(benchmark):
    result = run_once(benchmark, fig6.run)
    text = result.render()
    # Also emit the resampled series the figure plots.
    flash_series = result.series("FlashMem", resolution_ms=2000.0)
    mnn_series = result.series("MNN", resolution_ms=2000.0)
    series_txt = "\nFlashMem series (t ms, bytes): " + str(flash_series[:20])
    series_txt += "\nMNN series (t ms, bytes): " + str(mnn_series[:20])
    report("fig6", text + series_txt)
    assert result.peak_ratio > 1.5
    assert result.mnn.total_ms > result.flashmem.total_ms
