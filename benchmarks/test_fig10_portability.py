"""Bench: regenerate Figure 10 — portability across three devices."""

from conftest import report, run_once

from repro.experiments import fig10


def test_fig10_portability(benchmark):
    result = run_once(benchmark, fig10.run)
    report("fig10", result.render())
    for row in result.rows:
        assert not row.flashmem_oom  # FlashMem runs everywhere
        if not row.smem_oom and row.smem_ms is not None:
            assert row.flashmem_ms < row.smem_ms
    # GPTN-1.3B OOMs under SmartMem on the 6-8 GB devices (paper's claim).
    ooms = {(r.device, r.model): r.smem_oom for r in result.rows}
    assert ooms[("Pixel 8", "GPTN-1.3B")]
    assert ooms[("Xiaomi Mi 6", "GPTN-1.3B")]
    assert not ooms[("OnePlus 11", "GPTN-1.3B")]
