"""Bench: regenerate Figure 4 — profiling + GBT latency model accuracy."""

from conftest import report, run_once

from repro.experiments import fig4


def test_fig4_latency_model(benchmark):
    result = run_once(benchmark, fig4.run)
    report("fig4", result.render())
    assert result.holdout_mean_rel_error < 0.25
