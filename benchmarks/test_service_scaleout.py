"""Bench: plan-compilation service — scale-out, dedup, and warm reuse.

Three measurements for the service tentpole, written to
``results/BENCH_service.json`` so future PRs can track the trajectory:

- **scaleout** — a fixed batch of distinct compile requests (mixed
  models/devices) served by the daemon with 1, 2, and 4 pool workers,
  fresh shared store per point; prewarm happens before the clock starts
  (``PlanCompilationService.start()`` blocks on the pool barrier).
  Acceptance: >= 1.7x at 2 workers and >= 3x at 4 workers over the
  1-worker wall — when the kernel grants enough cores.  On a starved box
  the points are annotated ``single_core_skip`` (the same idiom as
  ``BENCH_sweep.json``) and the honest bar is bounded service overhead.
- **dedup** — K identical concurrent requests for the heaviest workload
  model vs one request, fresh service + store each side.  Acceptance: the
  K-way batch costs <= 1.2x one compile, with exactly one pool dispatch
  (K-1 waiters coalesce onto it).
- **warm_reuse** — the scaleout batch replayed against the already
  populated store: zero compiles, every reply served from the batched
  store lookup, plans canonically byte-identical to direct compilation.
"""

import asyncio
import json
import os
import time

from conftest import RESULTS_DIR

from repro.experiments import common
from repro.service import CompileRequest, PlanCompilationService, execute_compile

#: Distinct (model, device) cells for the scale-out batch: the six sweep
#: workload models on the primary device plus two on Pixel 8 so the batch
#: splits 8 ways.
SCALEOUT_REQUESTS = [
    CompileRequest(model=m, device=d)
    for m, d in [
        ("ViT", "OnePlus 12"), ("DeepViT", "OnePlus 12"),
        ("GPTN-S", "OnePlus 12"), ("Whisp-M", "OnePlus 12"),
        ("ResNet50", "OnePlus 12"), ("DepA-S", "OnePlus 12"),
        ("ViT", "Pixel 8"), ("GPTN-S", "Pixel 8"),
    ]
]

#: Heaviest single compile in the workload set — makes the dedup ratio a
#: measurement of coalescing, not of fixed service overhead.
DEDUP_MODEL = "DeepViT"
DEDUP_K = 8

WORKER_POINTS = (1, 2, 4)


def _serve_batch(requests, *, workers, cache_dir):
    """Serve ``requests`` concurrently; returns (wall_s, replies, stats).

    The clock starts after ``start()`` returns, i.e. after the pool is
    spawned, imported, and store-initialized — prewarm cost is the
    daemon's startup cost, not a per-request cost, and the scale-out bar
    measures serving throughput only.
    """
    async def go():
        async with PlanCompilationService(
            workers=workers, cache_dir=cache_dir
        ) as svc:
            t0 = time.perf_counter()
            replies = await asyncio.gather(*(svc.submit(r) for r in requests))
            wall = time.perf_counter() - t0
            return wall, replies, svc.stats.snapshot()

    return asyncio.run(go())


def _scaleout(tmp_path, cores):
    points = {}
    for workers in WORKER_POINTS:
        wall, replies, stats = _serve_batch(
            SCALEOUT_REQUESTS, workers=workers,
            cache_dir=tmp_path / f"scale-{workers}w",
        )
        assert stats["compiles"] == len(SCALEOUT_REQUESTS)
        assert stats["coalesced"] == 0 and stats["failures"] == 0
        assert all(r.source == "compiled" for r in replies)
        points[workers] = {"wall_s": round(wall, 3), "stats": stats}
    base = points[WORKER_POINTS[0]]["wall_s"]
    for workers, point in points.items():
        point["speedup_vs_1w"] = round(base / max(point["wall_s"], 1e-9), 2)
    return {
        "requests": [r.label() for r in SCALEOUT_REQUESTS],
        "cores": cores,
        # With fewer usable cores than workers the extra processes time-slice
        # one CPU: the speedup column is annotated as meaningless rather than
        # asserted against (same idiom as BENCH_sweep.json).
        "single_core_skip": cores < 2,
        "points": {str(w): p for w, p in points.items()},
    }


def _dedup(tmp_path):
    request = CompileRequest(model=DEDUP_MODEL)
    # min-of-2 on both sides: these are sub-10s wall-clock samples on a
    # possibly noisy box, and the ratio bar is tight.
    one_samples, k_samples, k_stats = [], [], None
    for rep in range(2):
        wall, _, _ = _serve_batch(
            [request], workers=1, cache_dir=tmp_path / f"dedup-one-{rep}"
        )
        one_samples.append(wall)
        wall, replies, stats = _serve_batch(
            [request] * DEDUP_K, workers=1,
            cache_dir=tmp_path / f"dedup-k-{rep}",
        )
        assert stats["compiles"] == 1 and stats["coalesced"] == DEDUP_K - 1
        assert len({r.plan.canonical_json() for r in replies}) == 1
        k_samples.append(wall)
        k_stats = stats
    one_s, k_s = min(one_samples), min(k_samples)
    return {
        "model": DEDUP_MODEL, "k": DEDUP_K,
        "one_request_s": round(one_s, 3),
        "k_identical_s": round(k_s, 3),
        "ratio": round(k_s / max(one_s, 1e-9), 3),
        "stats": k_stats,
    }


def _warm_reuse(tmp_path):
    """Replay the scale-out batch against the 1-worker run's store."""
    cache = tmp_path / f"scale-{WORKER_POINTS[0]}w"
    wall, replies, stats = _serve_batch(
        SCALEOUT_REQUESTS, workers=1, cache_dir=cache
    )
    assert stats["compiles"] == 0
    assert stats["store_hits"] == len(SCALEOUT_REQUESTS)
    assert all(r.source == "store" for r in replies)
    # Byte-identity: every served plan matches a direct in-process compile.
    common.clear_caches()
    identical = all(
        reply.plan.canonical_json()
        == execute_compile(reply.request).plan.canonical_json()
        for reply in replies
    )
    return {
        "wall_s": round(wall, 3),
        "all_store_hits": True,
        "plans_identical_to_direct": identical,
        "stats": stats,
    }


def test_service_scaleout(benchmark, tmp_path):
    cores = len(os.sched_getaffinity(0))
    common.clear_caches()
    result = benchmark.pedantic(
        lambda: {
            "scaleout": _scaleout(tmp_path, cores),
            "dedup": _dedup(tmp_path),
            "warm_reuse": _warm_reuse(tmp_path),
        },
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    so, dd, warm = result["scaleout"], result["dedup"], result["warm_reuse"]
    lines = [
        f"{w}-worker: {p['wall_s']:.2f}s ({p['speedup_vs_1w']:.2f}x)"
        for w, p in so["points"].items()
    ]
    print(
        f"\nscale-out over {len(so['requests'])} requests, {so['cores']} core(s): "
        + "   ".join(lines)
        + f"\ndedup: {dd['k']} identical {dd['model']} requests {dd['k_identical_s']:.2f}s "
        f"vs one {dd['one_request_s']:.2f}s ({dd['ratio']:.2f}x)\n"
        f"warm reuse: {warm['wall_s']:.2f}s for {len(so['requests'])} store-served plans"
    )

    # Dedup bar: K-way identical concurrency costs about one compile.
    assert dd["ratio"] <= 1.2
    assert dd["stats"]["compiles"] == 1

    # Warm-reuse bar: zero compiles, plans byte-identical to direct.
    assert warm["plans_identical_to_direct"]
    assert warm["stats"]["compiles"] == 0

    # Scale-out bars — only meaningful when the kernel grants the cores.
    # On a starved box (single_core_skip) N workers time-slice one CPU, so
    # the honest assertion is bounded service overhead, not a fake speedup.
    points = so["points"]
    if so["single_core_skip"]:
        assert points["2"]["wall_s"] < 1.5 * points["1"]["wall_s"]
        assert points["4"]["wall_s"] < 1.5 * points["1"]["wall_s"]
    else:
        assert points["2"]["speedup_vs_1w"] >= 1.7
        if so["cores"] >= 4:
            assert points["4"]["speedup_vs_1w"] >= 3.0
