"""Bench: regenerate Table 9 — power and energy consumption."""

from conftest import report, run_once

from repro.experiments import table9


def test_table9_energy(benchmark):
    result = run_once(benchmark, table9.run)
    report("table9", result.render())
    # Paper: FlashMem saves 83-96% energy vs the baselines.
    for fw in ("MNN", "SMem"):
        saving = result.savings_vs(fw, "DeepViT")
        assert saving is not None and saving > 0.5
    saving_sd = result.savings_vs("SMem", "SD-UNet")
    assert saving_sd is not None and saving_sd > 0.5
