"""Bench: the vectorized capacity pipeline vs the pre-PR sequential path.

Written to ``results/BENCH_capacity.json`` so future PRs can track the
trajectory:

- **fit_ab** — GBT training on the fig4-scale profile dataset (full model
  zoo, 24 ops/model, 8 load ratios): histogram-binned level-wise growth
  with flattened columnar stage predicts vs the seed's exact greedy
  splitter with per-row node-walk predicts.
- **query_ab** — whole-graph capacity queries on GPTN-2.7B (largest op
  count in the zoo): one ``capacity_bytes_batch`` lockstep bisection vs
  the pre-PR per-op sequential bisect (one single-row node-walk predict
  per (op, step)).
- **compile_ab** — end-to-end ``gbt``-backend GPTN-S compile: profile +
  histogram fit + batched capacity queries + LC-OPG, against the seed
  emulation (exact fit, sequential unmemoized capacity queries).
- **warm_reuse** — cold vs warm ``trained_capacity_model`` through a
  persistent ``ArtifactStore``; the warm rerun must retrain 0 regressors.

The pre-PR baseline classes (``SeedRegressionTree``, ``SeedGBT``,
``SeedCapacityModel``) are verbatim ports of the seed implementation:
python-loop exact splits, node-object per-row predicts, and per-op
sequential capacity bisection with no memo and no batching.  Everything
else (profiler, cost model, fusion loop, solver) is shared, so each ratio
isolates this PR's capacity-path work.

Measurement methodology matches ``test_compile_latency``: each timed side
runs in a fresh subprocess, interleaved, minimum of N CPU-time samples
per side.
"""

import gc
import json
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from conftest import RESULTS_DIR, ab_subprocess, emit_record

from repro.capacity.gbt import GBTConfig
from repro.capacity.model import LoadCapacityModel
from repro.gpusim.device import get_device
from repro.graph.models import load_model

DEVICE = "OnePlus 12"
QUERY_MODEL = "GPTN-2.7B"
COMPILE_MODEL = "GPTN-S"

#: Samples per A/B side (interleaved V S V S ...; min is reported).
AB_SAMPLES = 2


def _profile_dataset(device):
    """The default ``gbt``-backend profile set (full zoo, fig4 scale)."""
    from repro.capacity.cache import DEFAULT_MAX_OPS_PER_MODEL, DEFAULT_PROFILE_MODELS
    from repro.capacity.profiler import LoadCapacityProfiler

    profiler = LoadCapacityProfiler(device, seed=0)
    return profiler.profile_models(
        [load_model(m) for m in DEFAULT_PROFILE_MODELS],
        max_ops_per_model=DEFAULT_MAX_OPS_PER_MODEL,
    )


# --------------------------------------------------------------------------
# Pre-PR baseline: the seed's exact-split / node-walk implementation.
# --------------------------------------------------------------------------


@dataclass
class _SeedNode:
    value: float = 0.0
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_SeedNode"] = None
    right: Optional["_SeedNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class SeedRegressionTree:
    """Seed CART tree: python-loop exact splits, per-row node-object walks."""

    def __init__(self, *, max_depth=4, min_samples_leaf=4, min_gain=1e-12):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: Optional[_SeedNode] = None

    def fit(self, X, y):
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X, y, depth):
        node = _SeedNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X, y) -> Optional[Tuple[int, float]]:
        n, d = X.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = self.min_gain
        best: Optional[Tuple[int, float]] = None
        for f in range(d):
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue
                nl = i + 1
                nr = n - nl
                sl, sql = csum[i], csq[i]
                sr, sqr = total_sum - sl, total_sq - sql
                sse = (sql - sl * sl / nl) + (sqr - sr * sr / nr)
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def predict(self, X):
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class SeedGBT:
    """Seed boosting loop: per-stage re-predict via per-row node walks."""

    def __init__(self, config: Optional[GBTConfig] = None):
        self.config = config or GBTConfig()
        self._trees: List[SeedRegressionTree] = []
        self._base = 0.0
        self.train_rmse_: Optional[float] = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._base = float(y.mean())
        pred = np.full(len(y), self._base)
        self._trees = []
        n = len(y)
        sample = max(cfg.min_samples_leaf * 2, int(n * cfg.subsample))
        for _ in range(cfg.n_estimators):
            residual = y - pred
            idx = rng.choice(n, size=sample, replace=False) if sample < n else np.arange(n)
            tree = SeedRegressionTree(
                max_depth=cfg.max_depth, min_samples_leaf=cfg.min_samples_leaf
            ).fit(X[idx], residual[idx])
            pred = pred + cfg.learning_rate * tree.predict(X)
            self._trees.append(tree)
        self.train_rmse_ = float(np.sqrt(((y - pred) ** 2).mean()))
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        pred = np.full(len(X), self._base)
        for tree in self._trees:
            pred = pred + self.config.learning_rate * tree.predict(X)
        return pred

    # The capacity model's oracle path calls predict_nodewalk; the seed's
    # only predict *was* the node walk.
    predict_nodewalk = predict


class SeedCapacityModel(LoadCapacityModel):
    """Pre-PR capacity queries: per-op sequential bisection, no memo."""

    def capacity_bytes(self, op):
        return self.capacity_bytes_oracle(op)

    def capacity_bytes_batch(self, ops):
        return [self.capacity_bytes_oracle(op) for op in ops]

    def capacity_chunks(self, op, chunk_bytes):
        return self.capacity_bytes_oracle(op) // chunk_bytes

    def capacity_chunks_batch(self, ops, chunk_bytes):
        return [self.capacity_bytes_oracle(op) // chunk_bytes for op in ops]


# --------------------------------------------------------------------------
# Child-process measurement entries (see conftest.ab_subprocess).
# --------------------------------------------------------------------------


def _measure_fit(side: str) -> None:
    """Time one regressor fit on the fig4-scale dataset (profiling excluded)."""
    device = get_device(DEVICE)
    dataset = _profile_dataset(device)
    X, y = dataset.matrices()
    model = SeedGBT(GBTConfig()) if side == "seed" else None
    gc.collect()
    gc.disable()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if side == "seed":
        model.fit(X, y)
    else:
        from repro.capacity.gbt import GradientBoostedTrees

        model = GradientBoostedTrees(GBTConfig()).fit(X, y)
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    gc.enable()
    emit_record(
        {
            "side": side,
            "n_samples": int(len(y)),
            "wall_s": round(wall, 3),
            "cpu_s": round(cpu, 3),
            "train_rmse_log10": round(float(model.train_rmse_), 4),
        }
    )


def _measure_query(side: str) -> None:
    """Time whole-graph capacity queries on GPTN-2.7B (training excluded).

    Both sides query the same trained histogram model; the baseline side
    replays the pre-PR access pattern — one scalar bisection per op with a
    single-row node-walk predict per step.
    """
    from repro.fusion.fuser import fuse_graph

    device = get_device(DEVICE)
    graph = load_model(QUERY_MODEL)
    model = LoadCapacityModel.train(device, [graph], seed=0, max_ops_per_model=24)
    ops = [n.spec for n in fuse_graph(graph).nodes()]
    gc.collect()
    gc.disable()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if side == "sequential":
        caps = [model.capacity_bytes_oracle(op) for op in ops]
    else:
        caps = model.capacity_bytes_batch(ops)
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    gc.enable()
    record = {
        "side": side,
        "n_ops": len(ops),
        "wall_s": round(wall, 3),
        "cpu_s": round(cpu, 3),
        "capacity_mb_total": round(sum(caps) / 2**20, 1),
    }
    if side == "batch":
        record["stats"] = dict(model.stats)
    emit_record(record)


def _measure_compile(side: str) -> None:
    """Time the end-to-end gbt-backend compile: profile + fit + plan."""
    from repro.core.flashmem import FlashMem
    from repro.experiments.common import experiment_flashmem_config

    device = get_device(DEVICE)
    graph = load_model(COMPILE_MODEL)
    config = experiment_flashmem_config(capacity_backend="gbt")
    gc.collect()
    gc.disable()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if side == "seed":
        dataset = _profile_dataset(device)
        train, holdout = dataset.split(holdout=0.2, seed=0)
        Xt, yt = train.matrices()
        capacity = SeedCapacityModel(
            device, backend="gbt", regressor=SeedGBT(GBTConfig(seed=0)).fit(Xt, yt)
        )
    else:
        from repro.capacity.cache import trained_capacity_model

        capacity = trained_capacity_model(device)
    compiled = FlashMem(config).compile(graph, device, capacity=capacity)
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    gc.enable()
    emit_record(
        {
            "side": side,
            "wall_s": round(wall, 3),
            "cpu_s": round(cpu, 3),
            "status": compiled.plan.stats.solver_status,
            "capacity_queries": dict(capacity.stats),
        }
    )


def _measure_warm(phase: str, store_root: str) -> None:
    """Build the default capacity model through a persistent store."""
    from repro.capacity import cache as capacity_cache
    from repro.core.store import ArtifactStore

    capacity_cache.set_capacity_store(ArtifactStore(store_root))
    wall0 = time.perf_counter()
    model = capacity_cache.trained_capacity_model(DEVICE)
    emit_record(
        {
            "phase": phase,
            "wall_s": round(time.perf_counter() - wall0, 3),
            "trains": capacity_cache.STATS["trains"],
            "store_hits": capacity_cache.STATS["store_hits"],
            "holdout_rmse_log10": round(model.report.holdout_rmse_log10, 4),
        }
    )


# --------------------------------------------------------------------------
# Aggregation.
# --------------------------------------------------------------------------


def _ab(func: str, new_side: str, old_side: str) -> dict:
    runs = {new_side: [], old_side: []}
    for _ in range(AB_SAMPLES):
        for side in (new_side, old_side):
            runs[side].append(
                ab_subprocess("test_capacity_throughput", func, side)
            )
    best_new = min(runs[new_side], key=lambda r: r["cpu_s"])
    best_old = min(runs[old_side], key=lambda r: r["cpu_s"])
    return {
        "samples_per_side": AB_SAMPLES,
        "pre_pr_s": best_old["cpu_s"],
        "vectorized_s": best_new["cpu_s"],
        "speedup": round(best_old["cpu_s"] / best_new["cpu_s"], 2),
        "wall": {
            "pre_pr_s": best_old["wall_s"],
            "vectorized_s": best_new["wall_s"],
            "speedup": round(best_old["wall_s"] / best_new["wall_s"], 2),
        },
        "records": {"pre_pr": best_old, "vectorized": best_new},
    }


def _warm_reuse() -> dict:
    with tempfile.TemporaryDirectory() as root:
        cold = ab_subprocess("test_capacity_throughput", "_measure_warm", "cold", root)
        warm = ab_subprocess("test_capacity_throughput", "_measure_warm", "warm", root)
    return {
        "device": DEVICE,
        "cold_s": cold["wall_s"],
        "warm_s": warm["wall_s"],
        "cold_trains": cold["trains"],
        "warm_trains": warm["trains"],
        "warm_store_hits": warm["store_hits"],
        "holdout_rmse_log10": warm["holdout_rmse_log10"],
    }


def _run_all():
    return {
        "fit_ab": _ab("_measure_fit", "hist", "seed"),
        "query_ab": {"model": QUERY_MODEL, **_ab("_measure_query", "batch", "sequential")},
        "compile_ab": {
            "model": COMPILE_MODEL,
            **_ab("_measure_compile", "vectorized", "seed"),
        },
        "warm_reuse": _warm_reuse(),
    }


def test_capacity_throughput(benchmark):
    result = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_capacity.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    fit, query, comp, warm = (
        result["fit_ab"],
        result["query_ab"],
        result["compile_ab"],
        result["warm_reuse"],
    )
    print(
        f"fit     {fit['records']['vectorized']['n_samples']} samples: "
        f"seed {fit['pre_pr_s']:.2f}s -> hist {fit['vectorized_s']:.2f}s "
        f"= {fit['speedup']:.1f}x"
    )
    print(
        f"query   {query['model']} ({query['records']['vectorized']['n_ops']} ops): "
        f"sequential {query['pre_pr_s']:.2f}s -> batch {query['vectorized_s']:.2f}s "
        f"= {query['speedup']:.1f}x"
    )
    print(
        f"compile {comp['model']} gbt backend: seed {comp['pre_pr_s']:.2f}s -> "
        f"vectorized {comp['vectorized_s']:.2f}s = {comp['speedup']:.1f}x"
    )
    print(
        f"warm    cold {warm['cold_s']:.2f}s -> warm {warm['warm_s']:.2f}s, "
        f"warm trains={warm['warm_trains']} store_hits={warm['warm_store_hits']}"
    )

    # Acceptance bars: >= 10x histogram fit, >= 25x batched whole-graph
    # capacity queries, >= 5x end-to-end gbt-backend compile, and a warm
    # store-cached rerun that retrains nothing.
    assert fit["speedup"] >= 10.0
    assert query["speedup"] >= 25.0
    assert comp["speedup"] >= 5.0
    assert warm["warm_trains"] == 0
    assert warm["warm_store_hits"] >= 1
    assert (
        comp["records"]["vectorized"]["status"]
        in ("OPTIMAL", comp["records"]["pre_pr"]["status"])
    )
