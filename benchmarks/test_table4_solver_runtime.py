"""Bench: regenerate Table 4 — LC-OPG solver runtime breakdown.

Uses a reduced wall-clock budget per model (the paper's 150 s workstation
budget is overkill for the bench loop); pass ``time_limit_s=150`` to
``table4.run`` interactively for the paper's setting.
"""

from conftest import report, run_once

from repro.experiments import table4


def test_table4_solver_runtime(benchmark):
    result = run_once(benchmark, table4.run, time_limit_s=12.0)
    report("table4", result.render())
    assert len(result.rows) == 6
    for row in result.rows:
        assert row.status in ("OPTIMAL", "FEASIBLE")
    # Bigger graphs take at least as much processing (non-strict: the limit caps solve).
    by_model = {r.model: r for r in result.rows}
    assert by_model["Llama2-70B"].layers > by_model["GPTN-S"].layers
