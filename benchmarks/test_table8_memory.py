"""Bench: regenerate Table 8 — average memory, all models x frameworks.

Paper geo-mean reductions vs FlashMem: 3.2x/2.0x/8.4x/7.9x/3.4x/3.5x.
"""

from conftest import report, run_once

from repro.experiments import table8


def test_table8_memory(benchmark):
    result = run_once(benchmark, table8.run)
    report("table8", result.render())
    assert len(result.rows) == 11
    for row in result.rows:
        if row.mem_redt is not None:
            assert row.mem_redt > 1.0
        for fw, mb in row.baselines.items():
            if mb is not None:
                assert mb > row.flashmem_mb
    # Convolution models save less than large transformers (paper §5.2).
    redt = {r.model: r.mem_redt for r in result.rows}
    assert redt["SD-UNet"] < redt["GPTN-1.3B"]
    assert redt["DepA-S"] < redt["DeepViT"]
