"""Bench: regenerate Table 6 — model characterization, paper vs built."""

from conftest import report, run_once

from repro.experiments import table6


def test_table6_model_zoo(benchmark):
    result = run_once(benchmark, table6.run)
    report("table6", result.render())
    assert len(result.rows) == 11
    for row in result.rows:
        assert abs(row.built_params_m - row.paper_params_m) / row.paper_params_m < 0.30
