"""Bench: regenerate Table 1 — preloading memory/latency motivation."""

from conftest import report, run_once

from repro.experiments import table1


def test_table1_motivation(benchmark):
    result = run_once(benchmark, table1.run)
    report("table1", result.render())
    for row in result.rows:
        # The motivating pathology: initialization dominates inference.
        assert row.load_ms + row.trans_ms > row.infer_ms
