"""Bench: background §2.1 claim — texture path vs unified-memory path."""

from conftest import report, run_once

from repro.experiments import background_texture


def test_background_texture(benchmark):
    result = run_once(benchmark, background_texture.run)
    report("background_texture", result.render())
    # Romou's headline: up to ~3.5x from texture-backed execution.
    assert 2.0 <= result.max_speedup <= 6.0
    by_pattern = {c.pattern.value: c for c in result.comparisons}
    strided = by_pattern["column_strided"]
    assert strided.texture_hit_rate > strided.linear_hit_rate
