"""Bench: fleet trace replay — memoized episode execution vs naive.

Written to ``results/BENCH_fleet.json``.  Three sections:

- **ab** — the headline A/B: one device × runtime cell replaying a
  1000-invocation mixed trace (vision/speech prefill + GPT-Neo decode +
  throttle windows), each side in a fresh subprocess (interleaved,
  minimum-of-N CPU-time samples; ``conftest.ab_subprocess``).  The memoized
  side simulates each distinct episode once and splices the cached columnar
  trace for the other ~97% of invocations; the naive side re-simulates
  every invocation.  Both sides load compiled plans from the shared
  artifact store and run with episode persistence off, so each timed pass
  starts from an empty memo and the ratio isolates the replay engine.
  Acceptance bar: >= 10x, with byte-identical cell results.

- **identity** — the replay ≡ naive matrix over 2 devices × 2 runtimes:
  every cell's canonical (hex-float) serialization must be identical
  between the memoized and naive engines.

- **scaleout** — ``run_fleet`` at jobs=1 vs jobs=2 over the 4-cell grid.
  On a box without 2 usable cores the point is annotated
  ``single_core_skip`` and the assertion is bounded overhead, not a fake
  speedup (the BENCH_sweep/BENCH_service idiom).
"""

import gc
import hashlib
import json
import os
import pathlib
import time

from conftest import RESULTS_DIR, ab_subprocess, emit_record

DEVICE = "OnePlus 12"
RUNTIME = "FlashMem"
TRACE_SEED = 1009
AB_INVOCATIONS = 1000
IDENTITY_INVOCATIONS = 120
SCALEOUT_INVOCATIONS = 150
IDENTITY_DEVICES = ("OnePlus 12", "Pixel 8")
IDENTITY_RUNTIMES = ("FlashMem", "MNN")

#: Timed passes inside each child (its record reports the fastest).
CHILD_REPEATS = 2
#: Child samples per A/B side (interleaved memo/naive; min is reported).
AB_SAMPLES = 2

#: The suite's persistent store (absolute: children run with a different
#: cwd).  Compiled plans are warmed here by the parent.
CACHE_DIR = str(pathlib.Path(__file__).resolve().parent.parent / ".artifact-cache")


def _ab_trace(invocations: int):
    from repro.fleet.trace import generate_trace

    return generate_trace(
        seed=TRACE_SEED,
        duration_s=600.0,
        rate_per_min=60.0,
        invocations=invocations,
        name=f"bench-seed{TRACE_SEED}",
    )


def _cell_digest(cell) -> str:
    return hashlib.sha256(cell.canonical_json().encode()).hexdigest()


def _measure_side(side: str) -> None:
    """Child entry: time CHILD_REPEATS single-cell replays, report the fastest."""
    from repro.experiments import common
    from repro.fleet.episode import EpisodeProvider
    from repro.fleet.replay import replay_trace

    common.configure_cache(CACHE_DIR)
    trace = _ab_trace(AB_INVOCATIONS)
    memoize = side == "memo"

    def one_pass():
        # A fresh provider per pass: the memoized engine starts from an
        # empty memo and still simulates each distinct episode once.
        provider = EpisodeProvider(memoize=memoize)
        cell = replay_trace(trace, DEVICE, RUNTIME, provider=provider)
        return cell, provider

    # Warm-up uses the memoized engine on both sides: it pulls compiled
    # plans through the store and primes the pricing caches cheaply without
    # paying a full naive pass before the timing starts.
    replay_trace(trace, DEVICE, RUNTIME, provider=EpisodeProvider())
    # Episode persistence off from here: each timed pass must rebuild its
    # memo by simulation, not load a previous pass's episodes.
    common.swap_store(None)
    gc.collect()
    gc.disable()
    best = None
    cell = provider = None
    for _ in range(CHILD_REPEATS):
        cpu0 = time.process_time()
        cell, provider = one_pass()
        cpu = time.process_time() - cpu0
        if best is None or cpu < best:
            best = cpu
    gc.enable()
    emit_record({
        "side": side,
        "cpu_s": round(best, 5),
        "invocations": cell.invocations,
        "episodes_simulated": provider.simulated,
        "cell_sha256": _cell_digest(cell),
        "timeline_sha256": cell.timeline_sha256,
        "makespan_ms": cell.makespan_ms,
        "energy_j": cell.energy_j,
        "peak_bytes": cell.peak_bytes,
    })


def _warm_compiles() -> None:
    """Populate the shared store with every compiled plan the trace needs."""
    from repro.experiments import common

    previous = common.swap_store(None)
    try:
        common.configure_cache(CACHE_DIR)
        trace = _ab_trace(AB_INVOCATIONS)
        for inv in trace.invocations:
            if inv.scenario.is_decode:
                common.cached_decode_compile(inv.model, DEVICE, inv.scenario.context_len)
            else:
                common.cached_compile(inv.model, DEVICE)
    finally:
        common.swap_store(previous)


def _run_ab() -> dict:
    _warm_compiles()
    runs = {"memo": [], "naive": []}
    for _ in range(AB_SAMPLES):
        for side in ("memo", "naive"):
            runs[side].append(
                ab_subprocess("test_fleet_throughput", "_measure_side", side)
            )
    best_memo = min(runs["memo"], key=lambda r: r["cpu_s"])
    best_naive = min(runs["naive"], key=lambda r: r["cpu_s"])
    return {
        "device": DEVICE,
        "runtime": RUNTIME,
        "invocations": AB_INVOCATIONS,
        "samples_per_side": AB_SAMPLES,
        "repeats_per_sample": CHILD_REPEATS,
        "naive_s": best_naive["cpu_s"],
        "memoized_s": best_memo["cpu_s"],
        "speedup": round(best_naive["cpu_s"] / best_memo["cpu_s"], 2),
        "memo": best_memo,
        "naive": best_naive,
    }


def _run_identity() -> dict:
    """Replay ≡ naive byte-identity across the device × runtime matrix."""
    from repro.experiments import common
    from repro.fleet.episode import EpisodeProvider
    from repro.fleet.replay import replay_trace

    previous = common.swap_store(None)  # identity must not depend on a store
    try:
        trace = _ab_trace(IDENTITY_INVOCATIONS)
        cells = {}
        for device in IDENTITY_DEVICES:
            for runtime in IDENTITY_RUNTIMES:
                memo = replay_trace(trace, device, runtime)
                naive = replay_trace(
                    trace, device, runtime, provider=EpisodeProvider(memoize=False)
                )
                cells[f"{device}/{runtime}"] = {
                    "identical": memo.canonical_json() == naive.canonical_json(),
                    "cell_sha256": _cell_digest(memo),
                    "timeline_sha256": memo.timeline_sha256,
                    "episodes_simulated_memo": memo.episodes_simulated,
                    "episodes_simulated_naive": naive.episodes_simulated,
                }
        return {"invocations": IDENTITY_INVOCATIONS, "cells": cells}
    finally:
        common.swap_store(previous)


def _run_scaleout(tmp_path) -> dict:
    from repro.fleet.population import run_fleet

    cores = os.cpu_count() or 1
    trace = _ab_trace(SCALEOUT_INVOCATIONS)
    points = {}
    for jobs in (1, 2):
        report = run_fleet(
            trace,
            IDENTITY_DEVICES,
            IDENTITY_RUNTIMES,
            jobs=jobs,
            cache_dir=tmp_path / f"fleet-{jobs}j",
        )
        points[jobs] = {
            "wall_s": round(report.wall_s, 3),
            "device_hours": round(report.simulated_device_hours, 4),
            "device_hours_per_s": round(report.device_hours_per_s, 2),
            "episodes_simulated": report.episodes_simulated,
        }
    base = points[1]["wall_s"]
    for point in points.values():
        point["speedup_vs_1j"] = round(base / max(point["wall_s"], 1e-9), 2)
    return {
        "cores": cores,
        "single_core_skip": cores < 2,
        "invocations": SCALEOUT_INVOCATIONS,
        "cells": len(IDENTITY_DEVICES) * len(IDENTITY_RUNTIMES),
        "points": {str(j): p for j, p in points.items()},
    }


def test_fleet_throughput(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: {
            "ab": _run_ab(),
            "identity": _run_identity(),
            "scaleout": _run_scaleout(tmp_path),
        },
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(json.dumps(result, indent=2) + "\n")

    ab = result["ab"]
    print(
        f"\nfleet ({AB_INVOCATIONS}-invocation mixed trace, {DEVICE}/{RUNTIME}): "
        f"naive {ab['naive_s']:.2f}s -> memoized {ab['memoized_s']:.2f}s "
        f"= {ab['speedup']:.1f}x "
        f"({ab['memo']['episodes_simulated']} episodes simulated vs "
        f"{ab['naive']['episodes_simulated']} naive simulations)"
    )

    # Byte-identity: the memoized replay IS the naive simulation, spliced.
    assert ab["memo"]["cell_sha256"] == ab["naive"]["cell_sha256"]
    assert ab["memo"]["timeline_sha256"] == ab["naive"]["timeline_sha256"]
    assert ab["memo"]["invocations"] == AB_INVOCATIONS
    for name, cell in result["identity"]["cells"].items():
        assert cell["identical"], f"replay != naive in cell {name}"
        assert cell["episodes_simulated_memo"] < cell["episodes_simulated_naive"]

    # The memo must collapse ~1000 invocations to a few dozen episodes,
    # then clear the headline bar.
    assert ab["memo"]["episodes_simulated"] < AB_INVOCATIONS // 10
    assert ab["naive"]["episodes_simulated"] >= AB_INVOCATIONS
    assert ab["speedup"] >= 10.0

    # Scale-out bars — only meaningful when the kernel grants the cores.
    so = result["scaleout"]
    points = so["points"]
    if so["single_core_skip"]:
        assert points["2"]["wall_s"] < 2.0 * points["1"]["wall_s"]
    else:
        assert points["2"]["speedup_vs_1j"] >= 1.3
