"""Bench: decode steady-state extrapolation — segment replay vs per-token.

Written to ``results/BENCH_decode.json``.  One A/B scenario, each side
measured in a fresh subprocess (interleaved, minimum-of-N CPU-time samples;
see ``conftest.ab_subprocess``): a 1000-token GPTN-2.7B decode on the
OnePlus 12 after a 1024-token prompt.  The fast side simulates three
tokens per context-length segment and bulk-replays the recorded trace for
the rest; the slow side (``extrapolate=False``) prices and simulates every
token.  Both sides run the same compiled plan from the shared artifact
store, so the ratio isolates the replay machinery.

The exactness contract is asserted before the bar: simulated latency and
peak memory must be bitwise identical across sides.  Acceptance bar:
>= 10x (a 1000-token decode costs a few tokens of simulation per segment).
"""

import gc
import json
import pathlib
import time

from conftest import RESULTS_DIR, ab_subprocess, emit_record

MODEL = "GPTN-2.7B"
DEVICE = "OnePlus 12"
CONTEXT = 1024
TOKENS = 1000

#: Timed passes inside each child (its record reports the fastest).
CHILD_REPEATS = 3
#: Child samples per A/B side (interleaved fast/full; min is reported).
AB_SAMPLES = 2

#: The suite's persistent store (absolute: children run with a different
#: cwd).  The compiled decode plan is warmed here by the parent.
CACHE_DIR = str(pathlib.Path(__file__).resolve().parent.parent / ".artifact-cache")


def _measure_side(side: str) -> None:
    """Child entry: time CHILD_REPEATS decode runs, report the fastest."""
    from repro.core.flashmem import FlashMem
    from repro.experiments import common
    from repro.runtime.scenario import Scenario

    common.configure_cache(CACHE_DIR)
    compiled = common.cached_decode_compile(MODEL, DEVICE, CONTEXT)
    fm = FlashMem(common.experiment_flashmem_config())
    scenario = Scenario.decode(tokens=TOKENS, context_len=CONTEXT)
    extrapolate = side == "fast"

    def one_pass():
        return fm.run(compiled, scenario=scenario, extrapolate=extrapolate)

    one_pass()  # warm up: imports, LRU caches, priced tables
    gc.collect()
    gc.disable()
    best = None
    result = None
    for _ in range(CHILD_REPEATS):
        cpu0 = time.process_time()
        result = one_pass()
        cpu = time.process_time() - cpu0
        if best is None or cpu < best:
            best = cpu
    gc.enable()
    emit_record({
        "side": side,
        "cpu_s": round(best, 5),
        "latency_ms": result.latency_ms,
        "peak_memory_bytes": result.peak_memory_bytes,
        "ms_per_token": result.details["ms_per_token"],
        "replayed_tokens": int(result.details.get("replayed_tokens", 0)),
        "segments": int(result.details.get("segments", 0)),
    })


def _warm_compile() -> None:
    """Populate the shared store with the decode plan both children load."""
    from repro.experiments import common

    previous = common.swap_store(None)
    try:
        common.configure_cache(CACHE_DIR)
        common.cached_decode_compile(MODEL, DEVICE, CONTEXT)
    finally:
        common.swap_store(previous)


def _run_ab() -> dict:
    _warm_compile()
    runs = {"fast": [], "full": []}
    for _ in range(AB_SAMPLES):
        for side in ("fast", "full"):
            runs[side].append(
                ab_subprocess("test_decode_throughput", "_measure_side", side)
            )
    best_fast = min(runs["fast"], key=lambda r: r["cpu_s"])
    best_full = min(runs["full"], key=lambda r: r["cpu_s"])
    return {
        "model": MODEL,
        "device": DEVICE,
        "context_len": CONTEXT,
        "tokens": TOKENS,
        "samples_per_side": AB_SAMPLES,
        "repeats_per_sample": CHILD_REPEATS,
        "per_token_s": best_full["cpu_s"],
        "extrapolated_s": best_fast["cpu_s"],
        "speedup": round(best_full["cpu_s"] / best_fast["cpu_s"], 2),
        "fast": best_fast,
        "full": best_full,
    }


def test_decode_throughput(benchmark):
    result = benchmark.pedantic(_run_ab, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_decode.json").write_text(json.dumps(result, indent=2) + "\n")

    fast, full = result["fast"], result["full"]
    print(
        f"\ndecode ({MODEL} x {TOKENS} tokens @ context {CONTEXT}): "
        f"per-token {result['per_token_s']:.3f}s -> extrapolated "
        f"{result['extrapolated_s']:.3f}s = {result['speedup']:.2f}x "
        f"({fast['replayed_tokens']} of {TOKENS} tokens replayed "
        f"across {fast['segments']} segment(s))"
    )

    # The exactness contract: both sides simulated the same decode (floats
    # round-trip exactly through the JSON record protocol).
    assert fast["latency_ms"] == full["latency_ms"]
    assert fast["peak_memory_bytes"] == full["peak_memory_bytes"]
    assert fast["ms_per_token"] == full["ms_per_token"]

    # Replay must have engaged on the fast side only, then clear the bar.
    assert full["replayed_tokens"] == 0
    assert fast["replayed_tokens"] >= TOKENS - 3 * fast["segments"] - 3
    assert result["speedup"] >= 10.0
