"""Bench: regenerate Table 5 — operator classification + measured capacities."""

from conftest import report, run_once

from repro.experiments import table5


def test_table5_op_classes(benchmark):
    result = run_once(benchmark, table5.run)
    report("table5", result.render())
    caps = {op: mb for op, _, mb in result.measured_rows}
    assert caps["Matmul"] > caps["Add"] > caps["Softmax"] == 0
