"""Shared benchmark utilities.

Every benchmark wraps one experiment driver from ``repro.experiments``:
`pytest benchmarks/ --benchmark-only` regenerates each paper table/figure,
prints the rendered rows/series, and also saves them under ``results/`` so
the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def report(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    The drivers are deterministic, minutes-scale pipelines; multiple
    benchmarking rounds would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
