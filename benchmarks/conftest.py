"""Shared benchmark utilities.

Every benchmark wraps one experiment driver from ``repro.experiments``:
`pytest benchmarks/ --benchmark-only` regenerates each paper table/figure,
prints the rendered rows/series, and also saves them under ``results/`` so
the output survives pytest's capture.

A/B perf benchmarks (``test_compile_latency``, ``test_sim_throughput``)
measure each side in a *fresh subprocess* via :func:`ab_subprocess`: the
work is deterministic pure python, so the minimum of a few interleaved
CPU-time samples approximates the uncontended cost, and process isolation
keeps one side's allocation history (or a transient noisy neighbor on a
shared box) from skewing the other side.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
SRC_DIR = BENCH_DIR.parent / "src"
RESULTS_DIR = BENCH_DIR.parent / "results"


def report(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def emit_record(record: dict) -> None:
    """Child-process side of the A/B protocol: print one JSON record line."""
    print("BENCH_RECORD " + json.dumps(record))


def ab_subprocess(module: str, func: str, *args, timeout: float = 900.0) -> dict:
    """Run ``benchmarks/<module>.py::<func>(*args)`` in a fresh interpreter.

    The child runs with ``PYTHONPATH=[src, benchmarks]`` and
    ``cwd=benchmarks`` and must print exactly one ``BENCH_RECORD <json>``
    line via :func:`emit_record`; that record is returned.  ``args`` must
    round-trip through ``repr`` (strings, numbers, bools).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(SRC_DIR), str(BENCH_DIR)])
    call = ", ".join(repr(a) for a in args)
    proc = subprocess.run(
        [sys.executable, "-c", f"import {module} as m; m.{func}({call})"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(BENCH_DIR),
        check=False,
        timeout=timeout,
    )
    for line in proc.stdout.splitlines():
        if line.startswith("BENCH_RECORD "):
            return json.loads(line[len("BENCH_RECORD "):])
    raise RuntimeError(
        f"{module}.{func}({call}) subprocess produced no BENCH_RECORD "
        f"(exit {proc.returncode}):\n{proc.stderr[-2000:]}"
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    The drivers are deterministic, minutes-scale pipelines; multiple
    benchmarking rounds would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
