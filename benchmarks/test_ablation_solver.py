"""Bench: solver design ablations (scheduler, chunk size, lookback, window)."""

from conftest import report, run_once

from repro.experiments import ablations


def test_ablation_solver(benchmark):
    result = run_once(benchmark, ablations.run)
    report("ablations", result.render())
    sched = {r.setting: r for r in result.study("scheduler")}
    # The CP scheduler never preloads more than the greedy fallback.
    assert sched["CP-SAT"].preload_pct <= sched["greedy-only"].preload_pct + 1.0
    look = {r.setting: r for r in result.study("lookback")}
    # Longer horizons can only reduce (or hold) forced preloading.
    assert look["32"].preload_pct <= look["4"].preload_pct + 1.0
