"""Bench: extension — preemptive multi-DNN scheduling episode."""

from conftest import report, run_once

from repro.experiments import preemption


def test_preemption(benchmark):
    result = run_once(benchmark, preemption.run)
    report("preemption", result.render())
    flash = result.row("FlashMem")
    smem = result.row("SMem (evict+restart)")
    # FlashMem's small resident state makes preemption cheap on both axes.
    assert flash.peak_mb < smem.peak_mb
    assert flash.session_ms < smem.session_ms
