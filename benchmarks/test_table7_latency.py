"""Bench: regenerate Table 7 — end-to-end latency, all models x frameworks.

The headline comparison: FlashMem's integrated latency vs every baseline's
init+exec, with geo-mean speedups (paper: 6.1x/2.9x/6.2x/1.7x/75x/8.6x).
"""

from conftest import report, run_once

from repro.experiments import table7


def test_table7_latency(benchmark):
    result = run_once(benchmark, table7.run)
    report("table7", result.render())
    assert len(result.rows) == 11
    # FlashMem beats every framework's cold start on every supported model.
    for row in result.rows:
        if row.speedup_smem is not None:
            assert row.speedup_smem > 1.0
    # Geo-mean ordering matches the paper: ETorch worst, LiteRT closest.
    geo = result.geomean_speedup
    assert geo["ETorch"] > geo["MNN"] > geo["LiteRT"] > 1.0
    assert geo["SMem"] > 4.0
