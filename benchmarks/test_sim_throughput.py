"""Bench: simulation hot path — fast path vs pre-PR scalar emulation.

Written to ``results/BENCH_sim.json`` so future PRs can track the
trajectory.  Two A/B scenarios, each side measured in a fresh subprocess
(interleaved, minimum-of-N CPU-time samples; see ``conftest.ab_subprocess``
for the methodology).  Compiled plans come from the shared artifact store —
warmed by the parent before any child runs — so both sides execute
byte-identical plans and the ratio isolates the simulation work:

- **multi_iter** — GPTN-S x 16 FlashMem iterations.  The fast side prices
  the kernel cost table once and replays the recorded steady-state
  iteration trace for iterations >= 3.  Acceptance bar: >= 3x.
- **table7_grid** — one single-iteration pass over the full Table 7 grid
  (11 models x FlashMem + 6 preloading baselines).  Extrapolation cannot
  engage at iterations=1, so this isolates vectorized pricing + columnar
  event accounting.  Acceptance bar: >= 1.5x.

The seed side reverts the hot-path deltas inside its own process: the
module defaults flip back to scalar per-node pricing
(``pricing.COST_TABLES_DEFAULT``) and no extrapolation
(``executor.EXTRAPOLATE_DEFAULT``), and ``CommandQueue`` / ``Simulation``
methods are monkeypatched to the pre-PR accounting — a ``QueueEvent``
object built per submit, busy/idle time recomputed by walking the event
log, interval merges through the sorting reference implementation, the
timeline integrated in pure python one ``record()`` at a time, and graph
aggregates (peak activations, total weight bytes, pricing rows)
recomputed per run instead of memoized on the frozen graph.

Both sides must report bitwise-identical simulated latencies (the fast
path's exactness contract); each scenario asserts that before the bar.
"""

import gc
import json
import pathlib
import time

from conftest import RESULTS_DIR, ab_subprocess, emit_record

MULTI_MODEL = "GPTN-S"
DEVICE = "OnePlus 12"
MULTI_ITERATIONS = 16

#: Timed passes inside each child (its record reports the fastest).
CHILD_REPEATS = 3
#: Child samples per A/B side (interleaved fast/seed; min is reported).
AB_SAMPLES = 2

#: The suite's persistent store (absolute: children run with a different
#: cwd).  Compiled plans are warmed here by the parent; pricing-table and
#: run-result entries written along the way are harmless cache content.
CACHE_DIR = str(pathlib.Path(__file__).resolve().parent.parent / ".artifact-cache")

#: multi_iter peak simulated memory per side.  Latencies are bitwise
#: identical (asserted below), but peak memory is NOT: the PR-5 columnar
#: timeline resolves equal-timestamp (release, allocate) delta pairs in
#: stable column order while the seed path's per-event sort breaks that
#: tie the other way, so each side samples the peak on a different side of
#: the tie point.  The delta is a known accounting artifact, pinned here
#: so an unintended change to either path shows up as a bench failure.
FAST_PEAK_MEMORY_BYTES = 277_542_400
SEED_PEAK_MEMORY_BYTES = 312_296_192


# ----------------------------------------------------------- seed emulation
def _install_seed_emulation() -> None:
    """Monkeypatch the pre-PR simulation path into this process."""
    from repro.graph.dag import Graph
    from repro.gpusim import energy, pricing
    from repro.gpusim.engine import Simulation
    from repro.gpusim.queues import CommandQueue, QueueEvent
    from repro.gpusim.timeline import MemoryTimeline
    from repro.runtime import executor

    pricing.COST_TABLES_DEFAULT = False
    executor.EXTRAPOLATE_DEFAULT = False

    # Pre-PR graphs recomputed every aggregate per simulated run.
    Graph._frozen_aggregate = lambda self, key, compute: compute()

    def seed_submit_fast(self, label, duration_ms, not_before=0.0, kind="work"):
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        start = max(self._free_at, not_before)
        end = start + duration_ms
        self._free_at = end
        self._labels.append(label)
        self._starts.append(start)
        self._ends.append(end)
        self._kinds.append(kind)
        # Pre-PR submit built one QueueEvent per item and kept the object
        # log as the source of truth; reuse the events cache as that log.
        cache = self._events_cache
        if cache is None:
            cache = []
            self._events_cache = cache
        cache.append(QueueEvent(label=label, start_ms=start, end_ms=end, kind=kind))
        return start, end

    def seed_busy_time_ms(self, *, kind=None):
        if kind is None:
            return sum(e.duration_ms for e in self.events)
        return sum(e.duration_ms for e in self.events if e.kind == kind)

    def seed_idle_time_ms(self):
        return self._free_at - seed_busy_time_ms(self)

    def seed_busy_intervals(self):
        return energy._busy_intervals(self.events)

    def seed_build_timeline(self):
        if self._timeline is not None and self._timeline[0] == len(self._deltas):
            return self._timeline[1]
        timeline = MemoryTimeline()
        total = 0
        for row in sorted(self._deltas, key=lambda d: d[0]):
            total += row[1]
            if total < 0:
                raise ValueError("memory cannot be negative")
            timeline.record(row[0], total)
        self._timeline = (len(self._deltas), timeline)
        return timeline

    CommandQueue.submit_fast = seed_submit_fast
    CommandQueue.busy_time_ms = seed_busy_time_ms
    CommandQueue.idle_time_ms = seed_idle_time_ms
    CommandQueue.busy_intervals = seed_busy_intervals
    Simulation.build_timeline = seed_build_timeline


# --------------------------------------------------------------- scenarios
def _scenario_multi_iter():
    """One FlashMem model, many iterations: (pass_fn, checksum_fn)."""
    from repro.experiments import common

    compiled = common.cached_compile(MULTI_MODEL, DEVICE)
    from repro.core.flashmem import FlashMem

    fm = FlashMem(common.experiment_flashmem_config())

    def one_pass():
        return fm.run(compiled, iterations=MULTI_ITERATIONS)

    def summarize(result):
        return {
            "latency_ms": result.latency_ms,
            "peak_memory_bytes": result.peak_memory_bytes,
            "replayed_iterations": int(result.details.get("replayed_iterations", 0)),
        }

    return one_pass, summarize


def _scenario_table7_grid():
    """Single-iteration pass over the full Table 7 grid."""
    from repro.experiments import common
    from repro.core.flashmem import FlashMem
    from repro.graph.lowering import eliminate_layout_ops
    from repro.graph.models import EVALUATED_MODELS
    from repro.gpusim.device import get_device
    from repro.runtime.frameworks import BASELINE_ORDER, get_profile
    from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor

    device = get_device(DEVICE)
    fm = FlashMem(common.experiment_flashmem_config())
    # Everything compile-side is resolved before timing: plans from the
    # warm store, raw + layout-eliminated graphs built once.
    compiles = {m: common.cached_compile(m, DEVICE) for m in EVALUATED_MODELS}
    graphs = {m: common.cached_graph(m) for m in EVALUATED_MODELS}
    smem_graphs = {m: eliminate_layout_ops(g) for m, g in graphs.items()}
    profiles = [(fw, get_profile(fw)) for fw in BASELINE_ORDER]

    def one_pass():
        total = 0.0
        cells = 0
        for model in EVALUATED_MODELS:
            total += fm.run(compiles[model], iterations=1).latency_ms
            cells += 1
            for fw, profile in profiles:
                graph = smem_graphs[model] if fw == "SMem" else graphs[model]
                try:
                    result = PreloadExecutor(profile, device).run(graph, iterations=1)
                except ModelNotSupportedError:
                    continue
                total += result.latency_ms
                cells += 1
        return total, cells

    def summarize(outcome):
        total, cells = outcome
        return {"latency_sum_ms": total, "cells": cells}

    return one_pass, summarize


_SCENARIOS = {
    "multi_iter": _scenario_multi_iter,
    "table7_grid": _scenario_table7_grid,
}


def _measure_side(side: str, scenario: str) -> None:
    """Child entry: time CHILD_REPEATS passes, report the fastest."""
    from repro.experiments import common

    common.configure_cache(CACHE_DIR)
    if side == "seed":
        _install_seed_emulation()
    one_pass, summarize = _SCENARIOS[scenario]()
    one_pass()  # warm up: imports, LRU caches, priced tables
    gc.collect()
    gc.disable()
    best = None
    outcome = None
    for _ in range(CHILD_REPEATS):
        cpu0 = time.process_time()
        outcome = one_pass()
        cpu = time.process_time() - cpu0
        if best is None or cpu < best:
            best = cpu
    gc.enable()
    record = {"side": side, "scenario": scenario, "cpu_s": round(best, 5)}
    record.update(summarize(outcome))
    emit_record(record)


# -------------------------------------------------------------------- parent
def _warm_compiles() -> None:
    """Populate the shared store with every compiled plan the children load."""
    from repro.experiments import common
    from repro.graph.models import EVALUATED_MODELS

    previous = common.swap_store(None)
    try:
        common.configure_cache(CACHE_DIR)
        for model in EVALUATED_MODELS:
            common.cached_compile(model, DEVICE)
    finally:
        common.swap_store(previous)


def _ab(scenario: str, identity_keys) -> dict:
    runs = {"fast": [], "seed": []}
    for _ in range(AB_SAMPLES):
        for side in ("fast", "seed"):
            runs[side].append(
                ab_subprocess("test_sim_throughput", "_measure_side", side, scenario)
            )
    best_fast = min(runs["fast"], key=lambda r: r["cpu_s"])
    best_seed = min(runs["seed"], key=lambda r: r["cpu_s"])
    # The exactness contract: both sides simulated the same numbers (floats
    # round-trip exactly through the JSON record protocol).
    for key in identity_keys:
        assert best_fast[key] == best_seed[key], (
            f"{scenario}: fast/seed {key} diverged: "
            f"{best_fast[key]!r} != {best_seed[key]!r}"
        )
    return {
        "scenario": scenario,
        "samples_per_side": AB_SAMPLES,
        "repeats_per_sample": CHILD_REPEATS,
        "pre_pr_s": best_seed["cpu_s"],
        "fast_s": best_fast["cpu_s"],
        "speedup": round(best_seed["cpu_s"] / best_fast["cpu_s"], 2),
        "fast": best_fast,
        "seed": best_seed,
    }


def _run_all():
    _warm_compiles()
    multi = _ab("multi_iter", identity_keys=("latency_ms",))
    grid = _ab("table7_grid", identity_keys=("latency_sum_ms", "cells"))
    return {"multi_iter": multi, "table7_grid": grid}


def test_sim_throughput(benchmark):
    result = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sim.json").write_text(json.dumps(result, indent=2) + "\n")

    multi = result["multi_iter"]
    grid = result["table7_grid"]
    print(
        f"\nmulti_iter ({MULTI_MODEL} x {MULTI_ITERATIONS} it): "
        f"pre-PR {multi['pre_pr_s']:.3f}s -> fast {multi['fast_s']:.3f}s "
        f"= {multi['speedup']:.2f}x "
        f"({multi['fast']['replayed_iterations']} iterations replayed)"
    )
    print(
        f"table7_grid ({grid['fast']['cells']} cells): "
        f"pre-PR {grid['pre_pr_s']:.3f}s -> fast {grid['fast_s']:.3f}s "
        f"= {grid['speedup']:.2f}x"
    )

    # Acceptance bars: extrapolation + tables >= 3x on the multi-iteration
    # run; vectorized pricing + columnar accounting alone >= 1.5x on the
    # single-pass grid.  Replay must actually have engaged on the fast side.
    assert multi["fast"]["replayed_iterations"] == MULTI_ITERATIONS - 3
    assert multi["speedup"] >= 3.0
    assert grid["speedup"] >= 1.5

    # The documented PR-5 tie-rule accounting delta (see the constants'
    # comment): latency identical, peak memory pinned per side.
    assert multi["fast"]["peak_memory_bytes"] == FAST_PEAK_MEMORY_BYTES
    assert multi["seed"]["peak_memory_bytes"] == SEED_PEAK_MEMORY_BYTES
