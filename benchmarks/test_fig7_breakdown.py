"""Bench: regenerate Figure 7 — per-optimization breakdown vs SmartMem."""

from conftest import report, run_once

from repro.experiments import fig7


def test_fig7_breakdown(benchmark):
    result = run_once(benchmark, fig7.run)
    report("fig7", result.render())
    # Cumulative stacking: each added optimisation keeps or improves latency.
    for model in {r.model for r in result.rows}:
        steps = [r for r in result.rows if r.model == model]
        speedups = [r.speedup_vs_smem for r in steps]
        assert speedups[0] > 1.0              # OPG alone already wins
        assert speedups[-1] >= speedups[0] * 0.95  # full pipeline at least holds
