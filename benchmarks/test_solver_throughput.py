"""Bench: CP solver throughput — bitset core vs queue core vs seed solver.

Head-to-head comparisons under identical time/node budgets, written to
``results/BENCH_solver.json`` so future PRs can track the trajectory:

- **microbench** — the synthetic OPG-window workload from
  ``repro.opg.cpsat.bench`` (shaped exactly like ``LcOpgSolver._cp_window``
  models), now three-way: the round-2 bitset engine (default ``trail``),
  the round-1 queue engine (``engine="queue"``), and the seed ``naive``
  solver.  Headline ``speedup_nodes_per_sec`` stays bitset-vs-naive (the
  trajectory number); ``speedup_vs_queue`` is the honest round-2 delta.
- **table4** — the paper's solver-scaling model set run through the full
  LC-OPG pipeline with each engine injected via ``solver_factory``;
  asserts no model regresses from OPTIMAL to FEASIBLE under the new core.

Acceptance bars: ≥ 5× nodes/sec vs the seed solver (round 1's bar, kept),
and the bitset engine no slower than the queue engine in geomean.
"""

import json

from conftest import RESULTS_DIR

from repro.experiments import table4
from repro.opg.cpsat.bench import run_throughput_benchmark

#: Per-model wall budget for the table4 A/B (short: 2 runs x 6 models).
TABLE4_BUDGET_S = 6.0


def _table4_comparison():
    rows = {}
    for solver in ("trail", "naive"):
        result = table4.run(time_limit_s=TABLE4_BUDGET_S, solver=solver)
        rows[solver] = [
            {
                "model": r.model,
                "status": r.status,
                "solve_s": round(r.solve_s, 3),
                "nodes": r.nodes,
                "nodes_per_sec": round(r.nodes_per_sec, 1),
            }
            for r in result.rows
        ]
    return {
        "time_limit_s": TABLE4_BUDGET_S,
        "trail": rows["trail"],
        "naive": rows["naive"],
    }


def _run_all():
    return {
        "microbench": run_throughput_benchmark(time_limit_s=3.0, max_nodes=60_000),
        "table4_workload": _table4_comparison(),
    }


def test_solver_throughput(benchmark):
    result = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_solver.json").write_text(json.dumps(result, indent=2) + "\n")

    micro = result["microbench"]
    trail, queue, naive = micro["trail"], micro["queue"], micro["naive"]
    print(
        f"\nmicrobench bitset: {trail['nodes_per_sec']:.0f} nodes/s, "
        f"{trail['windows_to_optimal']}/{len(trail['windows'])} windows OPTIMAL\n"
        f"microbench queue:  {queue['nodes_per_sec']:.0f} nodes/s, "
        f"{queue['windows_to_optimal']}/{len(queue['windows'])} windows OPTIMAL\n"
        f"microbench naive:  {naive['nodes_per_sec']:.0f} nodes/s, "
        f"{naive['windows_to_optimal']}/{len(naive['windows'])} windows OPTIMAL\n"
        f"speedup vs naive: {micro['speedup_nodes_per_sec']:.1f}x geomean "
        f"({micro['speedup_aggregate']:.1f}x aggregate)   "
        f"vs queue: {micro['speedup_vs_queue']:.2f}x geomean"
    )

    # Acceptance bars: >= 5x search throughput vs the seed solver (round
    # 1's bar, kept), the bitset engine at least on par with the queue
    # engine in geomean, and the trail solver proves at least as many
    # windows optimal as the seed solver.
    assert micro["speedup_nodes_per_sec"] >= 5.0
    assert micro["speedup_vs_queue"] >= 1.0
    assert trail["windows_to_optimal"] >= naive["windows_to_optimal"]

    # Table 4 workload: same budgets, no OPTIMAL -> FEASIBLE regression.
    t4 = result["table4_workload"]
    naive_status = {r["model"]: r["status"] for r in t4["naive"]}
    for row in t4["trail"]:
        print(f"table4 {row['model']:12s} trail={row['status']:9s} "
              f"naive={naive_status[row['model']]:9s} {row['nodes_per_sec']:.0f} nodes/s")
        if naive_status[row["model"]] == "OPTIMAL":
            assert row["status"] == "OPTIMAL", (
                f"{row['model']} regressed from OPTIMAL to {row['status']}"
            )
        assert row["status"] in ("OPTIMAL", "FEASIBLE")
