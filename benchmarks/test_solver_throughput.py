"""Bench: CP solver throughput — trail-based core vs the seed solver.

Two head-to-head comparisons under identical time/node budgets, written to
``results/BENCH_solver.json`` so future PRs can track the trajectory:

- **microbench** — the synthetic OPG-window workload from
  ``repro.opg.cpsat.bench`` (shaped exactly like ``LcOpgSolver._cp_window``
  models); headline = geometric mean of per-window nodes/sec ratios.
- **table4** — the paper's solver-scaling model set run through the full
  LC-OPG pipeline with each engine injected via ``solver_factory``;
  asserts no model regresses from OPTIMAL to FEASIBLE under the new core.

The acceptance bar for the trail rewrite is ≥ 5× nodes/sec.
"""

import json

from conftest import RESULTS_DIR

from repro.experiments import table4
from repro.opg.cpsat.bench import run_throughput_benchmark

#: Per-model wall budget for the table4 A/B (short: 2 runs x 6 models).
TABLE4_BUDGET_S = 6.0


def _table4_comparison():
    rows = {}
    for solver in ("trail", "naive"):
        result = table4.run(time_limit_s=TABLE4_BUDGET_S, solver=solver)
        rows[solver] = [
            {
                "model": r.model,
                "status": r.status,
                "solve_s": round(r.solve_s, 3),
                "nodes": r.nodes,
                "nodes_per_sec": round(r.nodes_per_sec, 1),
            }
            for r in result.rows
        ]
    return {
        "time_limit_s": TABLE4_BUDGET_S,
        "trail": rows["trail"],
        "naive": rows["naive"],
    }


def _run_all():
    return {
        "microbench": run_throughput_benchmark(time_limit_s=3.0, max_nodes=60_000),
        "table4_workload": _table4_comparison(),
    }


def test_solver_throughput(benchmark):
    result = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_solver.json").write_text(json.dumps(result, indent=2) + "\n")

    micro = result["microbench"]
    trail, naive = micro["trail"], micro["naive"]
    print(
        f"\nmicrobench trail: {trail['nodes_per_sec']:.0f} nodes/s, "
        f"{trail['windows_to_optimal']}/{len(trail['windows'])} windows OPTIMAL\n"
        f"microbench naive: {naive['nodes_per_sec']:.0f} nodes/s, "
        f"{naive['windows_to_optimal']}/{len(naive['windows'])} windows OPTIMAL\n"
        f"speedup: {micro['speedup_nodes_per_sec']:.1f}x geomean "
        f"({micro['speedup_aggregate']:.1f}x aggregate)"
    )

    # The tentpole's acceptance bar: >= 5x search throughput, and the trail
    # solver proves at least as many windows optimal as the seed solver.
    assert micro["speedup_nodes_per_sec"] >= 5.0
    assert trail["windows_to_optimal"] >= naive["windows_to_optimal"]

    # Table 4 workload: same budgets, no OPTIMAL -> FEASIBLE regression.
    t4 = result["table4_workload"]
    naive_status = {r["model"]: r["status"] for r in t4["naive"]}
    for row in t4["trail"]:
        print(f"table4 {row['model']:12s} trail={row['status']:9s} "
              f"naive={naive_status[row['model']]:9s} {row['nodes_per_sec']:.0f} nodes/s")
        if naive_status[row["model"]] == "OPTIMAL":
            assert row["status"] == "OPTIMAL", (
                f"{row['model']} regressed from OPTIMAL to {row['status']}"
            )
        assert row["status"] in ("OPTIMAL", "FEASIBLE")
