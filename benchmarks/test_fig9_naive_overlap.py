"""Bench: regenerate Figure 9 — FlashMem vs naive overlap strategies."""

from conftest import report, run_once

from repro.experiments import fig9


def test_fig9_naive_overlap(benchmark):
    result = run_once(benchmark, fig9.run)
    report("fig9", result.render())
    assert max(r.always_next_slowdown for r in result.rows) > 1.3
    for row in result.rows:
        assert row.always_next_slowdown >= row.same_next_slowdown * 0.95
