"""Bench: end-to-end compile latency — incremental pipeline vs the pre-PR path.

Written to ``results/BENCH_compile.json`` so future PRs can track the
trajectory:

- **cold_compile** — one full ``FlashMem.compile`` per model (adaptive
  fusion + LC-OPG + artifact plan), wall seconds.
- **incremental_ab** — the headline A/B on GPTN-2.7B at the experiment
  config: the incremental pipeline (window-level solve reuse + fast numpy
  EDF oracle + memoized budgets + count-based windows) against an
  emulation of the pre-PR compile path, with window-reuse hit rates from
  the adaptive-fusion report.

The pre-PR baseline reverts all four compile-path deltas at once:
``SeedBudgets`` restores the unmemoized ``available()``,
``SeedPartitionSolver._windows`` restores the seed's layer-grid window
partition (48-layer grid), ``exact_engine="reference"`` selects the seed
EDF/prover, and ``window_reuse=False`` disables the cache.  Everything
else (CP core, fusion loop, models) is shared, so the ratio isolates this
PR's compile-path work.

Measurement methodology: each timed side runs in a *fresh subprocess*
(interleaved, minimum of N CPU-time samples per side).  The work is
deterministic pure python, so the minimum approximates the uncontended
cost; process isolation keeps one side's allocation history (the baseline
churns through an order of magnitude more objects) and transient
noisy-neighbor stalls on a shared box from skewing the other side.

The acceptance bar for the incremental pipeline is >= 8x on GPTN-2.7B
with >= 60% window reuse: round 1 (solve reuse + fast oracle) measured
~4.1x at ~16% reuse; round 2 (canonical fingerprints + period-aware
windows + bitset CP engine) must at least double that.
"""

import gc
import json
import time

from conftest import RESULTS_DIR, ab_subprocess, emit_record

from repro.gpusim.device import get_device
from repro.graph.models.zoo import load_model
from repro.opg import lcopg
from repro.opg.heuristics import Budgets

COLD_MODELS = ["ResNet50", "ViT", "GPTN-S", "GPTN-2.7B"]
AB_MODEL = "GPTN-2.7B"
DEVICE = "OnePlus 12"

#: Samples per A/B side (interleaved I B I B ...; min is reported).
AB_SAMPLES = 2

SEED_WINDOW_LAYERS = 48


def _experiment_opg(**overrides):
    """The experiment-suite solver budget (deterministic node caps bind,
    not wall-clock) — the regime the reuse cache and fast oracle target."""
    from repro.experiments.common import experiment_opg_config

    return experiment_opg_config(**overrides)


class SeedBudgets(Budgets):
    """Pre-PR budgets: recompute availability on every query (no memo)."""

    def available(self, layer):
        return max(0, min(self.capacity[layer], self.m_peak[layer]))

    def available_range(self, lo, hi):
        return [
            max(0, min(c, m))
            for c, m in zip(self.capacity[lo:hi], self.m_peak[lo:hi])
        ]


class SeedPartitionSolver(lcopg.LcOpgSolver):
    """Pre-PR window partition: fixed 48-layer grid (insertion-sensitive)."""

    def _windows(self, problem):
        windows, current = [], []
        window_end = SEED_WINDOW_LAYERS
        for w in sorted(problem.weights, key=lambda w: (w.consumer_layer, w.name)):
            while w.consumer_layer >= window_end:
                if current:
                    windows.append(current)
                    current = []
                window_end += SEED_WINDOW_LAYERS
            current.append(w)
        if current:
            windows.append(current)
        return windows


def _measure_side(side: str) -> None:
    """Child-process entry: compile GPTN-2.7B once on the given side and
    print a JSON record.  Runs with the collector quiesced; reports both
    wall and CPU time (equal when the box is quiet — the compile path is
    single-threaded)."""
    from repro.capacity.model import analytic_capacity_model
    from repro.fusion.adaptive import AdaptiveFusionPlanner

    if side == "baseline":
        lcopg.Budgets = SeedBudgets
        solver = SeedPartitionSolver(
            _experiment_opg(window_reuse=False), exact_engine="reference"
        )
    else:
        solver = lcopg.LcOpgSolver(_experiment_opg())

    from repro.graph.lowering import eliminate_layout_ops

    graph = eliminate_layout_ops(load_model(AB_MODEL))
    capacity = analytic_capacity_model(get_device(DEVICE))
    planner = AdaptiveFusionPlanner(solver, capacity)
    gc.collect()
    gc.disable()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    _, plan, report = planner.plan(graph, device_name=DEVICE)
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    gc.enable()

    record = {
        "side": side,
        "wall_s": round(wall, 3),
        "cpu_s": round(cpu, 3),
        "status": plan.stats.solver_status,
    }
    if side == "incremental":
        cache = solver.window_cache
        record["window_reuse"] = {
            "windows_total": report.total_windows,
            "windows_reused": report.total_windows_reused,
            "reuse_rate": round(report.window_reuse_rate, 3),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": round(cache.hit_rate, 3),
        }
        record["phases"] = {
            "cp_solve_s": round(plan.stats.cp_solve_s, 3),
            "exact_prover_s": round(plan.stats.exact_prover_s, 3),
            "greedy_s": round(plan.stats.greedy_s, 3),
            "edf_calls": plan.stats.edf_calls,
        }
    emit_record(record)


def _incremental_ab():
    runs = {"incremental": [], "baseline": []}
    for _ in range(AB_SAMPLES):
        for side in ("incremental", "baseline"):
            runs[side].append(
                ab_subprocess("test_compile_latency", "_measure_side", side)
            )
    best_new = min(runs["incremental"], key=lambda r: r["cpu_s"])
    best_old = min(runs["baseline"], key=lambda r: r["cpu_s"])

    opg = _experiment_opg()
    return {
        "model": AB_MODEL,
        "device": DEVICE,
        "opg_config": {
            "time_limit_s": opg.time_limit_s,
            "max_nodes_per_window": opg.max_nodes_per_window,
        },
        "samples_per_side": AB_SAMPLES,
        "pre_pr_s": best_old["cpu_s"],
        "incremental_s": best_new["cpu_s"],
        "speedup": round(best_old["cpu_s"] / best_new["cpu_s"], 2),
        "wall": {
            "pre_pr_s": best_old["wall_s"],
            "incremental_s": best_new["wall_s"],
            "speedup": round(best_old["wall_s"] / best_new["wall_s"], 2),
        },
        "statuses": {
            "pre_pr": best_old["status"],
            "incremental": best_new["status"],
        },
        "window_reuse": best_new["window_reuse"],
        "phases_incremental": best_new["phases"],
    }


def _cold_compiles():
    from repro.core.flashmem import FlashMem, FlashMemConfig

    rows = []
    device = get_device(DEVICE)
    for model in COLD_MODELS:
        fm = FlashMem(FlashMemConfig(opg=_experiment_opg()))
        compiled = fm.compile(load_model(model), device)
        rows.append(
            {
                "model": model,
                "compile_s": round(compiled.compile_s, 3),
                "status": compiled.plan.stats.solver_status,
                "windows_reused": compiled.plan.stats.windows_reused
                if compiled.fusion_report is None
                else compiled.fusion_report.total_windows_reused,
            }
        )
    return rows


def _run_all():
    return {
        "cold_compile": _cold_compiles(),
        "incremental_ab": _incremental_ab(),
    }


def test_compile_latency(benchmark):
    result = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compile.json").write_text(json.dumps(result, indent=2) + "\n")

    for row in result["cold_compile"]:
        print(
            f"cold {row['model']:12s} {row['compile_s']:7.2f}s "
            f"{row['status']:9s} reused={row['windows_reused']}"
        )
    ab = result["incremental_ab"]
    print(
        f"\n{ab['model']} A/B: pre-PR {ab['pre_pr_s']:.2f}s -> "
        f"incremental {ab['incremental_s']:.2f}s = {ab['speedup']:.2f}x cpu "
        f"({ab['wall']['speedup']:.2f}x wall; reuse "
        f"{ab['window_reuse']['windows_reused']}/"
        f"{ab['window_reuse']['windows_total']} windows, "
        f"cache hit rate {ab['window_reuse']['cache_hit_rate']:.0%})"
    )

    # The acceptance bar: >= 8x compile speedup on GPTN-2.7B (round 1's
    # ~4.1x at least doubled), >= 60% window reuse across the fusion loop,
    # and the incremental plan no worse in status.
    assert ab["speedup"] >= 8.0
    assert ab["window_reuse"]["reuse_rate"] >= 0.60
    assert ab["statuses"]["incremental"] in ("OPTIMAL", ab["statuses"]["pre_pr"])
