"""Bench: regenerate Figure 2 — per-operator overlap sensitivity curves."""

from conftest import report, run_once

from repro.experiments import fig2


def test_fig2_overlap_sensitivity(benchmark):
    result = run_once(benchmark, fig2.run)
    report("fig2", result.render())
    t20 = {c.op: c.threshold_20 for c in result.curves}
    assert t20["Softmax"] is not None and t20["LayerNorm"] is not None
    assert t20["Matmul"] is None or t20["Matmul"] > t20["Softmax"]
