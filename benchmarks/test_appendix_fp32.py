"""Bench: appendix — fp32 configuration shows the same trends as fp16."""

from conftest import report, run_once

from repro.experiments import appendix_fp32


def test_appendix_fp32(benchmark):
    result = run_once(benchmark, appendix_fp32.run)
    report("appendix_fp32", result.render())
    for model in {r.model for r in result.rows}:
        fp16 = result.row(model, "fp16")
        fp32 = result.row(model, "fp32")
        assert fp32.speedup > 1.0 and fp16.speedup > 1.0       # trends hold
        assert fp32.mem_reduction > 1.0
        assert fp32.flashmem_mb > fp16.flashmem_mb             # 2x footprints
