#!/usr/bin/env python
"""Dynamic networks: planning an early-exit model (paper §3.2 future work).

An early-exit classifier stops after 4, 8, or 12 transformer blocks
depending on input difficulty.  The dynamic planner solves an overlap plan
per execution path and unifies the preloaded set across paths, so the
resident memory never depends on which branch an input takes.

Run:  python examples/early_exit_dynamic.py
"""

from repro import oneplus_12
from repro.capacity import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.graph.dynamic import early_exit_variants, plan_dynamic, run_dynamic
from repro.opg import LcOpgSolver, OpgConfig
from repro.runtime import FlashMemExecutor


def exit_builder(depth: int):
    b = GraphBuilder(f"early-exit-{depth}")
    seq, dim = 128, 512
    b.embedding(seq, 30_000, dim)
    for _ in range(depth):
        b.transformer_block(seq, dim, 8)
    b.layernorm((seq, dim))
    b.linear(1, dim, 1000)  # exit head
    return b.finish()


def main() -> None:
    device = oneplus_12()
    model = early_exit_variants(
        exit_builder, exits=[4, 8, 12], probabilities=[0.55, 0.30, 0.15], name="early-exit-vit"
    )
    capacity = analytic_capacity_model(device)
    solver = LcOpgSolver(OpgConfig(time_limit_s=3.0, max_nodes_per_window=500))

    dyn_plan = plan_dynamic(model, solver, capacity, device_name=device.name)
    print(f"Unified preload set: {len(dyn_plan.unified_preload)} weights\n")
    result = run_dynamic(model, dyn_plan, FlashMemExecutor(device))

    print(f"{'path':10s} {'prob':>5s} {'latency':>9s} {'avg mem':>8s} {'preload':>8s}")
    for v in model.variants:
        _, run = result.outcomes[v.name]
        plan = dyn_plan.plan_for(v.name)
        print(
            f"{v.name:10s} {v.probability:5.2f} {run.latency_ms:7.0f}ms "
            f"{run.avg_memory_mb:6.0f}MB {plan.preload_ratio * 100:6.1f}%"
        )
    print(
        f"\nExpected latency {result.expected_latency_ms:.0f} ms "
        f"(worst case {result.worst_latency_ms:.0f} ms); "
        f"expected avg memory {result.expected_avg_memory_bytes / 1e6:.0f} MB "
        f"(worst peak {result.worst_peak_memory_bytes / 1e6:.0f} MB)"
    )


if __name__ == "__main__":
    main()
