#!/usr/bin/env python
"""Quickstart: compile and run one model under FlashMem.

Builds ViT from the model zoo, compiles it for the OnePlus 12 (capacity
prediction -> LC-OPG overlap plan -> adaptive fusion -> kernel rewriting),
executes the streamed inference on the simulator, and compares against the
SmartMem preloading baseline.

Run:  python examples/quickstart.py
"""

from repro import FlashMem, FlashMemConfig, load_model, oneplus_12
from repro.runtime import SMARTMEM, PreloadExecutor


def main() -> None:
    device = oneplus_12()
    model = load_model("ViT")
    print(f"Model: {model.summary()}")
    print(f"Device: {device.name} ({device.gpu}, {device.ram_bytes / 1e9:.0f} GB RAM)\n")

    # --- FlashMem: integrated streamed execution -------------------------
    fm = FlashMem(FlashMemConfig.memory_priority())
    compiled = fm.compile(model, device)
    plan = compiled.plan
    print("Overlap plan:")
    print(f"  solver status    : {plan.stats.solver_status}")
    print(f"  preloaded (W)    : {len(plan.preloaded_weights)} weights, "
          f"{plan.preload_bytes / 1e6:.1f} MB ({plan.preload_ratio * 100:.1f}%)")
    print(f"  streamed         : {len(plan.streamed_weights)} weights, "
          f"{plan.streamed_bytes / 1e6:.1f} MB")
    print(f"  fusion           : {len(compiled.graph)} kernels after adaptive fusion")

    result = fm.run(compiled)
    print("\nFlashMem run (integrated init + inference):")
    print(f"  latency          : {result.latency_ms:.0f} ms")
    print(f"  avg / peak memory: {result.avg_memory_mb:.0f} / {result.peak_memory_mb:.0f} MB")
    print(f"  energy           : {result.energy_j:.1f} J at {result.avg_power_w:.1f} W")

    # --- SmartMem baseline: preload everything, then execute -------------
    smem = PreloadExecutor(SMARTMEM, device).run(model)
    print("\nSmartMem baseline (cold start):")
    print(f"  init + exec      : {smem.details['init_ms']:.0f} + "
          f"{smem.details['exec_per_iter_ms']:.0f} ms = {smem.latency_ms:.0f} ms")
    print(f"  avg memory       : {smem.avg_memory_mb:.0f} MB")

    print(f"\nFlashMem speedup : {smem.latency_ms / result.latency_ms:.1f}x")
    print(f"Memory reduction : {smem.avg_memory_bytes / result.avg_memory_bytes:.1f}x")


if __name__ == "__main__":
    main()
