#!/usr/bin/env python
"""Portability: a large model across four phones (paper Figure 10).

GPT-Neo-1.3B needs ~2.8 GB of fp16 weights.  A preloading runtime's
initialization transiently holds the serialized file plus staging copies —
well beyond what 6-8 GB phones give a single app — so SmartMem OOMs on the
Pixel 8 and Mi 6.  FlashMem streams the same model within a few hundred MB
everywhere.

Run:  python examples/portability_check.py
"""

from repro import FlashMem, FlashMemConfig, get_device, load_model
from repro.runtime import SMARTMEM, PreloadExecutor

DEVICES = ["OnePlus 12", "OnePlus 11", "Pixel 8", "Xiaomi Mi 6"]
MODEL = "GPTN-1.3B"


def main() -> None:
    graph = load_model(MODEL)
    fm = FlashMem(FlashMemConfig.memory_priority())
    print(f"{MODEL}: {graph.total_weight_bytes / 1e9:.2f} GB of weights\n")
    print(f"{'device':12s} {'app budget':>11s} | {'SmartMem':>22s} | {'FlashMem':>22s}")
    for name in DEVICES:
        device = get_device(name)
        smem = PreloadExecutor(SMARTMEM, device).run(graph)
        if smem.details.get("oom"):
            smem_txt = f"OOM (peak {smem.peak_memory_mb:.0f} MB)"
        else:
            smem_txt = f"{smem.latency_ms / 1e3:5.1f}s  {smem.avg_memory_mb:5.0f} MB"
        result = fm.compile_and_run(graph, device)
        flash_txt = f"{result.latency_ms / 1e3:5.1f}s  {result.avg_memory_mb:5.0f} MB"
        budget = device.ram_budget_bytes / 1e9
        print(f"{name:12s} {budget:9.1f}GB | {smem_txt:>22s} | {flash_txt:>22s}")

    print(
        "\nFlashMem's streamed execution fits the memory budget on every "
        "device, including those where initialization alone kills SmartMem."
    )


if __name__ == "__main__":
    main()
