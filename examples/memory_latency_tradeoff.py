#!/usr/bin/env python
"""Memory/latency trade-off: sweeping the preload ratio (paper Figure 8).

FlashMem exposes a continuum between "stream everything" (lowest memory,
execution waits on disk) and "preload everything" (fast execution, highest
memory).  The knob is the target preload ratio, which the solver derives
from λ and M_peak; here we drive it directly.

Run:  python examples/memory_latency_tradeoff.py [model]
"""

import sys

from repro import FlashMem, FlashMemConfig, load_model, oneplus_12


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "GPTN-S"
    device = oneplus_12()
    graph = load_model(model_name)
    fm = FlashMem(FlashMemConfig.memory_priority())
    capacity = fm.capacity_model(device)

    print(f"{model_name} on {device.name} — preload ratio sweep\n")
    print(f"{'target':>7s} {'achieved':>9s} {'integrated':>11s} {'exec phase':>11s} "
          f"{'avg mem':>8s} {'peak mem':>9s}")
    for ratio in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        compiled = fm.compile(graph, device, capacity=capacity, target_preload_ratio=ratio)
        result = fm.run(compiled)
        exec_phase = result.latency_ms - result.details["preload_end_ms"]
        print(
            f"{ratio:7.1f} {compiled.preload_ratio:9.2f} "
            f"{result.latency_ms:9.0f}ms {exec_phase:9.0f}ms "
            f"{result.avg_memory_mb:6.0f}MB {result.peak_memory_mb:7.0f}MB"
        )

    print(
        "\nThe paper's observation (§5.4): streaming roughly half the weights "
        "costs negligible total latency versus full preloading while cutting "
        "the resident footprint substantially."
    )


if __name__ == "__main__":
    main()
