#!/usr/bin/env python
"""Bring your own model: build a graph, plan it, inspect the kernels.

Shows the lower-level API surface: :class:`GraphBuilder` for the lowered
operator graph, the LC-OPG solver directly, plan introspection (per-weight
schedules with byte offsets), and the rewritten kernel source the template
engine instantiates (paper §4.4).

Run:  python examples/custom_model.py
"""

from repro import FlashMemConfig, oneplus_12
from repro.capacity import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.kernels import ExecStyle, KernelRewriter
from repro.opg import LcOpgSolver, OpgConfig, build_problem, validate_plan
from repro.runtime import FlashMemExecutor


def build_tiny_assistant():
    """A small speech-command model: audio frontend + transformer stack."""
    b = GraphBuilder("tiny-assistant")
    seq, dim = 64, 512
    b.embedding(seq, 4000, dim)
    b.linear(seq, 80, dim)          # mel-spectrogram projection
    b.gelu((seq, dim))
    for _ in range(6):
        b.transformer_block(seq, dim, 8)
    b.layernorm((seq, dim))
    b.linear(seq, dim, 64)          # command classes
    return b.finish()


def main() -> None:
    device = oneplus_12()
    graph = build_tiny_assistant()
    print(f"Built {graph.summary()}\n")

    # 1. Capacity model + overlap plan.
    capacity = analytic_capacity_model(device)
    config = OpgConfig(m_peak_bytes=64 * 1024 * 1024, chunk_bytes=256 * 1024)
    plan = LcOpgSolver(config).solve(graph, capacity, device_name=device.name)
    errors = validate_plan(plan, build_problem(graph, capacity, config))
    print(f"Plan: {plan.stats.solver_status}, {len(errors)} constraint violations, "
          f"preload ratio {plan.preload_ratio * 100:.1f}%")

    # 2. Inspect one streamed weight's schedule (z_w + segments).
    sched = next(s for s in plan.schedules.values() if s.transforms)
    print(f"\nSchedule for {sched.weight} ({sched.nbytes / 1e6:.2f} MB):")
    print(f"  consumer layer i_w = {sched.consumer_layer}, disk load at z_w = {sched.load_layer}")
    for seg in sched.segments():
        print(f"  layer {seg.layer:4d} transforms bytes [{seg.start_offset}, {seg.end_offset})")

    # 3. The rewritten kernel hosting those segments.
    bundle = KernelRewriter(style=ExecStyle.PIPELINED).rewrite_graph(graph, plan)
    host = bundle.programs[min(sched.transforms)]
    print(f"\nRewritten kernel {host.name} (streams {host.embedded_load_bytes} B):")
    print("\n".join(host.source.splitlines()[:18]))
    print("  ...")

    # 4. Execute.
    result = FlashMemExecutor(device).run(graph, plan, bundle)
    print(f"\nRun: {result.latency_ms:.0f} ms, avg {result.avg_memory_mb:.0f} MB, "
          f"{result.energy_j:.2f} J")


if __name__ == "__main__":
    main()
