#!/usr/bin/env python
"""Multi-model FIFO pipeline: the paper's camera-based AR scenario (§2.2).

An augmented-reality session chains distinct models in quick succession —
object detection (ResNet50), depth analysis (DepthAnything-Small), and an
on-device assistant (GPT-Neo-Small) — each invoked a few times in a random
interleaving.  Preloading runtimes pay a full cold-start per invocation and
spike memory; FlashMem streams every invocation under its per-model overlap
plans.

Run:  python examples/multi_model_pipeline.py
"""

from repro import FlashMem, FlashMemConfig, load_model, oneplus_12
from repro.runtime import MNN, FifoPipeline, PreloadExecutor, fifo_schedule

MODELS = ["ResNet50", "DepA-S", "GPTN-S"]
ITERATIONS = 4


def main() -> None:
    device = oneplus_12()
    graphs = {name: load_model(name) for name in MODELS}
    sequence = fifo_schedule(MODELS, ITERATIONS, seed=11)
    print("Invocation order:", " -> ".join(sequence), "\n")

    # FlashMem: compile each model once (plans are reusable artifacts).
    fm = FlashMem(FlashMemConfig.memory_priority())
    compiled = {name: fm.compile(graphs[name], device) for name in MODELS}
    flash = FifoPipeline(
        "FlashMem", device.name, lambda m: fm.run(compiled[m])
    ).run(sequence)

    # MNN: cold start per invocation (the Figure 6(b) behaviour).
    mnn_exec = PreloadExecutor(MNN, device)
    mnn = FifoPipeline(
        "MNN", device.name, lambda m: mnn_exec.run(graphs[m], check_support=False)
    ).run(sequence)

    print(f"{'Runtime':10s} {'session':>10s} {'peak mem':>10s} {'avg mem':>9s} {'energy':>8s}")
    for session in (flash, mnn):
        print(
            f"{session.runtime:10s} {session.total_ms / 1e3:9.1f}s "
            f"{session.peak_memory_bytes / 1e6:8.0f}MB "
            f"{session.avg_memory_bytes / 1e6:7.0f}MB "
            f"{session.energy_j:7.1f}J"
        )

    print("\nPer-model mean invocation latency (ms):")
    for name in MODELS:
        f = sum(flash.latency_of(name)) / ITERATIONS
        m = sum(mnn.latency_of(name)) / ITERATIONS
        print(f"  {name:9s} FlashMem {f:7.0f}   MNN {m:8.0f}   ({m / f:.1f}x)")

    print(
        f"\nSession speedup {mnn.total_ms / flash.total_ms:.1f}x, "
        f"peak-memory reduction {mnn.peak_memory_bytes / flash.peak_memory_bytes:.1f}x"
    )


if __name__ == "__main__":
    main()
