"""Differential tests: vectorized pricing vs the scalar oracle, exactly.

The vectorized cost tables (``repro.gpusim.pricing``) claim *bitwise*
equality with the scalar :class:`KernelCostModel` / ``KernelProgram.time_ms``
path — not approximate agreement.  These tests sweep every device preset,
every op class present in the model zoo, an efficiency grid, and an
``extra_bytes`` grid, and pin ``==`` on every entry.  They are the formal
contract behind the executors' ``use_cost_tables`` fast path.
"""

import pytest

from repro.gpusim import pricing
from repro.gpusim.device import DEVICE_PRESETS
from repro.gpusim.kernels import KernelCostModel
from repro.graph.models import load_model
from repro.graph.ops import OpClass
from repro.kernels.codegen import BRANCH_DIVERGENCE_PENALTY

EFFICIENCIES = (1.0, 0.7, 0.45, 0.22)
EXTRA_BYTES = (0, 1 << 16, 1 << 20, 37_000_000)


@pytest.fixture(scope="module")
def sample_ops():
    """A few operator specs per op class, drawn from real model graphs."""
    by_class = {}
    for model in ("ResNet50", "ViT", "GPTN-S"):
        graph = load_model(model)
        graph.freeze()
        for node in graph.nodes():
            bucket = by_class.setdefault(node.op_class, [])
            if len(bucket) < 4:
                bucket.append(node.spec)
    # The executors price every class the simulator distinguishes.
    assert set(by_class) >= {OpClass.REUSABLE, OpClass.ELEMENTAL, OpClass.HIERARCHICAL}
    return [op for ops in by_class.values() for op in ops]


@pytest.mark.parametrize("device_name", sorted(DEVICE_PRESETS))
def test_table_matches_scalar_oracle_exactly(device_name, sample_ops):
    """Every (op, efficiency, extra_bytes) cell equals the scalar result."""
    device = DEVICE_PRESETS[device_name]
    cost = KernelCostModel(device)
    rows = []
    expected = []
    for op in sample_ops:
        for eff in EFFICIENCIES:
            for extra in EXTRA_BYTES:
                rows.append(pricing.spec_row(op, extra_bytes=extra, efficiency=eff))
                expected.append(cost.time_with_load_ms(op, extra, efficiency=eff))
    table = pricing.kernel_time_table(device, rows)
    assert len(table) == len(expected)
    for got, want, row in zip(table.tolist(), expected, rows):
        assert got == want, f"row {row}: {got!r} != {want!r}"


@pytest.mark.parametrize("device_name", sorted(DEVICE_PRESETS))
def test_divergent_rows_apply_branch_penalty_exactly(device_name, sample_ops):
    """BRANCHY kernels with embedded loads pay the divergence factor, bitwise."""
    device = DEVICE_PRESETS[device_name]
    cost = KernelCostModel(device)
    extra = 5_000_000
    rows = [pricing.spec_row(op, extra_bytes=extra, divergent=True) for op in sample_ops]
    table = pricing.kernel_time_table(device, rows)
    for got, op in zip(table.tolist(), sample_ops):
        want = cost.time_with_load_ms(op, extra) * (1.0 + BRANCH_DIVERGENCE_PENALTY)
        assert got == want


def test_divergent_without_load_is_base_price(sample_ops):
    """``divergent`` only matters with an embedded load (mirrors codegen)."""
    device = DEVICE_PRESETS["OnePlus 12"]
    cost = KernelCostModel(device)
    rows = [pricing.spec_row(op, extra_bytes=0, divergent=True) for op in sample_ops]
    table = pricing.kernel_time_table(device, rows)
    for got, op in zip(table.tolist(), sample_ops):
        assert got == cost.base_time_ms(op)


def test_table_memoized_and_counted(sample_ops):
    """Identical (device, rows) queries hit the in-process LRU."""
    device = DEVICE_PRESETS["Pixel 8"]
    rows = tuple(pricing.spec_row(op) for op in sample_ops)
    pricing.clear_tables()
    before = pricing.STATS.snapshot()
    first = pricing.kernel_time_table(device, rows)
    second = pricing.kernel_time_table(device, rows)
    delta = pricing.STATS.delta_since(before)
    assert second is first
    assert delta["table_misses"] == 1
    assert delta["table_hits"] == 1
    assert not first.flags.writeable  # shared array is read-only


def test_preload_executor_tables_match_scalar_path():
    """End-to-end: PreloadExecutor prices identically with tables on/off."""
    from repro.gpusim.device import oneplus_12
    from repro.runtime.frameworks import get_profile
    from repro.runtime.preload import PreloadExecutor

    graph = load_model("ViT")
    volatile = {"sim_s", "pricing_hits", "pricing_misses"}
    for framework in ("MNN", "ETorch", "SMem"):
        executor = PreloadExecutor(get_profile(framework), oneplus_12())
        fast = executor.run(graph, iterations=2, check_support=False, use_cost_tables=True)
        slow = executor.run(graph, iterations=2, check_support=False, use_cost_tables=False)
        assert fast.latency_ms == slow.latency_ms
        assert fast.phases == slow.phases
        assert fast.memory.samples == slow.memory.samples
        assert fast.peak_memory_bytes == slow.peak_memory_bytes
        assert fast.avg_memory_bytes == slow.avg_memory_bytes
        assert fast.energy_j == slow.energy_j
        assert fast.avg_power_w == slow.avg_power_w
        fast_details = {k: v for k, v in fast.details.items() if k not in volatile}
        slow_details = {k: v for k, v in slow.details.items() if k not in volatile}
        assert fast_details == slow_details
