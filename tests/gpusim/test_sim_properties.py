"""Property-based tests for simulator primitives (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ops import TensorSpec
from repro.gpusim.memory import MemoryPool
from repro.gpusim.queues import CommandQueue
from repro.gpusim.texture import ROW_ALIGN_TEXELS, TEXEL_DEPTH, texture_bytes, texture_layout
from repro.gpusim.timeline import MemoryTimeline


@given(
    st.lists(
        st.tuples(st.floats(0, 1000), st.integers(0, 10**9)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=80, deadline=None)
def test_timeline_peak_dominates_average(samples):
    t = MemoryTimeline()
    for time_ms, nbytes in sorted(samples):
        t.record(time_ms, nbytes)
    end = max(time for time, _ in samples) + 1.0
    assert t.peak_bytes >= t.average_bytes(0.0, end)
    assert t.peak_bytes >= max(v for _, v in samples)


@given(st.lists(st.floats(0.001, 100), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_queue_events_never_overlap(durations):
    q = CommandQueue("gpu")
    for i, d in enumerate(durations):
        q.submit(f"e{i}", d)
    events = q.events
    for a, b in zip(events, events[1:]):
        assert b.start_ms >= a.end_ms
    assert abs(q.busy_time_ms() - sum(durations)) < 1e-6


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.integers(1, 1000)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_memory_pool_accounting_balances(ops):
    """Random alloc/free interleavings keep in_use = sum of live sizes."""
    pool = MemoryPool("um")
    live = {}
    clock = 0.0
    for name, size in ops:
        clock += 1.0
        if name in live:
            pool.free(name, clock)
            del live[name]
        else:
            pool.allocate(name, size, clock)
            live[name] = size
        assert pool.in_use == sum(live.values())
    assert pool.peak >= pool.in_use


@given(
    st.tuples(
        st.integers(1, 4096),
        st.integers(1, 512),
        st.sampled_from([2, 4]),
    )
)
@settings(max_examples=100, deadline=None)
def test_texture_layout_covers_tensor(dims):
    rows, cols, dtype = dims
    t = TensorSpec((rows, cols), dtype_bytes=dtype)
    layout = texture_layout(t)
    # Enough texels for every scalar, with bounded padding overhead.
    assert layout.texels * TEXEL_DEPTH >= t.numel
    assert texture_bytes(t) >= t.nbytes
    max_padding = (
        (layout.width + ROW_ALIGN_TEXELS) * layout.texel_bytes * layout.height
        + layout.width * layout.texel_bytes
    )
    assert texture_bytes(t) <= t.nbytes + max_padding + layout.texel_bytes * TEXEL_DEPTH * layout.height
