"""Tests for the 2.5D texture model and the kernel cost model."""

import pytest

from repro.gpusim.device import oneplus_12, xiaomi_mi6
from repro.gpusim.kernels import KernelCostModel
from repro.gpusim.texture import (
    MAX_TEXTURE_DIM,
    TEXEL_DEPTH,
    embedded_load_time_ms,
    texture_bytes,
    texture_layout,
    transform_time_ms,
    winograd_expansion,
)
from repro.graph.ops import OpKind, conv2d_spec, elementwise_spec, matmul_spec, softmax_spec


class TestTextureLayout:
    def test_texels_cover_tensor(self):
        from repro.graph.ops import TensorSpec

        t = TensorSpec((1000,))
        layout = texture_layout(t)
        assert layout.texels * TEXEL_DEPTH >= t.numel

    def test_near_square(self):
        from repro.graph.ops import TensorSpec

        layout = texture_layout(TensorSpec((4096, 4096)))
        assert 0.5 <= layout.width / layout.height <= 2.0

    def test_respects_max_dim(self):
        from repro.graph.ops import TensorSpec

        layout = texture_layout(TensorSpec((MAX_TEXTURE_DIM * 64, 64)))
        assert layout.width <= MAX_TEXTURE_DIM
        assert layout.height <= MAX_TEXTURE_DIM

    def test_padded_bytes_at_least_raw(self):
        from repro.graph.ops import TensorSpec

        t = TensorSpec((123, 7))
        assert texture_bytes(t) >= t.nbytes

    def test_padding_bounded(self):
        from repro.graph.ops import TensorSpec

        t = TensorSpec((2048, 2048))
        assert texture_bytes(t) <= t.nbytes * 1.2


class TestWinograd:
    def test_conv3x3_expands(self):
        assert winograd_expansion(OpKind.CONV2D, 3) == pytest.approx(16 / 9)

    def test_conv1x1_no_expansion(self):
        assert winograd_expansion(OpKind.CONV2D, 1) == 1.0

    def test_matmul_no_expansion(self):
        assert winograd_expansion(OpKind.MATMUL) == 1.0


class TestTransformCosts:
    def test_transform_time_scales_with_bytes(self):
        d = oneplus_12()
        t1 = transform_time_ms(1_000_000, d, effective_bw=100_000)
        t2 = transform_time_ms(2_000_000, d, effective_bw=100_000)
        assert t2 > t1

    def test_embedded_path_much_faster_than_legacy(self):
        d = oneplus_12()
        nbytes = 10_000_000
        legacy = transform_time_ms(nbytes, d, effective_bw=100_000)  # 0.1 GB/s
        embedded = embedded_load_time_ms(nbytes, d)
        assert embedded * 10 < legacy

    def test_transform_rejects_bad_bw(self):
        with pytest.raises(ValueError):
            transform_time_ms(100, oneplus_12(), effective_bw=0)


class TestKernelCostModel:
    @pytest.fixture
    def model(self):
        return KernelCostModel(oneplus_12())

    def test_base_time_positive(self, model):
        op = matmul_spec("mm", 64, 512, 512)
        assert model.base_time_ms(op) > 0

    def test_launch_overhead_floor(self, model):
        tiny = elementwise_spec("t", OpKind.ADD, (2,))
        assert model.base_time_ms(tiny) >= model.device.kernel_launch_ms

    def test_efficiency_slows_kernels(self, model):
        op = matmul_spec("mm", 128, 1024, 1024)
        assert model.base_time_ms(op, efficiency=0.1) > model.base_time_ms(op, efficiency=1.0)

    def test_efficiency_must_be_positive(self, model):
        op = matmul_spec("mm", 8, 8, 8)
        with pytest.raises(ValueError):
            model.base_time_ms(op, efficiency=0)

    def test_matmul_compute_bound_has_slack(self, model):
        op = matmul_spec("mm", 256, 2048, 2048)
        assert model.compute_slack_ms(op) > 0

    def test_elementwise_memory_bound_no_slack(self, model):
        op = elementwise_spec("e", OpKind.ADD, (1024, 1024), n_inputs=2)
        assert model.compute_slack_ms(op) == 0

    def test_zero_extra_load_is_base(self, model):
        op = matmul_spec("mm", 64, 512, 512)
        assert model.time_with_load_ms(op, 0) == model.base_time_ms(op)

    def test_load_monotonic(self, model):
        op = matmul_spec("mm", 64, 512, 512)
        times = [model.time_with_load_ms(op, b) for b in (0, 10_000, 1_000_000, 10_000_000)]
        assert times == sorted(times)

    # --- Figure 2 shape assertions -------------------------------------
    def test_matmul_tolerates_equal_inflow(self, model):
        op = matmul_spec("mm", 128, 2048, 2048)
        assert model.slowdown_fraction(op, op.input_bytes) < 0.10

    def test_softmax_hurts_immediately(self, model):
        op = softmax_spec("sm", (16, 128, 128))
        assert model.slowdown_fraction(op, op.input_bytes) > 0.5

    def test_elemental_between(self, model):
        mm = matmul_spec("mm", 128, 2048, 2048)
        sm = softmax_spec("sm", (16, 128, 128))
        add = elementwise_spec("a", OpKind.ADD, (128, 2048), n_inputs=2)
        s_add = model.slowdown_fraction(add, add.input_bytes)
        assert model.slowdown_fraction(mm, mm.input_bytes) < s_add < model.slowdown_fraction(sm, sm.input_bytes)

    def test_hierarchical_capacity_zero_at_zero_threshold(self, model):
        op = softmax_spec("sm", (16, 128, 128))
        assert model.load_capacity_bytes(op, 0.0) == 0

    def test_reusable_capacity_large_at_20pct(self, model):
        op = matmul_spec("mm", 128, 2048, 2048)
        cap = model.load_capacity_bytes(op, 0.20)
        assert cap > op.weight_bytes  # can stream a whole peer weight

    def test_capacity_inverse_consistent(self, model):
        # Streaming exactly the capacity must stay within the threshold.
        op = matmul_spec("mm", 128, 1024, 4096)
        cap = model.load_capacity_bytes(op, 0.20)
        assert model.slowdown_fraction(op, cap) <= 0.20 + 1e-6

    def test_capacity_grows_with_threshold(self, model):
        op = elementwise_spec("a", OpKind.GELU, (256, 4096))
        assert model.load_capacity_bytes(op, 3.0) > model.load_capacity_bytes(op, 0.2)

    def test_negative_threshold_rejected(self, model):
        op = matmul_spec("mm", 8, 8, 8)
        with pytest.raises(ValueError):
            model.load_capacity_bytes(op, -0.1)

    def test_slower_device_slower_kernels(self):
        op = matmul_spec("mm", 128, 1024, 1024)
        fast = KernelCostModel(oneplus_12()).base_time_ms(op)
        slow = KernelCostModel(xiaomi_mi6()).base_time_ms(op)
        assert slow > fast * 2
