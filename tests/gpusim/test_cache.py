"""Tests for the texture cache model (Z-order swizzling, path comparison)."""

import pytest

from repro.gpusim.cache import (
    AccessPattern,
    CacheConfig,
    SetAssociativeCache,
    _morton,
    compare_paths,
)


class TestMorton:
    def test_origin(self):
        assert _morton(0, 0) == 0

    def test_interleaving(self):
        assert _morton(1, 0) == 1
        assert _morton(0, 1) == 2
        assert _morton(1, 1) == 3
        assert _morton(2, 0) == 4
        assert _morton(3, 3) == 15

    def test_bijective_on_grid(self):
        codes = {_morton(x, y) for x in range(32) for y in range(32)}
        assert len(codes) == 32 * 32

    def test_locality_both_axes(self):
        # Neighbours in x AND y stay close in the Z-order code.
        base = _morton(10, 10)
        assert abs(_morton(11, 10) - base) <= 3
        assert abs(_morton(10, 11) - base) <= 3


class TestSetAssociativeCache:
    def test_repeat_hits(self):
        cache = SetAssociativeCache(CacheConfig())
        cache.access(0)
        assert cache.access(0)
        assert cache.hit_rate == 0.5

    def test_same_line_hits(self):
        cache = SetAssociativeCache(CacheConfig(line_bytes=64))
        cache.access(0)
        assert cache.access(63)
        assert not cache.access(64)

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, ways=2)  # 2 sets
        cache = SetAssociativeCache(config)
        # Three lines mapping to the same set: stride = line * num_sets.
        stride = config.line_bytes * config.num_sets
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0 (LRU)
        assert not cache.access(0)

    def test_capacity_working_set(self):
        config = CacheConfig(size_bytes=1024, line_bytes=64, ways=4)
        cache = SetAssociativeCache(config)
        for _ in range(4):
            for addr in range(0, 1024, 64):  # fits exactly
                cache.access(addr)
        assert cache.hit_rate > 0.7

    def test_empty_hit_rate(self):
        assert SetAssociativeCache(CacheConfig()).hit_rate == 0.0


class TestPathComparison:
    def test_texture_wins_on_strided_access(self):
        c = compare_paths(AccessPattern.COLUMN_STRIDED)
        assert c.texture_hit_rate > c.linear_hit_rate
        assert c.speedup > 2.0

    def test_speedups_in_romou_range(self):
        for pattern in AccessPattern:
            c = compare_paths(pattern)
            assert 1.0 <= c.speedup <= 6.0

    def test_hit_rates_are_probabilities(self):
        for pattern in AccessPattern:
            c = compare_paths(pattern)
            assert 0.0 <= c.texture_hit_rate <= 1.0
            assert 0.0 <= c.linear_hit_rate <= 1.0

    def test_bigger_texture_stresses_cache(self):
        small = compare_paths(AccessPattern.COLUMN_STRIDED, width=64, height=64)
        large = compare_paths(AccessPattern.COLUMN_STRIDED, width=512, height=512)
        assert large.texture_hit_rate <= small.texture_hit_rate + 0.05
