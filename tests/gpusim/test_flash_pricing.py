"""Differential tests: vectorized flash-attention pricing is exact.

``pricing._compute_flash_table`` is an operation-for-operation mirror of
the scalar oracle ``FlashAttentionKernel.time_ms`` — same division order,
same association — so every entry must be *bitwise* equal to the
corresponding scalar call, across both fetch classes (resident texture /
unified reads vs disk-streamed tiles) and arbitrary efficiency divisors.
"""

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.kernels import FlashAttentionKernel
from repro.gpusim.pricing import flash_attention_time_table, flash_row

DEVICES = ("OnePlus 12", "Pixel 8", "Xiaomi Mi 6")

#: (heads, head_dim, tile_tokens) shapes spanning the decode zoo.
SHAPES = [(12, 64, 256), (16, 128, 256), (20, 128, 128), (40, 128, 512)]

KV_TOKENS = (1, 17, 255, 256, 257, 1024, 8192)
RESIDENT = (None, 0, 1, 3, 64)
EFFICIENCIES = (1.0, 0.62, 0.31)


@pytest.mark.parametrize("device_name", DEVICES)
def test_flash_table_matches_scalar_oracle_bitwise(device_name):
    device = get_device(device_name)
    cases = [
        (FlashAttentionKernel(heads=h, head_dim=d, tile_tokens=t), kv, res, tex, eff)
        for h, d, t in SHAPES
        for kv in KV_TOKENS
        for res in RESIDENT
        for tex in (True, False)
        for eff in EFFICIENCIES
    ]
    rows = [
        flash_row(k, kv, resident_tiles=res, texture=tex, efficiency=eff)
        for k, kv, res, tex, eff in cases
    ]
    table = flash_attention_time_table(device, rows)
    for i, (kernel, kv, res, tex, eff) in enumerate(cases):
        scalar = kernel.time_ms(
            device, kv, resident_tiles=res, texture=tex, efficiency=eff
        )
        assert table[i] == scalar, (
            f"row {i} diverged on {device_name}: "
            f"kernel={kernel} kv={kv} resident={res} texture={tex} eff={eff}: "
            f"table {table[i]!r} != scalar {scalar!r}"
        )


def test_flash_table_memoized():
    device = get_device("OnePlus 12")
    kernel = FlashAttentionKernel(heads=12, head_dim=64, tile_tokens=256)
    rows = [flash_row(kernel, kv) for kv in (256, 512)]
    first = flash_attention_time_table(device, rows)
    second = flash_attention_time_table(device, rows)
    assert first is second  # LRU hit returns the cached (read-only) array
    assert not first.flags.writeable


def test_tile_plateau():
    """All tiles are priced full, so cost depends only on the tile count —
    the piecewise-constant property the decode extrapolation relies on."""
    device = get_device("OnePlus 12")
    kernel = FlashAttentionKernel(heads=12, head_dim=64, tile_tokens=256)
    within = [kernel.time_ms(device, kv, resident_tiles=2) for kv in (257, 300, 512)]
    assert len(set(within)) == 1
    assert kernel.time_ms(device, 513, resident_tiles=2) > within[0]
