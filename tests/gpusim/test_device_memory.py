"""Tests for device profiles and memory pools."""

import pytest

from repro.gpusim.device import (
    DEVICE_PRESETS,
    THROTTLE_STATES,
    PowerRails,
    get_device,
    oneplus_12,
    pixel_8,
    xiaomi_mi6,
)
from repro.gpusim.memory import MemoryPool, OutOfMemoryError


class TestDeviceProfiles:
    def test_four_presets(self):
        assert len(DEVICE_PRESETS) == 4

    def test_lookup_by_name(self):
        assert get_device("OnePlus 12").gpu == "Adreno 750"
        with pytest.raises(KeyError):
            get_device("iPhone 27")

    def test_flagship_fastest(self):
        op12 = oneplus_12()
        mi6 = xiaomi_mi6()
        assert op12.fp16_gflops > mi6.fp16_gflops
        assert op12.disk_bw > mi6.disk_bw
        assert op12.um_bw > mi6.um_bw

    def test_ram_budget_below_total(self):
        for dev in DEVICE_PRESETS.values():
            assert 0 < dev.ram_budget_bytes < dev.ram_bytes

    def test_pixel8_has_less_ram_than_oneplus(self):
        assert pixel_8().ram_bytes < oneplus_12().ram_bytes

    def test_compute_time_linear_in_flops(self):
        d = oneplus_12()
        assert d.compute_time_ms(2_000_000) == pytest.approx(2 * d.compute_time_ms(1_000_000))

    def test_scaled_override(self):
        d = oneplus_12().scaled(ram_bytes=1024)
        assert d.ram_bytes == 1024
        assert d.gpu == "Adreno 750"  # other fields preserved


class TestThrottled:
    def test_factor_scales_clock_bound_rates(self):
        base = oneplus_12()
        hot = base.throttled(0.7)
        assert hot.fp16_gflops == pytest.approx(0.7 * base.fp16_gflops)
        assert hot.um_bw == pytest.approx(0.7 * base.um_bw)
        assert hot.tm_upload_bw == pytest.approx(0.7 * base.tm_upload_bw)

    def test_flash_path_and_overheads_untouched(self):
        base = pixel_8()
        hot = base.throttled("hot")
        assert hot.disk_bw == base.disk_bw
        assert hot.disk_latency_ms == base.disk_latency_ms
        assert hot.kernel_launch_ms == base.kernel_launch_ms
        assert hot.gpu_setup_ms == base.gpu_setup_ms
        assert hot.name == base.name

    def test_named_states(self):
        base = oneplus_12()
        for state, factor in THROTTLE_STATES.items():
            dev = base.throttled(state)
            assert dev.fp16_gflops == pytest.approx(factor * base.fp16_gflops)
        # Sustained states are ordered below burst.
        assert THROTTLE_STATES["critical"] < THROTTLE_STATES["hot"] < THROTTLE_STATES["warm"]

    def test_nominal_is_identity(self):
        base = oneplus_12()
        assert base.throttled(1.0) is base
        assert base.throttled("nominal") is base

    def test_rails_override(self):
        rails = PowerRails(idle_w=0.5, io_w=2.0, compute_w=3.0, overlap_w=4.0)
        dev = oneplus_12().throttled("warm", rails=rails)
        assert dev.power is rails

    def test_invalid_inputs(self):
        base = oneplus_12()
        with pytest.raises(KeyError):
            base.throttled("melting")
        with pytest.raises(ValueError):
            base.throttled(0.0)
        with pytest.raises(ValueError):
            base.throttled(1.5)


class TestDeviceAliases:
    @pytest.mark.parametrize(
        "alias",
        ["oneplus12", "ONEPLUS 12", "one-plus_12", "OnePlus12", "  OnePlus 12  "],
    )
    def test_normalized_aliases_resolve(self, alias):
        assert get_device(alias) is get_device("OnePlus 12")

    def test_pixel_aliases(self):
        assert get_device("pixel8").gpu == get_device("Pixel 8").gpu
        assert get_device("PIXEL-8").gpu == get_device("Pixel 8").gpu

    def test_exact_names_still_work(self):
        for name in DEVICE_PRESETS:
            assert get_device(name) is DEVICE_PRESETS[name]

    def test_unknown_device_lists_presets(self):
        with pytest.raises(KeyError) as exc:
            get_device("iphone27")
        message = str(exc.value)
        for name in DEVICE_PRESETS:
            assert name in message


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        p = MemoryPool("um")
        p.allocate("w", 100, 0.0)
        assert p.in_use == 100
        assert p.free("w", 1.0) == 100
        assert p.in_use == 0

    def test_peak_tracks_high_water(self):
        p = MemoryPool("um")
        p.allocate("a", 100, 0.0)
        p.allocate("b", 50, 1.0)
        p.free("a", 2.0)
        assert p.peak == 150
        assert p.in_use == 50

    def test_double_alloc_rejected(self):
        p = MemoryPool("um")
        p.allocate("a", 10, 0.0)
        with pytest.raises(ValueError):
            p.allocate("a", 10, 1.0)

    def test_free_unknown_rejected(self):
        p = MemoryPool("um")
        with pytest.raises(ValueError):
            p.free("ghost", 0.0)

    def test_budget_enforced(self):
        p = MemoryPool("um", budget_bytes=100)
        p.allocate("a", 80, 0.0)
        with pytest.raises(OutOfMemoryError):
            p.allocate("b", 30, 1.0)

    def test_oom_carries_diagnostics(self):
        p = MemoryPool("um", budget_bytes=100)
        p.allocate("a", 80, 0.0)
        with pytest.raises(OutOfMemoryError) as exc:
            p.allocate("b", 30, 1.0)
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.budget == 100

    def test_free_all(self):
        p = MemoryPool("um")
        for i in range(5):
            p.allocate(f"w{i}", 10, float(i))
        p.free_all(10.0)
        assert p.in_use == 0
        assert not p.live_names()

    def test_average_over_window(self):
        p = MemoryPool("um")
        p.allocate("a", 100, 0.0)
        p.free("a", 5.0)
        # 100 bytes for 5 ms out of a 10 ms window -> average 50.
        assert p.average_over(0.0, 10.0) == pytest.approx(50.0)

    def test_average_constant_usage(self):
        p = MemoryPool("um")
        p.allocate("a", 64, 0.0)
        assert p.average_over(1.0, 9.0) == pytest.approx(64.0)

    def test_negative_alloc_rejected(self):
        p = MemoryPool("um")
        with pytest.raises(ValueError):
            p.allocate("a", -1, 0.0)
