"""Tests for device profiles and memory pools."""

import pytest

from repro.gpusim.device import DEVICE_PRESETS, get_device, oneplus_12, pixel_8, xiaomi_mi6
from repro.gpusim.memory import MemoryPool, OutOfMemoryError


class TestDeviceProfiles:
    def test_four_presets(self):
        assert len(DEVICE_PRESETS) == 4

    def test_lookup_by_name(self):
        assert get_device("OnePlus 12").gpu == "Adreno 750"
        with pytest.raises(KeyError):
            get_device("iPhone 27")

    def test_flagship_fastest(self):
        op12 = oneplus_12()
        mi6 = xiaomi_mi6()
        assert op12.fp16_gflops > mi6.fp16_gflops
        assert op12.disk_bw > mi6.disk_bw
        assert op12.um_bw > mi6.um_bw

    def test_ram_budget_below_total(self):
        for dev in DEVICE_PRESETS.values():
            assert 0 < dev.ram_budget_bytes < dev.ram_bytes

    def test_pixel8_has_less_ram_than_oneplus(self):
        assert pixel_8().ram_bytes < oneplus_12().ram_bytes

    def test_compute_time_linear_in_flops(self):
        d = oneplus_12()
        assert d.compute_time_ms(2_000_000) == pytest.approx(2 * d.compute_time_ms(1_000_000))

    def test_scaled_override(self):
        d = oneplus_12().scaled(ram_bytes=1024)
        assert d.ram_bytes == 1024
        assert d.gpu == "Adreno 750"  # other fields preserved


class TestDeviceAliases:
    @pytest.mark.parametrize(
        "alias",
        ["oneplus12", "ONEPLUS 12", "one-plus_12", "OnePlus12", "  OnePlus 12  "],
    )
    def test_normalized_aliases_resolve(self, alias):
        assert get_device(alias) is get_device("OnePlus 12")

    def test_pixel_aliases(self):
        assert get_device("pixel8").gpu == get_device("Pixel 8").gpu
        assert get_device("PIXEL-8").gpu == get_device("Pixel 8").gpu

    def test_exact_names_still_work(self):
        for name in DEVICE_PRESETS:
            assert get_device(name) is DEVICE_PRESETS[name]

    def test_unknown_device_lists_presets(self):
        with pytest.raises(KeyError) as exc:
            get_device("iphone27")
        message = str(exc.value)
        for name in DEVICE_PRESETS:
            assert name in message


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        p = MemoryPool("um")
        p.allocate("w", 100, 0.0)
        assert p.in_use == 100
        assert p.free("w", 1.0) == 100
        assert p.in_use == 0

    def test_peak_tracks_high_water(self):
        p = MemoryPool("um")
        p.allocate("a", 100, 0.0)
        p.allocate("b", 50, 1.0)
        p.free("a", 2.0)
        assert p.peak == 150
        assert p.in_use == 50

    def test_double_alloc_rejected(self):
        p = MemoryPool("um")
        p.allocate("a", 10, 0.0)
        with pytest.raises(ValueError):
            p.allocate("a", 10, 1.0)

    def test_free_unknown_rejected(self):
        p = MemoryPool("um")
        with pytest.raises(ValueError):
            p.free("ghost", 0.0)

    def test_budget_enforced(self):
        p = MemoryPool("um", budget_bytes=100)
        p.allocate("a", 80, 0.0)
        with pytest.raises(OutOfMemoryError):
            p.allocate("b", 30, 1.0)

    def test_oom_carries_diagnostics(self):
        p = MemoryPool("um", budget_bytes=100)
        p.allocate("a", 80, 0.0)
        with pytest.raises(OutOfMemoryError) as exc:
            p.allocate("b", 30, 1.0)
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.budget == 100

    def test_free_all(self):
        p = MemoryPool("um")
        for i in range(5):
            p.allocate(f"w{i}", 10, float(i))
        p.free_all(10.0)
        assert p.in_use == 0
        assert not p.live_names()

    def test_average_over_window(self):
        p = MemoryPool("um")
        p.allocate("a", 100, 0.0)
        p.free("a", 5.0)
        # 100 bytes for 5 ms out of a 10 ms window -> average 50.
        assert p.average_over(0.0, 10.0) == pytest.approx(50.0)

    def test_average_constant_usage(self):
        p = MemoryPool("um")
        p.allocate("a", 64, 0.0)
        assert p.average_over(1.0, 9.0) == pytest.approx(64.0)

    def test_negative_alloc_rejected(self):
        p = MemoryPool("um")
        with pytest.raises(ValueError):
            p.allocate("a", -1, 0.0)
