"""Tests for queues, timeline accounting, the energy model, and Simulation."""

import pytest

from repro.gpusim.device import oneplus_12
from repro.gpusim.energy import measure_energy
from repro.gpusim.engine import Simulation
from repro.gpusim.queues import CommandQueue, DualQueue
from repro.gpusim.timeline import MemoryTimeline, Phases, geo_mean


class TestCommandQueue:
    def test_serial_ordering(self):
        q = CommandQueue("gpu")
        e1 = q.submit("a", 10.0)
        e2 = q.submit("b", 5.0)
        assert e1.end_ms == 10.0
        assert e2.start_ms == 10.0
        assert q.free_at == 15.0

    def test_not_before_constraint(self):
        q = CommandQueue("gpu")
        e = q.submit("a", 5.0, not_before=20.0)
        assert e.start_ms == 20.0

    def test_negative_duration_rejected(self):
        q = CommandQueue("gpu")
        with pytest.raises(ValueError):
            q.submit("a", -1.0)

    def test_busy_and_idle_time(self):
        q = CommandQueue("gpu")
        q.submit("a", 10.0)
        q.submit("b", 5.0, not_before=20.0)
        assert q.busy_time_ms() == 15.0
        assert q.idle_time_ms() == 10.0

    def test_busy_time_by_kind(self):
        q = CommandQueue("gpu")
        q.submit("a", 10.0, kind="compute")
        q.submit("b", 4.0, kind="transform")
        assert q.busy_time_ms(kind="compute") == 10.0
        assert q.busy_time_ms(kind="transform") == 4.0

    def test_advance_to(self):
        q = CommandQueue("gpu")
        q.advance_to(50.0)
        assert q.submit("a", 1.0).start_ms == 50.0


class TestDualQueue:
    def test_makespan(self):
        dq = DualQueue()
        dq.io.submit("load", 100.0)
        dq.gpu.submit("kern", 30.0)
        assert dq.makespan_ms == 100.0

    def test_all_events_sorted(self):
        dq = DualQueue()
        dq.gpu.submit("k1", 5.0)
        dq.io.submit("l1", 2.0)
        events = dq.all_events()
        assert [e.start_ms for e in events] == sorted(e.start_ms for e in events)


class TestMemoryTimeline:
    def test_peak(self):
        t = MemoryTimeline()
        t.record(1.0, 100)
        t.record(2.0, 300)
        t.record(3.0, 50)
        assert t.peak_bytes == 300

    def test_usage_at(self):
        t = MemoryTimeline()
        t.record(1.0, 100)
        t.record(5.0, 200)
        assert t.usage_at(0.5) == 0
        assert t.usage_at(3.0) == 100
        assert t.usage_at(5.0) == 200

    def test_average_step_function(self):
        t = MemoryTimeline()
        t.record(0.0, 100)
        t.record(5.0, 0)
        assert t.average_bytes(0.0, 10.0) == pytest.approx(50.0)

    def test_out_of_order_insertion(self):
        t = MemoryTimeline()
        t.record(5.0, 100)
        t.record(2.0, 50)  # late insertion
        assert t.usage_at(3.0) == 50

    def test_series_resolution(self):
        t = MemoryTimeline()
        t.record(0.0, 10)
        t.record(100.0, 20)
        series = t.series(resolution_ms=25.0, end_ms=100.0)
        assert len(series) == 5
        assert series[0][1] == 10

    def test_negative_memory_rejected(self):
        t = MemoryTimeline()
        with pytest.raises(ValueError):
            t.record(0.0, -5)


class TestPhases:
    def test_init_and_total(self):
        p = Phases(setup=100, load=200, transform=300, execute=50)
        assert p.init == 600
        assert p.total == 650


class TestEnergy:
    def test_overlap_detected(self):
        dq = DualQueue()
        dq.io.submit("load", 100.0)
        dq.gpu.submit("kern", 100.0)
        report = measure_energy(dq, oneplus_12())
        assert report.overlap_ms == pytest.approx(100.0)
        assert report.io_only_ms == 0.0

    def test_serial_phases_no_overlap(self):
        dq = DualQueue()
        dq.io.submit("load", 50.0)
        dq.gpu.submit("kern", 50.0, not_before=50.0)
        report = measure_energy(dq, oneplus_12())
        assert report.overlap_ms == 0.0
        assert report.io_only_ms == pytest.approx(50.0)
        assert report.compute_only_ms == pytest.approx(50.0)

    def test_energy_scales_with_time(self):
        d = oneplus_12()
        short, long_ = DualQueue(), DualQueue()
        short.gpu.submit("k", 100.0)
        long_.gpu.submit("k", 1000.0)
        assert measure_energy(long_, d).energy_j > 5 * measure_energy(short, d).energy_j

    def test_overlap_power_higher_than_compute(self):
        d = oneplus_12()
        serial, overlap = DualQueue(), DualQueue()
        serial.gpu.submit("k", 100.0)
        overlap.gpu.submit("k", 100.0)
        overlap.io.submit("l", 100.0)
        assert (
            measure_energy(overlap, d).avg_power_w > measure_energy(serial, d).avg_power_w
        )

    def test_idle_tail_counted(self):
        dq = DualQueue()
        dq.gpu.submit("k", 10.0)
        report = measure_energy(dq, oneplus_12(), end_ms=110.0)
        assert report.idle_ms == pytest.approx(100.0)


class TestSimulation:
    def test_alloc_roundtrip_and_timeline(self):
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("w", 1000, 0.0)
        sim.alloc_tm("w.tex", 1200, 1.0)
        assert sim.total_in_use == 2200
        sim.free_um("w", 2.0)
        assert sim.total_in_use == 1200
        assert sim.build_timeline().peak_bytes == 2200

    def test_oom_flag_set(self):
        dev = oneplus_12().scaled(ram_bytes=1000)
        sim = Simulation(dev, model="m", runtime="r")
        sim.alloc_um("big", 10_000, 0.0)
        assert sim.oom is not None

    def test_timeline_memoized_until_new_delta(self):
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("w", 1000, 0.0)
        first = sim.build_timeline()
        # oom probes and finish reuse the integrated timeline ...
        assert sim.build_timeline() is first
        assert sim.oom is None
        assert sim.finish().memory is first
        # ... and any new delta invalidates the memo.
        sim.alloc_um("w2", 500, 1.0)
        rebuilt = sim.build_timeline()
        assert rebuilt is not first
        assert rebuilt.peak_bytes == 1500

    def test_finish_builds_result(self):
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.queues.gpu.submit("k", 42.0)
        sim.alloc_um("w", 500, 0.0)
        result = sim.finish(details={"x": 1.0})
        assert result.latency_ms == 42.0
        assert result.model == "m"
        assert result.details["x"] == 1.0
        assert result.energy_j > 0

    def test_geo_mean(self):
        assert geo_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geo_mean([]) == 0.0


class TestTimelineTieBreaking:
    """The frees-before-allocs rule and its ``after_allocs`` escape hatch."""

    def test_same_instant_exchange_does_not_double_count(self):
        # A staging copy freed at the instant its texture copy appears is an
        # exchange: peak must be max(sizes), not their sum.
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("staging", 100, 0.0)
        sim.free_um("staging", 10.0)
        sim.alloc_tm("tex", 80, 10.0)
        assert sim.build_timeline().peak_bytes == 100

    def test_tie_rule_is_submission_order_independent(self):
        # Recording the alloc before the free at the same time must not
        # change the integrated peak (the pre-rule behavior depended on it).
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("staging", 100, 0.0)
        sim.alloc_tm("tex", 80, 10.0)  # delta logged before the free
        sim.free_um("staging", 10.0)
        assert sim.build_timeline().peak_bytes == 100

    def test_after_allocs_free_preserves_transient(self):
        # A mapped model file coexists with the last tensor copied out of it
        # (a genuine double-residency transient, Table 1): the escape hatch
        # integrates the free after the same-instant allocation.
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("model_file", 100, 0.0)
        sim.alloc_um("last_tensor", 60, 10.0)
        sim.free_um("model_file", 10.0, after_allocs=True)
        assert sim.build_timeline().peak_bytes == 160

    def test_timeline_still_chronological(self):
        sim = Simulation(oneplus_12(), model="m", runtime="r")
        sim.alloc_um("b", 50, 5.0)
        sim.alloc_um("a", 100, 0.0)
        sim.free_um("a", 5.0)
        times = [t for t, _ in sim.build_timeline().samples]
        assert times == sorted(times)
        assert sim.build_timeline().peak_bytes == 100


class TestIdleClamp:
    def test_advance_to_counts_as_idle(self):
        q = CommandQueue("gpu")
        q.submit("a", 10.0)
        q.advance_to(50.0)
        assert q.idle_time_ms() == 40.0

    def test_idle_never_negative(self):
        # Accumulator drift (or a replayed clock) must clamp at zero rather
        # than report negative idle time.
        q = CommandQueue("gpu")
        q.submit("a", 10.0)
        free_at, busy_total, by_kind = q.clock_state()
        q.sync_clock(free_at, busy_total + 1e-9, by_kind)
        assert q.idle_time_ms() == 0.0
