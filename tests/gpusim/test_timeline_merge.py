"""Property tests: columnar session merge ≡ the seed per-``record`` loop.

The seed ``FifoPipeline.run`` stitched sessions with a per-sample loop::

    for t, v in run.memory.samples:
        merged.record(clock + t, v)
    merged.record(end, 0)

For non-overlapping sessions supplied in start order, the numpy merge
(:func:`merge_sessions`) must reproduce that loop sample-for-sample —
same times (bit-identical float adds), same values, same order at shared
instants (teardown frees land before the next session's allocations).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.timeline import (
    MemoryTimeline,
    merge_session_columns,
    merge_sessions,
    session_deltas,
)


def _seed_merge(timelines, offsets, ends):
    """The pre-columnar merge loop, verbatim."""
    merged = MemoryTimeline()
    for tl, off, end in zip(timelines, offsets, ends):
        for t, v in tl.samples:
            merged.record(off + t, v)
        merged.record(end, 0)
    return merged


def _columnar_merge(timelines, offsets, ends):
    return merge_sessions(
        [
            (off, *session_deltas(tl), end)
            for tl, off, end in zip(timelines, offsets, ends)
        ]
    )


# Per session: a list of (time_gap, value) record events — a zero gap makes a
# same-instant tie — plus the idle gap before the session and the teardown
# tail after its last sample.  Zero idle gap makes sessions touch, putting
# one session's teardown and the next session's first samples at the same
# instant.
_EVENTS = st.lists(
    st.tuples(st.floats(0, 50), st.integers(0, 10**9)),
    min_size=1,
    max_size=20,
)
_SESSIONS = st.lists(
    st.tuples(_EVENTS, st.floats(0, 20), st.floats(0, 20)),
    min_size=1,
    max_size=6,
)


def _build(spec):
    timelines, offsets, ends = [], [], []
    clock = 0.0
    for events, idle_gap, tail in spec:
        tl = MemoryTimeline()
        t = 0.0
        for gap, value in events:
            t += gap
            tl.record(t, value)
        off = clock + idle_gap
        end = off + t + tail
        timelines.append(tl)
        offsets.append(off)
        ends.append(end)
        clock = end
    return timelines, offsets, ends


@given(_SESSIONS)
@settings(max_examples=120, deadline=None)
def test_columnar_merge_matches_seed_loop(spec):
    timelines, offsets, ends = _build(spec)
    expected = _seed_merge(timelines, offsets, ends)
    merged = _columnar_merge(timelines, offsets, ends)
    assert merged.samples == expected.samples


def test_touching_sessions_free_before_alloc_tie():
    # Session A ends at t=10 exactly when session B records its first
    # allocation: the merged timeline must free A before allocating B.
    a = MemoryTimeline()
    a.record(0.0, 100)
    b = MemoryTimeline()
    b.record(0.0, 70)
    merged = _columnar_merge([a, b], [0.0, 10.0], [10.0, 20.0])
    at_ten = [v for t, v in merged.samples if t == 10.0]
    assert at_ten == [0, 0, 70]  # teardown, B's initial zero, B's alloc
    assert merged.peak_bytes == 100


def test_overlapping_sessions_sum():
    a = MemoryTimeline()
    a.record(0.0, 100)
    b = MemoryTimeline()
    b.record(0.0, 70)
    merged = _columnar_merge([a, b], [0.0, 5.0], [10.0, 20.0])
    assert merged.usage_at(7.0) == 170
    assert merged.usage_at(10.0) == 70  # A torn down, B still resident
    assert merged.usage_at(20.0) == 0
    assert merged.peak_bytes == 170


def test_negative_total_rejected():
    tl = MemoryTimeline()
    tl.record(0.0, 100)
    times, deltas = session_deltas(tl)
    with pytest.raises(ValueError):
        # A bogus extra free below zero.
        merge_session_columns(
            [(0.0, times, np.append(deltas, np.int64(-200)), 10.0)]
        )


def test_session_deltas_round_trip():
    tl = MemoryTimeline()
    for t, v in [(1.0, 10), (2.0, 35), (2.0, 5), (7.0, 0)]:
        tl.record(t, v)
    times, deltas = session_deltas(tl)
    assert np.cumsum(deltas).tolist() == [v for _, v in tl.samples]
    assert times.tolist() == [t for t, _ in tl.samples]
