"""Property-based (hypothesis) coverage for window-reuse invariants.

The deterministic tests in ``test_window_reuse`` pin specific cases; these
randomize over the same invariants the canonical fingerprint must hold:

- **identity is positional** — renumbering every chunk owner (renaming the
  weights, which is what fusion splits do to downstream node ids) never
  changes the key;
- **coordinates are relative** — shifting a window by a constant layer
  offset, with the budget arrays phase-shifted by the same offset, never
  changes the key (and the recorded base moves by exactly that offset);
- **budgets are keyed where they matter** — consuming capacity at a layer
  inside the candidate union always changes the key; consuming outside it
  never does;
- **patching replays are exact** — a warm solver re-solving after an
  upstream structure change (grown graph / different window partition /
  an adaptive-fusion split sequence) produces schedules byte-identical to
  a cold ``window_reuse=False`` solve.

Example counts are kept small (solves are real) and ``deadline=None``
because single-core CI boxes make per-example wall-clock meaningless.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.capacity.model import analytic_capacity_model
from repro.fusion.adaptive import AdaptiveFusionPlanner
from repro.graph.builder import GraphBuilder
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.models.zoo import load_model
from repro.gpusim.device import get_device, oneplus_12
from repro.opg.heuristics import Budgets
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig, WeightInfo

FAST = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024)

#: Layer-space size for synthetic windows; budgets arrays are padded past
#: this so phase-shifted lookups stay in range.
LAYERS = 40
MAX_SHIFT = 8


def _w(name, chunks, consumer, candidates):
    return WeightInfo(
        name=name,
        nbytes=chunks * 100,
        consumer_layer=consumer,
        total_chunks=chunks,
        candidates=list(candidates),
    )


@st.composite
def window_specs(draw, max_weights=4):
    """Raw (chunks, consumer, lo, hi) tuples — name/offset applied later."""
    n = draw(st.integers(1, max_weights))
    specs = []
    for _ in range(n):
        chunks = draw(st.integers(1, 5))
        consumer = draw(st.integers(6, LAYERS - 2))
        lo = draw(st.integers(1, consumer - 1))
        hi = draw(st.integers(lo + 1, consumer))
        specs.append((chunks, consumer, lo, hi))
    return specs


def _build(specs, *, offset=0, name_salt=""):
    return [
        _w(f"w{i}{name_salt}", chunks, consumer + offset,
           range(lo + offset, hi + offset))
        for i, (chunks, consumer, lo, hi) in enumerate(specs)
    ]


def _candidate_union(specs):
    layers = set()
    for _, _, lo, hi in specs:
        layers.update(range(lo, hi))
    return sorted(layers)


budget_levels = st.lists(
    st.integers(0, 12), min_size=LAYERS + MAX_SHIFT, max_size=LAYERS + MAX_SHIFT
)


class TestFingerprintProperties:
    @settings(max_examples=30, deadline=None)
    @given(specs=window_specs(), salt=st.integers(0, 10**6))
    def test_rename_invariance(self, specs, salt):
        """Chunk-owner renumbering (weight renaming) never changes the key."""
        solver = LcOpgSolver(FAST)
        budgets = Budgets([3] * LAYERS, [10] * LAYERS)
        key1, _ = solver._window_fingerprint(_build(specs), budgets, set())
        key2, _ = solver._window_fingerprint(
            _build(specs, name_salt=f"_r{salt}"), budgets, set()
        )
        assert key1 == key2

    @settings(max_examples=30, deadline=None)
    @given(
        specs=window_specs(),
        caps=budget_levels,
        peaks=budget_levels,
        delta=st.integers(0, MAX_SHIFT),
    )
    def test_budget_phase_shift_invariance(self, specs, caps, peaks, delta):
        """A constant layer shift, with the budget slice shifted in phase,
        hits the same key; the recorded base moves by exactly the shift."""
        solver = LcOpgSolver(FAST)
        budgets1 = Budgets(caps, peaks)
        budgets2 = Budgets([0] * delta + caps, [0] * delta + peaks)
        key1, base1 = solver._window_fingerprint(_build(specs), budgets1, set())
        key2, base2 = solver._window_fingerprint(
            _build(specs, offset=delta), budgets2, set()
        )
        assert key1 == key2
        assert base2[0] - base1[0] == delta

    @settings(max_examples=30, deadline=None)
    @given(specs=window_specs(), data=st.data())
    def test_budget_drift_keyed_at_candidate_layers(self, specs, data):
        """Capacity drift inside the candidate union always misses; drift
        at any layer outside it always hits."""
        solver = LcOpgSolver(FAST)
        clean = Budgets([3] * LAYERS, [10] * LAYERS)
        key, _ = solver._window_fingerprint(_build(specs), clean, set())
        union = _candidate_union(specs)

        inside = data.draw(st.sampled_from(union), label="drift layer (inside)")
        drifted = Budgets([3] * LAYERS, [10] * LAYERS)
        drifted.consume(inside, 1)
        assert solver._window_fingerprint(_build(specs), drifted, set())[0] != key

        outside = [l for l in range(LAYERS) if l not in union]
        where = data.draw(st.sampled_from(outside), label="drift layer (outside)")
        unrelated = Budgets([3] * LAYERS, [10] * LAYERS)
        unrelated.consume(where, 1)
        assert solver._window_fingerprint(_build(specs), unrelated, set())[0] == key


def _model(blocks):
    b = GraphBuilder(f"prop-{blocks}")
    b.embedding(16, 500, 128)
    for _ in range(blocks):
        b.transformer_block(16, 128, 4)
    return b.finish()


class TestPatchingProperties:
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        blocks=st.integers(2, 4),
        extra=st.integers(1, 2),
        window_weights=st.sampled_from([6, 8, 12]),
    )
    def test_patch_after_structure_growth_matches_fresh(
        self, blocks, extra, window_weights
    ):
        """Warm solver re-solving a grown graph (upstream insertion — the
        window-level effect of a fusion split) must equal a cold solve."""
        cfg = dataclasses.replace(FAST, window_weights=window_weights)
        capacity = analytic_capacity_model(oneplus_12())
        warm = LcOpgSolver(cfg)
        warm.solve(_model(blocks), capacity)
        patched = warm.solve(_model(blocks + extra), capacity)
        cold = LcOpgSolver(dataclasses.replace(cfg, window_reuse=False)).solve(
            _model(blocks + extra), capacity
        )
        assert patched.schedules == cold.schedules
        assert patched.stats.solver_status == cold.stats.solver_status

    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        model=st.sampled_from(["ResNet50", "ViT", "GPTN-S"]),
        device=st.sampled_from(["OnePlus 12", "Pixel 8"]),
        max_iterations=st.integers(2, 4),
    )
    def test_random_fusion_split_plan_identical(self, model, device, max_iterations):
        """Through the real adaptive-fusion loop (random split sequences via
        randomized iteration budgets), reuse-on plans == from-scratch plans."""
        graph = eliminate_layout_ops(load_model(model))
        cap = analytic_capacity_model(get_device(device))

        def plan(config):
            planner = AdaptiveFusionPlanner(
                LcOpgSolver(config), cap, max_iterations=max_iterations
            )
            return planner.plan(graph, device_name=device)

        fused_on, plan_on, report_on = plan(FAST)
        fused_off, plan_off, report_off = plan(
            dataclasses.replace(FAST, window_reuse=False)
        )
        assert plan_on.schedules == plan_off.schedules
        assert [n.name for n in fused_on.nodes()] == [n.name for n in fused_off.nodes()]
        assert report_on.iterations == report_off.iterations
