"""Tests for the exact window prover (EDF feasibility + release search)."""

import pytest

from repro.opg.exact import edf_feasible, prove_window
from repro.opg.heuristics import Budgets
from repro.opg.problem import WeightInfo


def _w(name, chunks, consumer, candidates):
    return WeightInfo(
        name=name,
        nbytes=chunks * 100,
        consumer_layer=consumer,
        total_chunks=chunks,
        candidates=list(candidates),
    )


class TestEdfFeasible:
    def test_single_weight_fits(self):
        budgets = Budgets([2] * 10, [10] * 10)
        w = _w("a", 3, 8, range(4, 8))
        packed = edf_feasible([w], {"a": 4}, budgets)
        assert packed is not None
        assert sum(packed["a"].values()) == 3

    def test_release_respected(self):
        budgets = Budgets([10] * 10, [10] * 10)
        w = _w("a", 2, 8, range(2, 8))
        packed = edf_feasible([w], {"a": 6}, budgets)
        assert packed is not None
        assert min(packed["a"]) >= 6

    def test_overcommitted_returns_none(self):
        budgets = Budgets([1] * 10, [10] * 10)
        ws = [_w("a", 5, 8, range(4, 8)), _w("b", 5, 8, range(4, 8))]
        assert edf_feasible(ws, {"a": 4, "b": 4}, budgets) is None

    def test_earliest_deadline_priority_enables_tight_fit(self):
        # b's window is a strict subset of a's: only EDF-ordering fits both.
        budgets = Budgets([1] * 10, [10] * 10)
        a = _w("a", 2, 9, range(3, 9))
        b = _w("b", 2, 6, range(4, 6))
        packed = edf_feasible([a, b], {"a": 3, "b": 4}, budgets)
        assert packed is not None
        assert set(packed["b"]) <= {4, 5}

    def test_budgets_untouched(self):
        budgets = Budgets([2] * 10, [10] * 10)
        before = list(budgets.capacity)
        edf_feasible([_w("a", 3, 8, range(4, 8))], {"a": 4}, budgets)
        assert budgets.capacity == before

    def test_empty_weights(self):
        assert edf_feasible([], {}, Budgets([1], [1])) == {}


class TestProveWindow:
    def test_proves_uncontended_optimum(self):
        # One weight, plenty of capacity: optimum = latest layer, distance 1.
        budgets = Budgets([10] * 10, [10] * 10)
        w = _w("a", 3, 8, range(2, 8))
        incumbent = {"a": {7: 3}}
        best, proven = prove_window([w], budgets, incumbent, time_limit_s=2.0)
        assert proven
        assert min(best["a"]) == 7

    def test_improves_bad_incumbent(self):
        budgets = Budgets([10] * 10, [10] * 10)
        w = _w("a", 2, 8, range(2, 8))
        bad = {"a": {2: 2}}  # distance 6, optimum is 1
        best, proven = prove_window([w], budgets, bad, time_limit_s=2.0)
        assert proven
        assert min(best["a"]) == 7

    def test_contended_pair_optimal(self):
        # Two weights share layer 7's single slot: optimum total distance 3.
        budgets = Budgets([0, 0, 0, 0, 0, 1, 1, 1], [10] * 8)
        a = _w("a", 1, 8, range(5, 8))
        b = _w("b", 1, 8, range(5, 8))
        incumbent = {"a": {7: 1}, "b": {6: 1}}
        best, proven = prove_window([a, b], budgets, incumbent, time_limit_s=2.0)
        assert proven
        total = sum(8 - min(best[n]) for n in ("a", "b"))
        assert total == 3

    def test_node_limit_returns_unproven(self):
        budgets = Budgets([1] * 40, [10] * 40)
        ws = [_w(f"w{i}", 2, 30, range(5, 30)) for i in range(8)]
        releases = {w.name: 5 for w in ws}
        incumbent = edf_feasible(ws, releases, budgets)
        assert incumbent is not None
        _, proven = prove_window(ws, budgets, incumbent, time_limit_s=10.0, node_limit=5)
        assert not proven

    def test_result_respects_budgets(self):
        budgets = Budgets([2] * 12, [10] * 12)
        ws = [_w(f"w{i}", 3, 10, range(4, 10)) for i in range(3)]
        releases = {w.name: 4 for w in ws}
        incumbent = edf_feasible(ws, releases, budgets)
        best, _ = prove_window(ws, budgets, incumbent, time_limit_s=2.0)
        used = {}
        for assignment in best.values():
            for l, c in assignment.items():
                used[l] = used.get(l, 0) + c
        for l, c in used.items():
            assert c <= budgets.available(l)
