"""Window-level solve reuse: fingerprints, replay fidelity, cache policy.

The reuse invariant under test: a replayed window must leave the solver in
*exactly* the state a fresh ``_solve_window`` would — same schedules, same
statuses, same budget consumption, same deferred hand-offs — so plans are
byte-identical with the cache on or off (the cross-layer equivalence test
lives in ``tests/fusion/test_adaptive_reuse_equivalence``).
"""

import dataclasses

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.heuristics import Budgets
from repro.opg.lcopg import LcOpgSolver, WindowCache, _WindowEntry
from repro.opg.problem import OpgConfig, WeightInfo, build_problem

FAST = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024)


def _model(name="reuse-test", blocks=3):
    b = GraphBuilder(name)
    b.embedding(16, 500, 128)
    for _ in range(blocks):
        b.transformer_block(16, 128, 4)
    return b.finish()


def _w(name, chunks, consumer, candidates):
    return WeightInfo(
        name=name,
        nbytes=chunks * 100,
        consumer_layer=consumer,
        total_chunks=chunks,
        candidates=list(candidates),
    )


class TestFingerprint:
    def test_translation_invariant(self):
        """The same window shifted by a constant layer offset must hit."""
        solver = LcOpgSolver(FAST)
        budgets = Budgets([3] * 40, [10] * 40)
        window = [_w("a", 2, 10, range(6, 10)), _w("b", 3, 12, range(8, 12))]
        shifted = [_w("a", 2, 17, range(13, 17)), _w("b", 3, 19, range(15, 19))]
        key1, base1 = solver._window_fingerprint(window, budgets, set())
        key2, base2 = solver._window_fingerprint(shifted, budgets, set())
        assert key1 == key2
        assert base2[0] - base1[0] == 7

    def test_rename_invariant(self):
        """Weight identity is positional: renaming every weight (as fusion
        splits do to downstream node ids) must still hit."""
        solver = LcOpgSolver(FAST)
        budgets = Budgets([3] * 40, [10] * 40)
        window = [_w("a", 2, 10, range(6, 10)), _w("b", 3, 12, range(8, 12))]
        renamed = [_w("p", 2, 10, range(6, 10)), _w("q", 3, 12, range(8, 12))]
        key1, _ = solver._window_fingerprint(window, budgets, set())
        key2, _ = solver._window_fingerprint(renamed, budgets, set())
        assert key1 == key2

    def test_budget_drift_misses(self):
        """Different availability over the window span must not match."""
        solver = LcOpgSolver(FAST)
        window = [_w("a", 2, 10, range(6, 10))]
        clean = Budgets([3] * 40, [10] * 40)
        drifted = Budgets([3] * 40, [10] * 40)
        drifted.consume(7, 1)
        key1, _ = solver._window_fingerprint(window, clean, set())
        key2, _ = solver._window_fingerprint(window, drifted, set())
        assert key1 != key2

    def test_soft_round_quota_not_in_key(self):
        """Burning a quota round (capacities unchanged) must NOT invalidate
        the key — only quota-*sensitive* entries are pinned to the quota
        state they were recorded under (see ``_WindowEntry``), which is what
        stops one early soft round from cascading misses downstream."""
        solver = LcOpgSolver(FAST)
        window = [_w("a", 2, 10, range(6, 10))]
        fresh = Budgets([3] * 40, [10] * 40)
        relaxed = Budgets([3] * 40, [10] * 40)
        relaxed.scale_capacity(1.0)  # burns the round, capacities unchanged
        key1, _ = solver._window_fingerprint(window, fresh, set())
        key2, _ = solver._window_fingerprint(window, relaxed, set())
        assert key1 == key2

    def test_budget_keyed_at_candidate_layers_only(self):
        """Capacity drift at layers no window weight can touch must hit:
        the canonical key reads budgets only at the candidate-layer union."""
        solver = LcOpgSolver(FAST)
        window = [_w("a", 2, 10, range(6, 10))]
        clean = Budgets([3] * 40, [10] * 40)
        drifted = Budgets([3] * 40, [10] * 40)
        drifted.consume(15, 2)  # outside the union {6..9}
        key1, _ = solver._window_fingerprint(window, clean, set())
        key2, _ = solver._window_fingerprint(window, drifted, set())
        assert key1 == key2

    def test_forced_preload_membership_in_key(self):
        solver = LcOpgSolver(FAST)
        budgets = Budgets([3] * 40, [10] * 40)
        window = [_w("a", 2, 10, range(6, 10))]
        key1, _ = solver._window_fingerprint(window, budgets, set())
        key2, _ = solver._window_fingerprint(window, budgets, {"a"})
        assert key1 != key2

    def test_config_and_engine_in_key(self):
        budgets = Budgets([3] * 40, [10] * 40)
        window = [_w("a", 2, 10, range(6, 10))]
        base = LcOpgSolver(FAST)._window_fingerprint(window, budgets, set())[0]
        other_cfg = LcOpgSolver(dataclasses.replace(FAST, lam=0.5))
        other_engine = LcOpgSolver(FAST, exact_engine="reference")
        assert other_cfg._window_fingerprint(window, budgets, set())[0] != base
        assert other_engine._window_fingerprint(window, budgets, set())[0] != base

    def test_time_limit_excluded_from_key(self):
        """Wall-clock budget must not invalidate entries (node budgets bind)."""
        budgets = Budgets([3] * 40, [10] * 40)
        window = [_w("a", 2, 10, range(6, 10))]
        a = LcOpgSolver(FAST)._window_fingerprint(window, budgets, set())[0]
        b = LcOpgSolver(dataclasses.replace(FAST, time_limit_s=99.0))._window_fingerprint(
            window, budgets, set()
        )[0]
        assert a == b


class TestReplayEquivalence:
    def test_second_solve_replays_and_reproduces_plan(self):
        """Same graph solved twice through one solver: full reuse, same plan."""
        graph = _model()
        capacity = analytic_capacity_model(oneplus_12())
        solver = LcOpgSolver(FAST)
        plan1 = solver.solve(graph, capacity, device_name="OnePlus 12")
        assert plan1.stats.windows_reused == 0
        plan2 = solver.solve(graph, capacity, device_name="OnePlus 12")
        assert plan2.stats.windows_reused == plan2.stats.windows > 0
        assert plan2.schedules == plan1.schedules
        assert plan2.stats.solver_status == plan1.stats.solver_status
        assert plan2.stats.soft_threshold_rounds == plan1.stats.soft_threshold_rounds
        assert plan2.stats.incremental_preloads == plan1.stats.incremental_preloads

    def test_reuse_disabled_by_config(self):
        graph = _model()
        capacity = analytic_capacity_model(oneplus_12())
        solver = LcOpgSolver(dataclasses.replace(FAST, window_reuse=False))
        assert solver.window_cache is None
        plan1 = solver.solve(graph, capacity)
        plan2 = solver.solve(graph, capacity)
        assert plan2.stats.windows_reused == 0
        assert plan2.schedules == plan1.schedules

    def test_replay_consumes_identical_budgets(self):
        """After a replayed solve, a from-scratch solver must still agree —
        i.e. replay left no budget skew behind."""
        graph = _model(blocks=4)
        capacity = analytic_capacity_model(oneplus_12())
        warm = LcOpgSolver(FAST)
        warm.solve(graph, capacity)
        replayed = warm.solve(graph, capacity)
        cold = LcOpgSolver(dataclasses.replace(FAST, window_reuse=False)).solve(graph, capacity)
        assert replayed.schedules == cold.schedules


class TestWindowCache:
    def test_counters_and_eviction(self):
        cache = WindowCache(max_entries=2)
        entry = _WindowEntry(
            status=None, soft_rounds=0, heuristic_windows=0,
            assignments={}, deferred=(), consumption=(),
        )
        assert cache.get("a") is None
        cache.put("a", entry)
        cache.put("b", entry)
        assert cache.get("a") is entry
        cache.put("c", entry)  # evicts FIFO head "a"
        assert cache.get("a") is None
        assert len(cache) == 2
        assert cache.hits == 1 and cache.misses == 2
        assert 0.0 < cache.hit_rate < 1.0

    def test_soft_sensitive_entries_pinned_to_quota_state(self):
        """Quota-sensitive entries replay only at the quota state they were
        recorded under; insensitive ones replay at any state."""
        cache = WindowCache()
        sensitive = _WindowEntry(
            status=None, soft_rounds=1, heuristic_windows=0,
            assignments={}, deferred=(), consumption=(),
            soft_sensitive=True, soft_rounds_left=2,
        )
        cache.store("k", sensitive)
        assert cache.lookup("k", 2) is sensitive
        assert cache.lookup("k", 1) is None
        insensitive = _WindowEntry(
            status=None, soft_rounds=0, heuristic_windows=0,
            assignments={}, deferred=(), consumption=(),
        )
        cache.store("k2", insensitive)
        assert cache.lookup("k2", 2) is insensitive
        assert cache.lookup("k2", 0) is insensitive
        assert cache.hits == 3 and cache.misses == 1


class TestBudgetsMemo:
    def test_available_tracks_mutations(self):
        b = Budgets([4, 2, 0], [3, 10, 10])
        assert [b.available(i) for i in range(3)] == [3, 2, 0]
        b.consume(0, 2)
        assert b.available(0) == 1
        b.release(0, 1)
        assert b.available(0) == 2
        assert b.scale_capacity(2.0)
        # capacity doubled: [4, 4(released math), ...] min m_peak still caps
        assert b.available(0) == min(b.capacity[0], b.m_peak[0])
        assert b.available_range(0, 3) == [b.available(i) for i in range(3)]

    def test_available_range_returns_copy(self):
        b = Budgets([4, 2], [3, 10])
        view = b.available_range(0, 2)
        view[0] = 99
        assert b.available(0) == 3

    def test_consume_overflow_raises(self):
        import pytest

        b = Budgets([1], [1])
        with pytest.raises(ValueError):
            b.consume(0, 2)


class TestWindowPartition:
    def test_insertion_invariance(self):
        """Inserting layers upstream must not change downstream membership."""
        graph = _model(blocks=4)
        capacity = analytic_capacity_model(oneplus_12())
        cfg = dataclasses.replace(FAST, window_weights=8)
        solver = LcOpgSolver(cfg)
        problem = build_problem(graph, capacity, cfg)
        windows = solver._windows(problem)
        assert all(len(w) <= 8 for w in windows)
        # Shift every weight's coordinates by a constant (what an upstream
        # fusion split does to downstream windows): same membership.
        for w in problem.weights:
            w.consumer_layer += 5
            w.candidates = [c + 5 for c in w.candidates]
        shifted = solver._windows(problem)
        assert [[w.name for w in win] for win in shifted] == [
            [w.name for w in win] for win in windows
        ]
