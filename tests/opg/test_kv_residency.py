"""Property tests for the KV residency plan (hypothesis).

Invariants of :class:`repro.opg.plan.KvResidencyPlan`:

- the resident footprint is monotone non-decreasing in cached tokens
  (growing prompts never *shrink* the planned cache);
- it never exceeds the planned byte budget, at any context length;
- it plateaus exactly at the tile cap (the flat-memory story);
- breakpoints partition a decode run into segments whose tile count — and
  therefore per-token cost — is constant, always starting at token 0.

Plus end-to-end: plans produced by ``FlashMem.compile`` on real decode
graphs respect the device RAM budget and the configured KV fraction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opg.plan import KvResidencyPlan


@st.composite
def kv_plans(draw):
    tile_tokens = draw(st.sampled_from([64, 128, 256, 512]))
    caches = draw(st.integers(1, 80))
    # Per-token bytes across all caches: layers * 2 (K+V) * heads * dim * dtype.
    token_bytes = caches * 2 * draw(st.sampled_from([12 * 64, 16 * 128, 40 * 128])) * 2
    resident_tiles = draw(st.integers(1, 64))
    tile_bytes_all = token_bytes * tile_tokens
    # The planner guarantees budget >= one full tile across all caches.
    budget = draw(st.integers(resident_tiles * tile_bytes_all,
                              2 * resident_tiles * tile_bytes_all))
    return KvResidencyPlan(
        tile_tokens=tile_tokens,
        budget_bytes=budget,
        resident_tiles=resident_tiles,
        texture=draw(st.booleans()),
        token_bytes=token_bytes,
        caches=caches,
    )


@given(kv_plans(), st.integers(1, 20_000))
@settings(max_examples=200, deadline=None)
def test_footprint_monotone_and_budgeted(plan, kv_tokens):
    here = plan.resident_bytes_at(kv_tokens)
    assert here <= plan.budget_bytes
    assert here >= 0
    if kv_tokens > 1:
        assert here >= plan.resident_bytes_at(kv_tokens - 1)
    # Once the cap is reached the footprint is flat, however long the prompt.
    cap_tokens = plan.resident_tiles * plan.tile_tokens
    assert plan.resident_bytes_at(cap_tokens) == plan.resident_bytes_at(cap_tokens + 9999)


@given(kv_plans(), st.integers(0, 4096), st.integers(1, 512))
@settings(max_examples=200, deadline=None)
def test_breakpoints_partition_the_run(plan, context_len, tokens):
    breaks = plan.breakpoints(context_len, tokens)
    assert breaks and breaks[0] == 0
    assert breaks == sorted(set(breaks))
    assert all(0 <= b < tokens for b in breaks)
    # Within each segment the tile count (hence per-token cost) is constant.
    for i, start in enumerate(breaks):
        end = breaks[i + 1] if i + 1 < len(breaks) else tokens
        tiles = {plan.tiles_at(context_len + t + 1) for t in range(start, end)}
        assert len(tiles) == 1


@given(kv_plans())
@settings(max_examples=100, deadline=None)
def test_growing_capped_transition_is_a_tile_boundary(plan):
    """The cap lands on a tile boundary, so ``growing`` never flips inside
    a segment — the precondition for decode trace replay."""
    cap_tokens = plan.resident_tiles * plan.tile_tokens
    assert cap_tokens % plan.tile_tokens == 0
    assert plan.resident_bytes_at(cap_tokens) == cap_tokens * plan.token_bytes


def test_compiled_plans_respect_device_budget():
    from repro.core.config import FlashMemConfig
    from repro.core.flashmem import FlashMem
    from repro.gpusim.device import get_device
    from repro.graph.models import load_decode_model
    from repro.opg.problem import OpgConfig

    config = FlashMemConfig(opg=OpgConfig(time_limit_s=1.0, max_nodes_per_window=300))
    fm = FlashMem(config)
    for device_name in ("OnePlus 12", "Pixel 8"):
        device = get_device(device_name)
        compiled = fm.compile(load_decode_model("GPTN-S", context_len=1024), device)
        kv_plan = compiled.plan.kv_plan
        assert kv_plan is not None
        tile_bytes_all = kv_plan.token_bytes * kv_plan.tile_tokens
        assert kv_plan.budget_bytes <= max(
            int(device.ram_budget_bytes * config.opg.kv_budget_fraction), tile_bytes_all
        )
        assert kv_plan.resident_tiles >= 1
        assert kv_plan.resident_bytes_at(10**9) <= kv_plan.budget_bytes
