"""Tier-1 perf guardrail for the trail-based CP solver.

Asserts fixed, seeded OPG windows solve to OPTIMAL within a *node* budget
(~8× the current need), with a long wall-clock limit so only the node
budget can bind — catching search/propagation regressions (more nodes to
optimality) deterministically, without wall-clock flakiness.

If this fails after a solver change, the change made the search weaker:
compare ``results/BENCH_solver.json`` before/after via
``benchmarks/test_solver_throughput.py``.
"""

from repro.opg.cpsat.bench import build_window_model
from repro.opg.cpsat.model import SolveStatus
from repro.opg.cpsat.search import CpSolver

#: (n_weights, n_layers, cap, seed, node_budget, known_optimal_objective).
#: Current trail solver needs ~1.2k and ~6.6k nodes respectively.
GUARDRAIL_WINDOWS = [
    (6, 10, 6, 11, 10_000, 12),
    (8, 14, 6, 23, 50_000, 12),  # the mid-size window
]


def test_fixed_windows_reach_optimal_within_node_budget():
    for n_weights, n_layers, cap, seed, node_budget, optimal in GUARDRAIL_WINDOWS:
        model = build_window_model(n_weights, n_layers, cap, seed)
        sol = CpSolver(time_limit_s=120.0, max_nodes=node_budget).solve(model)
        label = f"window({n_weights}w,{n_layers}l,seed={seed})"
        assert sol.status is SolveStatus.OPTIMAL, (
            f"{label}: {sol.status.value} after {sol.nodes_explored} nodes "
            f"(budget {node_budget}) — solver regressed"
        )
        assert sol.objective == optimal, f"{label}: objective {sol.objective} != {optimal}"
        assert model.validate_assignment(sol.values) == []
        assert sol.nodes_explored < node_budget


def test_propagation_work_stays_incremental():
    # The whole point of the dirty queue: per-node constraint evaluations
    # must stay far below models' full constraint count.  The 8-weight
    # window has ~60 constraints; a full-sweep engine re-evaluates all of
    # them (several passes) per node, the incremental one only a fraction.
    model = build_window_model(8, 14, 6, 23)
    n_constraints = model.num_constraints
    sol = CpSolver(time_limit_s=120.0, max_nodes=50_000).solve(model)
    evals_per_node = (sol.stats.linear_props + sol.stats.implication_props) / sol.stats.nodes
    assert evals_per_node < n_constraints, (
        f"{evals_per_node:.1f} constraint evaluations/node vs {n_constraints} constraints: "
        "propagation is sweeping, not incremental"
    )
