"""Randomized differential test: fast EDF oracle / prover ≡ seed reference.

Safety net for the numpy weight-major EDF rewrite and the incremental
release-vector prover: on seeded random windows, the fast engine must
produce *exactly* the packing of the preserved seed implementation
(``edf_feasible_reference``), and ``prove_window`` under generous limits
must agree with ``prove_window_reference`` on both the proof verdict and
the objective value — the same pattern ``test_cpsat_differential`` uses
for the CP core.
"""

import random

from repro.opg.exact import (
    edf_feasible,
    edf_feasible_reference,
    prove_window,
    prove_window_reference,
    _objective,
)
from repro.opg.heuristics import Budgets
from repro.opg.problem import WeightInfo

N_INSTANCES = 150


def _random_window(rng: random.Random):
    """A seeded (weights, releases, budgets) window instance.

    Mix of loose, tight, and over-committed windows: capacities in [0, 4]
    (zeros give holes in the availability), 2-7 weights with interval
    candidate sets of width <= 8.
    """
    n_layers = rng.randint(6, 18)
    capacity = [rng.randint(0, 4) for _ in range(n_layers)]
    m_peak = [rng.randint(2, 6) for _ in range(n_layers)]
    budgets = Budgets(capacity, m_peak)
    weights = []
    releases = {}
    for i in range(rng.randint(2, 7)):
        consumer = rng.randint(2, n_layers - 1)
        lo = max(0, consumer - rng.randint(1, 8))
        candidates = list(range(lo, consumer))
        weights.append(
            WeightInfo(
                name=f"w{i}",
                nbytes=100,
                consumer_layer=consumer,
                total_chunks=rng.randint(0, 6),
                candidates=candidates,
            )
        )
        releases[f"w{i}"] = rng.choice(candidates)
    return weights, releases, budgets


class TestEdfOracleDifferential:
    def test_fast_matches_reference_packing_exactly(self):
        rng = random.Random(0xEDF)
        agree_feasible = agree_infeasible = 0
        for _ in range(N_INSTANCES):
            weights, releases, budgets = _random_window(rng)
            fast = edf_feasible(weights, releases, budgets)
            ref = edf_feasible_reference(weights, releases, budgets)
            # Not just same feasibility — the identical assignment dicts.
            assert fast == ref
            if ref is None:
                agree_infeasible += 1
            else:
                agree_feasible += 1
        # The generator must actually exercise both outcomes.
        assert agree_feasible > 10
        assert agree_infeasible > 10

    def test_budgets_untouched_by_both_engines(self):
        rng = random.Random(7)
        weights, releases, budgets = _random_window(rng)
        before = (list(budgets.capacity), list(budgets.m_peak))
        edf_feasible(weights, releases, budgets)
        edf_feasible_reference(weights, releases, budgets)
        assert (budgets.capacity, budgets.m_peak) == before


def _incumbent_for(weights, budgets):
    """A valid (usually suboptimal) incumbent: every weight packed alone
    earliest-first from its earliest candidate."""
    releases = {}
    for w in weights:
        avail = [l for l in w.candidates if budgets.available(l) > 0]
        if not avail:
            return None
        releases[w.name] = min(avail)
    return edf_feasible_reference(weights, releases, budgets)


class TestProverDifferential:
    def test_fast_prover_agrees_with_reference(self):
        rng = random.Random(0xBEEF)
        proofs = 0
        for _ in range(60):
            weights, _, budgets = _random_window(rng)
            # Drop zero-chunk weights: they carry no objective weight and
            # the incumbent helper cannot anchor a min() layer for them.
            weights = [w for w in weights if w.total_chunks > 0]
            if not weights:
                continue
            incumbent = _incumbent_for(weights, budgets)
            if incumbent is None or any(not a for a in incumbent.values()):
                continue
            fast, fast_proven = prove_window(
                weights, budgets, incumbent, time_limit_s=10.0, node_limit=500_000
            )
            ref, ref_proven = prove_window_reference(
                weights, budgets, incumbent, time_limit_s=10.0, node_limit=500_000
            )
            # Generous limits: both searches run to exhaustion, so the
            # verdicts and the proven-optimal objective must coincide.
            assert fast_proven == ref_proven
            if fast_proven:
                assert _objective(weights, fast) == _objective(weights, ref)
                proofs += 1
        assert proofs > 10

    def test_fast_engine_selected_through_prove_window(self):
        rng = random.Random(3)
        weights, _, budgets = _random_window(rng)
        weights = [w for w in weights if w.total_chunks > 0]
        incumbent = _incumbent_for(weights, budgets)
        if incumbent is None or any(not a for a in incumbent.values()):
            return
        via_engine = prove_window(
            weights, budgets, incumbent, time_limit_s=5.0, node_limit=100_000, engine="reference"
        )
        direct = prove_window_reference(
            weights, budgets, incumbent, time_limit_s=5.0, node_limit=100_000
        )
        assert via_engine[1] == direct[1]
