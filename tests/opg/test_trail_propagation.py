"""Unit tests for the trail-based incremental propagation core."""

import random

from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.propagation import (
    Domains,
    IncrementalPropagator,
    Trail,
    objective_lower_bound,
    propagate,
)
from repro.opg.cpsat.search import CpSolver
from repro.opg.cpsat.stats import PropagationStats


class TestTrail:
    def test_set_and_undo_restores_bounds(self):
        d = Domains([0, 0, 0], [9, 9, 9])
        trail = Trail(d)
        mark = trail.mark()
        trail.set_lo(0, 4)
        trail.set_hi(1, 5)
        trail.set_lo(0, 6)  # second tightening of the same var
        assert (d.lo[0], d.hi[1]) == (6, 5)
        trail.undo_to(mark)
        assert d.lo == [0, 0, 0] and d.hi == [9, 9, 9]
        assert len(trail) == 0

    def test_nested_marks_unwind_partially(self):
        d = Domains([0], [9])
        trail = Trail(d)
        trail.set_lo(0, 2)
        inner = trail.mark()
        trail.set_lo(0, 7)
        trail.undo_to(inner)
        assert d.lo[0] == 2

    def test_incremental_objective_lower_bound(self):
        # minimise 2*a - 3*b + 1: bound moves with lo(a) and hi(b).
        d = Domains([0, 0], [10, 10])
        trail = Trail(d, obj_coef={0: 2, 1: -3}, obj_offset=1)
        assert trail.lower_bound == 1 + 0 - 30
        mark = trail.mark()
        trail.set_lo(0, 4)   # +8
        trail.set_hi(1, 6)   # -3*(6-10) = +12
        assert trail.lower_bound == 1 + 8 - 18
        trail.undo_to(mark)
        assert trail.lower_bound == 1 - 30

    def test_bound_matches_rescan_under_random_ops(self):
        rng = random.Random(7)
        m = CpModel()
        vs = [m.new_int(0, 8, f"v{i}") for i in range(5)]
        m.minimize([(vs[0], 2), (vs[1], -1), (vs[3], 3)], offset=4)
        index = m.freeze()
        d = Domains.from_model(m)
        trail = Trail(d, obj_coef=index.obj_coef, obj_offset=m.objective_offset)
        marks = []
        for _ in range(200):
            if marks and rng.random() < 0.3:
                trail.undo_to(marks.pop())
            else:
                marks.append(trail.mark())
                idx = rng.randrange(5)
                if rng.random() < 0.5 and d.lo[idx] < d.hi[idx]:
                    trail.set_lo(idx, d.lo[idx] + 1)
                elif d.hi[idx] > d.lo[idx]:
                    trail.set_hi(idx, d.hi[idx] - 1)
            assert trail.lower_bound == objective_lower_bound(m, d)


class TestModelFreeze:
    def test_index_maps_vars_to_constraints(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        c = m.new_int(0, 5, "c")
        m.add_sum_le([(a, 1), (b, 1)], 6)
        m.add_sum_le([(b, 2)], 8)
        m.add_implication(a, 2, c, 3)
        idx = m.freeze()
        assert idx.var_linears[a.index] == (0,)
        assert idx.var_linears[b.index] == (0, 1)
        assert idx.var_linears[c.index] == ()
        assert idx.var_implications[a.index] == (0,)
        assert idx.var_implications[c.index] == (0,)

    def test_freeze_cache_invalidated_by_mutation(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        first = m.freeze()
        assert m.freeze() is first  # cached
        m.add_sum_le([(a, 1)], 3)
        second = m.freeze()
        assert second is not first
        assert second.var_linears[a.index] == (0,)

    def test_objective_index(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        m.minimize([(a, 2), (b, -1)])
        idx = m.freeze()
        assert idx.obj_vars == {a.index, b.index}
        assert idx.obj_coef == {a.index: 2, b.index: -1}


def _assert_same_fixpoint(model: CpModel) -> None:
    """Sweep and incremental propagation must land on identical bounds."""
    sweep = Domains.from_model(model)
    ok_sweep, sweep_stats = propagate(model, sweep)
    assert sweep_stats.fixpoint_reached

    inc = Domains.from_model(model)
    trail = Trail(inc)
    prop = IncrementalPropagator(model)
    stats = PropagationStats()
    ok_inc = prop.propagate_all(trail, stats)

    assert ok_inc == ok_sweep
    if ok_sweep:
        assert inc.lo == sweep.lo and inc.hi == sweep.hi


class TestIncrementalPropagator:
    def test_matches_sweep_on_linear_chain(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        b = m.new_int(4, 10, "b")
        c = m.new_int(0, 10, "c")
        m.add_sum_le([(a, 1), (b, 1)], 7)
        m.add_linear([(a, 1), (c, 1)], lo=8, hi=20)
        _assert_same_fixpoint(m)

    def test_matches_sweep_on_implications(self):
        m = CpModel()
        x = m.new_int(1, 5, "x")
        z = m.new_int(0, 9, "z")
        y = m.new_int(7, 9, "y")
        m.add_implication(x, 1, z, 4)
        m.add_implication(z, 9, y, 4)
        _assert_same_fixpoint(m)

    def test_matches_sweep_on_random_models(self):
        rng = random.Random(99)
        for _ in range(80):
            m = CpModel()
            vs = [m.new_int(rng.randint(0, 2), rng.randint(3, 9), f"v{i}") for i in range(5)]
            for c in range(rng.randint(1, 5)):
                idxs = rng.sample(range(5), rng.randint(1, 4))
                m.add_linear(
                    [(vs[i], rng.randint(1, 3)) for i in idxs],
                    lo=rng.randint(0, 5),
                    hi=rng.randint(5, 25),
                    name=f"c{c}",
                )
            for _ in range(rng.randint(0, 3)):
                i, j = rng.sample(range(5), 2)
                m.add_implication(vs[i], rng.randint(0, 8), vs[j], rng.randint(0, 8))
            _assert_same_fixpoint(m)

    def test_dirty_seeding_propagates_only_affected(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        b = m.new_int(0, 10, "b")
        c = m.new_int(0, 10, "c")  # disconnected from a
        m.add_sum_le([(a, 1), (b, 1)], 12)
        m.add_sum_le([(c, 1)], 9)
        prop = IncrementalPropagator(m)
        d = Domains.from_model(m)
        trail = Trail(d)
        stats = PropagationStats()
        assert prop.propagate_all(trail, stats)  # root fixpoint (hi[c] -> 9)
        # Now branch on a: only constraint 0 should be touched.
        trail.set_lo(a.index, 8)
        stats = PropagationStats()
        assert prop.propagate_from(trail, (a.index,), stats)
        assert d.hi[b.index] == 4
        assert stats.linear_props == 1  # constraint on c never re-evaluated

    def test_infeasibility_detected_and_queue_left_clean(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        m.add_linear([(a, 1), (b, 1)], lo=8, hi=10)
        m.add_sum_le([(a, 1)], 1)
        m.add_sum_le([(b, 1)], 1)
        prop = IncrementalPropagator(m)
        d = Domains.from_model(m)
        trail = Trail(d)
        assert not prop.propagate_all(trail, PropagationStats())
        assert not prop._queue  # ready for reuse after a conflict

    def test_queue_peak_recorded(self):
        m = CpModel()
        vs = [m.new_int(0, 9, f"v{i}") for i in range(6)]
        for i in range(5):
            m.add_sum_le([(vs[i], 1), (vs[i + 1], 1)], 9)
        prop = IncrementalPropagator(m)
        stats = PropagationStats()
        prop.propagate_all(Trail(Domains.from_model(m)), stats)
        assert stats.queue_peak >= 1


class TestSweepFixpointGuard:
    def test_fixpoint_flag_true_on_easy_model(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        m.add_sum_le([(a, 1)], 5)
        ok, stats = propagate(m, Domains.from_model(m))
        assert ok and stats.fixpoint_reached

    def test_max_passes_exhaustion_is_reported(self):
        # con1 raises lb(b) only after con0 ran, so con0's tightening of
        # hi(a) against the new lb(b) needs a second pass: with
        # max_passes=1 the sweep is truncated and must say so.
        m = CpModel()
        a = m.new_int(0, 20, "a")
        b = m.new_int(0, 50, "b")
        m.add_linear([(a, 1), (b, 1)], lo=0, hi=10, name="con0")
        m.add_linear([(b, 1)], lo=8, hi=50, name="con1")
        ok, stats = propagate(m, Domains.from_model(m), max_passes=1)
        assert ok
        assert not stats.fixpoint_reached  # truncated, not converged
        ok, stats = propagate(m, Domains.from_model(m))
        assert ok and stats.fixpoint_reached  # default budget converges

    def test_solver_stats_report_no_incomplete_fixpoints(self):
        m = CpModel()
        xs = [m.new_int(0, 4, f"x{i}") for i in range(6)]
        m.add_sum_eq([(x, 1) for x in xs], 10)
        m.minimize([(xs[0], 1)])
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.stats is not None
        assert sol.stats.fixpoint_incomplete == 0
        assert sol.stats.nodes == sol.nodes_explored
        assert sol.stats.propagations == sol.propagations
        assert sol.stats.linear_props > 0
        assert sol.stats.wall_time_s > 0
        assert sol.stats.nodes_per_sec > 0


class TestTrailSolverBehaviour:
    def test_stats_threaded_through_solution(self):
        m = CpModel()
        a = m.new_int(0, 9, "a")
        b = m.new_int(0, 9, "b")
        m.add_linear([(a, 1), (b, 1)], lo=6, hi=18)
        m.minimize([(a, 3), (b, 1)])
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL and sol.objective == 6
        d = sol.stats.as_dict()
        for key in ("nodes", "propagations", "linear_props", "implication_props",
                    "queue_peak", "time_propagate_s", "time_branch_s", "nodes_per_sec"):
            assert key in d

    def test_infeasible_still_carries_stats(self):
        m = CpModel()
        a = m.new_int(0, 2, "a")
        m.add_sum_eq([(a, 1)], 9)
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.stats is not None and sol.stats.wall_time_s >= 0

    def test_node_budget_respected(self):
        m = CpModel()
        xs = [m.new_int(0, 10, f"x{i}") for i in range(20)]
        m.add_sum_eq([(x, 1) for x in xs], 100)
        m.minimize([(x, 1) for x in xs[:3]])
        sol = CpSolver(time_limit_s=60.0, max_nodes=50).solve(m)
        assert sol.nodes_explored <= 50
