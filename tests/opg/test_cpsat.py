"""Tests for the CP-SAT substrate: model, propagation, branch-and-bound."""

import pytest

from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.propagation import Domains, propagate
from repro.opg.cpsat.search import CpSolver


class TestModelBuilding:
    def test_variable_domains(self):
        m = CpModel()
        v = m.new_int(2, 7, "v")
        assert (v.lo, v.hi) == (2, 7)
        with pytest.raises(ValueError):
            m.new_int(5, 3, "bad")

    def test_linear_rejects_nonpositive_coeff(self):
        m = CpModel()
        v = m.new_int(0, 5, "v")
        with pytest.raises(ValueError):
            m.add_linear([(v, 0)], hi=3)
        with pytest.raises(ValueError):
            m.add_linear([(v, -1)], hi=3)

    def test_linear_rejects_lo_above_hi(self):
        m = CpModel()
        v = m.new_int(0, 5, "v")
        with pytest.raises(ValueError):
            m.add_linear([(v, 1)], lo=4, hi=2)

    def test_objective_value(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        m.minimize([(a, 2), (b, -1)], offset=10)
        assert m.objective_value([3, 4]) == 10 + 6 - 4

    def test_validate_assignment(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        m.add_sum_eq([(a, 1), (b, 1)], 6, name="sum")
        m.add_implication(a, 3, b, 2, name="imp")
        assert m.validate_assignment([2, 4]) == []
        assert m.validate_assignment([3, 3])  # sum ok but implication violated
        assert m.validate_assignment([9, 9])  # domain + sum violations


class TestPropagation:
    def test_linear_tightens_upper(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        b = m.new_int(4, 10, "b")
        m.add_sum_le([(a, 1), (b, 1)], 7)
        d = Domains.from_model(m)
        ok, _ = propagate(m, d)
        assert ok
        assert d.hi[a.index] == 3  # a <= 7 - lb(b)

    def test_linear_tightens_lower(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        b = m.new_int(0, 2, "b")
        m.add_linear([(a, 1), (b, 1)], lo=8, hi=20)
        d = Domains.from_model(m)
        ok, _ = propagate(m, d)
        assert ok
        assert d.lo[a.index] == 6  # a >= 8 - ub(b)

    def test_coefficient_division_rounding(self):
        m = CpModel()
        a = m.new_int(0, 10, "a")
        m.add_sum_le([(a, 3)], 7)
        d = Domains.from_model(m)
        propagate(m, d)
        assert d.hi[a.index] == 2  # floor(7/3)

    def test_infeasible_detected(self):
        m = CpModel()
        a = m.new_int(0, 2, "a")
        m.add_linear([(a, 1)], lo=5, hi=9)
        ok, _ = propagate(m, Domains.from_model(m))
        assert not ok

    def test_implication_forward(self):
        m = CpModel()
        x = m.new_int(1, 5, "x")  # condition always holds (lb >= 1)
        z = m.new_int(0, 9, "z")
        m.add_implication(x, 1, z, 4)
        d = Domains.from_model(m)
        propagate(m, d)
        assert d.hi[z.index] == 4

    def test_implication_contrapositive(self):
        m = CpModel()
        x = m.new_int(0, 5, "x")
        z = m.new_int(7, 9, "z")  # consequent can never hold
        m.add_implication(x, 2, z, 4)
        d = Domains.from_model(m)
        propagate(m, d)
        assert d.hi[x.index] == 1  # condition forbidden


class TestSolver:
    def test_satisfaction_problem(self):
        m = CpModel()
        a = m.new_int(0, 5, "a")
        b = m.new_int(0, 5, "b")
        m.add_sum_eq([(a, 1), (b, 2)], 7)
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.value_of(a) + 2 * sol.value_of(b) == 7

    def test_infeasible_problem(self):
        m = CpModel()
        a = m.new_int(0, 2, "a")
        m.add_sum_eq([(a, 1)], 9)
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.INFEASIBLE
        assert not sol.feasible

    def test_minimization_finds_optimum(self):
        m = CpModel()
        a = m.new_int(0, 9, "a")
        b = m.new_int(0, 9, "b")
        m.add_linear([(a, 1), (b, 1)], lo=6, hi=18)
        m.minimize([(a, 3), (b, 1)])
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # Cheapest way to reach sum >= 6 is all b.
        assert sol.objective == 6
        assert sol.value_of(b) == 6

    def test_maximization_via_negative_coeffs(self):
        m = CpModel()
        a = m.new_int(0, 4, "a")
        m.add_sum_le([(a, 1)], 3)
        m.minimize([(a, -1)])
        sol = CpSolver().solve(m)
        assert sol.value_of(a) == 3

    def test_hint_respected_first(self):
        m = CpModel()
        a = m.new_int(0, 100, "a", hint=37)
        sol = CpSolver().solve(m)
        assert sol.value_of(a) == 37  # satisfaction: first solution = hint

    def test_solution_validates(self):
        m = CpModel()
        xs = [m.new_int(0, 4, f"x{i}") for i in range(6)]
        m.add_sum_eq([(x, 1) for x in xs], 10)
        for x in xs[:3]:
            m.add_sum_le([(x, 1)], 2)
        z = m.new_int(0, 9, "z")
        m.add_implication(xs[0], 1, z, 3)
        m.minimize([(z, -1)])
        sol = CpSolver().solve(m)
        assert sol.feasible
        assert m.validate_assignment(sol.values) == []

    def test_time_limit_returns_feasible_or_unknown(self):
        # A large-but-satisfiable instance under a tiny time budget.
        m = CpModel()
        xs = [m.new_int(0, 50, f"x{i}") for i in range(40)]
        m.add_sum_eq([(x, 1) for x in xs], 500)
        m.minimize([(x, 1) for x in xs[:5]])
        sol = CpSolver(time_limit_s=0.02).solve(m)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.OPTIMAL, SolveStatus.UNKNOWN)

    def test_node_budget_respected(self):
        m = CpModel()
        xs = [m.new_int(0, 10, f"x{i}") for i in range(20)]
        m.add_sum_eq([(x, 1) for x in xs], 100)
        m.minimize([(x, 1) for x in xs[:3]])
        sol = CpSolver(time_limit_s=60.0, max_nodes=50).solve(m)
        assert sol.nodes_explored <= 50

    def test_root_bound_early_exit_proves_optimal(self):
        # Hint is the optimum; the incumbent matches the root bound.
        m = CpModel()
        a = m.new_int(0, 9, "a", hint=0)
        m.add_sum_le([(a, 1)], 9)
        m.minimize([(a, 1)])
        sol = CpSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == 0
