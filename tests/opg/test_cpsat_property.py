"""Property-based tests for the CP-SAT substrate (hypothesis).

Invariants:
- any solution the solver returns satisfies every constraint;
- the solver never reports INFEASIBLE for an instance constructed around a
  known witness assignment;
- for small instances, the reported optimum matches brute force.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.search import CpSolver


@st.composite
def witnessed_instances(draw):
    """A CP instance plus a witness assignment that satisfies it.

    Constraints are generated *around* the witness (sum bounds that include
    the witness sum), so the instance is satisfiable by construction.
    """
    n = draw(st.integers(2, 5))
    domains = [draw(st.tuples(st.integers(0, 3), st.integers(3, 8))) for _ in range(n)]
    witness = [draw(st.integers(lo, hi)) for lo, hi in domains]
    m = CpModel()
    vs = [m.new_int(lo, hi, f"v{i}") for i, (lo, hi) in enumerate(domains)]
    n_cons = draw(st.integers(1, 4))
    for c in range(n_cons):
        idxs = draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=n, unique=True))
        coeffs = [draw(st.integers(1, 3)) for _ in idxs]
        total = sum(coeffs[j] * witness[i] for j, i in enumerate(idxs))
        slack_lo = draw(st.integers(0, 4))
        slack_hi = draw(st.integers(0, 4))
        m.add_linear(
            [(vs[i], coeffs[j]) for j, i in enumerate(idxs)],
            lo=max(0, total - slack_lo),
            hi=total + slack_hi,
            name=f"c{c}",
        )
    # Implications consistent with the witness.
    for _ in range(draw(st.integers(0, 2))):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i == j:
            continue
        cond_ge = draw(st.integers(0, 8))
        if witness[i] >= cond_ge:
            then_ub = draw(st.integers(witness[j], 10))
        else:
            then_ub = draw(st.integers(0, 10))
        m.add_implication(vs[i], cond_ge, vs[j], then_ub)
    if draw(st.booleans()):
        m.minimize([(v, draw(st.integers(-2, 2))) for v in vs if draw(st.booleans())] or [(vs[0], 1)])
    return m, witness


@given(witnessed_instances())
@settings(max_examples=60, deadline=None)
def test_solver_solutions_are_feasible(instance):
    m, _witness = instance
    sol = CpSolver(time_limit_s=2.0).solve(m)
    assert sol.status is not SolveStatus.INFEASIBLE
    if sol.values is not None:
        assert m.validate_assignment(sol.values) == []


@given(witnessed_instances())
@settings(max_examples=25, deadline=None)
def test_optimal_matches_brute_force(instance):
    m, _witness = instance
    if not m.objective:
        return
    sol = CpSolver(time_limit_s=5.0).solve(m)
    if sol.status is not SolveStatus.OPTIMAL:
        return  # timed out: nothing to compare
    ranges = [range(v.lo, v.hi + 1) for v in m.variables]
    best = None
    for assignment in itertools.product(*ranges):
        if m.validate_assignment(list(assignment)):
            continue
        obj = m.objective_value(list(assignment))
        if best is None or obj < best:
            best = obj
    assert best is not None
    assert sol.objective == best
