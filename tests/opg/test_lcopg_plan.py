"""Tests for the LC-OPG solver, plan structure, and validation."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan, WeightSchedule
from repro.opg.problem import OpgConfig, build_problem
from repro.opg.validate import validate_plan


@pytest.fixture(scope="module")
def capacity():
    return analytic_capacity_model(oneplus_12())


def _transformer(blocks=2, dim=128, seq=16):
    b = GraphBuilder("t")
    b.embedding(seq, 500, dim)
    for _ in range(blocks):
        b.transformer_block(seq, dim, 4)
    return b.finish()


FAST = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024)


class TestLcOpg:
    @pytest.fixture(scope="class")
    def plan(self, capacity):
        return LcOpgSolver(FAST).solve(_transformer(), capacity, device_name="OnePlus 12")

    def test_plan_validates(self, capacity, plan):
        problem = build_problem(_transformer(), capacity, FAST)
        assert validate_plan(plan, problem) == []

    def test_every_weight_scheduled(self, capacity, plan):
        g = _transformer()
        assert set(plan.schedules) == {w.name for w, _ in g.weights()}

    def test_embedding_preloaded(self, plan):
        embeds = [s for name, s in plan.schedules.items() if name.startswith("embed")]
        assert embeds and all(s.preloaded for s in embeds)

    def test_most_weights_streamed(self, plan):
        assert plan.preload_ratio < 0.5

    def test_transforms_before_consumer(self, plan):
        for s in plan.schedules.values():
            for layer in s.transforms:
                assert layer < s.consumer_layer

    def test_load_no_later_than_first_transform(self, plan):
        for s in plan.schedules.values():
            if s.transforms:
                assert s.load_layer <= min(s.transforms)

    def test_stats_populated(self, plan):
        assert plan.stats.windows > 0
        assert plan.stats.solver_status in ("OPTIMAL", "FEASIBLE")
        assert plan.stats.solve_s >= 0

    def test_heuristic_mode_also_valid(self, capacity):
        g = _transformer()
        plan = LcOpgSolver(FAST, use_cp=False).solve(g, capacity)
        problem = build_problem(g, capacity, FAST)
        assert validate_plan(plan, problem) == []

    def test_target_preload_ratio_monotone_memory(self, capacity):
        g = _transformer(blocks=3)
        solver = LcOpgSolver(FAST)
        low = solver.solve(g, capacity, target_preload_ratio=0.0)
        high = solver.solve(g, capacity, target_preload_ratio=0.9)
        assert high.preload_ratio > low.preload_ratio

    def test_lambda_drives_preload(self, capacity):
        g = _transformer()
        lam_hi = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024, lam=1.0)
        plan_hi = LcOpgSolver(lam_hi).solve(g, capacity)
        plan_lo = LcOpgSolver(FAST).solve(g, capacity)  # lam=0.9
        assert plan_hi.preload_ratio > plan_lo.preload_ratio

    def test_preload_hint_respected(self, capacity):
        g = _transformer()
        target = [w.name for w, _ in g.weights()][-1]
        cfg = OpgConfig(
            time_limit_s=1.5,
            max_nodes_per_window=300,
            chunk_bytes=8 * 1024,
            preload_hint_weights=frozenset({target}),
        )
        plan = LcOpgSolver(cfg).solve(g, capacity)
        assert plan.schedules[target].preloaded

    def test_tight_m_peak_still_valid(self, capacity):
        g = _transformer()
        cfg = OpgConfig(
            time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024, m_peak_bytes=256 * 1024
        )
        plan = LcOpgSolver(cfg).solve(g, capacity)
        problem = build_problem(g, capacity, cfg)
        assert validate_plan(plan, problem) == []

    def test_solver_deterministic(self, capacity):
        g = _transformer()
        cfg = OpgConfig(time_limit_s=60.0, max_nodes_per_window=50, chunk_bytes=8 * 1024)
        a = LcOpgSolver(cfg).solve(g, capacity)
        b = LcOpgSolver(cfg).solve(g, capacity)
        assert {n: s.transforms for n, s in a.schedules.items()} == {
            n: s.transforms for n, s in b.schedules.items()
        }


class TestPlanStructure:
    def _schedule(self):
        return WeightSchedule(
            weight="w",
            nbytes=2500,
            consumer_layer=10,
            preloaded=False,
            load_layer=6,
            transforms={6: 1, 8: 2},
            chunk_bytes=1024,
            total_chunks=3,
        )

    def test_loading_distance(self):
        assert self._schedule().loading_distance == 4

    def test_segments_offsets_contiguous(self):
        segs = self._schedule().segments()
        assert [s.layer for s in segs] == [6, 8]
        assert segs[0].start_offset == 0
        assert segs[0].end_offset == segs[1].start_offset
        assert segs[-1].end_offset == 2500  # clamped to nbytes

    def test_streamed_chunks(self):
        assert self._schedule().streamed_chunks == 3

    def test_plan_queries(self):
        plan = OverlapPlan(
            model="m", device="d", chunk_bytes=1024, m_peak_bytes=1 << 20,
            schedules={"w": self._schedule()},
        )
        assert plan.streamed_weights == ["w"]
        assert plan.transforms_at(8) == [("w", 2)]
        assert plan.loads_at(6) == ["w"]
        assert plan.preload_ratio == 0.0

    def test_json_roundtrip(self):
        plan = OverlapPlan(
            model="m", device="d", chunk_bytes=1024, m_peak_bytes=1 << 20,
            schedules={"w": self._schedule()},
        )
        restored = OverlapPlan.from_json(plan.to_json())
        assert restored.model == plan.model
        assert restored.schedules["w"].transforms == {6: 1, 8: 2}
        assert restored.schedules["w"].nbytes == 2500

    def test_canonical_json_excludes_wall_clock_provenance(self):
        import json

        from repro.opg.plan import PlanStats

        def plan(**stats):
            return OverlapPlan(
                model="m", device="d", chunk_bytes=1024, m_peak_bytes=1 << 20,
                schedules={"w": self._schedule()}, stats=PlanStats(**stats),
            )

        a = plan(solve_s=0.123)
        b = plan(solve_s=9.876, windows=3)
        # Same decisions, different provenance → identical canonical bytes.
        assert a.canonical_json() == b.canonical_json()
        assert a.to_json() != b.to_json()
        payload = json.loads(a.canonical_json())
        assert "stats" not in payload
        assert payload["schedules"]["w"]["nbytes"] == 2500
        # A decision change does surface.
        c = plan()
        c.schedules["w"].transforms[6] = 3
        assert c.canonical_json() != a.canonical_json()


class TestValidator:
    def test_catches_c0_violation(self, capacity):
        g = _transformer()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        problem = build_problem(g, capacity, FAST)
        victim = next(s for s in plan.schedules.values() if s.transforms)
        layer = min(victim.transforms)
        victim.transforms[layer] += 5  # over-assign chunks
        errors = validate_plan(plan, problem)
        assert any("C0" in e for e in errors)

    def test_catches_missing_schedule(self, capacity):
        g = _transformer()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        problem = build_problem(g, capacity, FAST)
        plan.schedules.pop(next(iter(plan.schedules)))
        assert any("no schedule" in e for e in validate_plan(plan, problem))

    def test_catches_late_transform(self, capacity):
        g = _transformer()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        problem = build_problem(g, capacity, FAST)
        victim = next(s for s in plan.schedules.values() if s.transforms)
        chunks = victim.transforms.pop(min(victim.transforms))
        victim.transforms[victim.consumer_layer + 1] = chunks
        errors = validate_plan(plan, problem)
        assert any("not before consumer" in e for e in errors)
