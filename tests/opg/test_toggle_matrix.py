"""Plan byte-identity across the full solver-toggle matrix.

The PR's three speed layers — bitset domains, window-reuse patching, and
the portfolio certificate race — are all *transparent* optimisations: for
any combination of toggles the compiled plan must be byte-identical to the
all-off reference.  This test runs the 2x2x2 matrix (engine x reuse x
portfolio) end-to-end through ``LcOpgSolver`` on a real graph and compares
every plan against the queue-engine / reuse-off / portfolio-off corner.

On a single-core box the portfolio runs its sequential fallback — the
identity contract is the same either way (alternates only ever supply
proven-optimal *certificates*, never values; see ``cpsat/portfolio.py``).
"""

import dataclasses
import functools

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.cpsat.portfolio import PortfolioCpSolver
from repro.opg.cpsat.search import CpSolver
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig

FAST = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300, chunk_bytes=8 * 1024)

ENGINES = ("queue", "bitset")
TOGGLES = [
    (engine, reuse, portfolio)
    for engine in ENGINES
    for reuse in (False, True)
    for portfolio in (0, 3)
]


def _graph():
    b = GraphBuilder("toggle-matrix")
    b.embedding(16, 500, 128)
    for _ in range(4):
        b.transformer_block(16, 128, 4)
    return b.finish()


def _factory(engine, portfolio):
    if portfolio >= 2:
        return functools.partial(PortfolioCpSolver, k=portfolio, engine=engine)
    return functools.partial(CpSolver, engine=engine)


def _solve(engine, reuse, portfolio):
    cfg = dataclasses.replace(FAST, window_reuse=reuse)
    solver = LcOpgSolver(cfg, solver_factory=_factory(engine, portfolio))
    graph = _graph()
    capacity = analytic_capacity_model(oneplus_12())
    first = solver.solve(graph, capacity, device_name="OnePlus 12")
    if not reuse:
        return first
    # With reuse on, the replayed second solve is the interesting plan: it
    # must match the reference even when served from the window cache.
    replay = solver.solve(graph, capacity, device_name="OnePlus 12")
    assert replay.stats.windows_reused == replay.stats.windows > 0
    return replay


@pytest.fixture(scope="module")
def reference():
    return _solve("queue", False, 0)


@pytest.mark.parametrize(
    "engine,reuse,portfolio",
    TOGGLES,
    ids=[f"{e}-reuse{int(r)}-k{p}" for e, r, p in TOGGLES],
)
def test_plan_identical_across_toggles(engine, reuse, portfolio, reference):
    plan = _solve(engine, reuse, portfolio)
    assert plan.schedules == reference.schedules
    assert plan.stats.solver_status == reference.stats.solver_status
    assert plan.stats.soft_threshold_rounds == reference.stats.soft_threshold_rounds
