"""Randomized differential test: trail solver ≡ brute force ≡ naive solver.

The safety net for the trail/incremental rewrite: on 220 seeded random CP
models (≤ 8 vars, mixed linears/implications, some infeasible, some
satisfaction-only), the trail-based solver must report exactly the status
and optimal objective that exhaustive enumeration does — and agree with
the preserved seed solver (NaiveCpSolver).
"""

import itertools
import random

from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.naive import NaiveCpSolver
from repro.opg.cpsat.search import CpSolver

N_MODELS = 220
#: Keep exhaustive enumeration cheap: cap the assignment-space size.
MAX_SPACE = 4096


def _random_model(rng: random.Random) -> CpModel:
    n = rng.randint(2, 8)
    model = CpModel()
    variables = []
    space = 1
    for i in range(n):
        lo = rng.randint(0, 3)
        width = rng.randint(0, 3)
        while space * (width + 1) > MAX_SPACE and width > 0:
            width -= 1
        space *= width + 1
        hint = rng.randint(lo, lo + width) if rng.random() < 0.3 else None
        variables.append(model.new_int(lo, lo + width, f"v{i}", hint=hint))
    for c in range(rng.randint(1, 4)):
        k = rng.randint(1, n)
        idxs = rng.sample(range(n), k)
        coeffs = [rng.randint(1, 3) for _ in idxs]
        # Bounds chosen around a random point of the reachable sum range, so
        # instances are sometimes tight, sometimes loose, sometimes infeasible.
        sum_lo = sum(c_ * variables[i].lo for c_, i in zip(coeffs, idxs))
        sum_hi = sum(c_ * variables[i].hi for c_, i in zip(coeffs, idxs))
        pivot = rng.randint(sum_lo - 2, sum_hi + 2)
        lo = max(0, pivot - rng.randint(0, 4))
        hi = pivot + rng.randint(0, 4)
        if lo > hi:
            lo = hi
        model.add_linear(
            [(variables[i], c_) for c_, i in zip(coeffs, idxs)], lo=lo, hi=hi, name=f"c{c}"
        )
    for _ in range(rng.randint(0, 3)):
        i, j = rng.sample(range(n), 2)
        model.add_implication(
            variables[i],
            rng.randint(0, 6),
            variables[j],
            rng.randint(0, 6),
        )
    if rng.random() < 0.75:
        terms = [(v, rng.randint(-2, 2)) for v in variables if rng.random() < 0.7]
        terms = [(v, c_) for v, c_ in terms if c_ != 0]
        if terms:
            model.minimize(terms, offset=rng.randint(-5, 5))
    return model


def _brute_force(model: CpModel):
    """(feasible, best objective) by exhaustive enumeration."""
    ranges = [range(v.lo, v.hi + 1) for v in model.variables]
    best = None
    feasible = False
    for assignment in itertools.product(*ranges):
        values = list(assignment)
        if model.validate_assignment(values):
            continue
        feasible = True
        if not model.objective:
            return True, 0
        obj = model.objective_value(values)
        if best is None or obj < best:
            best = obj
    return feasible, best if model.objective else 0


def test_trail_solver_matches_brute_force_and_naive():
    rng = random.Random(0xF1A5)
    checked = 0
    for case in range(N_MODELS):
        model = _random_model(rng)
        feasible, best = _brute_force(model)
        sol = CpSolver(time_limit_s=10.0).solve(model)
        naive = NaiveCpSolver(time_limit_s=10.0).solve(model)
        if not feasible:
            assert sol.status is SolveStatus.INFEASIBLE, f"case {case}: trail found ghost solution"
            assert naive.status is SolveStatus.INFEASIBLE, f"case {case}: naive found ghost solution"
        else:
            assert sol.status is SolveStatus.OPTIMAL, f"case {case}: trail status {sol.status}"
            assert naive.status is SolveStatus.OPTIMAL, f"case {case}: naive status {naive.status}"
            assert model.validate_assignment(sol.values) == [], f"case {case}: invalid trail solution"
            if model.objective:
                assert sol.objective == best, (
                    f"case {case}: trail objective {sol.objective} != brute force {best}"
                )
                assert naive.objective == best, (
                    f"case {case}: naive objective {naive.objective} != brute force {best}"
                )
        # The dirty-queue propagator must always reach fixpoint.
        assert sol.stats is not None and sol.stats.fixpoint_incomplete == 0
        checked += 1
    assert checked >= 200
