"""Tests for OPG problem construction and the greedy heuristics."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.heuristics import Budgets, greedy_assign, greedy_schedule
from repro.opg.problem import OpgConfig, WeightInfo, build_problem


@pytest.fixture(scope="module")
def capacity():
    return analytic_capacity_model(oneplus_12())


def _mlp_graph(blocks=3, dim=128):
    b = GraphBuilder("mlp")
    b.embedding(16, 100, dim)
    for _ in range(blocks):
        b.mlp_block(16, dim, dim * 4)
    return b.finish()


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = OpgConfig()
        assert cfg.m_peak_bytes == 500 * 1024 * 1024
        assert cfg.lam == 0.9

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            OpgConfig(chunk_bytes=0)
        with pytest.raises(ValueError):
            OpgConfig(lam=1.5)
        with pytest.raises(ValueError):
            OpgConfig(lookback=0)


class TestBuildProblem:
    def test_every_weight_represented(self, capacity):
        g = _mlp_graph()
        problem = build_problem(g, capacity)
        assert len(problem.weights) == len(g.weights())

    def test_first_layer_weights_forced_preload(self, capacity):
        g = _mlp_graph()
        problem = build_problem(g, capacity)
        first = [w for w in problem.weights if w.consumer_layer == 0]
        assert first and all(w.forced_preload for w in first)

    def test_candidates_within_lookback(self, capacity):
        g = _mlp_graph()
        cfg = OpgConfig(lookback=4)
        problem = build_problem(g, capacity, cfg)
        for w in problem.weights:
            for l in w.candidates:
                assert w.consumer_layer - 4 <= l < w.consumer_layer

    def test_candidates_have_capacity(self, capacity):
        g = _mlp_graph()
        problem = build_problem(g, capacity)
        for w in problem.weights:
            for l in w.candidates:
                assert problem.layer_capacity[l] > 0

    def test_preload_hint_forces_w(self, capacity):
        g = _mlp_graph()
        names = [w.name for w, _ in g.weights()]
        target = names[-1]
        problem = build_problem(g, capacity, OpgConfig(preload_hint_weights=frozenset({target})))
        info = next(w for w in problem.weights if w.name == target)
        assert info.forced_preload

    def test_conv_weights_marked_dedicated(self, capacity):
        b = GraphBuilder("conv")
        b.embedding(4, 4, 4)
        b.conv(16, 16, 4, 8, 3)
        b.conv(16, 16, 8, 8, 3)
        problem = build_problem(b.finish(), capacity)
        dedicated = [w for w in problem.weights if w.dedicated_transform]
        assert dedicated
        assert all(not w.forced_preload for w in dedicated)

    def test_chunk_counts_cover_bytes(self, capacity):
        g = _mlp_graph()
        cfg = OpgConfig(chunk_bytes=4096)
        problem = build_problem(g, capacity, cfg)
        for w in problem.weights:
            assert w.total_chunks * cfg.chunk_bytes >= w.nbytes


class TestBudgets:
    def test_available_is_min_of_caps(self):
        b = Budgets([5, 3], [4, 10])
        assert b.available(0) == 4
        assert b.available(1) == 3

    def test_consume_and_release(self):
        b = Budgets([5], [10])
        b.consume(0, 3)
        assert b.available(0) == 2
        b.release(0, 3)
        assert b.available(0) == 5

    def test_overconsume_rejected(self):
        b = Budgets([2], [10])
        with pytest.raises(ValueError):
            b.consume(0, 3)

    def test_soft_scaling_quota(self):
        b = Budgets([10], [100], max_soft_rounds=2)
        assert b.scale_capacity(1.5)
        assert b.scale_capacity(1.5)
        assert not b.scale_capacity(1.5)  # quota exhausted
        assert b.capacity[0] == 22  # 10 -> 15 -> 22


class TestGreedy:
    def _weight(self, chunks, consumer=10, candidates=None):
        return WeightInfo(
            name="w",
            nbytes=chunks * 100,
            consumer_layer=consumer,
            total_chunks=chunks,
            candidates=candidates if candidates is not None else list(range(5, 10)),
        )

    def test_latest_first_packing(self):
        w = self._weight(3)
        budgets = Budgets([10] * 10, [10] * 10)
        assignment = greedy_assign(w, budgets)
        assert assignment == {9: 3}

    def test_spills_backward_when_capacity_tight(self):
        w = self._weight(5)
        budgets = Budgets([2] * 10, [10] * 10)
        assignment = greedy_assign(w, budgets)
        assert assignment == {9: 2, 8: 2, 7: 1}

    def test_returns_none_when_unfittable(self):
        w = self._weight(50)
        budgets = Budgets([2] * 10, [10] * 10)
        assert greedy_assign(w, budgets) is None

    def test_probe_mode_leaves_budgets_untouched(self):
        w = self._weight(3)
        budgets = Budgets([10] * 10, [10] * 10)
        greedy_assign(w, budgets, commit=False)
        assert budgets.available(9) == 10

    def test_respects_m_peak(self):
        w = self._weight(5)
        budgets = Budgets([10] * 10, [1] * 10)
        assignment = greedy_assign(w, budgets)
        assert assignment == {9: 1, 8: 1, 7: 1, 6: 1, 5: 1}

    def test_schedule_improvement_pass(self, capacity):
        g = _mlp_graph()
        problem = build_problem(g, capacity)
        budgets = Budgets(problem.layer_capacity, problem.layer_m_peak)
        schedule = greedy_schedule(problem, problem.streamable_weights, budgets)
        placed = [a for a in schedule.values() if a]
        assert placed
        # Every committed placement respects the original capacities.
        used = {}
        for a in placed:
            for l, c in a.items():
                used[l] = used.get(l, 0) + c
        for l, c in used.items():
            assert c <= min(problem.layer_capacity[l], problem.layer_m_peak[l])
