"""Tests for the fusion pass, penalty scoring, and the adaptive protocol."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.fusion.adaptive import AdaptiveFusionPlanner, apply_splits, split_feasible
from repro.fusion.fuser import (
    fuse_graph,
    fused_members,
    fusion_stats,
    is_fused,
    make_fused_spec,
    unfuse_node,
)
from repro.fusion.penalty import fusion_penalties, plan_pressure
from repro.graph.builder import GraphBuilder
from repro.graph.ops import OpClass, OpKind, elementwise_spec, matmul_spec, softmax_spec
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig


@pytest.fixture(scope="module")
def capacity():
    return analytic_capacity_model(oneplus_12())


def _transformer(blocks=2, dim=128, seq=16):
    b = GraphBuilder("t")
    b.embedding(seq, 500, dim)
    for _ in range(blocks):
        b.transformer_block(seq, dim, 4)
    return b.finish()


class TestFusedSpec:
    def test_combines_flops_and_weights(self):
        mm = matmul_spec("mm", 8, 16, 16)
        gelu = elementwise_spec("g", OpKind.GELU, (8, 16), flops_per_elem=8)
        fused = make_fused_spec("mm+g", [mm, gelu])
        assert fused.flops == mm.flops + gelu.flops
        assert fused.weight_bytes == mm.weight_bytes
        assert is_fused(fused)
        assert [m.name for m in fused_members(fused)] == ["mm", "g"]

    def test_anchor_sets_kind(self):
        mm = matmul_spec("mm", 8, 16, 16)
        gelu = elementwise_spec("g", OpKind.GELU, (8, 16))
        assert make_fused_spec("f", [mm, gelu]).kind is OpKind.MATMUL

    def test_boundary_tensors_only(self):
        mm = matmul_spec("mm", 8, 16, 32)
        add = elementwise_spec("a", OpKind.ADD, (8, 32))
        fused = make_fused_spec("f", [mm, add])
        assert fused.input_specs == mm.input_specs
        assert fused.output_spec == add.output_spec

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            make_fused_spec("f", [])

    def test_non_fused_members_is_self(self):
        mm = matmul_spec("mm", 8, 16, 16)
        assert fused_members(mm) == [mm]


class TestFuseGraph:
    def test_preserves_compute_and_params(self):
        g = _transformer()
        fused = fuse_graph(g)
        assert fused.total_flops == g.total_flops
        assert fused.total_params == g.total_params

    def test_reduces_node_count(self):
        g = _transformer()
        assert len(fuse_graph(g)) < len(g)

    def test_hierarchical_never_fused(self):
        fused = fuse_graph(_transformer())
        for node in fused.nodes():
            if is_fused(node.spec):
                members = fused_members(node.spec)
                assert all(m.op_class is not OpClass.HIERARCHICAL for m in members)

    def test_acyclic_after_fusion(self):
        fused = fuse_graph(_transformer(blocks=3))
        for node in fused.nodes():
            for parent in node.inputs:
                assert parent.index < node.index

    def test_max_group_respected(self):
        fused = fuse_graph(_transformer(), max_group=2)
        for node in fused.nodes():
            assert len(fused_members(node.spec)) <= 2

    def test_stats(self):
        fused = fuse_graph(_transformer())
        stats = fusion_stats(fused)
        assert stats["fused_nodes"] > 0
        assert stats["absorbed_members"] >= stats["fused_nodes"]


class TestUnfuse:
    def test_two_member_split(self):
        mm = matmul_spec("mm", 8, 16, 16)
        gelu = elementwise_spec("g", OpKind.GELU, (8, 16))
        parts = unfuse_node(make_fused_spec("f", [mm, gelu]))
        assert [p.name for p in parts] == ["mm", "g"]

    def test_three_member_split_keeps_head_fused(self):
        mm = matmul_spec("mm", 8, 16, 16)
        add = elementwise_spec("a", OpKind.ADD, (8, 16))
        gelu = elementwise_spec("g", OpKind.GELU, (8, 16))
        head, tail = unfuse_node(make_fused_spec("f", [mm, add, gelu]))
        assert is_fused(head)
        assert [m.name for m in fused_members(head)] == ["mm", "a"]
        assert tail.name == "g"

    def test_unfused_spec_passthrough(self):
        mm = matmul_spec("mm", 8, 16, 16)
        assert unfuse_node(mm) == [mm]

    def test_split_conserves_flops_weights(self):
        mm = matmul_spec("mm", 64, 256, 256, bias=True)
        gelu = elementwise_spec("g", OpKind.GELU, (64, 256), flops_per_elem=8)
        fused = make_fused_spec("f", [mm, gelu])
        parts = unfuse_node(fused)
        assert sum(p.flops for p in parts) == fused.flops
        assert sum(p.weight_bytes for p in parts) == fused.weight_bytes


class TestSplitFeasibility:
    def test_reusable_elemental_split_gains_capacity(self, capacity):
        mm = matmul_spec("mm", 128, 1024, 1024)
        gelu = elementwise_spec("g", OpKind.GELU, (128, 1024), flops_per_elem=8)
        fused = make_fused_spec("f", [mm, gelu])
        result = split_feasible(fused, capacity, alpha=0.25)
        assert result is not None
        head, tail = result
        gained = capacity.capacity_bytes(head) + capacity.capacity_bytes(tail)
        assert gained >= 1.25 * capacity.capacity_bytes(fused)

    def test_non_fused_returns_none(self, capacity):
        assert split_feasible(matmul_spec("m", 8, 8, 8), capacity) is None


class TestApplySplits:
    def test_replaces_node_with_chain(self, capacity):
        g = fuse_graph(_transformer())
        target = next(n for n in g.nodes() if is_fused(n.spec))
        parts = unfuse_node(target.spec)
        g2 = apply_splits(g, {target.name: (parts[0], parts[1])})
        assert len(g2) == len(g) + 1
        assert g2.total_flops == g.total_flops
        for node in g2.nodes():
            for parent in node.inputs:
                assert parent.index < node.index


class TestAdaptivePlanner:
    def test_plan_pressure_in_unit_range(self, capacity):
        g = _transformer()
        cfg = OpgConfig(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)
        plan = LcOpgSolver(cfg).solve(g, capacity)
        pressure = plan_pressure(plan, g)
        assert 0.0 <= pressure <= 1.0

    def test_penalties_only_for_fused(self, capacity):
        g = fuse_graph(_transformer())
        cfg = OpgConfig(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)
        plan = LcOpgSolver(cfg).solve(g, capacity)
        for p in fusion_penalties(g, plan):
            assert is_fused(g.node(p.node).spec)
            assert p.score > 0

    def test_adaptive_never_worse_than_aggressive(self, capacity):
        g = _transformer(blocks=3)
        cfg = OpgConfig(time_limit_s=1.5, max_nodes_per_window=200, chunk_bytes=8 * 1024)
        solver = LcOpgSolver(cfg)
        aggressive = fuse_graph(g)
        base_plan = solver.solve(aggressive, capacity)
        planner = AdaptiveFusionPlanner(solver, capacity, max_iterations=3)
        _, plan, report = planner.plan(g)
        assert plan_pressure(plan, aggressive) <= plan_pressure(base_plan, aggressive) + 1e-9
        assert report.pressure_history
