"""Equivalence: incremental (reuse-on) adaptive fusion ≡ from-scratch.

The acceptance bar for the window-reuse cache: across the adaptive-fusion
loop, plans produced with the cache enabled must be *identical* — same
schedules, same per-iteration solver statuses, same preload sets — to
plans produced by solving every window from scratch. Any divergence means
a fingerprint under-keys some solver input.

Runs the real planner (not synthetic windows) over 3 models x 2 devices
at a fast config, plus one large-model case at the experiment config
where replay is known to actually fire.
"""

import dataclasses

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.fusion.adaptive import AdaptiveFusionPlanner
from repro.gpusim.device import get_device
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.models.zoo import load_model
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig

FAST = OpgConfig(time_limit_s=1.5, max_nodes_per_window=300)

CASES = [
    ("ResNet50", "OnePlus 12"),
    ("ResNet50", "Pixel 8"),
    ("ViT", "OnePlus 12"),
    ("ViT", "Pixel 8"),
    ("GPTN-S", "OnePlus 12"),
    ("GPTN-S", "Pixel 8"),
]


def _plan(model, device, config):
    graph = eliminate_layout_ops(load_model(model))
    capacity = analytic_capacity_model(get_device(device))
    solver = LcOpgSolver(config)
    planner = AdaptiveFusionPlanner(solver, capacity, max_iterations=4)
    fused, plan, report = planner.plan(graph, device_name=device)
    return fused, plan, report, solver


def _preload_set(plan):
    return {name for name, sched in plan.schedules.items() if sched.preloaded}


@pytest.mark.parametrize("model,device", CASES, ids=[f"{m}-{d}" for m, d in CASES])
def test_plans_identical_with_and_without_reuse(model, device):
    on_cfg = FAST
    off_cfg = dataclasses.replace(FAST, window_reuse=False)
    fused_on, plan_on, report_on, solver_on = _plan(model, device, on_cfg)
    fused_off, plan_off, report_off, solver_off = _plan(model, device, off_cfg)

    assert solver_on.window_cache is not None
    assert solver_off.window_cache is None

    # Same fusion trajectory...
    assert report_on.iterations == report_off.iterations
    assert report_on.splits_applied == report_off.splits_applied
    assert fused_on.num_layers == fused_off.num_layers
    # ...the identical final plan...
    assert plan_on.schedules == plan_off.schedules
    assert _preload_set(plan_on) == _preload_set(plan_off)
    assert plan_on.stats.solver_status == plan_off.stats.solver_status
    # ...and identical per-iteration solver outcomes along the way.
    statuses_on = [r["status"] for r in report_on.solver_iterations]
    statuses_off = [r["status"] for r in report_off.solver_iterations]
    assert statuses_on == statuses_off
    windows_on = [r["windows"] for r in report_on.solver_iterations]
    windows_off = [r["windows"] for r in report_off.solver_iterations]
    assert windows_on == windows_off
    # The reuse-off run must really have replayed nothing.
    assert report_off.total_windows_reused == 0


def test_reuse_fires_on_iterating_large_model():
    """GPTN-2.7B at the experiment config iterates enough for stable
    windows to replay — the case the cache exists for."""
    config = OpgConfig(time_limit_s=3.0, max_nodes_per_window=500)
    _, plan_on, report_on, solver_on = _plan("GPTN-2.7B", "OnePlus 12", config)
    _, plan_off, _, _ = _plan(
        "GPTN-2.7B", "OnePlus 12", dataclasses.replace(config, window_reuse=False)
    )
    assert report_on.total_windows_reused > 0
    assert solver_on.window_cache.hits == report_on.total_windows_reused
    assert 0.0 < report_on.window_reuse_rate < 1.0
    assert plan_on.schedules == plan_off.schedules
    assert plan_on.stats.solver_status == plan_off.stats.solver_status
