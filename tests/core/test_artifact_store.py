"""Tests for the content-addressed artifact store."""

import multiprocessing
import pickle

import pytest

from repro.core.store import ARTIFACT_SCHEMA_VERSION, ArtifactStore, stable_fingerprint

KEY = {"kind": "flashmem-run", "model": "ViT", "device": "OnePlus 12", "config": "abc"}


class TestAddressing:
    def test_fingerprint_stable_and_sensitive(self):
        assert stable_fingerprint({"a": 1}) == stable_fingerprint({"a": 1})
        assert stable_fingerprint({"a": 1}) != stable_fingerprint({"a": 2})
        # Sets are canonicalised, so insertion order is irrelevant.
        assert stable_fingerprint({"s": {"x", "y"}}) == stable_fingerprint({"s": {"y", "x"}})

    def test_paths_partition_by_kind_and_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.path_for(KEY)
        b = store.path_for({**KEY, "model": "ResNet50"})
        c = store.path_for({**KEY, "kind": "compiled"})
        assert a.parent.name == "flashmem-run"
        assert c.parent.name == "compiled"
        assert len({a, b, c}) == 3

    def test_schema_version_addresses_fresh_entries(self, tmp_path):
        old = ArtifactStore(tmp_path, schema=ARTIFACT_SCHEMA_VERSION)
        new = ArtifactStore(tmp_path, schema=ARTIFACT_SCHEMA_VERSION + 1)
        old.save(KEY, {"v": 1})
        assert new.load(KEY) is None  # plain miss, not a quarantine
        assert new.stats.corrupt == 0


class TestRoundTrip:
    def test_miss_then_hit_bit_for_bit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = {"latency": 123.456789, "samples": [(0.0, 0), (1.5, 2**31)]}
        assert store.load(KEY) is None
        store.save(KEY, value)
        loaded = ArtifactStore(tmp_path).load(KEY)  # fresh instance = fresh process view
        assert pickle.dumps(loaded) == pickle.dumps(value)
        assert store.stats.snapshot() == {"hits": 0, "misses": 1, "stores": 1, "corrupt": 0}

    def test_atomic_save_leaves_no_tmp(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(KEY, list(range(100)))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_contains(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert not store.contains(KEY)
        store.save(KEY, 1)
        assert store.contains(KEY)
        assert len(store) == 1

    def test_load_many_matches_individual_loads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [{**KEY, "model": m} for m in ("ViT", "ResNet50", "GPTN-S")]
        store.save(keys[0], "a")
        store.save(keys[2], "c")
        assert store.load_many(keys) == ["a", None, "c"]
        assert store.stats.hits == 2 and store.stats.misses == 1
        assert store.load_many([]) == []

    def test_publish_bytes_round_trips_envelope(self, tmp_path):
        """publish_bytes of one store's envelope is loadable from another."""
        src = ArtifactStore(tmp_path / "src")
        dst = ArtifactStore(tmp_path / "dst")
        path = src.save(KEY, {"v": [1, 2, 3]})
        dst.publish_bytes(KEY, path.read_bytes())
        assert dst.load(KEY) == {"v": [1, 2, 3]}
        assert dst.stats.stores == 1 and dst.stats.corrupt == 0


class TestQuarantine:
    def test_corrupt_entry_quarantined_with_warning(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(KEY, {"v": 1})
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt artifact"):
            assert store.load(KEY) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.stats.corrupt == 1
        # Re-saving works and the entry is readable again.
        store.save(KEY, {"v": 2})
        assert store.load(KEY) == {"v": 2}

    def test_key_mismatch_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A validly pickled envelope whose key does not match its address.
        path.write_bytes(pickle.dumps({"schema": store.schema, "key": {"kind": "other"},
                                       "value": 42}))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.load(KEY) is None
        assert store.stats.corrupt == 1


def _hammer_store(root, worker_id, iterations):
    store = ArtifactStore(root)
    for i in range(iterations):
        store.save(KEY, {"worker": worker_id, "i": i, "pad": list(range(500))})


class TestConcurrency:
    def test_racing_writers_never_corrupt(self, tmp_path):
        """Two processes hammering the same key: the entry always loads."""
        procs = [
            multiprocessing.Process(target=_hammer_store, args=(tmp_path, w, 50))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        loaded = ArtifactStore(tmp_path).load(KEY)
        assert loaded is not None and loaded["worker"] in (0, 1) and loaded["i"] == 49
        assert not list(tmp_path.rglob("*.corrupt"))
