"""Tests for the plan store and the command-line interface."""

import json

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.cli import main as cli_main
from repro.core.store import PlanStore, config_fingerprint
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.problem import OpgConfig


def _model(name="store-test"):
    b = GraphBuilder(name)
    b.embedding(16, 500, 128)
    b.transformer_block(16, 128, 4)
    return b.finish()


FAST = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=8 * 1024)


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint(OpgConfig()) == config_fingerprint(OpgConfig())

    def test_sensitive_to_hyperparameters(self):
        assert config_fingerprint(OpgConfig()) != config_fingerprint(OpgConfig(lam=0.5))
        assert config_fingerprint(OpgConfig()) != config_fingerprint(
            OpgConfig(m_peak_bytes=1 << 20)
        )

    def test_hint_order_irrelevant(self):
        a = OpgConfig(preload_hint_weights=frozenset({"x", "y"}))
        b = OpgConfig(preload_hint_weights=frozenset({"y", "x"}))
        assert config_fingerprint(a) == config_fingerprint(b)


class TestPlanStore:
    def test_miss_then_hit(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model()
        assert store.load(graph.name, "OnePlus 12", FAST) is None
        plan = store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        cached = store.load(graph.name, "OnePlus 12", FAST)
        assert cached is not None
        assert cached.schedules.keys() == plan.schedules.keys()

    def test_get_or_solve_uses_cache(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model()
        first = store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        again = store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        # Cache hit: identical serialized artifacts (not just equal plans).
        assert again.to_json() == first.to_json()

    def test_different_configs_stored_separately(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model()
        other = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=16 * 1024)
        store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        store.get_or_solve(graph, capacity, other, device_name="OnePlus 12")
        assert len(store.entries()) == 2

    def test_corrupt_artifact_quarantined(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model()
        path = store.save(
            store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12"), FAST
        )
        path.write_text(json.dumps({"nonsense": True}))
        # Corrupt artifact: a miss, but quarantined visibly — not silently
        # re-parsed (and re-missed) on every subsequent launch.
        with pytest.warns(RuntimeWarning, match="quarantined corrupt artifact"):
            assert store.load(graph.name, "OnePlus 12", FAST) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.entries() == []  # quarantined files leave the entry listing
        # The next get_or_solve re-solves once and persists a fresh artifact.
        plan = store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        assert store.load(graph.name, "OnePlus 12", FAST) is not None
        assert plan.model == graph.name

    def test_weird_names_sanitized(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model(name="weird/model name!")
        path = store.save(
            store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12"), FAST
        )
        assert path.exists()
        assert "/" not in path.name

    def test_save_is_atomic(self, tmp_path):
        store = PlanStore(tmp_path)
        capacity = analytic_capacity_model(oneplus_12())
        graph = _model()
        plan = store.get_or_solve(graph, capacity, FAST, device_name="OnePlus 12")
        path = store.save(plan, FAST)
        # No .tmp sibling left behind, and the artifact parses whole.
        assert not list(tmp_path.glob("*.tmp"))
        assert json.loads(path.read_text())["model"] == graph.name
        # A .tmp straggler (crash mid-write) must not surface as an entry.
        (tmp_path / (path.name + ".tmp")).write_text("{partial")
        assert len(store.entries()) == 1


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "GPTN-S" in out and "OnePlus 12" in out and "table7" in out

    def test_run_with_baseline(self, capsys):
        code = cli_main(
            ["run", "ResNet50", "--baseline", "SMem", "--time-limit", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FlashMem:" in out and "SMem:" in out and "Speedup" in out

    def test_run_unsupported_baseline_model(self, capsys):
        code = cli_main(["run", "ViT", "--baseline", "NCNN", "--time-limit", "1"])
        assert code == 0
        assert "not supported" in capsys.readouterr().out

    def test_plan_export(self, tmp_path, capsys):
        out_file = tmp_path / "plan.json"
        code = cli_main(["plan", "ResNet50", "--time-limit", "1", "--out", str(out_file)])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["model"] == "ResNet50"
        assert payload["schedules"]

    def test_plan_solver_stats(self, capsys):
        code = cli_main(["plan", "ResNet50", "--time-limit", "1", "--solver-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Solver stats" in out
        assert "nodes/s" in out

    def test_run_solver_stats(self, capsys):
        code = cli_main(["run", "ResNet50", "--time-limit", "1", "--solver-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Solver stats" in out
        assert "windows replayed from cache" in out
        assert "compiled in" in out

    def test_profile_compile(self, capsys):
        code = cli_main(
            ["profile", "compile", "ResNet50", "oneplus12", "--top", "5", "--time-limit", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Profiling compile" in out
        assert "OnePlus 12" in out  # alias resolved to the canonical preset
        assert "cumulative" in out
        assert "compile finished in" in out

    def test_device_alias_accepted_by_run(self, capsys):
        code = cli_main(["run", "ResNet50", "--device", "PIXEL-8", "--time-limit", "1"])
        assert code == 0
        assert "Pixel 8" in capsys.readouterr().out

    def test_experiment_command(self, capsys, tmp_path):
        assert cli_main(["experiment", "table5", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "cache:" in out and "1 stored" in out

    def test_experiment_warm_rerun_hits_cache(self, capsys, tmp_path):
        assert cli_main(["experiment", "table5", "--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert cli_main(["experiment", "table5", "--cache-dir", str(tmp_path)]) == 0
        second = capsys.readouterr().out
        assert "[cached]" in second and "1 hits" in second
        # The rendered table itself is byte-for-byte identical.
        assert first.split("\n\n")[0] == second.split("\n\n")[0]

    def test_experiment_no_cache_bypasses_store(self, capsys, tmp_path):
        code = cli_main(["experiment", "table5", "--no-cache",
                         "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache: disabled (--no-cache)" in out
        assert not list(tmp_path.rglob("*.pkl"))

    def test_experiment_results_dir(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        code = cli_main(["experiment", "table5", "--no-cache",
                         "--results-dir", str(out_dir)])
        assert code == 0
        assert "Table 5" in (out_dir / "table5.txt").read_text()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
