"""Tests for the FlashMem facade and configuration."""

import pytest

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.graph.builder import GraphBuilder
from repro.graph.ops import OpClass
from repro.gpusim.device import oneplus_12
from repro.opg.problem import OpgConfig


def _model(blocks=2, dim=128, seq=16):
    b = GraphBuilder("facade-test")
    b.embedding(seq, 500, dim)
    for _ in range(blocks):
        b.transformer_block(seq, dim, 4)
    return b.finish()


def _fast(**kw) -> FlashMemConfig:
    base = dict(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)
    base.update(kw)
    return FlashMemConfig(opg=OpgConfig(**base))


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


class TestConfig:
    def test_presets(self):
        mem = FlashMemConfig.memory_priority()
        lat = FlashMemConfig.latency_priority()
        assert mem.opg.lam == 0.9
        assert lat.opg.lam > mem.opg.lam

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FlashMemConfig(capacity_backend="transformer")


class TestCompile:
    @pytest.fixture(scope="class")
    def compiled(self, device):
        return FlashMem(_fast()).compile(_model(), device)

    def test_artifacts_present(self, compiled):
        assert compiled.plan.schedules
        assert len(compiled.bundle) == len(compiled.graph)
        assert compiled.fusion_report is not None

    def test_layout_ops_eliminated(self, compiled):
        assert all(n.op_class is not OpClass.LAYOUT for n in compiled.graph.nodes())

    def test_fusion_disabled_skips_report(self, device):
        cfg = _fast()
        cfg.use_adaptive_fusion = False
        compiled = FlashMem(cfg).compile(_model(), device)
        assert compiled.fusion_report is None

    def test_target_preload_ratio_forwarded(self, device):
        fm = FlashMem(_fast())
        low = fm.compile(_model(), device, target_preload_ratio=0.0)
        high = fm.compile(_model(), device, target_preload_ratio=0.9)
        assert high.preload_ratio > low.preload_ratio

    def test_gbt_backend_defaults_to_zoo_profile_set(self, device):
        """Without explicit profile_graphs, gbt trains over the model zoo
        via the read-through capacity cache (one train per process)."""
        cfg = _fast()
        cfg.capacity_backend = "gbt"
        capacity = FlashMem(cfg).capacity_model(device)
        assert capacity.backend == "gbt"
        assert capacity.report is not None and capacity.report.n_samples > 0
        # Second request is the in-process cached instance.
        assert FlashMem(cfg).capacity_model(device) is capacity

    def test_gbt_backend_end_to_end(self, device):
        cfg = _fast()
        cfg.capacity_backend = "gbt"
        fm = FlashMem(cfg)
        capacity = fm.capacity_model(device, profile_graphs=[_model()])
        result = fm.compile_and_run(_model(), device, capacity=capacity)
        assert result.latency_ms > 0


class TestRun:
    def test_compile_and_run(self, device):
        result = FlashMem(_fast()).compile_and_run(_model(), device)
        assert result.latency_ms > 0
        assert result.runtime == "FlashMem"
        assert result.memory.peak_bytes > 0

    def test_ablation_ordering(self, device):
        """Full pipeline <= no-rewriting <= ... on latency (Figure 7 shape)."""
        full_cfg = _fast()
        no_rw = _fast()
        no_rw.use_kernel_rewriting = False
        full = FlashMem(full_cfg).compile_and_run(_model(blocks=3), device)
        partial = FlashMem(no_rw).compile_and_run(_model(blocks=3), device)
        assert full.latency_ms <= partial.latency_ms

    def test_iterations_scale_streaming_phase(self, device):
        fm = FlashMem(_fast())
        compiled = fm.compile(_model(), device)
        one = fm.run(compiled, iterations=1)
        four = fm.run(compiled, iterations=4)
        assert four.latency_ms > one.latency_ms
        exec_one = one.latency_ms - one.details["preload_end_ms"]
        exec_four = four.latency_ms - four.details["preload_end_ms"]
        assert exec_four > 3 * exec_one  # streaming repeats per iteration

    def test_public_api_surface(self):
        import repro

        assert hasattr(repro, "FlashMem")
        assert hasattr(repro, "FlashMemConfig")
        assert hasattr(repro, "load_model")
        assert hasattr(repro, "oneplus_12")
        assert repro.__version__
