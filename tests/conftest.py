"""Test-suite collection hooks.

``benchsmoke``-marked tests (quick capped passes over the benchmark
suite, see ``tests/test_benchsmoke.py``) are skipped unless explicitly
selected with ``pytest -m benchsmoke`` — the tier-1 suite must stay fast
and dependency-light.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="")
    if markexpr and "benchsmoke" in markexpr:
        return
    skip = pytest.mark.skip(reason="benchsmoke suite: select with -m benchsmoke")
    for item in items:
        if "benchsmoke" in item.keywords:
            item.add_marker(skip)
