"""End-to-end socket-protocol tests: ``repro serve`` + client round trips.

These run a real daemon (in-process on the test's event loop — no
subprocess spawn cost) and exercise the JSON-lines protocol through
:class:`ServiceClient`, plus one true subprocess pass through the CLI's
``repro serve`` / ``repro compile --via-service`` path.
"""

import asyncio
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments import common
from repro.service.request import CompileRequest, execute_compile
from repro.service.server import ServiceClient, run_server


@pytest.fixture(autouse=True)
def _isolate_caches():
    common.clear_caches()
    yield
    common.clear_caches()
    common.swap_store(None)


REQUEST = CompileRequest(model="ViT", time_limit_s=0.5)


@pytest.fixture()
def served_socket(tmp_path):
    """A live daemon on a unix socket, served from a background thread."""
    socket_path = str(tmp_path / "svc.sock")
    ready = threading.Event()
    stop_holder = {}

    def serve():
        async def main():
            stop = asyncio.Event()
            stop_holder["stop"] = stop
            stop_holder["loop"] = asyncio.get_running_loop()
            await run_server(socket_path, workers=0,
                             cache_dir=str(tmp_path / "cache"),
                             ready=ready.set, stop=stop)

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=60), "service never came up"
    yield socket_path
    stop_holder["loop"].call_soon_threadsafe(stop_holder["stop"].set)
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestProtocol:
    def test_ping_stats_compile_round_trip(self, served_socket):
        with ServiceClient(served_socket) as client:
            assert client.ping()["ok"]
            response = client.compile(REQUEST)
            assert response["source"] == "compiled"
            assert response["solver_status"] in ("OPTIMAL", "FEASIBLE")
            stats = client.stats()["stats"]
            assert stats["requests"] == 1 and stats["compiles"] == 1

    def test_served_plan_matches_direct_compile(self, served_socket):
        direct = execute_compile(REQUEST)
        with ServiceClient(served_socket) as client:
            response = client.compile(REQUEST)
        served = response["plan"]
        served.pop("stats", None)
        expected = json.loads(direct.plan.to_json())
        expected.pop("stats", None)
        assert (json.dumps(served, sort_keys=True)
                == json.dumps(expected, sort_keys=True))

    def test_repeat_request_served_from_store(self, served_socket):
        with ServiceClient(served_socket) as client:
            assert client.compile(REQUEST)["source"] == "compiled"
            assert client.compile(REQUEST)["source"] == "store"

    def test_malformed_and_failing_requests_keep_connection_alive(self, served_socket):
        with ServiceClient(served_socket) as client:
            assert not client.request({"op": "no-such-op"})["ok"]
            assert not client.request({"op": "compile"})["ok"]  # lacks model
            bad = client.request({"op": "compile", "model": "NoSuchModel"})
            assert not bad["ok"] and "NoSuchModel" in bad["error"]
            # Same connection still serves real work afterwards.
            assert client.compile(REQUEST)["ok"]

    def test_concurrent_connections_coalesce(self, served_socket):
        results = []

        def one_client():
            with ServiceClient(served_socket) as client:
                results.append(client.compile(REQUEST))

        threads = [threading.Thread(target=one_client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(results) == 4
        with ServiceClient(served_socket) as client:
            stats = client.stats()["stats"]
        # 4 requests, at most one compile; the rest coalesced or hit the
        # store (arrival timing decides which).
        assert stats["requests"] == 4
        assert stats["compiles"] <= 1
        assert stats["coalesced"] + stats["store_hits"] >= 3


class TestCliSubprocess:
    def test_serve_and_compile_via_service(self, tmp_path):
        """`repro serve` in a subprocess, `repro compile --via-service` client."""
        socket_path = str(tmp_path / "cli.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
             "--workers", "0", "--cache-dir", str(tmp_path / "cache")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            while not os.path.exists(socket_path):
                assert server.poll() is None, server.stdout.read()
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.1)
            out_path = tmp_path / "plan.json"
            client = subprocess.run(
                [sys.executable, "-m", "repro", "compile", "ViT",
                 "--time-limit", "0.5", "--via-service", socket_path,
                 "--out", str(out_path)],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert client.returncode == 0, client.stdout + client.stderr
            assert "served from compiled" in client.stdout
            plan = json.loads(out_path.read_text())
            assert plan["schedules"], "plan JSON should carry schedules"
        finally:
            server.terminate()
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
