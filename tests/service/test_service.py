"""Tests for the plan-compilation service: requests, stores, dedup, failures.

The coalescing tests drive the service in inline mode (``workers=0``),
where compiles run in-process — the seam that lets a test monkeypatch the
solver path and *count* invocations, proving K identical concurrent
requests cost exactly one compile.
"""

import asyncio
import pickle
import threading

import pytest

from repro.core.store import ArtifactStore, stable_fingerprint
from repro.experiments import common
from repro.service import (
    CompilePool,
    CompileRequest,
    PlanCompilationService,
    ReadThroughStore,
    ServiceClosed,
    ServiceError,
    compile_many,
    execute_compile,
)
from repro.service.request import DEFAULT_TIME_LIMIT_S


@pytest.fixture(autouse=True)
def _isolate_caches():
    common.clear_caches()
    yield
    common.clear_caches()
    common.swap_store(None)


# A tiny model keeps every compile in these tests well under a second.
MODEL = "ViT"


def _request(**overrides) -> CompileRequest:
    fields = {"model": MODEL, "device": "OnePlus 12", "time_limit_s": 0.5}
    fields.update(overrides)
    return CompileRequest(**fields)


class TestCompileRequest:
    def test_normalization_resolves_device_aliases(self):
        alias = CompileRequest(model=MODEL, device="oneplus12").normalized()
        canonical = CompileRequest(model=MODEL, device="OnePlus 12").normalized()
        assert alias == canonical
        assert alias.dedup_token() == canonical.dedup_token()

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            CompileRequest(model=MODEL, device="Nokia 3310").normalized()

    def test_invalid_budgets_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CompileRequest(model=MODEL, time_limit_s=0.0)
        with pytest.raises(ValueError):
            CompileRequest(model=MODEL, context_len=-1)

    def test_budget_axes_address_distinct_artifacts(self):
        base = _request().store_key()
        assert _request(time_limit_s=1.0).store_key() != base
        assert _request(lam=0.5).store_key() != base
        assert _request(context_len=128).store_key() != base
        assert _request(target_preload_ratio=0.4).store_key() != base
        assert _request().store_key() == base

    def test_default_request_addresses_experiment_artifacts(self):
        """A default-budget service shares the experiment pipeline's cache."""
        request = CompileRequest(model=MODEL).normalized()
        assert request.store_key() == common.compile_key(MODEL, "OnePlus 12")

    def test_payload_round_trip(self):
        request = _request(lam=0.7, context_len=64, target_preload_ratio=0.3)
        assert CompileRequest.from_payload(request.to_payload()) == request
        # Defaults are omitted from the wire form.
        assert CompileRequest(model=MODEL).to_payload() == {
            "model": MODEL, "device": "OnePlus 12",
        }
        with pytest.raises(ValueError):
            CompileRequest.from_payload({"device": "OnePlus 12"})

    def test_dedup_token_is_store_key_fingerprint(self):
        request = _request()
        assert request.dedup_token() == stable_fingerprint(request.store_key())

    def test_capacity_backend_axis(self):
        gbt = _request(capacity_backend="gbt")
        assert gbt.store_key() != _request().store_key()
        assert CompileRequest.from_payload(gbt.to_payload()) == gbt
        # The default backend is omitted from the wire form.
        assert "capacity_backend" not in _request().to_payload()
        with pytest.raises(ValueError):
            CompileRequest(model=MODEL, capacity_backend="xgboost")


class TestReadThroughStore:
    KEY = {"kind": "compiled", "model": MODEL, "device": "OnePlus 12", "config": "x"}

    def test_private_hit_without_touching_shared(self, tmp_path):
        store = ReadThroughStore(tmp_path / "private", tmp_path / "shared")
        store.save(self.KEY, {"v": 1})
        assert store.load(self.KEY) == {"v": 1}
        assert store.shared.stats.hits == 0
        assert not store.shared.contains(self.KEY)

    def test_shared_fallback_fills_private(self, tmp_path):
        store = ReadThroughStore(tmp_path / "private", tmp_path / "shared")
        store.shared.save(self.KEY, {"v": 2})
        assert store.load(self.KEY) == {"v": 2}
        # The fill is a byte copy: the next read is private-local.
        assert store.private.contains(self.KEY)
        assert (store.private.path_for(self.KEY).read_bytes()
                == store.shared.path_for(self.KEY).read_bytes())
        shared_hits = store.shared.stats.hits
        assert store.load(self.KEY) == {"v": 2}
        assert store.shared.stats.hits == shared_hits

    def test_writes_stay_private(self, tmp_path):
        store = ReadThroughStore(tmp_path / "private", tmp_path / "shared")
        store.save(self.KEY, {"v": 3})
        assert store.contains(self.KEY)
        assert not store.shared.contains(self.KEY)
        assert store.stats.stores == 1

    def test_miss_counts_once_at_facade(self, tmp_path):
        store = ReadThroughStore(tmp_path / "private", tmp_path / "shared")
        assert store.load(self.KEY) is None
        assert store.stats.misses == 1
        assert store.load_many([self.KEY, self.KEY]) == [None, None]


def _count_compiles(monkeypatch):
    """Wrap ``execute_compile`` where the pool worker resolves it."""
    from repro.service import pool as pool_mod
    from repro.service import request as request_mod

    calls = []
    real = request_mod.execute_compile

    def counting(request):
        calls.append(request)
        return real(request)

    monkeypatch.setattr(request_mod, "execute_compile", counting)
    return calls


class TestCoalescing:
    def test_k_identical_requests_cost_one_compile(self, monkeypatch, tmp_path):
        calls = _count_compiles(monkeypatch)
        requests = [_request() for _ in range(6)]
        replies = compile_many(requests, workers=0, cache_dir=tmp_path)
        assert len(calls) == 1
        canon = {r.plan.canonical_json() for r in replies}
        assert len(canon) == 1  # every waiter got the identical plan
        assert sum(r.coalesced for r in replies) == len(requests) - 1
        assert [r.source for r in replies] == ["compiled"] * len(requests)

    def test_served_plan_byte_identical_to_direct_compile(self, tmp_path):
        direct = execute_compile(_request())
        (reply,) = compile_many([_request()], workers=0, cache_dir=tmp_path)
        assert reply.plan.canonical_json() == direct.plan.canonical_json()

    def test_mixed_batch_compiles_each_unique_request_once(self, monkeypatch, tmp_path):
        calls = _count_compiles(monkeypatch)
        requests = [_request(), _request(lam=0.5), _request(), _request(lam=0.5)]
        replies = compile_many(requests, workers=0, cache_dir=tmp_path)
        assert len(calls) == 2
        assert sum(r.coalesced for r in replies) == 2

    def test_second_round_served_from_store(self, monkeypatch, tmp_path):
        calls = _count_compiles(monkeypatch)
        compile_many([_request()], workers=0, cache_dir=tmp_path)
        (reply,) = compile_many([_request()], workers=0, cache_dir=tmp_path)
        assert len(calls) == 1
        assert reply.source == "store"

    def test_storeless_service_still_coalesces(self, monkeypatch):
        calls = _count_compiles(monkeypatch)
        replies = compile_many([_request() for _ in range(4)], workers=0,
                               cache_dir=None)
        assert len(calls) == 1
        assert len({r.plan.canonical_json() for r in replies}) == 1

    def test_late_duplicate_attaches_to_inflight_compile(self, monkeypatch, tmp_path):
        """A request arriving while its twin compiles must not pay a second
        compile: it attaches to the in-flight entry's waiter list."""
        from repro.service import request as request_mod

        real = request_mod.execute_compile
        started = threading.Event()
        release = threading.Event()
        calls = []

        def gated(request):
            calls.append(request)
            started.set()
            release.wait(timeout=30)
            return real(request)

        monkeypatch.setattr(request_mod, "execute_compile", gated)

        async def go():
            async with PlanCompilationService(workers=0, cache_dir=tmp_path) as svc:
                first = asyncio.ensure_future(svc.submit(_request()))
                await asyncio.get_running_loop().run_in_executor(None, started.wait)
                # The compile is now in flight on the pool thread; this
                # duplicate lands in a later batch and must attach to it.
                second = asyncio.ensure_future(svc.submit(_request()))
                await asyncio.sleep(0.05)
                release.set()
                replies = await asyncio.gather(first, second)
                return replies, svc.stats.snapshot()

        (r1, r2), stats = asyncio.run(go())
        assert len(calls) == 1
        assert stats["coalesced"] == 1 and stats["compiles"] == 1
        assert r1.plan.canonical_json() == r2.plan.canonical_json()
        assert r2.coalesced


class TestFailureInjection:
    def test_poisoned_request_fails_without_wedging_the_queue(self, tmp_path):
        """An unknown model fails its own waiters; the service keeps serving."""
        async def go():
            async with PlanCompilationService(workers=0, cache_dir=tmp_path) as svc:
                bad = svc.submit(CompileRequest(model="NoSuchModel",
                                                time_limit_s=0.5))
                good = svc.submit(_request())
                results = await asyncio.gather(bad, good, return_exceptions=True)
                follow_up = await svc.submit(_request(lam=0.9))
                return results, follow_up, svc.stats.snapshot()

        (bad_result, good_result), follow_up, stats = asyncio.run(go())
        assert isinstance(bad_result, ServiceError)
        assert "NoSuchModel" in str(bad_result)
        assert not isinstance(good_result, Exception)
        assert follow_up.plan is not None
        assert stats["failures"] == 1
        assert stats["requests"] == 3

    def test_poisoned_duplicates_all_observe_the_failure(self, tmp_path):
        async def go():
            async with PlanCompilationService(workers=0, cache_dir=tmp_path) as svc:
                bads = [svc.submit(CompileRequest(model="NoSuchModel",
                                                  time_limit_s=0.5))
                        for _ in range(3)]
                results = await asyncio.gather(*bads, return_exceptions=True)
                return results, svc.stats.snapshot()

        results, stats = asyncio.run(go())
        assert all(isinstance(r, ServiceError) for r in results)
        assert stats["failures"] == 1  # one compile failed, three waiters told

    def test_invalid_device_fails_fast_before_queueing(self, tmp_path):
        async def go():
            async with PlanCompilationService(workers=0, cache_dir=tmp_path) as svc:
                with pytest.raises(ServiceError, match="invalid request"):
                    await svc.submit(CompileRequest(model=MODEL,
                                                    device="Nokia 3310"))
                return svc.stats.snapshot()

        stats = asyncio.run(go())
        assert stats["requests"] == 0

    def test_submit_after_close_raises_service_closed(self, tmp_path):
        async def go():
            svc = PlanCompilationService(workers=0, cache_dir=tmp_path)
            async with svc:
                pass
            with pytest.raises(ServiceClosed):
                await svc.submit(_request())

        asyncio.run(go())


class TestInlinePoolHygiene:
    def test_inline_pool_scopes_and_restores_global_store(self, tmp_path):
        sentinel = ArtifactStore(tmp_path / "host")
        previous = common.swap_store(sentinel)
        assert previous is None
        try:
            with CompilePool(workers=0, cache_dir=tmp_path / "svc") as pool:
                pool.prewarm()
                assert common.cache_store() is not sentinel
            assert common.cache_store() is sentinel
        finally:
            common.swap_store(previous)

    def test_pool_close_on_exception_path(self, tmp_path):
        sentinel = common.cache_store()
        with pytest.raises(RuntimeError, match="boom"):
            with CompilePool(workers=0, cache_dir=tmp_path) as pool:
                pool.prewarm()
                raise RuntimeError("boom")
        assert common.cache_store() is sentinel


class TestProcessPoolService:
    """One end-to-end pass through the real process pool (slower: spawns)."""

    def test_worker_compiles_daemon_publishes(self, tmp_path):
        replies = compile_many(
            [_request(), _request()], workers=1, cache_dir=tmp_path
        )
        assert {r.source for r in replies} == {"compiled"}
        assert sum(r.coalesced for r in replies) == 1
        assert all(r.worker_pid is not None for r in replies)
        # The daemon published the worker's envelope into the shared store…
        shared = ArtifactStore(tmp_path)
        key = _request().normalized().store_key()
        assert shared.contains(key)
        # …byte-identical to the worker's private copy.
        worker_dir = tmp_path / "worker-local"
        private_copies = list(worker_dir.rglob(shared.path_for(key).name))
        assert len(private_copies) == 1
        assert private_copies[0].read_bytes() == shared.path_for(key).read_bytes()
        # A fresh service round trips it from the store without compiling.
        (warm,) = compile_many([_request()], workers=1, cache_dir=tmp_path)
        assert warm.source == "store"
        assert warm.plan.canonical_json() == replies[0].plan.canonical_json()
