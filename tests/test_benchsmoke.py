"""Benchsmoke: capped quick pass over the benchmark suite.

``pytest -m benchsmoke`` exercises every ``benchmarks/test_*.py`` without
paying the full measurement cost:

- every benchmark module is imported (module-level wiring — workload
  tables, cache paths, seed-emulation helpers — executes and must be
  sound);
- the measurement pipelines this PR's infrastructure owns (solver
  microbench, sweep runner, portfolio) additionally *run* under tiny
  time/node caps, checking result structure rather than perf bars.

Deselected by default (see ``tests/conftest.py``), so the tier-1 suite
stays fast.
"""

import importlib.util
import pathlib
import sys

import pytest

pytestmark = pytest.mark.benchsmoke

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(p for p in BENCH_DIR.glob("test_*.py"))


def _load_bench_module(path: pathlib.Path):
    """Import one benchmarks/test_*.py with the benchmarks dir importable
    (they do ``from conftest import ...``)."""
    sys.path.insert(0, str(BENCH_DIR))
    try:
        name = f"benchsmoke_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(BENCH_DIR))


@pytest.mark.parametrize("path", BENCH_MODULES, ids=lambda p: p.stem)
def test_bench_module_loads(path):
    module = _load_bench_module(path)
    # Every bench module exposes at least one pytest entry point.
    assert any(name.startswith("test_") for name in dir(module))


def test_solver_microbench_quick():
    """Three-way engine comparison structure under a tiny node cap."""
    from repro.opg.cpsat.bench import WORKLOAD, run_throughput_benchmark

    result = run_throughput_benchmark(time_limit_s=0.5, max_nodes=500)
    for side in ("trail", "queue", "naive"):
        assert len(result[side]["windows"]) == len(WORKLOAD)
    assert result["speedup_nodes_per_sec"] > 0
    assert result["speedup_vs_queue"] > 0
    assert len(result["per_window_speedup"]) == len(WORKLOAD)


def test_sweep_prewarm_quick():
    """Pool pre-warm + reuse + close mechanics (no cell workload)."""
    from repro.sweep.runner import SweepRunner

    runner = SweepRunner(jobs=2, cache_dir=None)
    runner.prewarm(barrier_s=0.01)
    try:
        assert runner._pool is not None
        report = runner.run([])
        assert report.outcomes == [] and not report.failures
    finally:
        runner.close()
    assert runner._pool is None


def test_decode_ab_quick():
    """Decode extrapolation A/B structure in-process under a small token
    count (the full bench runs 1000 tokens in subprocesses)."""
    from repro.core.flashmem import FlashMem
    from repro.experiments import common
    from repro.gpusim.device import get_device
    from repro.graph.models import load_decode_model
    from repro.runtime.scenario import Scenario

    fm = FlashMem(common.experiment_flashmem_config())
    compiled = fm.compile(
        load_decode_model("GPTN-S", context_len=512), get_device("OnePlus 12")
    )
    scenario = Scenario.decode(tokens=32, context_len=512)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert fast.latency_ms == full.latency_ms
    assert fast.peak_memory_bytes == full.peak_memory_bytes
    assert fast.details["replayed_tokens"] > 0
    assert full.details["replayed_tokens"] == 0


def test_capacity_ab_quick(tmp_path):
    """Capacity pipeline A/B structure in-process at small scale: batched
    lockstep queries ≡ the sequential oracle, and a warm store-cached
    reload retrains nothing (the full bench measures the fit/query/compile
    bars in subprocesses; see benchmarks/test_capacity_throughput.py)."""
    from repro.capacity import cache as capacity_cache
    from repro.core.store import ArtifactStore
    from repro.fusion.fuser import fuse_graph
    from repro.graph.models import load_model

    previous = capacity_cache.set_capacity_store(ArtifactStore(tmp_path))
    capacity_cache.clear_capacity_cache()
    try:
        kwargs = dict(models=("GPTN-S",), max_ops_per_model=8)
        trains0 = capacity_cache.STATS["trains"]
        model = capacity_cache.trained_capacity_model("OnePlus 12", **kwargs)
        ops = [n.spec for n in fuse_graph(load_model("GPTN-S")).nodes()]
        batch = model.capacity_bytes_batch(ops)
        assert batch == [model.capacity_bytes_oracle(op) for op in ops]
        assert model.stats["batch_predicts"] < 4 * len(ops)
        capacity_cache.clear_capacity_cache()
        warm = capacity_cache.trained_capacity_model("OnePlus 12", **kwargs)
        assert capacity_cache.STATS["trains"] == trains0 + 1
        assert warm.capacity_bytes_batch(ops) == batch
    finally:
        capacity_cache.set_capacity_store(previous)
        capacity_cache.clear_capacity_cache()


def test_fleet_ab_quick():
    """Fleet replay A/B structure on a capped trace: memoized ≡ naive,
    far fewer simulations (the full bench runs 1000 invocations in
    subprocesses; see benchmarks/test_fleet_throughput.py)."""
    from repro.fleet.episode import EpisodeProvider
    from repro.fleet.replay import replay_trace
    from repro.fleet.trace import generate_trace
    from repro.runtime.scenario import Scenario

    mix = (
        ("ViT", Scenario.prefill(1), 1, 3.0),
        ("ResNet50", Scenario.prefill(1), 0, 1.0),
    )
    trace = generate_trace(
        seed=9, duration_s=60, rate_per_min=40, mix=mix, name="smoke"
    )
    memo = replay_trace(trace, "OnePlus 12", "FlashMem")
    naive = replay_trace(
        trace, "OnePlus 12", "FlashMem", provider=EpisodeProvider(memoize=False)
    )
    assert memo.canonical_json() == naive.canonical_json()
    assert memo.episodes_simulated < naive.episodes_simulated
    assert memo.invocations == len(trace.invocations)


def test_service_dedup_quick(tmp_path):
    """Inline-mode service pass: K duplicates coalesce to one compile and
    a rerun is a pure store hit (the full bench measures the wall-clock
    dedup bar and scale-out; see benchmarks/test_service_scaleout.py)."""
    from repro.experiments import common
    from repro.service import CompileRequest, compile_many

    common.clear_caches()
    try:
        requests = [CompileRequest(model="ViT", time_limit_s=0.5)] * 4
        replies = compile_many(requests, workers=0, cache_dir=tmp_path)
        assert sum(r.coalesced for r in replies) == 3
        assert len({r.plan.canonical_json() for r in replies}) == 1
        (warm,) = compile_many(requests[:1], workers=0, cache_dir=tmp_path)
        assert warm.source == "store"
    finally:
        common.clear_caches()
        common.swap_store(None)


def test_service_pool_prewarm_quick(tmp_path):
    """Process-pool prewarm + dispatch + close mechanics for the service
    pool (mirrors test_sweep_prewarm_quick)."""
    from repro.service import CompilePool, CompileRequest

    with CompilePool(workers=1, cache_dir=tmp_path) as pool:
        pool.prewarm(barrier_s=0.01)
        payload = CompileRequest(model="ViT", time_limit_s=0.5).to_payload()
        reply = pool.submit(payload).result(timeout=300)
        assert reply["source"] == "compiled"
        assert reply["path"] is not None and reply["pid"] is not None
    assert pool._pool is None


def test_portfolio_quick():
    """Portfolio solve under tiny caps: status/objective sane, memo hit."""
    from repro.opg.cpsat.bench import build_window_model
    from repro.opg.cpsat.portfolio import PortfolioCpSolver
    from repro.opg.cpsat.search import CpSolver

    model = build_window_model(6, 10, 6, 11)
    base = CpSolver(time_limit_s=2.0, max_nodes=5000).solve(
        build_window_model(6, 10, 6, 11)
    )
    solution = PortfolioCpSolver(time_limit_s=2.0, max_nodes=5000, k=3).solve(model)
    assert solution.status.value in ("OPTIMAL", "FEASIBLE")
    assert solution.values == base.values
