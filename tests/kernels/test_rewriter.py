"""Tests for kernel rewriting: templates, programs, and bundle generation."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.kernels.codegen import BRANCH_DIVERGENCE_PENALTY, ExecStyle, KernelProgram
from repro.kernels.rewriter import KernelRewriter, transform_kernel_source
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


@pytest.fixture(scope="module")
def compiled():
    """A small transformer plus its plan and bundle."""
    b = GraphBuilder("t")
    b.embedding(16, 500, 128)
    for _ in range(2):
        b.transformer_block(16, 128, 4)
    graph = b.finish()
    capacity = analytic_capacity_model(oneplus_12())
    cfg = OpgConfig(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)
    plan = LcOpgSolver(cfg).solve(graph, capacity)
    bundle = KernelRewriter().rewrite_graph(graph, plan)
    return graph, plan, bundle


class TestBundle:
    def test_program_per_layer(self, compiled):
        graph, _, bundle = compiled
        assert len(bundle) == len(graph)

    def test_embedded_bytes_match_streamed(self, compiled):
        _, plan, bundle = compiled
        streamed = sum(
            s.nbytes for s in plan.schedules.values()
            if not s.preloaded and not s.dedicated_transform
        )
        assert bundle.total_embedded_bytes() == streamed

    def test_layers_with_segments_are_pipelined(self, compiled):
        graph, plan, bundle = compiled
        for idx, program in bundle.programs.items():
            if program.embedded_load_bytes > 0:
                assert program.style is ExecStyle.PIPELINED
            else:
                assert program.style is ExecStyle.RESIDENT

    def test_styles_summary(self, compiled):
        _, _, bundle = compiled
        styles = bundle.styles()
        assert styles.get(ExecStyle.PIPELINED, 0) > 0

    def test_resident_rewriter_ignores_plan(self, compiled):
        graph, plan, _ = compiled
        bundle = KernelRewriter(style=ExecStyle.RESIDENT).rewrite_graph(graph, plan)
        assert bundle.total_embedded_bytes() == 0


class TestGeneratedSource:
    def test_pipelined_source_structure(self, compiled):
        _, _, bundle = compiled
        program = next(
            p for p in bundle.programs.values()
            if p.style is ExecStyle.PIPELINED and "fma" in p.source
        )
        # Figure 5(b) structure: prologue prefetch, commit, next prefetch,
        # epilogue — and no conditional branches in the loop body.
        assert "Prologue" in program.source
        assert "Epilogue" in program.source
        assert "staged_weights" in program.source
        body = program.source.split("for (int t = 0")[1]
        assert "if (" not in body.split("Epilogue")[0]

    def test_branchy_source_has_divergent_branch(self, compiled):
        graph, plan, _ = compiled
        bundle = KernelRewriter(style=ExecStyle.BRANCHY).rewrite_graph(graph, plan)
        branchy = [p for p in bundle.programs.values() if p.style is ExecStyle.BRANCHY]
        assert branchy
        assert any("DIVERGENT" in p.source for p in branchy)

    def test_kernel_names_sanitized(self, compiled):
        _, _, bundle = compiled
        for program in bundle.programs.values():
            assert program.name.startswith("k_")
            assert all(c.isalnum() or c == "_" for c in program.name)

    def test_transform_kernel_source(self):
        src = transform_kernel_source("weird/name.w", 1 << 20)
        assert "__kernel" in src
        assert "1048576" in src


class TestProgramCosting:
    def test_resident_matches_base_cost(self, device, compiled):
        graph, _, _ = compiled
        node = next(n for n in graph.nodes() if n.spec.flops > 0)
        program = KernelRewriter(style=ExecStyle.RESIDENT).rewrite_node(node, 0)
        from repro.gpusim.kernels import KernelCostModel

        assert program.time_ms(device) == pytest.approx(
            KernelCostModel(device).base_time_ms(node.spec)
        )

    def test_pipelined_cheaper_than_branchy(self, device, compiled):
        graph, _, _ = compiled
        node = next(n for n in graph.nodes() if n.spec.weights and n.spec.flops > 0)
        nbytes = 512 * 1024
        pipelined = KernelRewriter(style=ExecStyle.PIPELINED).rewrite_node(node, nbytes)
        branchy = KernelRewriter(style=ExecStyle.BRANCHY).rewrite_node(node, nbytes)
        assert branchy.time_ms(device) > pipelined.time_ms(device)
        assert branchy.time_ms(device) == pytest.approx(
            pipelined.time_ms(device) * (1 + BRANCH_DIVERGENCE_PENALTY)
        )

    def test_embedded_load_costs_time(self, device, compiled):
        graph, _, _ = compiled
        node = next(n for n in graph.nodes() if n.spec.flops > 0)
        rewriter = KernelRewriter()
        free = rewriter.rewrite_node(node, 0)
        loaded = rewriter.rewrite_node(node, 4 << 20)
        assert loaded.time_ms(device) > free.time_ms(device)
