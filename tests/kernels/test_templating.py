"""Tests for the minimal template engine (Jinja substitute)."""

import pytest

from repro.kernels.templating import Template, TemplateError


class TestSubstitution:
    def test_simple_variable(self):
        assert Template("hello {{ name }}").render(name="world") == "hello world"

    def test_dotted_lookup_dict_and_attr(self):
        class Obj:
            field = 7

        t = Template("{{ a.b }} {{ o.field }}")
        assert t.render(a={"b": 3}, o=Obj()) == "3 7"

    def test_int_literal(self):
        assert Template("{{ 42 }}").render() == "42"

    def test_string_literal(self):
        assert Template("{{ 'hi' }}").render() == "hi"

    def test_undefined_variable_raises(self):
        with pytest.raises(TemplateError):
            Template("{{ missing }}").render()

    def test_bad_attribute_raises(self):
        with pytest.raises(TemplateError):
            Template("{{ a.nope }}").render(a={"b": 1})


class TestForLoops:
    def test_iterates(self):
        t = Template("{% for x in xs %}[{{ x }}]{% endfor %}")
        assert t.render(xs=[1, 2, 3]) == "[1][2][3]"

    def test_loop_metadata(self):
        t = Template("{% for x in xs %}{{ loop.index0 }}:{{ x }};{% endfor %}")
        assert t.render(xs=["a", "b"]) == "0:a;1:b;"

    def test_nested_loops(self):
        t = Template("{% for r in rows %}{% for c in r %}{{ c }}{% endfor %}|{% endfor %}")
        assert t.render(rows=[[1, 2], [3]]) == "12|3|"

    def test_scoping_restored(self):
        t = Template("{% for x in xs %}{{ x }}{% endfor %}{{ x }}")
        assert t.render(xs=[1], x="outer") == "1outer"

    def test_unterminated_raises(self):
        with pytest.raises(TemplateError):
            Template("{% for x in xs %}{{ x }}")


class TestConditionals:
    def test_if_true_false(self):
        t = Template("{% if flag %}yes{% else %}no{% endif %}")
        assert t.render(flag=True) == "yes"
        assert t.render(flag=False) == "no"

    def test_elif_chain(self):
        t = Template("{% if a %}A{% elif b %}B{% else %}C{% endif %}")
        assert t.render(a=False, b=True) == "B"
        assert t.render(a=False, b=False) == "C"

    def test_not_operator(self):
        t = Template("{% if not flag %}off{% endif %}")
        assert t.render(flag=False) == "off"
        assert t.render(flag=True) == ""

    def test_equality_comparison(self):
        t = Template("{% if mode == 'fast' %}F{% endif %}")
        assert t.render(mode="fast") == "F"
        assert t.render(mode="slow") == ""

    def test_inequality_with_literal(self):
        t = Template("{% if n != 0 %}nonzero{% endif %}")
        assert t.render(n=3) == "nonzero"
        assert t.render(n=0) == ""

    def test_unknown_tag_raises(self):
        with pytest.raises(TemplateError):
            Template("{% macro x %}{% endmacro %}")

    def test_unterminated_if_raises(self):
        with pytest.raises(TemplateError):
            Template("{% if a %}x")
