"""Tests for the preloading and FlashMem executors on the simulator."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12, xiaomi_mi6
from repro.kernels.codegen import ExecStyle
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import MNN, SMARTMEM, get_profile
from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor


def _model(blocks=2, dim=256, seq=32, name="t"):
    b = GraphBuilder(name)
    b.embedding(seq, 2000, dim)
    for _ in range(blocks):
        b.transformer_block(seq, dim, 4)
    return b.finish()


def _conv_model():
    b = GraphBuilder("conv")
    b.embedding(4, 4, 4)
    b.conv(32, 32, 4, 32, 3)
    b.batchnorm((32, 32, 32), 32)
    b.activation((32, 32, 32))
    b.conv(32, 32, 32, 64, 3)
    return b.finish()


FAST = OpgConfig(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


@pytest.fixture(scope="module")
def capacity(device):
    return analytic_capacity_model(device)


@pytest.fixture(scope="module")
def plan(capacity):
    return LcOpgSolver(FAST).solve(_model(), capacity, device_name="OnePlus 12")


class TestPreloadExecutor:
    def test_phases_sum_to_semantics(self, device):
        result = PreloadExecutor(SMARTMEM, device).run(_model(), check_support=False)
        assert result.phases.setup > 0
        assert result.phases.load > 0
        assert result.phases.transform > 0
        assert result.phases.execute > 0
        assert result.latency_ms >= result.details["init_ms"]

    def test_init_dominates_for_preloaders(self, device):
        result = PreloadExecutor(SMARTMEM, device).run(_model(), check_support=False)
        assert result.details["init_ms"] > result.details["exec_per_iter_ms"]

    def test_support_matrix_enforced(self, device):
        g = _model(name="GPTN-2.7B")
        with pytest.raises(ModelNotSupportedError):
            PreloadExecutor(SMARTMEM, device).run(g)

    def test_support_check_can_be_skipped(self, device):
        g = _model(name="GPTN-2.7B")
        result = PreloadExecutor(SMARTMEM, device).run(g, check_support=False)
        assert result.latency_ms > 0

    def test_iterations_add_exec_only(self, device):
        one = PreloadExecutor(SMARTMEM, device).run(_model(), check_support=False, iterations=1)
        three = PreloadExecutor(SMARTMEM, device).run(_model(), check_support=False, iterations=3)
        assert three.details["init_ms"] == pytest.approx(one.details["init_ms"])
        assert three.latency_ms > one.latency_ms

    def test_memory_timeline_monotone_peak(self, device):
        result = PreloadExecutor(MNN, device).run(_model(), check_support=False)
        samples = result.memory.samples
        assert all(t1 <= t2 for (t1, _), (t2, _) in zip(samples, samples[1:]))
        assert result.peak_memory_bytes >= result.avg_memory_bytes

    def test_fp32_staging_increases_memory(self, device):
        g = _model()
        plain = PreloadExecutor(SMARTMEM, device).run(g, check_support=False)
        tvm = PreloadExecutor(get_profile("TVM"), device).run(g, check_support=False)
        assert tvm.peak_memory_bytes > plain.peak_memory_bytes

    def test_no_texture_framework_has_no_transform(self, device):
        result = PreloadExecutor(get_profile("ETorch"), device).run(_model(name="ViT"))
        assert result.phases.transform == 0

    def test_oom_on_tiny_device(self):
        tiny = xiaomi_mi6().scaled(ram_bytes=256 * 1024 * 1024)
        result = PreloadExecutor(SMARTMEM, tiny).run(_model(), check_support=False)
        assert result.details.get("oom") == 1.0


class TestFlashMemExecutor:
    def test_integrated_latency_beats_smartmem_cold(self, device, capacity, plan):
        g = _model()
        flash = FlashMemExecutor(device).run(g, plan)
        smem = PreloadExecutor(SMARTMEM, device).run(g, check_support=False)
        assert flash.latency_ms < smem.latency_ms

    def test_average_memory_beats_smartmem(self, device, plan):
        g = _model()
        flash = FlashMemExecutor(device).run(g, plan)
        smem = PreloadExecutor(SMARTMEM, device).run(g, check_support=False)
        assert flash.avg_memory_bytes < smem.avg_memory_bytes

    def test_all_memory_released_at_end(self, device, plan):
        g = _model()
        result = FlashMemExecutor(device).run(g, plan)
        assert result.memory.samples[-1][1] == 0

    def test_no_rewriting_is_slower(self, device, plan):
        g = _model()
        with_rw = FlashMemExecutor(device, rewriting=True).run(g, plan)
        without = FlashMemExecutor(device, rewriting=False).run(g, plan)
        assert without.latency_ms > with_rw.latency_ms

    def test_branchy_style_slower_than_pipelined(self, device, plan):
        g = _model()
        pipelined = FlashMemExecutor(device, style=ExecStyle.PIPELINED).run(g, plan)
        branchy = FlashMemExecutor(device, style=ExecStyle.BRANCHY).run(g, plan)
        assert branchy.latency_ms > pipelined.latency_ms

    def test_warm_start_crossover(self, device, capacity, plan):
        """SmartMem eventually wins on many consecutive same-model runs
        (paper §5.2: after 3-12 iterations)."""
        g = _model(blocks=4)
        big_plan = LcOpgSolver(FAST).solve(g, capacity)
        for n in (1, 64):
            flash = FlashMemExecutor(device).run(g, big_plan, iterations=n)
            smem = PreloadExecutor(SMARTMEM, device).run(g, check_support=False, iterations=n)
            if n == 1:
                assert flash.latency_ms < smem.latency_ms
            else:
                assert smem.latency_ms < flash.latency_ms

    def test_details_expose_plan_stats(self, device, plan):
        result = FlashMemExecutor(device).run(_model(), plan)
        assert 0.0 <= result.details["preload_ratio"] <= 1.0
        assert result.details["stall_ms"] >= 0
        assert result.details["preload_end_ms"] <= result.latency_ms

    def test_conv_weights_get_dedicated_transforms(self, device, capacity):
        g = _conv_model()
        conv_plan = LcOpgSolver(FAST).solve(g, capacity)
        result = FlashMemExecutor(device).run(g, conv_plan)
        assert result.details["dedicated_weights"] > 0
        assert result.details["winograd_ms"] > 0

    def test_energy_positive_and_bounded(self, device, plan):
        result = FlashMemExecutor(device).run(_model(), plan)
        assert result.energy_j > 0
        max_power = device.power.overlap_w
        assert result.energy_j <= max_power * result.latency_ms / 1e3 + 1e-9
