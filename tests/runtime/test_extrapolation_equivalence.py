"""Differential tests: steady-state iteration extrapolation is exact.

``FlashMemExecutor.run`` records iterations 1-2 as instruction traces and,
when they match (and alloc/free balance), replays the trace for iterations
>= 3 instead of re-simulating — re-executing the *same* float operations on
raw queue columns and the raw delta log.  The claim is byte-identity, not
approximation: every ``RunResult`` field except the volatile wall-clock
counters must be equal with extrapolation on and off.

Compiles here use a reduced solver budget — plan quality is irrelevant to
the equivalence property, only that both runs share one plan.
"""

import pytest

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.gpusim.device import get_device
from repro.graph.models import load_model
from repro.opg.problem import OpgConfig
from repro.runtime.scenario import Scenario

MODELS = ("ViT", "GPTN-S", "ResNet50")
DEVICES = ("OnePlus 12", "Pixel 8")
ITERATION_COUNTS = (1, 2, 7)

#: Wall-clock observability fields, excluded from the byte-identity check.
VOLATILE_DETAILS = {"sim_s", "pricing_hits", "pricing_misses", "replayed_iterations"}


@pytest.fixture(scope="module")
def fm():
    return FlashMem(FlashMemConfig(opg=OpgConfig(time_limit_s=1.5, max_nodes_per_window=300)))


@pytest.fixture(scope="module")
def compiled_models(fm):
    return {
        (model, device_name): fm.compile(load_model(model), get_device(device_name))
        for model in MODELS
        for device_name in DEVICES
    }


def assert_results_identical(fast, full):
    assert fast.model == full.model and fast.device == full.device
    assert fast.latency_ms == full.latency_ms
    assert fast.phases == full.phases
    assert fast.memory.samples == full.memory.samples
    assert fast.peak_memory_bytes == full.peak_memory_bytes
    assert fast.avg_memory_bytes == full.avg_memory_bytes
    assert fast.energy_j == full.energy_j
    assert fast.avg_power_w == full.avg_power_w
    fast_details = {k: v for k, v in fast.details.items() if k not in VOLATILE_DETAILS}
    full_details = {k: v for k, v in full.details.items() if k not in VOLATILE_DETAILS}
    assert fast_details == full_details


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("device_name", DEVICES)
@pytest.mark.parametrize("iterations", ITERATION_COUNTS)
def test_extrapolation_byte_identical(fm, compiled_models, model, device_name, iterations):
    compiled = compiled_models[(model, device_name)]
    scenario = Scenario.prefill(iterations)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert_results_identical(fast, full)
    replayed = fast.details.get("replayed_iterations", 0.0)
    if iterations > 3:
        # Steady state must actually have been detected and replayed.
        assert replayed == iterations - 3
    else:
        assert replayed == 0.0


def test_extrapolation_composes_with_scalar_pricing(fm, compiled_models):
    """All four (tables, extrapolate) combinations agree bitwise."""
    compiled = compiled_models[("ViT", "OnePlus 12")]
    results = [
        fm.run(compiled, scenario=Scenario.prefill(6),
               use_cost_tables=tables, extrapolate=extrapolate)
        for tables in (True, False)
        for extrapolate in (True, False)
    ]
    reference = results[0]
    for other in results[1:]:
        assert_results_identical(other, reference)
