"""Tests for the framework profiles and their Table 7 support matrix."""

import pytest

from repro.graph.models import EVALUATED_MODELS
from repro.runtime.frameworks import (
    BASELINE_ORDER,
    EXECUTORCH,
    FRAMEWORK_PROFILES,
    LITERT,
    MNN,
    NCNN,
    SMARTMEM,
    TVM,
    get_profile,
)


class TestRegistry:
    def test_six_baselines_in_paper_order(self):
        assert BASELINE_ORDER == ["MNN", "NCNN", "TVM", "LiteRT", "ETorch", "SMem"]
        assert set(FRAMEWORK_PROFILES) == set(BASELINE_ORDER)

    def test_lookup(self):
        assert get_profile("MNN") is MNN
        with pytest.raises(KeyError):
            get_profile("ONNXRuntime")


class TestSupportMatrix:
    """Mirrors Table 7's '-' entries exactly."""

    def test_nobody_supports_gptn_2_7b(self):
        for profile in FRAMEWORK_PROFILES.values():
            assert not profile.supports("GPTN-2.7B")

    def test_smartmem_supports_everything_else(self):
        for model in EVALUATED_MODELS:
            if model != "GPTN-2.7B":
                assert SMARTMEM.supports(model)

    def test_ncnn_conv_only(self):
        assert NCNN.supports("ResNet50")
        for model in ("ViT", "GPTN-S", "Whisp-M", "SAM-2"):
            assert not NCNN.supports(model)

    def test_litert_matrix(self):
        assert LITERT.supports("ViT") and LITERT.supports("DeepViT")
        assert not LITERT.supports("GPTN-S")
        assert not LITERT.supports("SD-UNet")

    def test_etorch_matrix(self):
        assert EXECUTORCH.supports("GPTN-1.3B") and EXECUTORCH.supports("SAM-2")
        assert not EXECUTORCH.supports("Whisp-M")
        assert not EXECUTORCH.supports("DepA-L")

    def test_mnn_tvm_lack_large_models(self):
        for profile in (MNN, TVM):
            assert not profile.supports("GPTN-1.3B")
            assert not profile.supports("SAM-2")
        assert MNN.supports("SD-UNet")
        assert not TVM.supports("SD-UNet")


class TestProfileCharacteristics:
    def test_smartmem_is_the_efficiency_reference(self):
        assert SMARTMEM.exec_efficiency == 1.0
        assert SMARTMEM.conv_exec_efficiency == 1.0

    def test_etorch_has_no_texture_path(self):
        assert not EXECUTORCH.uses_texture
        assert EXECUTORCH.exec_efficiency < 0.01

    def test_conv_frameworks_have_strong_conv_paths(self):
        for profile in (MNN, NCNN):
            assert profile.conv_exec_efficiency > 1.0
            assert profile.exec_efficiency < 0.5

    def test_transform_is_the_bottleneck_for_preloaders(self):
        # Legacy layout transformation runs at a tiny fraction of the raw
        # texture-upload bandwidth (Table 1's "Trans." column).
        for profile in (MNN, NCNN, TVM, SMARTMEM):
            assert profile.transform_bw_factor < 0.1

    def test_static_planners_reserve_arena_at_start(self):
        assert TVM.arena_at_start and LITERT.arena_at_start
        assert not MNN.arena_at_start

    def test_all_load_factors_sane(self):
        for profile in FRAMEWORK_PROFILES.values():
            assert 0.0 < profile.load_bw_factor <= 1.0
            assert profile.baseline_mb > 0
