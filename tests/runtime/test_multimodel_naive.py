"""Tests for the FIFO multi-model pipeline and the naive overlap planners."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig, build_problem
from repro.opg.validate import validate_plan
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import MNN
from repro.runtime.multimodel import FifoPipeline, fifo_schedule
from repro.runtime.naive_overlap import AlwaysNextPlanner, SameOpTypePlanner
from repro.runtime.preload import PreloadExecutor

FAST = OpgConfig(time_limit_s=1.0, max_nodes_per_window=200, chunk_bytes=8 * 1024)


def _model(name, blocks=2, dim=128):
    b = GraphBuilder(name)
    b.embedding(16, 500, dim)
    for _ in range(blocks):
        b.transformer_block(16, dim, 4)
    return b.finish()


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


@pytest.fixture(scope="module")
def capacity(device):
    return analytic_capacity_model(device)


class TestFifoSchedule:
    def test_each_model_n_times(self):
        seq = fifo_schedule(["a", "b"], 3, seed=1)
        assert len(seq) == 6
        assert seq.count("a") == seq.count("b") == 3

    def test_seeded_deterministic(self):
        assert fifo_schedule(["a", "b", "c"], 4, seed=9) == fifo_schedule(["a", "b", "c"], 4, seed=9)

    def test_different_seeds_differ(self):
        a = fifo_schedule(["a", "b", "c", "d"], 5, seed=1)
        b = fifo_schedule(["a", "b", "c", "d"], 5, seed=2)
        assert a != b


class TestFifoPipeline:
    @pytest.fixture(scope="class")
    def session(self, device, capacity):
        models = {name: _model(name) for name in ("m1", "m2")}
        plans = {name: LcOpgSolver(FAST).solve(g, capacity) for name, g in models.items()}
        executor = FlashMemExecutor(device)
        pipeline = FifoPipeline(
            "FlashMem", device.name, lambda m: executor.run(models[m], plans[m])
        )
        return pipeline.run(fifo_schedule(["m1", "m2"], 3, seed=0))

    def test_invocation_count(self, session):
        assert len(session.invocations) == 6

    def test_clock_monotone(self, session):
        ends = [inv.end_ms for inv in session.invocations]
        assert ends == sorted(ends)
        assert session.total_ms == ends[-1]

    def test_memory_troughs_between_models(self, session):
        # At each boundary the finished model has torn down; only the next
        # model's process baseline (if any) remains at that instant.
        baseline = 100e6
        for inv in session.invocations[:-1]:
            assert session.memory.usage_at(inv.end_ms) <= baseline
        assert session.memory.usage_at(session.invocations[-1].end_ms) == 0

    def test_session_peak_is_max_of_invocations(self, session):
        assert session.peak_memory_bytes == max(i.peak_memory_bytes for i in session.invocations)

    def test_per_model_latency_query(self, session):
        assert len(session.latency_of("m1")) == 3

    def test_preloader_session_has_higher_peak(self, device, capacity, session):
        models = {name: _model(name) for name in ("m1", "m2")}
        mnn = FifoPipeline(
            "MNN",
            device.name,
            lambda m: PreloadExecutor(MNN, device).run(models[m], check_support=False),
        ).run(fifo_schedule(["m1", "m2"], 3, seed=0))
        assert mnn.peak_memory_bytes > session.peak_memory_bytes
        assert mnn.total_ms > session.total_ms


class TestArrivals:
    """Timed replay: overlapping sessions must sum, not zero each other."""

    @pytest.fixture(scope="class")
    def pipeline(self, device, capacity):
        models = {name: _model(name) for name in ("m1", "m2")}
        plans = {name: LcOpgSolver(FAST).solve(g, capacity) for name, g in models.items()}
        executor = FlashMemExecutor(device)
        return FifoPipeline(
            "FlashMem", device.name, lambda m: executor.run(models[m], plans[m])
        )

    def test_overlap_keeps_resident_memory(self, pipeline):
        solo = pipeline.run(["m1"])
        # Start m2 halfway through m1: at m1's end, m2 is still resident,
        # so the floor must NOT drop to zero (the seed's unconditional
        # record(end, 0) zeroed it).
        overlap = pipeline.run(["m1", "m2"], arrivals=[0.0, solo.total_ms / 2])
        first_end = overlap.invocations[0].end_ms
        assert overlap.invocations[1].start_ms < first_end
        assert overlap.memory.usage_at(first_end) > 0
        # After everything ends, the session does drain to zero.
        assert overlap.memory.usage_at(overlap.total_ms) == 0

    def test_idle_gap_still_drops_to_zero(self, pipeline):
        solo = pipeline.run(["m1"])
        gap_start = solo.total_ms + 500.0
        spaced = pipeline.run(["m1", "m2"], arrivals=[0.0, gap_start])
        assert spaced.memory.usage_at(solo.total_ms + 250.0) == 0

    def test_back_to_back_arrivals_match_default(self, pipeline):
        default = pipeline.run(["m1", "m2"])
        timed = pipeline.run(
            ["m1", "m2"], arrivals=[inv.start_ms for inv in default.invocations]
        )
        assert timed.memory.samples == default.memory.samples
        assert timed.total_ms == default.total_ms

    def test_arrival_validation(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.run(["m1", "m2"], arrivals=[0.0])
        with pytest.raises(ValueError):
            pipeline.run(["m1", "m2"], arrivals=[10.0, 0.0])


class TestNaivePlanners:
    def test_always_next_single_host(self, capacity):
        g = _model("g")
        plan = AlwaysNextPlanner(FAST).solve(g, capacity)
        for s in plan.schedules.values():
            if not s.preloaded:
                assert list(s.transforms) == [s.consumer_layer - 1]
                assert s.load_layer == s.consumer_layer - 1

    def test_always_next_covers_all_chunks(self, capacity):
        g = _model("g")
        plan = AlwaysNextPlanner(FAST).solve(g, capacity)
        for s in plan.schedules.values():
            if not s.preloaded:
                assert s.streamed_chunks == s.total_chunks

    def test_same_op_type_hosts_match_kind(self, capacity):
        g = _model("g")
        plan = SameOpTypePlanner(FAST).solve(g, capacity)
        nodes = g.nodes()
        for s in plan.schedules.values():
            if s.preloaded:
                continue
            consumer_kind = nodes[s.consumer_layer].kind
            for layer in s.transforms:
                assert nodes[layer].kind is consumer_kind

    def test_naive_plans_slower_than_lcopg(self, device, capacity):
        g = _model("g", blocks=3, dim=256)
        executor = FlashMemExecutor(device)
        ours = executor.run(g, LcOpgSolver(FAST).solve(g, capacity))
        always = executor.run(g, AlwaysNextPlanner(FAST).solve(g, capacity), runtime_name="AlwaysNext")
        assert always.latency_ms > ours.latency_ms

    def test_lcopg_valid_where_naive_is_not(self, capacity):
        # Always-Next ignores capacity: it should violate C3 on some layer,
        # while the LC-OPG plan validates clean.
        g = _model("g", blocks=3, dim=256)
        problem = build_problem(g, capacity, FAST)
        naive_errors = validate_plan(AlwaysNextPlanner(FAST).solve(g, capacity), problem)
        lcopg_errors = validate_plan(LcOpgSolver(FAST).solve(g, capacity), problem)
        assert any("C3" in e or "C2" in e for e in naive_errors)
        assert lcopg_errors == []
