"""Failure-injection tests: corrupted inputs and hostile conditions.

The runtime should fail loudly on inconsistent artifacts (wrong-model
plans, truncated schedules) and degrade gracefully under hostile device
conditions (starved disk, tiny RAM) rather than silently mis-accounting.
"""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import SMARTMEM
from repro.runtime.preload import PreloadExecutor

FAST = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=8 * 1024)


def _model(name="inj", blocks=2, dim=128):
    b = GraphBuilder(name)
    b.embedding(16, 500, dim)
    for _ in range(blocks):
        b.transformer_block(16, dim, 4)
    return b.finish()


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


@pytest.fixture(scope="module")
def capacity(device):
    return analytic_capacity_model(device)


class TestCorruptArtifacts:
    def test_wrong_model_plan_rejected(self, device, capacity):
        plan_small = LcOpgSolver(FAST).solve(_model(blocks=1), capacity)
        bigger = _model(blocks=3)
        with pytest.raises(ValueError, match="does not cover"):
            FlashMemExecutor(device).run(bigger, plan_small)

    def test_truncated_plan_rejected(self, device, capacity):
        g = _model()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        plan.schedules.pop(next(iter(plan.schedules)))
        with pytest.raises(ValueError, match="does not cover"):
            FlashMemExecutor(device).run(g, plan)

    def test_json_roundtripped_plan_still_executes(self, device, capacity):
        from repro.opg.plan import OverlapPlan

        g = _model()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        restored = OverlapPlan.from_json(plan.to_json())
        a = FlashMemExecutor(device).run(g, plan)
        b = FlashMemExecutor(device).run(g, restored)
        assert b.latency_ms == pytest.approx(a.latency_ms)
        assert b.peak_memory_bytes == a.peak_memory_bytes


class TestHostileDevices:
    def test_starved_disk_stretches_latency_not_memory(self, device, capacity):
        # Weight-heavy model so streaming dominates the timeline.
        g = _model("disk-bound", blocks=4, dim=512)
        plan = LcOpgSolver(FAST).solve(g, capacity)
        slow_disk = device.scaled(disk_bw=device.disk_bw / 50)
        fast = FlashMemExecutor(device).run(g, plan)
        slow = FlashMemExecutor(slow_disk).run(g, plan)
        assert slow.latency_ms > fast.latency_ms * 2
        # Streaming never buffers more just because the disk is slow.
        assert slow.peak_memory_bytes <= fast.peak_memory_bytes * 1.05

    def test_tiny_ram_flags_oom_without_crashing(self, capacity):
        tiny = oneplus_12().scaled(ram_bytes=128 * 1024 * 1024)
        g = _model()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        result = FlashMemExecutor(tiny).run(g, plan)
        assert result.details.get("oom") == 1.0
        # Accounting still balances even past the budget.
        assert result.memory.samples[-1][1] == 0

    def test_preloader_oom_raises_when_asked(self, capacity):
        from repro.gpusim.memory import OutOfMemoryError

        tiny = oneplus_12().scaled(ram_bytes=128 * 1024 * 1024)
        with pytest.raises(OutOfMemoryError):
            PreloadExecutor(SMARTMEM, tiny).run(_model(), check_support=False, raise_on_oom=True)

    def test_zero_capacity_device_still_produces_valid_plan(self, device):
        """A device whose kernels have no slack forces everything to
        preload — the planner must degrade to full preloading, not fail."""
        from repro.opg.problem import build_problem
        from repro.opg.validate import validate_plan

        crippled = device.scaled(tm_upload_bw=1.0)  # ~zero streaming bandwidth
        capacity = analytic_capacity_model(crippled)
        g = _model()
        plan = LcOpgSolver(FAST).solve(g, capacity)
        assert validate_plan(plan, build_problem(g, capacity, FAST)) == []
        assert plan.preload_ratio > 0.9
