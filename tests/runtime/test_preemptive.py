"""Tests for the preemptive-scheduling extension."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import SMARTMEM
from repro.runtime.preemptive import flashmem_resume_factory, run_preemption_episode
from repro.runtime.preload import PreloadExecutor

FAST = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=8 * 1024)


def _model(name, blocks=3, dim=256):
    b = GraphBuilder(name)
    b.embedding(32, 2000, dim)
    for _ in range(blocks):
        b.transformer_block(32, dim, 4)
    return b.finish()


@pytest.fixture(scope="module")
def setup():
    device = oneplus_12()
    capacity = analytic_capacity_model(device)
    victim_g = _model("victim", blocks=4)
    urgent_g = _model("urgent", blocks=1, dim=128)
    solver = LcOpgSolver(FAST)
    victim_plan = solver.solve(victim_g, capacity)
    urgent_plan = solver.solve(urgent_g, capacity)
    executor = FlashMemExecutor(device)
    flash_victim = lambda: executor.run(victim_g, victim_plan)
    flash_urgent = lambda: executor.run(urgent_g, urgent_plan)
    preloader = PreloadExecutor(SMARTMEM, device)
    smem_victim = lambda: preloader.run(victim_g, check_support=False)
    smem_urgent = lambda: preloader.run(urgent_g, check_support=False)
    return device, flash_victim, flash_urgent, smem_victim, smem_urgent


class TestEpisode:
    def test_rejects_bad_fraction(self, setup):
        _, fv, fu, *_ = setup
        with pytest.raises(ValueError):
            run_preemption_episode("x", fv, fu, preempt_fraction=1.5)

    def test_urgent_latency_counts_switch(self, setup):
        _, fv, fu, *_ = setup
        outcome = run_preemption_episode("FlashMem", fv, fu, switch_overhead_ms=7.0)
        assert outcome.urgent_start_delay_ms == 7.0
        assert outcome.urgent_completion_ms > 7.0

    def test_session_longer_than_sum_of_parts(self, setup):
        _, fv, fu, *_ = setup
        outcome = run_preemption_episode(
            "FlashMem", fv, fu,
            victim_resume=flashmem_resume_factory(fv, setup_ms=300.0),
        )
        assert outcome.session_ms > fv().latency_ms

    def test_flashmem_resume_cheaper_than_restart(self, setup):
        _, fv, fu, *_ = setup
        restart = run_preemption_episode("FlashMem-restart", fv, fu)
        resume = run_preemption_episode(
            "FlashMem-resume", fv, fu,
            victim_resume=flashmem_resume_factory(fv, setup_ms=300.0),
        )
        assert resume.session_ms < restart.session_ms

    def test_flashmem_preempts_with_less_memory_than_preloader(self, setup):
        _, fv, fu, sv, su = setup
        flash = run_preemption_episode(
            "FlashMem", fv, fu,
            victim_resume=flashmem_resume_factory(fv, setup_ms=300.0),
        )
        smem = run_preemption_episode("SMem", sv, su)
        # The preloader holds the victim's full weight set while the urgent
        # model initializes on top of it.
        assert smem.peak_memory_bytes > flash.peak_memory_bytes
        assert smem.session_ms > flash.session_ms

    def test_memory_timeline_well_formed(self, setup):
        _, fv, fu, *_ = setup
        outcome = run_preemption_episode(
            "FlashMem", fv, fu,
            victim_resume=flashmem_resume_factory(fv, setup_ms=300.0),
        )
        assert all(v >= 0 for _, v in outcome.memory.samples)
        assert outcome.peak_memory_bytes == outcome.memory.peak_bytes
