"""Scenario API: validation, registry, and the ``iterations=`` shim.

The executors' historical ``iterations=N`` keyword must keep producing
byte-identical results through the deprecation shim (with a warning),
while the ambiguous spelling — both ``scenario=`` and ``iterations=`` —
is rejected outright.
"""

import warnings

import pytest

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.gpusim.device import get_device
from repro.graph.models import load_model
from repro.opg.problem import OpgConfig
from repro.runtime.frameworks import get_profile
from repro.runtime.preload import PreloadExecutor
from repro.runtime.scenario import (
    Scenario,
    available_scenarios,
    make_scenario,
    resolve_scenario,
)

MODEL = "ViT"
DEVICE = "OnePlus 12"


@pytest.fixture(scope="module")
def fm():
    return FlashMem(FlashMemConfig(opg=OpgConfig(time_limit_s=1.0, max_nodes_per_window=300)))


@pytest.fixture(scope="module")
def compiled(fm):
    return fm.compile(load_model(MODEL), get_device(DEVICE))


# ------------------------------------------------------------- construction
def test_prefill_factory_defaults():
    s = Scenario.prefill()
    assert s.kind == "prefill" and s.iterations == 1 and not s.is_decode


def test_decode_factory():
    s = Scenario.decode(tokens=32, context_len=512)
    assert s.is_decode and s.tokens == 32 and s.context_len == 512


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind="prefill", iterations=0),
        dict(kind="prefill", tokens=4),
        dict(kind="prefill", context_len=4),
        dict(kind="decode"),
        dict(kind="decode", tokens=0),
        dict(kind="decode", tokens=4, context_len=-1),
        dict(kind="decode", tokens=4, iterations=2),
        dict(kind="warmup"),
    ],
)
def test_invalid_combinations_rejected(kwargs):
    with pytest.raises(ValueError):
        Scenario(**kwargs)


def test_scenarios_are_hashable_values():
    assert Scenario.prefill(3) == Scenario.prefill(3)
    assert len({Scenario.prefill(3), Scenario.prefill(3)}) == 1
    assert Scenario.prefill(1).cache_key() != Scenario.decode(tokens=1).cache_key()


def test_registry_backs_the_cli():
    kinds = available_scenarios()
    assert set(kinds) == {"prefill", "decode"}
    assert make_scenario("prefill", iterations=4) == Scenario.prefill(4)
    assert make_scenario("decode", tokens=8, context_len=16) == Scenario.decode(
        tokens=8, context_len=16
    )
    with pytest.raises(ValueError):
        make_scenario("decode")  # tokens required
    with pytest.raises(ValueError):
        make_scenario("prefill", tokens=8)
    with pytest.raises(ValueError):
        make_scenario("chat")


# ------------------------------------------------------------------- shims
def test_resolve_scenario_paths():
    assert resolve_scenario(None) == Scenario.prefill(1)
    assert resolve_scenario(Scenario.prefill(5)) == Scenario.prefill(5)
    assert resolve_scenario("prefill") == Scenario.prefill(1)
    with pytest.warns(DeprecationWarning, match="iterations= is deprecated"):
        assert resolve_scenario(None, iterations=7) == Scenario.prefill(7)
    with pytest.raises(ValueError):
        resolve_scenario(Scenario.prefill(2), iterations=2)


def test_flashmem_iterations_shim_identical(fm, compiled):
    """Old spelling: warns, but the result is byte-identical."""
    new = fm.run(compiled, scenario=Scenario.prefill(4))
    with pytest.warns(DeprecationWarning, match="iterations= is deprecated"):
        old = fm.run(compiled, iterations=4)
    assert old.latency_ms == new.latency_ms
    assert old.memory.samples == new.memory.samples
    assert old.energy_j == new.energy_j


def test_flashmem_scenario_does_not_warn(fm, compiled):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        fm.run(compiled, scenario=Scenario.prefill(2))


def test_flashmem_both_kwargs_rejected(fm, compiled):
    with pytest.raises(ValueError, match="not both"):
        fm.run(compiled, scenario=Scenario.prefill(2), iterations=2)


def test_preload_iterations_shim_identical():
    executor = PreloadExecutor(get_profile("MNN"), get_device(DEVICE))
    graph = load_model(MODEL)
    new = executor.run(graph, scenario=Scenario.prefill(3))
    with pytest.warns(DeprecationWarning, match="iterations= is deprecated"):
        old = executor.run(graph, iterations=3)
    assert old.latency_ms == new.latency_ms
    assert old.memory.samples == new.memory.samples
    with pytest.raises(ValueError, match="not both"):
        executor.run(graph, scenario=Scenario.prefill(3), iterations=3)
