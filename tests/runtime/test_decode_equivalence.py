"""Differential tests: decode steady-state extrapolation is exact.

``FlashMemExecutor._run_decode`` simulates tokens 1-3 of each
context-length segment, and — when tokens 2 and 3 produce matching
instruction traces — replays the trace for the segment's remaining tokens.
As with prefill extrapolation, the claim is byte-identity, not
approximation: every ``RunResult`` field except the volatile wall-clock
counters must agree with extrapolation disabled, across the whole
breakpoint structure (growing KV, the growing->capped transition, and the
capped steady state), on both runtimes' graphs.
"""

import pytest

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.gpusim.device import get_device
from repro.graph.models import load_decode_model
from repro.opg.problem import OpgConfig
from repro.runtime.frameworks import get_profile
from repro.runtime.preload import PreloadExecutor
from repro.runtime.scenario import Scenario

MODELS = ("GPTN-S", "GPTN-1.3B")
DEVICES = ("OnePlus 12", "Pixel 8")
CONTEXT = 512
TOKENS = 40  # several breakpoints deep at tile_tokens=256

VOLATILE_DETAILS = {"sim_s", "pricing_hits", "pricing_misses", "replayed_tokens"}


@pytest.fixture(scope="module")
def fm():
    return FlashMem(FlashMemConfig(opg=OpgConfig(time_limit_s=1.5, max_nodes_per_window=300)))


@pytest.fixture(scope="module")
def compiled_models(fm):
    return {
        (model, device_name): fm.compile(
            load_decode_model(model, context_len=CONTEXT), get_device(device_name)
        )
        for model in MODELS
        for device_name in DEVICES
    }


def assert_results_identical(fast, full):
    assert fast.model == full.model and fast.device == full.device
    assert fast.latency_ms == full.latency_ms
    assert fast.phases == full.phases
    assert fast.memory.samples == full.memory.samples
    assert fast.peak_memory_bytes == full.peak_memory_bytes
    assert fast.avg_memory_bytes == full.avg_memory_bytes
    assert fast.energy_j == full.energy_j
    assert fast.avg_power_w == full.avg_power_w
    fast_details = {k: v for k, v in fast.details.items() if k not in VOLATILE_DETAILS}
    full_details = {k: v for k, v in full.details.items() if k not in VOLATILE_DETAILS}
    assert fast_details == full_details


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("device_name", DEVICES)
def test_decode_extrapolation_byte_identical(fm, compiled_models, model, device_name):
    compiled = compiled_models[(model, device_name)]
    scenario = Scenario.decode(tokens=TOKENS, context_len=CONTEXT)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert_results_identical(fast, full)
    assert fast.details["replayed_tokens"] > 0
    assert full.details["replayed_tokens"] == 0
    assert fast.details["tokens"] == TOKENS


@pytest.mark.parametrize("tokens", (1, 2, 3, 5))
def test_short_decodes_byte_identical(fm, compiled_models, tokens):
    """Below/at the trace-recording threshold replay must not mis-engage."""
    compiled = compiled_models[("GPTN-S", "OnePlus 12")]
    scenario = Scenario.decode(tokens=tokens, context_len=CONTEXT)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert_results_identical(fast, full)


def test_decode_composes_with_scalar_pricing(fm, compiled_models):
    """All four (cost tables, extrapolate) combinations agree bitwise."""
    compiled = compiled_models[("GPTN-S", "OnePlus 12")]
    scenario = Scenario.decode(tokens=24, context_len=CONTEXT)
    results = [
        fm.run(compiled, scenario=scenario, use_cost_tables=tables, extrapolate=extrapolate)
        for tables in (True, False)
        for extrapolate in (True, False)
    ]
    reference = results[0]
    for other in results[1:]:
        assert_results_identical(other, reference)


def test_streamed_weight_decode_byte_identical(fm):
    """Forcing a partial preload exercises the streamed-weight decode path
    (per-token disk refetches) — replay must stay exact there too."""
    compiled = fm.compile(
        load_decode_model("GPTN-S", context_len=CONTEXT),
        get_device("OnePlus 12"),
        target_preload_ratio=0.6,
    )
    assert compiled.preload_ratio < 1.0
    scenario = Scenario.decode(tokens=TOKENS, context_len=CONTEXT)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert_results_identical(fast, full)


def test_zero_context_decode(fm, compiled_models):
    """Generation from an empty prompt starts with an empty cache."""
    compiled = compiled_models[("GPTN-S", "OnePlus 12")]
    scenario = Scenario.decode(tokens=12)
    fast = fm.run(compiled, scenario=scenario, extrapolate=True)
    full = fm.run(compiled, scenario=scenario, extrapolate=False)
    assert_results_identical(fast, full)


def test_decode_needs_kv_plan(fm):
    """A prefill-compiled model cannot run the decode scenario."""
    from repro.graph.models import load_model

    compiled = fm.compile(load_model("ViT"), get_device("OnePlus 12"))
    with pytest.raises(ValueError, match="KV residency plan"):
        fm.run(compiled, scenario=Scenario.decode(tokens=4))


def test_preload_baseline_decode_grows_unbounded(fm, compiled_models):
    """The baseline's KV cache grows with context; FlashMem's stays capped."""
    executor = PreloadExecutor(get_profile("MNN"), get_device("OnePlus 12"))
    short_g = load_decode_model("GPTN-S", context_len=512)
    long_g = load_decode_model("GPTN-S", context_len=4096)
    short = executor.run(short_g, scenario=Scenario.decode(tokens=8, context_len=512),
                         check_support=False)
    long = executor.run(long_g, scenario=Scenario.decode(tokens=8, context_len=4096),
                        check_support=False)
    assert long.peak_memory_bytes > short.peak_memory_bytes
    fm_short = fm.run(
        compiled_models[("GPTN-S", "OnePlus 12")],
        scenario=Scenario.decode(tokens=8, context_len=512),
    )
    kv_plan = compiled_models[("GPTN-S", "OnePlus 12")].plan.kv_plan
    assert fm_short.details["kv_resident_bytes"] <= kv_plan.budget_bytes
