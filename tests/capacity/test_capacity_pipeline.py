"""Differential suite for the vectorized capacity pipeline.

Pins the equivalence guarantees the LightGBM-style rewrite rests on:

- flattened batched tree inference is *bitwise* identical to the per-row
  node-walk oracle (for exact-split and histogram-split trees alike);
- histogram-binned training stays within a holdout-RMSE tolerance of the
  exact-split oracle on fig4-style profile data;
- ``capacity_bytes_batch`` (lockstep bisection + memo) returns exactly the
  sequential ``capacity_bytes_oracle`` values for both backends, across
  models x devices, fused ops included;
- a store-cached regressor reloads to bit-identical predictions
  (hypothesis round-trip).
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.gbt import FlatTree, GBTConfig, GradientBoostedTrees, RegressionTree
from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.capacity.profiler import LoadCapacityProfiler
from repro.core.store import ArtifactStore
from repro.fusion.fuser import fuse_graph
from repro.graph.models import load_model
from repro.gpusim.device import get_device


def _dataset(n, d, seed, *, discrete_cols=()):
    """Random regression data; ``discrete_cols`` get few distinct values so
    threshold ties (the bitwise-risky case) actually occur."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    for c in discrete_cols:
        X[:, c] = rng.integers(0, 4, size=n).astype(float)
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] + rng.normal(scale=0.1, size=n)
    return X, y


class TestFlatPredictBitwise:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_tree_flatten_matches_per_row(self, seed):
        X, y = _dataset(250, 5, seed, discrete_cols=(2, 4))
        tree = RegressionTree(max_depth=5).fit(X, y)
        flat = tree.flatten()
        Xq, _ = _dataset(180, 5, seed + 100, discrete_cols=(2, 4))
        assert isinstance(flat, FlatTree)
        assert np.array_equal(flat.predict(Xq), tree.predict(Xq))
        assert np.array_equal(flat.predict(Xq), flat.predict_nodewalk(Xq))

    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_ensemble_predict_matches_nodewalk(self, tree_method, seed):
        X, y = _dataset(300, 6, seed, discrete_cols=(3,))
        model = GradientBoostedTrees(
            GBTConfig(n_estimators=40, tree_method=tree_method, seed=seed)
        ).fit(X, y)
        Xq, _ = _dataset(200, 6, seed + 50, discrete_cols=(3,))
        assert np.array_equal(model.predict(Xq), model.predict_nodewalk(Xq))

    def test_score_rmse_columnar_matches_nodewalk(self):
        X, y = _dataset(200, 4, 11)
        model = GradientBoostedTrees(GBTConfig(n_estimators=25)).fit(X, y)
        walk = float(np.sqrt(((model.predict_nodewalk(X) - y) ** 2).mean()))
        assert model.score_rmse(X, y) == walk


class TestHistVsExactAccuracy:
    def test_hist_within_holdout_tolerance_on_profile_data(self):
        device = get_device("OnePlus 12")
        profiler = LoadCapacityProfiler(device, seed=0)
        dataset = profiler.profile_models(
            [load_model("GPTN-S"), load_model("ViT")], max_ops_per_model=24
        )
        exact = LoadCapacityModel.from_dataset(
            device, dataset, gbt_config=GBTConfig(tree_method="exact")
        )
        hist = LoadCapacityModel.from_dataset(
            device, dataset, gbt_config=GBTConfig(tree_method="hist")
        )
        assert exact.report is not None and hist.report is not None
        # Binned splits may differ slightly from exact splits, but the fit
        # quality must stay in the same regime (fig4 holdout ~0.02-0.03).
        assert hist.report.holdout_rmse_log10 <= (
            exact.report.holdout_rmse_log10 * 1.3 + 0.005
        )


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("device_name", ["OnePlus 12", "Pixel 8"])
    @pytest.mark.parametrize("model_name", ["GPTN-S", "ViT"])
    def test_analytic_backend(self, device_name, model_name):
        model = analytic_capacity_model(get_device(device_name))
        ops = [n.spec for n in fuse_graph(load_model(model_name)).nodes()]
        batch = model.capacity_bytes_batch(ops)
        assert batch == [model.capacity_bytes_oracle(op) for op in ops]
        assert all(type(v) is int for v in batch)

    @pytest.mark.parametrize("device_name", ["OnePlus 12", "Pixel 8"])
    def test_gbt_backend(self, device_name):
        device = get_device(device_name)
        graph = load_model("GPTN-S")
        model = LoadCapacityModel.train(device, [graph], seed=0, max_ops_per_model=12)
        ops = [n.spec for n in fuse_graph(graph).nodes()]
        batch = model.capacity_bytes_batch(ops)
        assert batch == [model.capacity_bytes_oracle(op) for op in ops]

    def test_memo_hits_on_requery_and_scalar_path(self):
        model = analytic_capacity_model(get_device("OnePlus 12"))
        ops = [n.spec for n in fuse_graph(load_model("ViT")).nodes()]
        first = model.capacity_bytes_batch(ops)
        hits_before = model.stats["memo_hits"]
        second = model.capacity_bytes_batch(ops)
        assert second == first
        assert model.stats["memo_hits"] == hits_before + len(ops)
        # The scalar entry point rides the same memo.
        assert model.capacity_bytes(ops[0]) == first[0]

    def test_capacity_chunks_batch_matches_scalar(self):
        model = analytic_capacity_model(get_device("OnePlus 12"))
        ops = [n.spec for n in load_model("ViT").nodes()]
        chunk = 1 << 18
        assert model.capacity_chunks_batch(ops, chunk) == [
            model.capacity_chunks(op, chunk) for op in ops
        ]
        with pytest.raises(ValueError):
            model.capacity_chunks_batch(ops, 0)


class TestStoreCachedRegressor:
    @given(seed=st.integers(0, 2**16), n=st.integers(40, 120))
    @settings(max_examples=8, deadline=None)
    def test_reload_predictions_bit_identical(self, seed, n):
        X, y = _dataset(n, 4, seed)
        model = GradientBoostedTrees(GBTConfig(n_estimators=12, seed=seed)).fit(X, y)
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            key = {"kind": "capacity-model", "probe": int(seed)}
            store.save(key, {"regressor": model})
            loaded = store.load(key)["regressor"]
        Xq, _ = _dataset(60, 4, seed + 1)
        assert np.array_equal(model.predict(Xq), loaded.predict(Xq))
        assert np.array_equal(loaded.predict(Xq), loaded.predict_nodewalk(Xq))

    def test_trained_capacity_model_warm_reload_identical(self, tmp_path):
        from repro.capacity import cache as capacity_cache

        previous = capacity_cache.set_capacity_store(ArtifactStore(tmp_path))
        capacity_cache.clear_capacity_cache()
        try:
            trains_before = capacity_cache.STATS["trains"]
            kwargs = dict(models=("ViT",), max_ops_per_model=8)
            cold = capacity_cache.trained_capacity_model("OnePlus 12", **kwargs)
            capacity_cache.clear_capacity_cache()
            warm = capacity_cache.trained_capacity_model("OnePlus 12", **kwargs)
            assert capacity_cache.STATS["trains"] == trains_before + 1
            assert warm.report == cold.report
            ops = [n.spec for n in load_model("ViT").nodes()]
            assert warm.capacity_bytes_batch(ops) == cold.capacity_bytes_batch(ops)
        finally:
            capacity_cache.set_capacity_store(previous)
            capacity_cache.clear_capacity_cache()
