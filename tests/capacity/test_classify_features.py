"""Tests for operator classification, thresholds, and feature extraction."""

import numpy as np
import pytest

from repro.capacity.classify import (
    CLASS_THRESHOLDS,
    TABLE5_ROWS,
    can_host_loads,
    threshold_for,
    threshold_for_kind,
)
from repro.capacity.features import (
    FEATURE_NAMES,
    featurize,
    featurize_batch,
    global_work_size,
    local_work_size,
)
from repro.graph.ops import OpClass, OpKind, elementwise_spec, matmul_spec, softmax_spec


class TestThresholds:
    def test_paper_values(self):
        assert CLASS_THRESHOLDS[OpClass.ELEMENTAL] == 3.00
        assert CLASS_THRESHOLDS[OpClass.REUSABLE] == 0.20
        assert CLASS_THRESHOLDS[OpClass.HIERARCHICAL] == 0.00

    def test_threshold_for_spec(self):
        assert threshold_for(matmul_spec("m", 4, 4, 4)) == 0.20
        assert threshold_for(softmax_spec("s", (4, 4))) == 0.0

    def test_threshold_for_kind(self):
        assert threshold_for_kind(OpKind.GELU) == 3.00
        assert threshold_for_kind(OpKind.CONV2D) == 0.20

    def test_can_host_loads(self):
        assert can_host_loads(matmul_spec("m", 4, 4, 4))
        assert can_host_loads(elementwise_spec("e", OpKind.ADD, (4,)))
        assert not can_host_loads(softmax_spec("s", (4, 4)))

    def test_table5_covers_three_classes(self):
        assert {r.op_class for r in TABLE5_ROWS} == {
            OpClass.ELEMENTAL, OpClass.REUSABLE, OpClass.HIERARCHICAL,
        }


class TestFeatures:
    def test_vector_length_matches_names(self):
        vec = featurize(matmul_spec("m", 8, 8, 8))
        assert len(vec) == len(FEATURE_NAMES)

    def test_class_onehot(self):
        mm = featurize(matmul_spec("m", 8, 8, 8))
        sm = featurize(softmax_spec("s", (8, 8)))
        add = featurize(elementwise_spec("a", OpKind.ADD, (8, 8)))
        onehot = lambda v: tuple(v[6:9])
        assert onehot(mm) == (0.0, 1.0, 0.0)
        assert onehot(sm) == (0.0, 0.0, 1.0)
        assert onehot(add) == (1.0, 0.0, 0.0)

    def test_extra_bytes_features_monotone(self):
        op = matmul_spec("m", 64, 64, 64)
        small = featurize(op, 1000)
        large = featurize(op, 1_000_000)
        assert large[9] > small[9]   # log extra bytes
        assert large[10] > small[10]  # extra ratio

    def test_no_nan_or_inf(self):
        op = matmul_spec("m", 1, 1, 1)
        vec = featurize(op, 0)
        assert np.all(np.isfinite(vec))

    def test_gws_scales_with_output(self):
        small = global_work_size(matmul_spec("m", 8, 8, 8))
        large = global_work_size(matmul_spec("m", 256, 8, 256))
        assert large > small

    def test_lws_power_of_two(self):
        lws = local_work_size(matmul_spec("m", 128, 128, 128))
        assert lws & (lws - 1) == 0

    def test_batch_stacking(self):
        ops = [(matmul_spec(f"m{i}", 8, 8, 8), i * 100) for i in range(5)]
        X = featurize_batch(ops)
        assert X.shape == (5, len(FEATURE_NAMES))

    def test_empty_batch(self):
        X = featurize_batch([])
        assert X.shape == (0, len(FEATURE_NAMES))
