"""Tests for the gradient-boosted-trees regressor (XGBoost substitute)."""

import numpy as np
import pytest

from repro.capacity.gbt import GBTConfig, GradientBoostedTrees, RegressionTree


def _make_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 3))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 + X[:, 2]
    return X, y


class TestRegressionTree:
    def test_fits_constant(self):
        X = np.zeros((10, 2))
        y = np.full(10, 3.0)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), 3.0)

    def test_splits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert abs(pred[0]) < 0.05
        assert abs(pred[-1] - 1.0) < 0.05

    def test_depth_limits_complexity(self):
        X, y = _make_data()
        shallow = RegressionTree(max_depth=1).fit(X, y)
        deep = RegressionTree(max_depth=6).fit(X, y)
        sse = lambda t: float(((t.predict(X) - y) ** 2).sum())
        assert sse(deep) < sse(shallow)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((4, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_min_samples_leaf_respected(self):
        X = np.arange(6, dtype=float).reshape(-1, 1)
        y = np.array([0, 0, 0, 1, 1, 1], dtype=float)
        tree = RegressionTree(max_depth=8, min_samples_leaf=3).fit(X, y)
        # Only one split possible with 3-sample leaves.
        assert len(set(tree.predict(X))) <= 2


class TestGradientBoosting:
    def test_improves_over_mean_baseline(self):
        X, y = _make_data()
        model = GradientBoostedTrees(GBTConfig(n_estimators=60)).fit(X, y)
        baseline_rmse = float(np.sqrt(((y - y.mean()) ** 2).mean()))
        assert model.score_rmse(X, y) < baseline_rmse / 3

    def test_generalizes(self):
        X, y = _make_data(600, seed=1)
        Xt, yt = _make_data(200, seed=2)
        model = GradientBoostedTrees(GBTConfig(n_estimators=80)).fit(X, y)
        assert model.score_rmse(Xt, yt) < 0.25

    def test_more_trees_fit_better(self):
        X, y = _make_data()
        few = GradientBoostedTrees(GBTConfig(n_estimators=5)).fit(X, y)
        many = GradientBoostedTrees(GBTConfig(n_estimators=100)).fit(X, y)
        assert many.train_rmse_ < few.train_rmse_

    def test_deterministic_given_seed(self):
        X, y = _make_data()
        a = GradientBoostedTrees(GBTConfig(seed=42)).fit(X, y).predict(X[:10])
        b = GradientBoostedTrees(GBTConfig(seed=42)).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((0, 2)), np.zeros(0))

    def test_subsample_still_learns(self):
        X, y = _make_data()
        model = GradientBoostedTrees(GBTConfig(n_estimators=80, subsample=0.5)).fit(X, y)
        assert model.score_rmse(X, y) < 0.3
