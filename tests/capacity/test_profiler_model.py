"""Tests for the profiling harness and the trained capacity model."""

import pytest

from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.capacity.profiler import DEFAULT_LOAD_RATIOS, LoadCapacityProfiler, ProfileDataset
from repro.graph.builder import GraphBuilder
from repro.graph.ops import OpKind, elementwise_spec, matmul_spec, softmax_spec
from repro.gpusim.device import oneplus_12


@pytest.fixture(scope="module")
def device():
    return oneplus_12()


@pytest.fixture(scope="module")
def small_graph():
    b = GraphBuilder("tiny")
    b.embedding(16, 100, 64)
    for _ in range(3):
        b.transformer_block(16, 64, 4)
    return b.finish()


class TestProfiler:
    def test_noiseless_matches_cost_model(self, device):
        profiler = LoadCapacityProfiler(device, noise=0.0)
        op = matmul_spec("m", 64, 256, 256)
        assert profiler.measure(op, 0) == pytest.approx(profiler.cost.base_time_ms(op))

    def test_noise_is_seeded(self, device):
        op = matmul_spec("m", 64, 256, 256)
        a = LoadCapacityProfiler(device, noise=0.05, seed=3).measure(op, 1000)
        b = LoadCapacityProfiler(device, noise=0.05, seed=3).measure(op, 1000)
        assert a == b

    def test_profile_op_sweeps_all_ratios(self, device):
        profiler = LoadCapacityProfiler(device)
        samples = profiler.profile_op(matmul_spec("m", 16, 16, 16))
        assert len(samples) == len(DEFAULT_LOAD_RATIOS)

    def test_profile_graph_stratified(self, device, small_graph):
        profiler = LoadCapacityProfiler(device)
        dataset = profiler.profile_graph(small_graph, max_ops=12)
        classes = {s.op.op_class for s in dataset.samples}
        assert len(classes) >= 3  # elemental, reusable, hierarchical all present

    def test_profile_graph_skips_layout_ops(self, device, small_graph):
        from repro.graph.ops import OpClass

        profiler = LoadCapacityProfiler(device)
        dataset = profiler.profile_graph(small_graph)
        assert all(s.op.op_class is not OpClass.LAYOUT for s in dataset.samples)

    def test_sensitivity_curve_monotone(self, device):
        profiler = LoadCapacityProfiler(device, noise=0.0)
        curve = profiler.sensitivity_curve(softmax_spec("s", (8, 64, 64)))
        deltas = [d for _, d in curve]
        assert deltas == sorted(deltas)
        assert deltas[0] == 0.0

    def test_threshold_crossing_orders_by_class(self, device):
        profiler = LoadCapacityProfiler(device, noise=0.0)
        mm = profiler.threshold_crossing(matmul_spec("m", 128, 2048, 2048), 0.20)
        sm = profiler.threshold_crossing(softmax_spec("s", (16, 128, 128)), 0.20)
        assert sm is not None
        assert mm is None or mm > sm  # matmul crosses later (or never)

    def test_dataset_split_deterministic(self, device, small_graph):
        dataset = LoadCapacityProfiler(device).profile_graph(small_graph, max_ops=9)
        a1, b1 = dataset.split(seed=5)
        a2, b2 = dataset.split(seed=5)
        assert [s.op.name for s in a1.samples] == [s.op.name for s in a2.samples]
        assert len(a1) + len(b1) == len(dataset)


class TestCapacityModel:
    @pytest.fixture(scope="class")
    def trained(self, device, small_graph):
        return LoadCapacityModel.train(device, [small_graph], seed=0, max_ops_per_model=20)

    def test_training_reports_accuracy(self, trained):
        assert trained.report is not None
        assert trained.report.holdout_rmse_log10 < 0.15  # within ~40% latency

    def test_hierarchical_capacity_zero(self, trained):
        assert trained.capacity_bytes(softmax_spec("s", (8, 64, 64))) == 0

    def test_gbt_capacity_same_magnitude_as_analytic(self, device, trained):
        ana = analytic_capacity_model(device)
        op = matmul_spec("m", 16, 64, 64)
        gbt_cap = trained.capacity_bytes(op)
        ana_cap = ana.capacity_bytes(op)
        assert ana_cap > 0
        assert 0.05 * ana_cap <= gbt_cap <= 20 * ana_cap

    def test_capacity_chunks(self, device):
        ana = analytic_capacity_model(device)
        op = matmul_spec("m", 128, 1024, 1024)
        cap_bytes = ana.capacity_bytes(op)
        assert ana.capacity_chunks(op, 1024) == cap_bytes // 1024

    def test_capacity_chunks_rejects_bad_size(self, device):
        ana = analytic_capacity_model(device)
        with pytest.raises(ValueError):
            ana.capacity_chunks(matmul_spec("m", 4, 4, 4), 0)

    def test_fused_capacity_is_min_of_members(self, device):
        from repro.fusion.fuser import make_fused_spec

        ana = analytic_capacity_model(device)
        mm = matmul_spec("m", 128, 1024, 1024)
        gelu = elementwise_spec("g", OpKind.GELU, (128, 1024))
        fused = make_fused_spec("m+g", [mm, gelu])
        assert ana.capacity_bytes(fused) == min(ana.capacity_bytes(mm), ana.capacity_bytes(gelu))

    def test_invalid_backend_rejected(self, device):
        with pytest.raises(ValueError):
            LoadCapacityModel(device, backend="mlp")

    def test_gbt_backend_requires_regressor(self, device):
        with pytest.raises(ValueError):
            LoadCapacityModel(device, backend="gbt")
