"""Property-based tests over randomly generated model graphs (hypothesis).

End-to-end invariants of the planning + execution pipeline:

- every LC-OPG plan validates against its OPG problem;
- executor memory accounting balances (timeline starts and ends at zero,
  never negative, peak >= average);
- FlashMem's integrated latency is bounded below by both the pure compute
  time and the pure streamed-IO time (it cannot beat physics);
- fusion preserves FLOPs/params on arbitrary graphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.model import analytic_capacity_model
from repro.fusion.fuser import fuse_graph
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig, build_problem
from repro.opg.validate import validate_plan
from repro.runtime.executor import FlashMemExecutor

_DEVICE = oneplus_12()
_CAPACITY = analytic_capacity_model(_DEVICE)
_CFG = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=8 * 1024)


@st.composite
def random_graphs(draw):
    """Small random DNNs mixing transformer, conv, and elementwise blocks."""
    b = GraphBuilder("hypo", fine=draw(st.booleans()))
    dim = draw(st.sampled_from([32, 64, 128]))
    seq = draw(st.sampled_from([8, 16]))
    b.embedding(seq, 200, dim)
    n_blocks = draw(st.integers(1, 4))
    for _ in range(n_blocks):
        kind = draw(st.sampled_from(["attn", "mlp", "conv", "elem"]))
        if kind == "attn":
            b.attention_block(seq, dim, 4)
        elif kind == "mlp":
            b.mlp_block(seq, dim, dim * draw(st.sampled_from([2, 4])))
        elif kind == "conv":
            side = draw(st.sampled_from([8, 16]))
            b.reshape((seq, dim), (dim, side, side))
            b.conv(side, side, dim, dim, 3)
            b.activation((dim, side, side))
            b.reshape((dim, side, side), (seq, dim))
        else:
            b.gelu((seq, dim))
            b.layernorm((seq, dim))
    b.linear(seq, dim, draw(st.sampled_from([64, 200])))
    return b.finish()


@given(random_graphs())
@settings(max_examples=25, deadline=None)
def test_plans_always_validate(graph):
    plan = LcOpgSolver(_CFG).solve(graph, _CAPACITY)
    problem = build_problem(graph, _CAPACITY, _CFG)
    assert validate_plan(plan, problem) == []


@given(random_graphs())
@settings(max_examples=15, deadline=None)
def test_executor_memory_balances(graph):
    plan = LcOpgSolver(_CFG).solve(graph, _CAPACITY)
    result = FlashMemExecutor(_DEVICE).run(graph, plan)
    samples = result.memory.samples
    assert samples[0][1] == 0
    assert samples[-1][1] == 0
    assert all(v >= 0 for _, v in samples)
    assert result.peak_memory_bytes >= result.avg_memory_bytes > 0


@given(random_graphs())
@settings(max_examples=15, deadline=None)
def test_latency_physical_lower_bounds(graph):
    plan = LcOpgSolver(_CFG).solve(graph, _CAPACITY)
    result = FlashMemExecutor(_DEVICE).run(graph, plan)
    compute_floor = sum(_DEVICE.compute_time_ms(n.flops) for n in graph.nodes())
    io_floor = graph.total_weight_bytes / _DEVICE.disk_bw
    assert result.latency_ms >= compute_floor
    assert result.latency_ms >= io_floor
    assert result.latency_ms >= _DEVICE.gpu_setup_ms


@given(random_graphs())
@settings(max_examples=25, deadline=None)
def test_fusion_preserves_semantics(graph):
    fused = fuse_graph(graph)
    assert fused.total_flops == graph.total_flops
    assert fused.total_params == graph.total_params
    assert len(fused) <= len(graph)
    for node in fused.nodes():
        for parent in node.inputs:
            assert parent.index < node.index


@given(random_graphs(), st.floats(0.0, 1.0))
@settings(max_examples=15, deadline=None)
def test_preload_ratio_bounds(graph, target):
    plan = LcOpgSolver(_CFG).solve(graph, _CAPACITY, target_preload_ratio=target)
    assert 0.0 <= plan.preload_ratio <= 1.0
    # Requested preload is a floor (forced/failed streams only add to it),
    # modulo one weight of granularity.
    if plan.total_bytes:
        largest = max(s.nbytes for s in plan.schedules.values())
        assert plan.preload_bytes >= target * plan.total_bytes - largest
