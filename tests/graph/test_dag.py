"""Unit tests for the graph DAG (repro.graph.dag)."""

import pytest

from repro.graph.dag import Graph, GraphError
from repro.graph.ops import OpKind, elementwise_spec, matmul_spec


def _chain(n: int) -> Graph:
    g = Graph("chain")
    prev = None
    for i in range(n):
        node = g.add(matmul_spec(f"mm{i}", 4, 8, 8), inputs=[prev] if prev else [])
        prev = node
    return g


class TestGraphBuild:
    def test_add_and_len(self):
        g = _chain(3)
        assert len(g) == 3

    def test_duplicate_name_rejected(self):
        g = Graph("g")
        g.add(matmul_spec("a", 2, 2, 2))
        with pytest.raises(GraphError):
            g.add(matmul_spec("a", 2, 2, 2))

    def test_foreign_input_rejected(self):
        g1, g2 = Graph("a"), Graph("b")
        n = g1.add(matmul_spec("x", 2, 2, 2))
        with pytest.raises(GraphError):
            g2.add(matmul_spec("y", 2, 2, 2), inputs=[n])

    def test_add_after_freeze_rejected(self):
        g = _chain(2).freeze()
        with pytest.raises(GraphError):
            g.add(matmul_spec("late", 2, 2, 2))

    def test_contains_and_node_lookup(self):
        g = _chain(2)
        assert "mm0" in g
        assert g.node("mm1").name == "mm1"
        with pytest.raises(GraphError):
            g.node("nope")


class TestFreezeAndOrder:
    def test_chain_order_preserved(self):
        g = _chain(5).freeze()
        assert [n.name for n in g.nodes()] == [f"mm{i}" for i in range(5)]
        assert [n.index for n in g.nodes()] == list(range(5))

    def test_diamond_topological(self):
        g = Graph("d")
        a = g.add(matmul_spec("a", 2, 2, 2))
        b = g.add(matmul_spec("b", 2, 2, 2), inputs=[a])
        c = g.add(matmul_spec("c", 2, 2, 2), inputs=[a])
        d = g.add(elementwise_spec("d", OpKind.ADD, (2, 2), n_inputs=2), inputs=[b, c])
        g.freeze()
        order = {n.name: n.index for n in g.nodes()}
        assert order["a"] < order["b"] < order["d"]
        assert order["a"] < order["c"] < order["d"]

    def test_cycle_detected(self):
        g = Graph("cyc")
        a = g.add(matmul_spec("a", 2, 2, 2))
        b = g.add(matmul_spec("b", 2, 2, 2), inputs=[a])
        # Manually wire a back-edge to create a cycle.
        a.inputs.append(b)
        b.outputs.append(a)
        with pytest.raises(GraphError):
            g.freeze()

    def test_nodes_requires_freeze(self):
        g = _chain(2)
        with pytest.raises(GraphError):
            g.nodes()

    def test_freeze_idempotent(self):
        g = _chain(2)
        assert g.freeze() is g.freeze()


class TestAggregates:
    def test_total_flops_and_macs(self):
        g = _chain(3).freeze()
        assert g.total_flops == 3 * 2 * 4 * 8 * 8
        assert g.total_macs == g.total_flops // 2

    def test_total_params_counts_all_weights(self):
        g = _chain(2).freeze()
        # Each matmul carries an (8, 8) weight (no bias by default).
        assert g.total_params == 2 * 64

    def test_total_params_includes_bias(self):
        g = Graph("b")
        g.add(matmul_spec("mm", 4, 8, 8, bias=True))
        g.freeze()
        assert g.total_params == 64 + 8

    def test_weight_first_use_matches_owner(self):
        g = _chain(3).freeze()
        first_use = g.weight_first_use()
        assert first_use["mm0.w"] == 0
        assert first_use["mm2.w"] == 2

    def test_weights_in_execution_order(self):
        g = _chain(3).freeze()
        names = [w.name for w, _ in g.weights()]
        assert names.index("mm0.w") < names.index("mm1.w") < names.index("mm2.w")

    def test_op_histogram(self):
        g = Graph("h")
        a = g.add(matmul_spec("a", 2, 2, 2))
        g.add(elementwise_spec("e", OpKind.ADD, (2, 2)), inputs=[a])
        hist = g.op_histogram()
        assert hist[OpKind.MATMUL] == 1
        assert hist[OpKind.ADD] == 1


class TestActivationAccounting:
    def test_activation_bytes_positive(self):
        g = _chain(3).freeze()
        assert g.activation_bytes_at(1) > 0

    def test_residual_increases_liveness(self):
        # a -> b -> c, with a also feeding d after c: a's output stays live at c.
        g = Graph("res")
        a = g.add(matmul_spec("a", 2, 2, 2))
        b = g.add(matmul_spec("b", 2, 2, 2), inputs=[a])
        c = g.add(matmul_spec("c", 2, 2, 2), inputs=[b])
        d = g.add(elementwise_spec("d", OpKind.ADD, (2, 2), n_inputs=2), inputs=[c, a])
        g.freeze()
        plain = Graph("plain")
        pa = plain.add(matmul_spec("a", 2, 2, 2))
        pb = plain.add(matmul_spec("b", 2, 2, 2), inputs=[pa])
        pc = plain.add(matmul_spec("c", 2, 2, 2), inputs=[pb])
        plain.freeze()
        assert g.activation_bytes_at(2) > plain.activation_bytes_at(2)

    def test_out_of_range_index(self):
        g = _chain(2).freeze()
        with pytest.raises(GraphError):
            g.activation_bytes_at(5)

    def test_peak_at_least_single_layer(self):
        g = _chain(4).freeze()
        assert g.peak_activation_bytes() >= g.activation_bytes_at(0)

    def test_empty_graph_peak(self):
        g = Graph("empty").freeze()
        assert g.peak_activation_bytes() == 0
