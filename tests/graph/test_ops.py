"""Unit tests for the operator IR (repro.graph.ops)."""

import math

import pytest

from repro.graph.ops import (
    OP_CLASS,
    OpClass,
    OpKind,
    OpSpec,
    TensorSpec,
    WeightSpec,
    conv2d_spec,
    elementwise_spec,
    layout_spec,
    matmul_spec,
    normalization_spec,
    op_class,
    softmax_spec,
)


class TestTensorSpec:
    def test_numel_and_nbytes(self):
        t = TensorSpec((4, 8, 2), dtype_bytes=2)
        assert t.numel == 64
        assert t.nbytes == 128

    def test_fp32_nbytes(self):
        assert TensorSpec((10,), dtype_bytes=4).nbytes == 40

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            TensorSpec(())

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            TensorSpec((4, 0))

    def test_rejects_weird_dtype(self):
        with pytest.raises(ValueError):
            TensorSpec((4,), dtype_bytes=3)

    def test_is_hashable_and_frozen(self):
        t = TensorSpec((2, 2))
        assert hash(t) == hash(TensorSpec((2, 2)))
        with pytest.raises(Exception):
            t.shape = (3,)  # type: ignore[misc]


class TestWeightSpec:
    def test_chunk_count_rounds_up(self):
        w = WeightSpec("w", TensorSpec((1000,), dtype_bytes=2))  # 2000 bytes
        assert w.chunk_count(512) == 4
        assert w.chunk_count(2000) == 1
        assert w.chunk_count(4000) == 1  # at least one chunk

    def test_chunk_count_rejects_nonpositive(self):
        w = WeightSpec("w", TensorSpec((4,)))
        with pytest.raises(ValueError):
            w.chunk_count(0)

    def test_nbytes(self):
        w = WeightSpec("w", TensorSpec((3, 3), dtype_bytes=4))
        assert w.nbytes == 36
        assert w.numel == 9


class TestOpClassification:
    def test_every_kind_classified(self):
        for kind in OpKind:
            assert kind in OP_CLASS

    def test_reusable_ops(self):
        for k in (OpKind.MATMUL, OpKind.CONV2D, OpKind.ATTENTION_SCORE):
            assert op_class(k) is OpClass.REUSABLE

    def test_hierarchical_ops(self):
        for k in (OpKind.SOFTMAX, OpKind.LAYERNORM, OpKind.GROUPNORM, OpKind.BATCHNORM):
            assert op_class(k) is OpClass.HIERARCHICAL

    def test_elemental_ops(self):
        for k in (OpKind.ADD, OpKind.MUL, OpKind.ACTIVATION, OpKind.GELU):
            assert op_class(k) is OpClass.ELEMENTAL

    def test_layout_ops(self):
        for k in (OpKind.RESHAPE, OpKind.TRANSPOSE, OpKind.CONCAT, OpKind.SLICE):
            assert op_class(k) is OpClass.LAYOUT


class TestMatmulSpec:
    def test_flops(self):
        op = matmul_spec("mm", 8, 16, 32)
        assert op.flops == 2 * 8 * 16 * 32
        assert op.macs == 8 * 16 * 32

    def test_weight_shape_and_bytes(self):
        op = matmul_spec("mm", 8, 16, 32)
        assert op.weights[0].tensor.shape == (16, 32)
        assert op.weight_bytes == 16 * 32 * 2

    def test_bias_adds_weight(self):
        op = matmul_spec("mm", 8, 16, 32, bias=True)
        assert len(op.weights) == 2
        assert op.weights[1].tensor.shape == (32,)

    def test_custom_weight_name(self):
        op = matmul_spec("mm", 2, 2, 2, weight_name="shared.w")
        assert op.weights[0].name == "shared.w"

    def test_bytes_moved_includes_everything(self):
        op = matmul_spec("mm", 8, 16, 32, bias=False)
        expected = (8 * 16 + 8 * 32 + 16 * 32) * 2
        assert op.bytes_moved == expected

    def test_arithmetic_intensity_positive(self):
        op = matmul_spec("mm", 128, 1024, 1024)
        assert op.arithmetic_intensity > 10  # decidedly compute-heavy


class TestConvSpec:
    def test_standard_conv_flops(self):
        op = conv2d_spec("c", 32, 32, 16, 64, 3, bias=False)
        assert op.flops == 2 * 32 * 32 * 64 * 16 * 9
        assert op.weights[0].tensor.shape == (64, 16, 3, 3)

    def test_stride_shrinks_output(self):
        op = conv2d_spec("c", 32, 32, 16, 64, 3, stride=2)
        assert op.output_spec.shape == (64, 16, 16)

    def test_depthwise_requires_matching_channels(self):
        with pytest.raises(ValueError):
            conv2d_spec("c", 8, 8, 4, 8, 3, depthwise=True)

    def test_depthwise_flops_smaller(self):
        dw = conv2d_spec("dw", 16, 16, 32, 32, 3, depthwise=True, bias=False)
        full = conv2d_spec("f", 16, 16, 32, 32, 3, bias=False)
        assert dw.flops * 31 < full.flops

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            conv2d_spec("c", 8, 8, 4, 4, 0)


class TestHelperSpecs:
    def test_elementwise_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            elementwise_spec("x", OpKind.SOFTMAX, (4,))

    def test_elementwise_n_inputs(self):
        op = elementwise_spec("x", OpKind.ADD, (4, 4), n_inputs=2)
        assert len(op.input_specs) == 2

    def test_normalization_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            normalization_spec("x", OpKind.ADD, (4,))

    def test_normalization_carries_scale_shift(self):
        op = normalization_spec("ln", OpKind.LAYERNORM, (16, 64))
        assert {w.tensor.shape for w in op.weights} == {(64,)}
        assert len(op.weights) == 2

    def test_softmax_no_weights(self):
        op = softmax_spec("s", (8, 8))
        assert not op.weights
        assert op.op_class is OpClass.HIERARCHICAL

    def test_layout_zero_flops(self):
        op = layout_spec("r", OpKind.RESHAPE, (4, 4), (16,))
        assert op.flops == 0
        assert op.op_class is OpClass.LAYOUT

    def test_layout_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            layout_spec("r", OpKind.ADD, (4,), (4,))

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            OpSpec(OpKind.ADD, "bad", -1, [TensorSpec((1,))], TensorSpec((1,)))
