"""Model zoo characterization tests against the paper's Table 6."""

import pytest

from repro.graph.models import (
    EVALUATED_MODELS,
    MODEL_CARDS,
    PAPER_CHARACTERIZATION,
    SOLVER_MODEL_CARDS,
    available_models,
    load_model,
)

#: Relative tolerance on params/MACs vs. Table 6 (builders are synthetic
#: re-creations; see DESIGN.md).
TOLERANCE = 0.30


@pytest.fixture(scope="module")
def built_models():
    # SAM-2 / big GPT builds take a moment; build each once per module.
    return {abbr: load_model(abbr) for abbr in EVALUATED_MODELS}


class TestZooRegistry:
    def test_eleven_evaluated_models(self):
        assert len(EVALUATED_MODELS) == 11

    def test_available_includes_solver_variants(self):
        avail = available_models()
        for abbr in ("ViT-8B", "Llama2-13B", "Llama2-70B"):
            assert abbr in avail

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            load_model("GPT-5")

    def test_cards_have_metadata(self):
        for card in MODEL_CARDS.values():
            assert card.input_type and card.task and card.full_name


class TestTable6Characterization:
    @pytest.mark.parametrize("abbr", EVALUATED_MODELS)
    def test_params_match_paper(self, built_models, abbr):
        paper_params, _, _ = PAPER_CHARACTERIZATION[abbr]
        built = built_models[abbr].total_params / 1e6
        assert built == pytest.approx(paper_params, rel=TOLERANCE), (
            f"{abbr}: built {built:.1f}M vs paper {paper_params}M"
        )

    @pytest.mark.parametrize("abbr", EVALUATED_MODELS)
    def test_macs_match_paper(self, built_models, abbr):
        _, paper_macs, _ = PAPER_CHARACTERIZATION[abbr]
        built = built_models[abbr].total_macs / 1e9
        assert built == pytest.approx(paper_macs, rel=TOLERANCE), (
            f"{abbr}: built {built:.1f}G vs paper {paper_macs}G"
        )

    @pytest.mark.parametrize("abbr", EVALUATED_MODELS)
    def test_layer_counts_in_band(self, built_models, abbr):
        # Our lowering is coarser than the paper's; layer counts land within
        # a documented factor rather than matching exactly (EXPERIMENTS.md).
        _, _, paper_layers = PAPER_CHARACTERIZATION[abbr]
        built = built_models[abbr].num_layers
        assert 0.2 * paper_layers <= built <= 2.0 * paper_layers

    def test_size_ordering_preserved(self, built_models):
        # Relative ordering of model sizes must match the paper.
        params = {a: built_models[a].total_params for a in EVALUATED_MODELS}
        assert params["GPTN-S"] < params["GPTN-1.3B"] < params["GPTN-2.7B"]
        assert params["ResNet50"] < params["ViT"] < params["DeepViT"]
        assert params["DepA-S"] < params["DepA-L"]

    def test_all_graphs_frozen_and_acyclic(self, built_models):
        for g in built_models.values():
            nodes = g.nodes()
            for node in nodes:
                for parent in node.inputs:
                    assert parent.index < node.index

    def test_weight_names_unique_per_model(self, built_models):
        for g in built_models.values():
            names = [w.name for w, _ in g.weights()]
            assert len(names) == len(set(names))


class TestSolverVariants:
    def test_llama13b_larger_than_gptneo(self):
        g = load_model("Llama2-13B")
        assert g.total_params > 10e9

    def test_solver_cards_registered(self):
        assert set(SOLVER_MODEL_CARDS) == {"ViT-8B", "Llama2-13B", "Llama2-70B"}
