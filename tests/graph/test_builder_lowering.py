"""Tests for GraphBuilder blocks and the layout-elimination pass."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.lowering import eliminate_layout_ops, layout_op_count
from repro.graph.ops import OpClass, OpKind


class TestBuilderPrimitives:
    def test_linear_fine_splits_bias(self):
        b = GraphBuilder("g", fine=True)
        b.embedding(4, 10, 8)
        b.linear(4, 8, 8)
        g = b.finish()
        kinds = [n.kind for n in g.nodes()]
        assert OpKind.MATMUL in kinds and OpKind.ADD in kinds

    def test_linear_coarse_folds_bias(self):
        b = GraphBuilder("g", fine=False)
        b.embedding(4, 10, 8)
        b.linear(4, 8, 8)
        g = b.finish()
        mm = [n for n in g.nodes() if n.kind is OpKind.MATMUL][0]
        assert len(mm.weights) == 2  # weight + bias folded in

    def test_linear_tied_has_no_weights(self):
        b = GraphBuilder("g")
        b.embedding(4, 10, 8)
        node = b.linear_tied(4, 8, 100)
        assert not node.weights
        assert node.flops == 2 * 4 * 8 * 100

    def test_bias_add_carries_weight(self):
        b = GraphBuilder("g")
        b.embedding(4, 10, 8)
        node = b.bias_add((4, 8), 8)
        assert len(node.weights) == 1
        assert node.weights[0].tensor.shape == (8,)

    def test_conv_wiring(self):
        b = GraphBuilder("g")
        b.embedding(4, 4, 4)
        node = b.conv(16, 16, 4, 8, 3)
        assert node.kind is OpKind.CONV2D
        assert node.inputs  # wired to cursor

    def test_unique_names(self):
        b = GraphBuilder("g")
        b.embedding(4, 4, 4)
        for _ in range(20):
            b.activation((4, 4))
        g = b.finish()
        names = [n.name for n in g.nodes()]
        assert len(names) == len(set(names))


class TestBuilderBlocks:
    def _transformer(self, fine=True):
        b = GraphBuilder("t", fine=fine)
        b.embedding(16, 100, 32)
        b.transformer_block(16, 32, 4)
        return b.finish()

    def test_transformer_block_structure(self):
        g = self._transformer()
        kinds = {n.kind for n in g.nodes()}
        assert OpKind.SOFTMAX in kinds
        assert OpKind.LAYERNORM in kinds
        assert OpKind.ATTENTION_SCORE in kinds
        assert OpKind.GELU in kinds

    def test_fine_has_more_nodes_than_coarse(self):
        assert len(self._transformer(True)) > len(self._transformer(False))

    def test_attention_requires_cursor(self):
        b = GraphBuilder("t")
        with pytest.raises(ValueError):
            b.attention_block(16, 32, 4)

    def test_attention_rejects_bad_heads(self):
        b = GraphBuilder("t")
        b.embedding(16, 100, 32)
        with pytest.raises(ValueError):
            b.attention_block(16, 30, 4)

    def test_residual_wiring_in_mlp(self):
        b = GraphBuilder("t")
        b.embedding(16, 100, 32)
        entry = b.cursor
        out = b.mlp_block(16, 32, 64)
        # Final add consumes both the entry and the fc2 output.
        assert entry in out.inputs

    def test_resnet_bottleneck_projection_shortcut(self):
        b = GraphBuilder("r")
        b.embedding(4, 4, 4)
        b.conv(16, 16, 4, 64, 1)
        b.resnet_bottleneck(16, 16, 64, 32, 128, stride=2)
        g = b.finish()
        convs = [n for n in g.nodes() if n.kind is OpKind.CONV2D]
        # 1x1 + 3x3 + 1x1 + projection shortcut + the stem conv
        assert len(convs) == 5


class TestLayoutElimination:
    def _graph_with_layouts(self):
        b = GraphBuilder("g")
        b.embedding(16, 100, 32)
        b.transformer_block(16, 32, 4)
        return b.finish()

    def test_counts_layout_ops(self):
        g = self._graph_with_layouts()
        assert layout_op_count(g) > 0

    def test_elimination_removes_all(self):
        g = eliminate_layout_ops(self._graph_with_layouts())
        assert layout_op_count(g) == 0

    def test_elimination_preserves_compute(self):
        g0 = self._graph_with_layouts()
        g1 = eliminate_layout_ops(g0)
        assert g1.total_flops == g0.total_flops
        assert g1.total_params == g0.total_params

    def test_elimination_preserves_connectivity(self):
        g = eliminate_layout_ops(self._graph_with_layouts())
        # Every non-source node still has inputs.
        for node in g.nodes():
            if node.kind is not OpKind.EMBEDDING and node.index > 0:
                assert node.inputs, f"{node.name} lost its inputs"

    def test_elimination_keeps_topological_order(self):
        g = eliminate_layout_ops(self._graph_with_layouts())
        for node in g.nodes():
            for parent in node.inputs:
                assert parent.index < node.index

    def test_no_layout_graph_unchanged(self):
        b = GraphBuilder("plain")
        b.embedding(4, 4, 4)
        b.linear(4, 4, 4)
        g = b.finish()
        g2 = eliminate_layout_ops(g)
        assert len(g2) == len(g)

    def test_layout_class_absent_after_pass(self):
        g = eliminate_layout_ops(self._graph_with_layouts())
        assert all(n.op_class is not OpClass.LAYOUT for n in g.nodes())
