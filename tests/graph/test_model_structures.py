"""Structural tests on the zoo models beyond Table 6 aggregates."""

import pytest

from repro.graph.models import load_model
from repro.graph.models.transformer import build_llama, build_whisper
from repro.graph.ops import OpKind


class TestWhisperStructure:
    @pytest.fixture(scope="class")
    def whisper(self):
        return build_whisper(
            "mini-whisper", dim=64, enc_blocks=2, dec_blocks=2, heads=4,
            enc_seq=32, dec_seq=8, vocab=100,
        )

    def test_has_cross_attention(self, whisper):
        names = [n.name for n in whisper.nodes()]
        assert any("xattn_score" in n for n in names)
        assert any("xattn_ctx" in n for n in names)

    def test_tied_head_carries_no_weight(self, whisper):
        tied = [n for n in whisper.nodes() if "matmul_tied" in n.name]
        assert tied and all(not n.weights for n in tied)

    def test_cross_attention_reads_encoder_output(self, whisper):
        # The K projection feeding cross-attention traces back (through its
        # bias add) to a matmul whose input is the encoder's final LN.
        xattn = next(n for n in whisper.nodes() if "xattn_score" in n.name)
        k_chain = xattn.inputs[1]
        while k_chain.kind is not OpKind.MATMUL:
            k_chain = k_chain.inputs[0]
        assert any(p.kind is OpKind.LAYERNORM for p in k_chain.inputs)


class TestLlamaStructure:
    @pytest.fixture(scope="class")
    def llama(self):
        return build_llama("mini-llama", dim=64, blocks=2, heads=4, seq=8, vocab=100)

    def test_gated_mlp_has_mul(self, llama):
        muls = [n for n in llama.nodes() if n.kind is OpKind.MUL]
        assert len(muls) >= 2  # one gate per block

    def test_no_biases(self, llama):
        for node in llama.nodes():
            for w in node.weights:
                assert not w.name.endswith(".b"), f"{w.name} is a bias"

    def test_hidden_dim_rounding(self):
        # Gated hidden dim rounds to a multiple of 256 at realistic widths
        # (llama convention: ~8/3 expansion snapped down).
        big = build_llama("one-block", dim=5120, blocks=1, heads=40, seq=8, vocab=100)
        hidden = max(
            n.spec.attrs.get("n", 0) for n in big.nodes() if n.kind is OpKind.MATMUL
        )
        assert hidden == 13568  # int(5120 * 8/3) snapped to 256


class TestConvModels:
    def test_resnet_bottleneck_counts(self):
        g = load_model("ResNet50")
        convs = [n for n in g.nodes() if n.kind is OpKind.CONV2D]
        # Standard ResNet50: 53 convolutions (1 stem + 16x3 bottleneck + 4 proj).
        assert len(convs) == 53

    def test_sd_unet_mixes_conv_and_attention(self):
        g = load_model("SD-UNet")
        hist = g.op_histogram()
        assert hist[OpKind.CONV2D] > 30
        assert hist[OpKind.ATTENTION_SCORE] > 30
        assert hist[OpKind.GROUPNORM] > 30

    def test_sd_unet_cross_attends_context(self):
        g = load_model("SD-UNet")
        assert any("xattn" in n.name for n in g.nodes())


class TestDtypeVariants:
    def test_fp32_doubles_weight_bytes_everywhere(self):
        for model in ("ResNet50", "GPTN-S", "SAM-2"):
            fp16 = load_model(model)
            fp32 = load_model(model, dtype_bytes=4)
            assert fp32.total_weight_bytes == 2 * fp16.total_weight_bytes
            assert fp32.total_params == fp16.total_params
            assert fp32.total_macs == fp16.total_macs

    def test_fp32_preserves_structure(self):
        fp16 = load_model("ViT")
        fp32 = load_model("ViT", dtype_bytes=4)
        assert len(fp16) == len(fp32)
        assert [n.kind for n in fp16.nodes()] == [n.kind for n in fp32.nodes()]
