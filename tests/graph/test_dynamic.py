"""Tests for the dynamic-network extension (paper §3.2 future work)."""

import pytest

from repro.capacity.model import analytic_capacity_model
from repro.graph.builder import GraphBuilder
from repro.graph.dynamic import (
    DynamicModel,
    PathVariant,
    early_exit_variants,
    plan_dynamic,
    run_dynamic,
)
from repro.gpusim.device import oneplus_12
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig
from repro.runtime.executor import FlashMemExecutor

FAST = OpgConfig(time_limit_s=0.5, max_nodes_per_window=100, chunk_bytes=8 * 1024)


def _exit_builder(depth: int):
    """Early-exit transformer: identical prefix blocks + an exit head.

    Weight names are deterministic per block, so path prefixes share
    weights (the realistic dynamic-network structure).
    """
    b = GraphBuilder(f"dyn{depth}")
    b.embedding(16, 500, 128)
    for _ in range(depth):
        b.transformer_block(16, 128, 4)
    b.linear(16, 128, 10)
    return b.finish()


@pytest.fixture(scope="module")
def dynamic_model():
    return early_exit_variants(_exit_builder, exits=[1, 2, 3], probabilities=[0.5, 0.3, 0.2])


@pytest.fixture(scope="module")
def capacity():
    return analytic_capacity_model(oneplus_12())


class TestModelValidation:
    def test_probabilities_must_sum_to_one(self):
        g = _exit_builder(1)
        with pytest.raises(ValueError, match="sum"):
            DynamicModel("bad", [PathVariant("a", g, 0.5)])

    def test_probability_range(self):
        g = _exit_builder(1)
        with pytest.raises(ValueError):
            PathVariant("a", g, 0.0)

    def test_unique_names(self):
        g = _exit_builder(1)
        with pytest.raises(ValueError, match="unique"):
            DynamicModel("bad", [PathVariant("a", g, 0.5), PathVariant("a", g, 0.5)])

    def test_variant_lookup(self, dynamic_model):
        assert dynamic_model.variant("exit@2").probability == 0.3
        with pytest.raises(KeyError):
            dynamic_model.variant("exit@9")

    def test_early_exit_builder_shapes(self, dynamic_model):
        sizes = [len(v.graph) for v in dynamic_model.variants]
        assert sizes == sorted(sizes)


class TestDynamicPlanning:
    @pytest.fixture(scope="class")
    def dyn_plan(self, dynamic_model, capacity):
        return plan_dynamic(dynamic_model, LcOpgSolver(FAST), capacity)

    def test_plan_per_variant(self, dynamic_model, dyn_plan):
        assert set(dyn_plan.plans) == {v.name for v in dynamic_model.variants}

    def test_unified_preload_consistency(self, dynamic_model, dyn_plan):
        """Any unified-preload weight present in a variant is preloaded there."""
        for v in dynamic_model.variants:
            plan = dyn_plan.plan_for(v.name)
            present = {w.name for w, _ in v.graph.weights()}
            for name in dyn_plan.unified_preload & present:
                assert plan.schedules[name].preloaded, f"{v.name}: {name} not preloaded"

    def test_plans_validate(self, dynamic_model, dyn_plan, capacity):
        from repro.opg.problem import build_problem
        from repro.opg.validate import validate_plan

        for v in dynamic_model.variants:
            # Re-build each problem with the pinned hints the second pass used.
            plan = dyn_plan.plan_for(v.name)
            present = {w.name for w, _ in v.graph.weights()}
            from dataclasses import replace

            cfg = replace(FAST, preload_hint_weights=frozenset(dyn_plan.unified_preload & present))
            assert validate_plan(plan, build_problem(v.graph, capacity, cfg)) == []


class TestDynamicExecution:
    def test_expected_between_best_and_worst(self, dynamic_model, capacity):
        dyn_plan = plan_dynamic(dynamic_model, LcOpgSolver(FAST), capacity)
        result = run_dynamic(dynamic_model, dyn_plan, FlashMemExecutor(oneplus_12()))
        latencies = [r.latency_ms for _, r in result.outcomes.values()]
        assert min(latencies) <= result.expected_latency_ms <= max(latencies)
        assert result.worst_latency_ms == max(latencies)
        assert result.worst_peak_memory_bytes >= result.expected_avg_memory_bytes

    def test_deeper_paths_cost_more(self, dynamic_model, capacity):
        dyn_plan = plan_dynamic(dynamic_model, LcOpgSolver(FAST), capacity)
        result = run_dynamic(dynamic_model, dyn_plan, FlashMemExecutor(oneplus_12()))
        lat = {name: r.latency_ms for name, (_, r) in result.outcomes.items()}
        assert lat["exit@1"] < lat["exit@3"]
