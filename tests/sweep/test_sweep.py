"""Tests for the parallel sweep runner and cross-process cache behavior."""

import pickle

import pytest

from repro.experiments import common
from repro.sweep.cells import Cell, driver_cells, primitive_cells
from repro.sweep.runner import SweepRunner
from repro.sweep.suite import run_suite


@pytest.fixture(autouse=True)
def _isolate_caches():
    common.clear_caches()
    yield
    common.clear_caches()
    common.swap_store(None)


class TestCells:
    def test_primitives_deduplicated_across_drivers(self):
        # Table 7 and Table 8 consume the identical grid.
        both = primitive_cells(["table7", "table8"])
        assert both == primitive_cells(["table7"])

    def test_flashmem_cells_scheduled_first(self):
        cells = primitive_cells(["table9"])
        kinds = [c.kind for c in cells]
        assert kinds == sorted(kinds, key=lambda k: k != "flashmem")
        assert "flashmem" in kinds and "framework" in kinds

    def test_drivers_without_primitives(self):
        assert primitive_cells(["table5", "fig2", "background_texture"]) == []
        assert [c.name for c in driver_cells(["table5", "fig2"])] == ["table5", "fig2"]


class TestRunner:
    def test_failed_cell_reported_sweep_continues(self, tmp_path):
        cells = [
            Cell("framework", "ViT", "OnePlus 12", "Bogus"),   # raises KeyError
            Cell("framework", "ViT", "OnePlus 12", "MNN"),
            Cell("unknown-kind", "x"),                          # raises ValueError
        ]
        report = SweepRunner(jobs=1, cache_dir=tmp_path).run(cells)
        assert len(report.outcomes) == 3
        assert len(report.failures) == 2
        errors = {o.cell.label(): o.error for o in report.failures}
        assert any("KeyError" in e for e in errors.values())
        ok = [o for o in report.outcomes if o.ok]
        assert [o.cell.runtime for o in ok] == ["MNN"]

    def test_parallel_merge_is_deterministic(self, tmp_path):
        cells = [
            Cell("framework", m, "OnePlus 12", fw)
            for m in ("ViT", "ResNet50")
            for fw in ("MNN", "SMem", "LiteRT")
        ]
        report = SweepRunner(jobs=2, cache_dir=tmp_path).run(cells)
        assert [o.cell for o in report.outcomes] == sorted(cells)
        assert not report.failures
        # Each cell persists its run exactly once; kernel pricing tables
        # priced along the way are additional store content.
        assert len(list((tmp_path / "framework-run").glob("*.pkl"))) == len(cells)
        assert report.store_totals()["stores"] >= len(cells)

    def test_inline_run_restores_previous_store(self, tmp_path):
        sentinel = common.swap_store(None)
        assert sentinel is None
        SweepRunner(jobs=1, cache_dir=tmp_path).run(
            [Cell("framework", "ViT", "OnePlus 12", "MNN")]
        )
        assert common.cache_store() is None

    def test_context_manager_closes_pool_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with SweepRunner(jobs=2, cache_dir=tmp_path) as runner:
                runner.prewarm(barrier_s=0.01)
                assert runner._pool is not None
                raise RuntimeError("boom")
        assert runner._pool is None  # close() ran on the exception path

    def test_no_cache_bypasses_store(self, tmp_path):
        report = SweepRunner(jobs=1, cache_dir=None).run(
            [Cell("framework", "ViT", "OnePlus 12", "MNN")]
        )
        assert not report.failures
        # The persistent store is off; the in-process pricing LRU still counts.
        assert report.cache_line().startswith("cache: disabled (--no-cache)")
        assert "pricing tables:" in report.cache_line()
        assert not list(tmp_path.rglob("*.pkl"))
        assert report.store_totals() == {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}


class TestCrossProcessCache:
    def test_worker_artifacts_reused_bit_for_bit(self, tmp_path):
        """Results computed in pool workers are reloaded identically here."""
        cells = [Cell("flashmem", "ResNet50", "OnePlus 12", "FlashMem"),
                 Cell("framework", "ResNet50", "OnePlus 12", "SMem")]
        report = SweepRunner(jobs=2, cache_dir=tmp_path).run(cells)
        assert not report.failures
        assert report.store_totals()["stores"] >= 2  # compiled + runs persisted

    def test_warm_reuse_returns_identical_results(self, tmp_path):
        # Cold: computed inline, persisted.
        cold = SweepRunner(jobs=1, cache_dir=tmp_path).run(
            [Cell("flashmem", "ResNet50", "OnePlus 12", "FlashMem")]
        )
        assert not cold.failures and cold.store_totals()["stores"] >= 1
        # Warm: fresh in-process caches, everything served from the store.
        common.clear_caches()
        common.configure_cache(tmp_path)
        warm_result = common.flashmem_result("ResNet50", "OnePlus 12")
        direct = common.cache_store().load(
            common.flashmem_run_key("ResNet50", "OnePlus 12", common.PREFILL_ONCE)
        )
        assert pickle.dumps(warm_result) == pickle.dumps(direct)
        assert common.cache_stats()["hits"] >= 1
        assert common.cache_stats()["stores"] == 0


class TestSuite:
    def test_suite_writes_results_and_caches_renders(self, tmp_path):
        cache = tmp_path / "cache"
        out_cold = tmp_path / "cold"
        out_warm = tmp_path / "warm"
        names = ["table5", "background_texture"]
        cold = run_suite(names, jobs=1, cache_dir=cache, results_dir=out_cold)
        assert cold.ok
        assert sorted(p.name for p in cold.written) == ["background_texture.txt", "table5.txt"]
        assert "Table 5" in (out_cold / "table5.txt").read_text()
        assert "cache:" in cold.summary()

        common.clear_caches()
        warm = run_suite(names, jobs=1, cache_dir=cache, results_dir=out_warm)
        assert warm.ok
        assert all(o.cache_hit for o in warm.drivers.outcomes)
        for name in names:
            assert (out_cold / f"{name}.txt").read_bytes() == (out_warm / f"{name}.txt").read_bytes()

    def test_suite_survives_failing_driver(self, tmp_path):
        # An unknown driver name fails at import time inside the cell.
        report = run_suite(["table5", "definitely_not_a_driver"], jobs=1,
                           cache_dir=tmp_path / "cache")
        assert not report.ok
        assert len(report.drivers.failures) == 1
        assert report.text_for("table5") is not None
        assert "FAIL" in report.summary()
