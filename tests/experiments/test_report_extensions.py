"""Tests for report rendering and the extension experiments."""

import pytest

from repro.experiments import ablations, appendix_fp32, background_texture
from repro.experiments.report import ratio, render_series, render_table


class TestRendering:
    def test_alignment_and_headers(self):
        text = render_table(["A", "Long header"], [(1, 2.5), ("x", None)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row padded to the same width

    def test_none_renders_dash(self):
        text = render_table(["A"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = render_table(["A"], [(1234.5,), (12.34,), (1.234,), (0.0,)])
        body = text.splitlines()[2:]
        assert body[0].strip() == "1,234"
        assert body[1].strip() == "12.3"
        assert body[2].strip() == "1.23"
        assert body[3].strip() == "0"

    def test_render_series(self):
        text = render_series("S", [(0, 1), (1, 2)], x_label="t", y_label="v")
        assert "S" in text and "t" in text and "v" in text

    def test_ratio_helper(self):
        assert ratio(6.0, 3.0) == 2.0
        assert ratio(None, 3.0) is None
        assert ratio(3.0, 0.0) is None


class TestBackgroundTexture:
    def test_runs_and_brackets_romou(self):
        result = background_texture.run(width=64, height=64)
        assert len(result.comparisons) == 3
        assert 1.5 <= result.max_speedup <= 6.0
        assert "texture" in result.render().lower()


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run(model="ResNet50")

    def test_all_studies_present(self, result):
        studies = {r.study for r in result.rows}
        assert studies == {"scheduler", "chunk_size", "lookback", "window"}

    def test_greedy_much_faster_than_cp(self, result):
        sched = {r.setting: r for r in result.study("scheduler")}
        assert sched["greedy-only"].solve_s < sched["CP-SAT"].solve_s

    def test_coarse_chunks_hurt_streaming(self, result):
        chunks = {r.setting: r for r in result.study("chunk_size")}
        assert chunks["2048 KiB"].preload_pct >= chunks["128 KiB"].preload_pct


class TestAppendixFp32:
    def test_trends_hold_across_precision(self):
        result = appendix_fp32.run(models=["ViT"])
        fp16 = result.row("ViT", "fp16")
        fp32 = result.row("ViT", "fp32")
        assert fp16.speedup > 1.0 and fp32.speedup > 1.0
        assert fp32.flashmem_mb > fp16.flashmem_mb
        assert fp32.smem_ms > fp16.smem_ms
