"""Integration tests for the experiment drivers.

Heavier drivers run on reduced model sets; the process-level cache in
``repro.experiments.common`` makes repeated driver calls cheap within the
module.  These tests assert the *shape* claims of the paper's evaluation —
who wins, in which direction — not absolute numbers.
"""

import pytest

from repro.experiments import (
    fig2,
    fig4,
    fig6,
    fig8,
    fig9,
    fig10,
    table1,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)

SMALL = ["ResNet50", "ViT"]


class TestMotivationAndCharacterization:
    def test_table1_transform_dominates(self):
        result = table1.run()
        assert len(result.rows) == 3
        for row in result.rows:
            # Table 1's motivation: init (load+trans) dominates inference.
            assert row.load_ms + row.trans_ms > row.infer_ms
            assert row.peak_mb > row.avg_mb
        assert "Table 1" in result.render()

    def test_table5_renders_three_classes(self):
        result = table5.run()
        assert len(result.class_rows) == 3
        caps = {op: mb for op, _, mb in result.measured_rows}
        assert caps["Matmul"] > caps["Add"] > caps["Softmax"] == 0

    def test_table6_matches_paper_within_tolerance(self):
        result = table6.run()
        assert len(result.rows) == 11
        for row in result.rows:
            assert row.built_params_m == pytest.approx(row.paper_params_m, rel=0.30)
            assert row.built_macs_g == pytest.approx(row.paper_macs_g, rel=0.30)


class TestSensitivityAndModel:
    def test_fig2_class_ordering(self):
        result = fig2.run()
        final = {c.op: c.points[-1][1] for c in result.curves}
        # Hierarchical ops suffer most per unit of streamed data relative to
        # their base latency; matmul crosses thresholds last (or never).
        t20 = {c.op: c.threshold_20 for c in result.curves}
        for hier in ("Softmax", "LayerNorm"):
            assert t20[hier] is not None
            assert t20["Matmul"] is None or t20["Matmul"] > t20[hier]
        assert all(delta >= 0 for c in result.curves for _, delta in c.points)

    def test_fig4_model_accurate(self):
        result = fig4.run(max_ops_per_model=8)
        assert result.holdout_mean_rel_error < 0.25
        assert set(result.per_class_rel_error) <= {"elemental", "reusable", "hierarchical"}


class TestHeadlineTables:
    def test_table7_flashmem_wins_cold_start(self):
        result = table7.run(models=SMALL)
        for row in result.rows:
            assert row.speedup_smem is not None and row.speedup_smem > 1.0
        assert result.geomean_speedup["SMem"] > 1.0

    def test_table7_support_matrix(self):
        result = table7.run(models=["ViT"])
        row = result.rows[0]
        assert row.baselines["NCNN"] is None  # ViT unsupported on NCNN
        assert row.baselines["MNN"] is not None

    def test_table8_flashmem_uses_least_memory(self):
        result = table8.run(models=SMALL)
        for row in result.rows:
            assert row.mem_redt is not None and row.mem_redt > 1.0
            for fw, mb in row.baselines.items():
                if mb is not None:
                    assert mb > row.flashmem_mb, f"{fw} beat FlashMem on {row.model}"


class TestBreakdownAndTradeoffs:
    def test_fig8_tradeoff_directions(self):
        result = fig8.run(models=["ViT"])
        series = result.series("ViT")
        ratios = [p.achieved_ratio for p in series]
        execs = [p.exec_ms for p in series]
        mems = [p.avg_memory_mb for p in series]
        assert ratios == sorted(ratios)
        # More preload -> faster execution phase, more resident memory.
        assert execs[-1] < execs[0]
        assert mems[-1] > mems[0]

    def test_fig9_naive_strategies_slower(self):
        result = fig9.run(models=["ViT", "GPTN-S"])
        for row in result.rows:
            assert row.always_next_slowdown >= 1.0
            assert row.same_next_slowdown >= 0.95  # never meaningfully faster
        assert max(r.always_next_slowdown for r in result.rows) > 1.2


class TestMultiModelEnergyPortability:
    def test_fig6_flashmem_bounds_session(self):
        result = fig6.run(iterations=2)
        assert result.mnn.peak_memory_bytes > result.flashmem.peak_memory_bytes
        assert result.mnn.total_ms > result.flashmem.total_ms
        assert result.peak_ratio > 1.5

    def test_table9_energy_savings(self):
        result = table9.run()
        for model in ("DeepViT",):
            for fw in ("MNN", "SMem"):
                saving = result.savings_vs(fw, model)
                assert saving is not None and saving > 0.5  # paper: 83-96%

    def test_fig10_oom_pattern(self):
        result = fig10.run(devices=["Pixel 8"], models=["ViT", "GPTN-1.3B"])
        by_model = {r.model: r for r in result.rows}
        assert by_model["GPTN-1.3B"].smem_oom       # SmartMem cannot init it
        assert not by_model["GPTN-1.3B"].flashmem_oom  # FlashMem streams it
        assert not by_model["ViT"].smem_oom

    def test_table4_solver_statuses(self):
        result = table4.run(models=["GPTN-S"], time_limit_s=2.0)
        row = result.rows[0]
        assert row.status in ("OPTIMAL", "FEASIBLE")
        assert row.solve_s <= 2.0 * 2  # respects the budget (with slack)
