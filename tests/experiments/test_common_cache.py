"""Tests for the experiment-level compilation/result caches."""

import pytest

from repro.experiments import common


class TestCaches:
    def test_graph_cache_returns_same_object(self):
        a = common.cached_graph("ResNet50")
        b = common.cached_graph("ResNet50")
        assert a is b

    def test_capacity_cache_per_device(self):
        a = common.cached_capacity("OnePlus 12")
        b = common.cached_capacity("OnePlus 12")
        c = common.cached_capacity("Pixel 8")
        assert a is b
        assert a is not c

    def test_compile_cache_reused_by_results(self):
        compiled_a = common.cached_compile("ResNet50", "OnePlus 12")
        result_1 = common.flashmem_result("ResNet50", "OnePlus 12")
        compiled_b = common.cached_compile("ResNet50", "OnePlus 12")
        result_2 = common.flashmem_result("ResNet50", "OnePlus 12")
        assert compiled_a is compiled_b
        assert result_1 is result_2

    def test_framework_result_none_for_unsupported(self):
        assert common.framework_result("NCNN", "ViT", "OnePlus 12") is None

    def test_smartmem_runs_layout_eliminated_graph(self):
        from repro.graph.lowering import layout_op_count

        result = common.framework_result("SMem", "ViT", "OnePlus 12")
        raw = common.cached_graph("ViT")
        assert result is not None
        # SmartMem's exec kernel count excludes the layout ops MNN pays for.
        mnn = common.framework_result("MNN", "ViT", "OnePlus 12")
        assert layout_op_count(raw) > 0
        assert mnn is not None

    def test_clear_caches_resets(self):
        a = common.cached_graph("ResNet50")
        common.clear_caches()
        b = common.cached_graph("ResNet50")
        assert a is not b

    def test_experiment_config_overrides(self):
        cfg = common.experiment_opg_config(lookback=7)
        assert cfg.lookback == 7
        assert cfg.time_limit_s == 3.0  # default preserved
