"""Tests for the seeded fleet trace generator and its JSON round trip."""

import pytest

from repro.fleet.trace import (
    ThrottleWindow,
    Trace,
    TraceInvocation,
    generate_trace,
    scenario_from_key,
)
from repro.gpusim.device import THROTTLE_STATES
from repro.runtime.scenario import Scenario


class TestGenerate:
    def test_seeded_deterministic(self):
        a = generate_trace(seed=7, duration_s=120)
        b = generate_trace(seed=7, duration_s=120)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = generate_trace(seed=1, duration_s=120)
        b = generate_trace(seed=2, duration_s=120)
        assert a.to_json() != b.to_json()

    def test_arrivals_sorted_within_duration(self):
        trace = generate_trace(seed=3, duration_s=300)
        arrivals = [inv.arrival_ms for inv in trace.invocations]
        assert arrivals == sorted(arrivals)
        assert all(0 < a < trace.duration_ms for a in arrivals)

    def test_rate_controls_count(self):
        slow = generate_trace(seed=5, duration_s=600, rate_per_min=6)
        fast = generate_trace(seed=5, duration_s=600, rate_per_min=60)
        assert len(fast.invocations) > 2 * len(slow.invocations)

    def test_invocation_count_override(self):
        trace = generate_trace(seed=5, duration_s=10, rate_per_min=6, invocations=50)
        assert len(trace.invocations) == 50

    def test_mix_includes_decode(self):
        trace = generate_trace(seed=11, duration_s=600, rate_per_min=60)
        kinds = {inv.scenario.kind for inv in trace.invocations}
        assert kinds == {"prefill", "decode"}

    def test_priorities_present(self):
        trace = generate_trace(seed=11, duration_s=600, rate_per_min=60)
        assert {inv.priority for inv in trace.invocations} == {0, 1}

    def test_throttle_windows_valid(self):
        trace = generate_trace(seed=13, duration_s=600)
        assert trace.throttle
        for window in trace.throttle:
            assert window.state in THROTTLE_STATES
            assert window.start_ms < window.end_ms <= trace.duration_ms


class TestStateAt:
    def test_nominal_outside_windows(self):
        trace = Trace(
            name="t",
            seed=0,
            duration_ms=100.0,
            throttle=[ThrottleWindow(start_ms=10.0, end_ms=20.0, state="hot")],
        )
        assert trace.state_at(5.0) == "nominal"
        assert trace.state_at(10.0) == "hot"
        assert trace.state_at(19.999) == "hot"
        assert trace.state_at(20.0) == "nominal"  # half-open window
        assert trace.factor_at(15.0) == THROTTLE_STATES["hot"]

    def test_later_window_wins_on_overlap(self):
        trace = Trace(
            name="t",
            seed=0,
            duration_ms=100.0,
            throttle=[
                ThrottleWindow(start_ms=0.0, end_ms=50.0, state="warm"),
                ThrottleWindow(start_ms=30.0, end_ms=40.0, state="critical"),
            ],
        )
        assert trace.state_at(35.0) == "critical"
        assert trace.state_at(45.0) == "warm"


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        trace = generate_trace(seed=21, duration_s=120)
        path = trace.save(tmp_path / "trace.json")
        loaded = Trace.load(path)
        assert loaded.to_json() == trace.to_json()
        assert loaded.invocations == trace.invocations
        assert loaded.throttle == trace.throttle

    def test_version_checked(self, tmp_path):
        data = generate_trace(seed=1, duration_s=10).to_json()
        data["version"] = 99
        with pytest.raises(ValueError):
            Trace.from_json(data)

    def test_scenario_from_key_round_trip(self):
        for scenario in (Scenario.prefill(3), Scenario.decode(tokens=8, context_len=64)):
            assert scenario_from_key(scenario.cache_key()) == scenario


class TestValidation:
    def test_unsorted_invocations_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                name="t",
                seed=0,
                duration_ms=10.0,
                invocations=[
                    TraceInvocation(5.0, "ViT", Scenario.prefill(1)),
                    TraceInvocation(1.0, "ViT", Scenario.prefill(1)),
                ],
            )

    def test_bad_throttle_state_rejected(self):
        with pytest.raises(KeyError):
            ThrottleWindow(start_ms=0.0, end_ms=1.0, state="melting")

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ThrottleWindow(start_ms=5.0, end_ms=5.0, state="hot")
