"""Tests for episode memoization and trace replay (scheduling + identity)."""

import numpy as np
import pytest

from repro.core.store import ArtifactStore
from repro.experiments import common
from repro.fleet.episode import EpisodeProvider
from repro.fleet.replay import CellResult, replay_trace
from repro.fleet.trace import ThrottleWindow, Trace, TraceInvocation, generate_trace
from repro.runtime.scenario import Scenario

PREFILL = Scenario.prefill(1)
MIX = (("ViT", PREFILL, 1, 3.0), ("ResNet50", PREFILL, 0, 1.0))


@pytest.fixture(scope="module")
def trace():
    return generate_trace(seed=3, duration_s=45, rate_per_min=40, mix=MIX, name="t")


@pytest.fixture(scope="module")
def memo_cell(trace):
    return replay_trace(trace, "OnePlus 12", "FlashMem")


class TestEpisodeProvider:
    def test_memoizes_repeat_requests(self):
        provider = EpisodeProvider()
        a = provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL, "nominal")
        b = provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL, "nominal")
        assert a is b
        assert provider.simulated == 1
        assert provider.replayed == 1

    def test_throttle_state_is_part_of_key(self):
        provider = EpisodeProvider()
        nominal = provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL, "nominal")
        hot = provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL, "hot")
        assert provider.simulated == 2
        assert hot.latency_ms > nominal.latency_ms

    def test_naive_mode_always_simulates(self):
        provider = EpisodeProvider(memoize=False)
        provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL)
        provider.get("ViT", "OnePlus 12", "FlashMem", PREFILL)
        assert provider.simulated == 2
        assert provider.replayed == 0

    def test_unknown_state_rejected(self):
        with pytest.raises(KeyError):
            EpisodeProvider().get("ViT", "OnePlus 12", "FlashMem", PREFILL, "melting")

    def test_episode_columns_round_trip(self):
        episode = EpisodeProvider().get("ViT", "OnePlus 12", "FlashMem", PREFILL)
        assert episode.latency_ms > 0
        assert int(np.cumsum(episode.deltas).max()) == episode.peak_bytes
        start, times, deltas, end = episode.session(100.0)
        assert start == 100.0
        assert end == pytest.approx(100.0 + episode.latency_ms)

    def test_persistent_store_read_through(self, tmp_path):
        previous = common.swap_store(ArtifactStore(tmp_path))
        try:
            first = EpisodeProvider()
            first.get("ViT", "OnePlus 12", "FlashMem", PREFILL)
            assert first.simulated == 1
            # A fresh provider (fresh process, conceptually) hits the store.
            second = EpisodeProvider()
            second.get("ViT", "OnePlus 12", "FlashMem", PREFILL)
            assert second.simulated == 0
            assert second.replayed == 1
        finally:
            common.swap_store(previous)


class TestReplayScheduling:
    def test_device_serves_one_at_a_time(self, memo_cell):
        ordered = sorted(memo_cell.outcomes, key=lambda o: o.start_ms)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start_ms >= a.end_ms

    def test_every_invocation_scheduled_once(self, trace, memo_cell):
        assert memo_cell.invocations == len(trace.invocations)
        assert sorted(o.index for o in memo_cell.outcomes) == list(
            range(len(trace.invocations))
        )

    def test_no_start_before_arrival(self, memo_cell):
        for outcome in memo_cell.outcomes:
            assert outcome.start_ms >= outcome.arrival_ms
            assert outcome.latency_ms >= outcome.end_ms - outcome.start_ms

    def test_priority_wins_among_queued(self):
        # Three arrivals while the device is busy with the first: the
        # priority-1 request must start before the earlier priority-0 one.
        trace = Trace(
            name="p",
            seed=0,
            duration_ms=10_000.0,
            invocations=[
                TraceInvocation(0.0, "ViT", PREFILL, priority=0),
                TraceInvocation(1.0, "ViT", PREFILL, priority=0),
                TraceInvocation(2.0, "ViT", PREFILL, priority=1),
            ],
        )
        cell = replay_trace(trace, "OnePlus 12", "FlashMem")
        by_index = {o.index: o for o in cell.outcomes}
        assert by_index[2].start_ms < by_index[1].start_ms

    def test_throttled_window_slows_invocations(self):
        hot = Trace(
            name="hot",
            seed=0,
            duration_ms=60_000.0,
            invocations=[TraceInvocation(1_000.0, "ViT", PREFILL, priority=1)],
            throttle=[ThrottleWindow(0.0, 60_000.0, "critical")],
        )
        cool = Trace(
            name="cool",
            seed=0,
            duration_ms=60_000.0,
            invocations=[TraceInvocation(1_000.0, "ViT", PREFILL, priority=1)],
        )
        provider = EpisodeProvider()
        slow = replay_trace(hot, "OnePlus 12", "FlashMem", provider=provider)
        fast = replay_trace(cool, "OnePlus 12", "FlashMem", provider=provider)
        assert slow.outcomes[0].state == "critical"
        assert slow.outcomes[0].latency_ms > fast.outcomes[0].latency_ms
        # Same SLO target either way: the budget is nominal-latency based.
        assert slow.outcomes[0].slo_target_ms == fast.outcomes[0].slo_target_ms


class TestReplayIdentity:
    def test_memoized_equals_naive(self, trace, memo_cell):
        naive = replay_trace(
            trace, "OnePlus 12", "FlashMem", provider=EpisodeProvider(memoize=False)
        )
        assert naive.episodes_simulated > memo_cell.episodes_simulated
        assert memo_cell.canonical_json() == naive.canonical_json()

    def test_far_fewer_simulations(self, trace, memo_cell):
        assert memo_cell.episodes_simulated < len(trace.invocations)
        assert (
            memo_cell.episodes_simulated + memo_cell.invocations_replayed
            == 2 * len(trace.invocations)  # throttled + nominal per invocation
        )


class TestCellStats:
    def test_percentiles_ordered(self, memo_cell):
        assert 0 < memo_cell.p50_ms <= memo_cell.p99_ms
        assert memo_cell.p99_ms <= max(o.latency_ms for o in memo_cell.outcomes)

    def test_slo_attainment_bounds(self, memo_cell):
        assert 0.0 <= memo_cell.slo_attainment <= 1.0

    def test_empty_cell_defaults(self):
        cell = CellResult(trace_name="t", device="d", runtime="r", slo_multiplier=3.0)
        assert cell.p50_ms == 0.0
        assert cell.slo_attainment == 1.0

    def test_makespan_covers_trace(self, trace, memo_cell):
        assert memo_cell.makespan_ms >= trace.duration_ms
        assert memo_cell.device_hours == pytest.approx(
            memo_cell.makespan_ms / 3_600_000.0
        )
