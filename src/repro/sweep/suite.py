"""Suite orchestration behind ``python -m repro experiment all``.

Two phases, both riding the same persistent artifact store:

1. **warm** — the deduplicated primitive (model, device, runtime) cells the
   requested drivers share are fanned out across the pool, populating the
   store (skipped when caching is off — worker results could not be shared
   — or when running serially, where warming would just reorder the work).
2. **render** — the drivers themselves run (also fanned out when
   ``jobs > 1``), loading the warm primitives, and their rendered text is
   written under ``results/`` in deterministic driver order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.sweep.cells import driver_cells, primitive_cells
from repro.sweep.runner import SweepReport, SweepRunner

#: Default persistent cache location (CLI: overridable via --cache-dir or
#: the REPRO_CACHE_DIR environment variable; --no-cache disables).
DEFAULT_CACHE_DIR = ".artifact-cache"

ProgressFn = Callable[[str], None]


@dataclass
class SuiteReport:
    """Outcome of one suite invocation."""

    names: List[str]
    drivers: SweepReport
    primitives: Optional[SweepReport]
    written: List[Path]
    wall_s: float

    @property
    def ok(self) -> bool:
        return not self.drivers.failures

    def text_for(self, name: str) -> Optional[str]:
        for outcome in self.drivers.outcomes:
            if outcome.cell.name == name:
                return outcome.text
        return None

    def store_totals(self) -> Dict[str, int]:
        totals = self.drivers.store_totals()
        if self.primitives is not None:
            for k, v in self.primitives.store_totals().items():
                totals[k] = totals.get(k, 0) + v
        return totals

    def sim_totals(self) -> Dict[str, float]:
        totals = self.drivers.sim_totals()
        if self.primitives is not None:
            for k, v in self.primitives.sim_totals().items():
                totals[k] = totals.get(k, 0.0) + v
        return totals

    def cache_line(self) -> str:
        sim = self.sim_totals()
        pricing_part = ""
        if sim.get("table_hits", 0) or sim.get("table_misses", 0):
            pricing_part = (f"; pricing tables: {int(sim.get('table_hits', 0))} hits, "
                            f"{int(sim.get('table_misses', 0))} misses")
        if self.drivers.cache_dir is None:
            return "cache: disabled (--no-cache)" + pricing_part
        t = self.store_totals()
        return (f"cache: {t['hits']} hits, {t['misses']} misses, {t['stores']} stored"
                + (f", {t['corrupt']} quarantined" if t["corrupt"] else "")
                + f" (dir {self.drivers.cache_dir})" + pricing_part)

    def sim_line(self) -> Optional[str]:
        """Total simulated time vs suite render wall, when anything simulated."""
        sim = self.sim_totals()
        runs = int(sim.get("runs", 0))
        if not runs:
            return None
        line = (f"simulation: {runs} run(s), {sim.get('sim_s', 0.0):.2f}s simulated "
                f"vs {self.wall_s:.1f}s suite wall")
        replayed = int(sim.get("replayed_iterations", 0))
        if replayed:
            line += f", {replayed} iteration(s) extrapolated"
        return line

    def summary(self) -> str:
        """Per-driver status lines plus the sweep sim/cache-stats lines."""
        by_name = {o.cell.name: o for o in self.drivers.outcomes}
        lines = []
        for name in self.names:
            o = by_name[name]
            status = "ok  " if o.ok else "FAIL"
            hit = " [cached]" if o.cache_hit else ""
            lines.append(f"  {status} {name:20s} {o.wall_s:7.2f}s{hit}"
                         + (f"  {o.error}" if o.error else ""))
        if self.primitives is not None:
            prim = self.primitives
            lines.append(
                f"warm phase: {len(prim.outcomes)} primitive cells, "
                f"{prim.cache_hits} cached, {len(prim.failures)} failed, "
                f"{prim.wall_s:.1f}s wall"
            )
        lines.append(
            f"suite: {len(self.names)} drivers, {len(self.drivers.failures)} failed, "
            f"{self.wall_s:.1f}s wall, {self.drivers.jobs} job(s)"
        )
        sim_line = self.sim_line()
        if sim_line:
            lines.append(sim_line)
        lines.append(self.cache_line())
        return "\n".join(lines)


def run_suite(
    names: Sequence[str],
    *,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    results_dir: Union[str, Path, None] = None,
    progress: Optional[ProgressFn] = None,
) -> SuiteReport:
    """Run experiment drivers ``names``, optionally parallel and cache-warm.

    A failing driver (or primitive cell) is reported in the returned
    :class:`SuiteReport` and the suite continues.  When ``results_dir`` is
    given, each successful driver's rendered text is written there as
    ``<name>.txt`` (same format as the benchmarks), in driver order.
    """
    say = progress or (lambda _line: None)
    start = time.perf_counter()

    prim_report: Optional[SweepReport] = None
    if cache_dir is not None and jobs > 1:
        cells = primitive_cells(names)
        if cells:
            say(f"warming {len(cells)} primitive cells across {jobs} jobs ...")
            with SweepRunner(jobs=jobs, cache_dir=cache_dir) as runner:
                prim_report = runner.run(
                    cells,
                    progress=lambda o, done, total: say(
                        f"  [{done}/{total}] {o.cell.label()} {o.wall_s:.2f}s"
                        + (" [cached]" if o.cache_hit else "")
                        + ("" if o.ok else f" FAILED: {o.error}")
                    ),
                )

    say(f"running {len(names)} drivers ...")
    with SweepRunner(jobs=jobs, cache_dir=cache_dir) as runner:
        driver_report = runner.run(
            driver_cells(names),
            progress=lambda o, done, total: say(
                f"  [{done}/{total}] {o.cell.name} {o.wall_s:.2f}s"
                + (" [cached]" if o.cache_hit else "")
                + ("" if o.ok else f" FAILED: {o.error}")
            ),
        )

    written: List[Path] = []
    if results_dir is not None:
        out_dir = Path(results_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        by_name = {o.cell.name: o for o in driver_report.outcomes}
        for name in names:
            outcome = by_name[name]
            if outcome.ok and outcome.text is not None:
                path = out_dir / f"{name}.txt"
                path.write_text(outcome.text + "\n")
                written.append(path)

    return SuiteReport(
        names=list(names),
        drivers=driver_report,
        primitives=prim_report,
        written=written,
        wall_s=time.perf_counter() - start,
    )
