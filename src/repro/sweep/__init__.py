"""Sweep subsystem: parallel, cache-warm execution of the experiment suite.

The paper's LC-OPG plans are offline, reusable deployment artifacts; this
package makes the whole reproduction pipeline behave the same way.  A
:class:`~repro.sweep.runner.SweepRunner` fans independent (model, device,
runtime) cells and experiment drivers out across worker processes, every
worker shares one persistent :class:`~repro.core.store.ArtifactStore`, and
:func:`~repro.sweep.suite.run_suite` orchestrates the two phases behind
``python -m repro experiment all --jobs N --cache-dir D``.
"""

from repro.sweep.cells import Cell, driver_cells, primitive_cells
from repro.sweep.runner import CellOutcome, SweepReport, SweepRunner
from repro.sweep.suite import SuiteReport, run_suite

__all__ = [
    "Cell", "driver_cells", "primitive_cells",
    "CellOutcome", "SweepReport", "SweepRunner",
    "SuiteReport", "run_suite",
]
