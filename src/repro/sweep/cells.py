"""Sweep cells: the independent units the runner fans out across workers.

Two granularities, matching the two cache layers:

- **primitive cells** — one (model, device, runtime) simulation each, the
  shared substrate of the evaluation drivers (Table 7/8/9, Figures 6/9/10,
  preemption).  Warming these first dedups cross-driver work: Table 7 and
  Table 8, for example, consume the exact same 77 runs.
- **driver cells** — one experiment driver each, returning its rendered
  table/figure text.  Drivers with bespoke configurations (ablations,
  Figure 7 variants, Table 4 scaling set) only exist at this granularity.

The registry below declares which primitive cells each driver consumes, by
importing the driver modules' own model/device constants — it cannot drift
silently when a driver's model list changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.experiments import fig6, fig7, fig9, fig10, preemption, table1, table9
from repro.experiments.common import DEFAULT_DEVICE
from repro.graph.models import EVALUATED_MODELS
from repro.runtime.frameworks import BASELINE_ORDER

#: Runtime label for the FlashMem pipeline itself (vs framework baselines).
FLASHMEM = "FlashMem"


@dataclass(frozen=True, order=True)
class Cell:
    """One schedulable unit of sweep work.

    ``kind`` is ``"flashmem"`` / ``"framework"`` (primitive simulations) or
    ``"driver"`` (a whole experiment driver).  For primitives ``name`` is
    the model and ``runtime`` the executing framework; for drivers ``name``
    is the driver module name.
    """

    kind: str
    name: str
    device: str = ""
    runtime: str = ""

    def label(self) -> str:
        if self.kind == "driver":
            return f"driver:{self.name}"
        return f"{self.runtime}:{self.name}@{self.device}"


def _flashmem(model: str, device: str = DEFAULT_DEVICE) -> Cell:
    return Cell("flashmem", model, device, FLASHMEM)


def _framework(runtime: str, model: str, device: str = DEFAULT_DEVICE) -> Cell:
    return Cell("framework", model, device, runtime)


def _full_grid(models: Iterable[str]) -> Set[Cell]:
    cells: Set[Cell] = set()
    for model in models:
        cells.add(_flashmem(model))
        cells.update(_framework(fw, model) for fw in BASELINE_ORDER)
    return cells


def _registry() -> Dict[str, Set[Cell]]:
    grid = _full_grid(EVALUATED_MODELS)
    reg: Dict[str, Set[Cell]] = {
        "table1": {_framework("MNN", m) for m in table1.MODELS},
        "table7": set(grid),
        "table8": set(grid),
        "table9": {_flashmem(m) for m in table9.MODELS}
        | {_framework(fw, m) for m in table9.MODELS for fw in table9.FRAMEWORKS},
        "fig6": {_flashmem(m) for m in fig6.MODELS}
        | {_framework("MNN", m) for m in fig6.MODELS},
        "fig9": {_flashmem(m) for m in fig9.MODELS},
        "fig10": {
            cell
            for device in fig10.DEVICES
            for model in fig10.MODELS
            for cell in (_flashmem(model, device), _framework("SMem", model, device))
        },
        "preemption": {
            cell
            for model in (preemption.VICTIM, preemption.URGENT)
            for cell in (_flashmem(model), _framework("SMem", model))
        },
        # fig7 builds its FlashMem variants under bespoke configs; only its
        # SmartMem reference runs are shared primitives.
        "fig7": {_framework("SMem", m) for m in fig7.MODELS},
    }
    return reg


def primitive_cells(driver_names: Iterable[str]) -> List[Cell]:
    """Deduplicated primitive cells the named drivers consume, heavy
    (FlashMem compile) cells first so the pool packs them well."""
    reg = _registry()
    cells: Set[Cell] = set()
    for name in driver_names:
        cells.update(reg.get(name, ()))
    return sorted(cells, key=lambda c: (c.kind != "flashmem", c))


def driver_cells(driver_names: Iterable[str]) -> List[Cell]:
    return [Cell("driver", name) for name in driver_names]
