"""Process-pool sweep runner with deterministic merging.

Cells are executed across ``jobs`` worker processes (inline when
``jobs=1``), every worker sharing one persistent artifact store configured
by a pool initializer.  The runner records per-cell wall time and
store-counter deltas, captures failures without aborting the sweep, and
merges outcomes in sorted cell order so the report is independent of
completion order.
"""

from __future__ import annotations

import importlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.sweep.cells import Cell

PathLike = Union[str, Path]


@dataclass
class CellOutcome:
    """What happened to one cell: timing, cache traffic, failure, output."""

    cell: Cell
    ok: bool
    wall_s: float
    cache_hit: bool = False
    store_delta: Dict[str, int] = field(default_factory=dict)
    #: Simulation hot-path counters accrued by this cell (runs, sim_s,
    #: pricing table hits/misses, replayed iterations) — see
    #: :data:`repro.gpusim.pricing.STATS`.
    sim_delta: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    #: Rendered table/figure text for ``driver`` cells.
    text: Optional[str] = None


def _driver_render_key(name: str) -> Dict[str, str]:
    from repro.experiments.common import experiment_config_fingerprint

    return {"kind": "driver-render", "name": name,
            "config": experiment_config_fingerprint()}


def _run_driver(name: str) -> tuple:
    """Render one driver, consulting the persistent store first.

    Driver renders are cached whole — including wall-clock-derived fields
    like Table 4 solve times — which is what makes a warm ``experiment all``
    rerun byte-for-byte identical to the cold run that populated the store.
    """
    from repro.experiments import common

    store = common.cache_store()
    key = _driver_render_key(name)
    if store is not None:
        stored = store.load(key)
        if stored is not None:
            return stored["text"], True
    module = importlib.import_module(f"repro.experiments.{name}")
    text = module.run().render()
    if store is not None:
        store.save(key, {"text": text})
    return text, False


def _execute_cell(cell: Cell) -> CellOutcome:
    """Run one cell in the current process (worker or inline)."""
    from repro.experiments import common
    from repro.gpusim import pricing

    store = common.cache_store()
    before = store.stats.snapshot() if store is not None else {}
    sim_before = pricing.STATS.snapshot()
    start = time.perf_counter()
    text: Optional[str] = None
    cache_hit = False
    try:
        if cell.kind == "flashmem":
            cache_hit = bool(store and store.contains(
                common.flashmem_run_key(cell.name, cell.device, common.PREFILL_ONCE)))
            common.flashmem_result(cell.name, cell.device)
        elif cell.kind == "framework":
            cache_hit = bool(store and store.contains(
                common.framework_run_key(cell.runtime, cell.name, cell.device,
                                         common.PREFILL_ONCE)))
            common.framework_result(cell.runtime, cell.name, cell.device)
        elif cell.kind == "driver":
            text, cache_hit = _run_driver(cell.name)
        else:
            raise ValueError(f"unknown cell kind {cell.kind!r}")
        ok, error = True, ""
    except Exception as exc:  # noqa: BLE001 — a failed cell must not kill the sweep
        ok, error = False, f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - start
    delta = store.stats.delta_since(before) if store is not None else {}
    sim_delta = pricing.STATS.delta_since(sim_before)
    return CellOutcome(cell=cell, ok=ok, wall_s=wall, cache_hit=cache_hit,
                       store_delta=delta, sim_delta=sim_delta, error=error, text=text)


def _worker_init(cache_dir: Optional[str]) -> None:
    """Configure the worker-local store and pay the heavy imports up front,
    so the first real cell a worker receives does cell work only."""
    from repro.experiments.common import configure_cache
    from repro.gpusim import pricing  # noqa: F401 — import cost is the point

    configure_cache(cache_dir)


def _worker_warmup(delay_s: float) -> int:
    """Pre-warm barrier task: holding each worker busy for ``delay_s``
    forces the pool to actually spawn (and init) every worker."""
    time.sleep(delay_s)
    return os.getpid()


def prewarm_executor(pool: ProcessPoolExecutor, workers: int, barrier_s: float) -> List[int]:
    """Force ``pool`` to spawn and initialize all ``workers`` now.

    One barrier task per worker, each holding its worker busy long enough
    that the pool cannot serve two tasks from the same process; returns the
    worker pids.  Shared by :class:`SweepRunner` and the plan-compilation
    service's :class:`~repro.service.pool.CompilePool` so process spawn +
    module imports + store init are paid before the timed/served work.
    """
    futures = [pool.submit(_worker_warmup, barrier_s) for _ in range(workers)]
    return [future.result() for future in futures]


@dataclass
class SweepReport:
    """Deterministically merged outcomes of one sweep."""

    outcomes: List[CellOutcome]
    jobs: int
    cache_dir: Optional[str]
    wall_s: float

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    def store_totals(self) -> Dict[str, int]:
        totals = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
        for outcome in self.outcomes:
            for k in totals:
                totals[k] += outcome.store_delta.get(k, 0)
        return totals

    def sim_totals(self) -> Dict[str, float]:
        """Aggregate simulation hot-path counters across all cells.

        Keys follow :class:`repro.gpusim.pricing.SimStats` (runs, sim_s,
        table hits/misses, replayed iterations).  With a process pool each
        worker's deltas are summed, so totals cover the whole sweep.
        """
        totals: Dict[str, float] = {}
        for outcome in self.outcomes:
            for k, v in outcome.sim_delta.items():
                totals[k] = totals.get(k, 0.0) + v
        return totals

    def cache_line(self) -> str:
        """One-line cache-traffic summary for the CLI output."""
        sim = self.sim_totals()
        pricing_part = ""
        priced = sim.get("table_hits", 0) + sim.get("table_misses", 0)
        if priced:
            pricing_part = (f"; pricing tables: {int(sim.get('table_hits', 0))} hits, "
                            f"{int(sim.get('table_misses', 0))} misses")
        if self.cache_dir is None:
            return "cache: disabled (--no-cache)" + pricing_part
        t = self.store_totals()
        return (f"cache: {t['hits']} hits, {t['misses']} misses, {t['stores']} stored"
                + (f", {t['corrupt']} quarantined" if t["corrupt"] else "")
                + f" (dir {self.cache_dir})" + pricing_part)

    def sim_line(self) -> Optional[str]:
        """Summary of simulated time vs everything else, when cells simulated.

        ``sim_s`` is the wall time spent inside executor runs; the remainder
        of the sweep wall clock is compile/solve/render/cache traffic.  None
        when no cell ran a simulation (fully warm sweeps).
        """
        sim = self.sim_totals()
        runs = int(sim.get("runs", 0))
        if not runs:
            return None
        sim_s = sim.get("sim_s", 0.0)
        line = (f"simulation: {runs} run(s), {sim_s:.2f}s simulated "
                f"vs {self.wall_s:.1f}s total sweep wall")
        replayed = int(sim.get("replayed_iterations", 0))
        if replayed:
            line += f", {replayed} iteration(s) extrapolated"
        return line

    def render(self) -> str:
        lines = [f"sweep: {len(self.outcomes)} cells, {self.jobs} job(s), "
                 f"{self.wall_s:.1f}s wall, {len(self.failures)} failed"]
        for o in self.outcomes:
            status = "ok " if o.ok else "FAIL"
            hit = " [cached]" if o.cache_hit else ""
            lines.append(f"  {status} {o.cell.label():40s} {o.wall_s:7.2f}s{hit}"
                         + (f"  {o.error}" if o.error else ""))
        sim_line = self.sim_line()
        if sim_line:
            lines.append(sim_line)
        lines.append(self.cache_line())
        return "\n".join(lines)


class SweepRunner:
    """Fan cells out over a process pool sharing one persistent store.

    ``prewarm()`` spins the pool up (process spawn + module imports +
    store configuration) ahead of ``run()``, so measured sweep wall time
    covers cell work only — worker startup used to eat the whole
    parallelism win on short sweeps.  A pre-warmed pool is reused across
    ``run()`` calls.  The runner is a context manager — use ``with`` so
    ``close()`` runs even when a timed ``run()`` raises (a bare
    prewarm/run/close sequence leaks the pool on the exception path)::

        with SweepRunner(jobs=4, cache_dir=cache) as runner:
            runner.prewarm()
            report = runner.run(cells)
    """

    def __init__(self, *, jobs: int = 1, cache_dir: Optional[PathLike] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._pool: Optional[ProcessPoolExecutor] = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def prewarm(self, *, barrier_s: float = 0.05) -> None:
        """Start every worker now; blocks until all are spawned and inited."""
        if self.jobs <= 1 or self._pool is not None:
            return
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_worker_init,
            initargs=(self.cache_dir,),
        )
        prewarm_executor(self._pool, self.jobs, barrier_s)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(
        self,
        cells: Sequence[Cell],
        *,
        progress: Optional[Callable[[CellOutcome, int, int], None]] = None,
    ) -> SweepReport:
        """Execute ``cells``; a raising cell is reported, never fatal.

        ``progress`` is invoked as cells complete (completion order); the
        report itself is merged in sorted cell order.
        """
        start = time.perf_counter()
        outcomes: List[CellOutcome] = []
        done = 0
        if self.jobs == 1 or len(cells) <= 1:
            from repro.core.store import ArtifactStore
            from repro.experiments.common import swap_store

            store = ArtifactStore(self.cache_dir) if self.cache_dir is not None else None
            previous = swap_store(store)
            try:
                for cell in cells:
                    outcome = _execute_cell(cell)
                    outcomes.append(outcome)
                    done += 1
                    if progress:
                        progress(outcome, done, len(cells))
            finally:
                swap_store(previous)
        else:
            pool = self._pool
            owned = pool is None
            if owned:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, max(1, len(cells))),
                    initializer=_worker_init,
                    initargs=(self.cache_dir,),
                )
            try:
                pending = {pool.submit(_execute_cell, cell): cell for cell in cells}
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        cell = pending.pop(future)
                        exc = future.exception()
                        if exc is not None:  # worker died (not a cell error)
                            outcome = CellOutcome(
                                cell=cell, ok=False, wall_s=0.0,
                                error=f"worker failure: {type(exc).__name__}: {exc}",
                            )
                        else:
                            outcome = future.result()
                        outcomes.append(outcome)
                        done += 1
                        if progress:
                            progress(outcome, done, len(cells))
            finally:
                if owned:
                    pool.shutdown()
        outcomes.sort(key=lambda o: o.cell)
        return SweepReport(
            outcomes=outcomes,
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            wall_s=time.perf_counter() - start,
        )
