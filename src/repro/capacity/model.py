"""The trained load-capacity model: per-layer C_l for the LC-OPG solver.

Combines the class thresholds (0% / 20% / 300%, paper §4.2) with a latency
predictor.  Two predictor backends:

- ``analytic`` — invert the simulator's cost model directly (exact);
- ``gbt`` — the paper's approach: train the gradient-boosted regressor on
  profiled samples and invert the *prediction* by bisection.

Both yield a :class:`LoadCapacityModel` exposing ``capacity_bytes(op)``,
which the solver consumes as C_l (converted to chunks).  Hot callers
(the fusion loop, the runtime planners, the OPG builder) go through
``capacity_bytes_batch(ops)``, which advances every operator's bisection in
lockstep — one batched regressor call per step instead of one single-row
predict per (op, step) — and memoizes results per op fingerprint.  The
original sequential path is kept verbatim as ``capacity_bytes_oracle`` for
differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.capacity.classify import threshold_for
from repro.capacity.features import (
    LOAD_LOG_COL,
    LOAD_RATIO_COL,
    featurize,
    load_feature_columns,
)
from repro.capacity.gbt import GBTConfig, GradientBoostedTrees
from repro.capacity.profiler import LoadCapacityProfiler, ProfileDataset
from repro.gpusim.device import DeviceProfile
from repro.gpusim.kernels import KernelCostModel
from repro.graph.dag import Graph
from repro.graph.ops import OpSpec


@dataclass
class CapacityModelReport:
    """Fit diagnostics (Figure 4 reproduction)."""

    n_samples: int
    train_rmse_log10: float
    holdout_rmse_log10: float

    @property
    def holdout_mean_rel_error(self) -> float:
        """Approximate mean relative latency error implied by log-RMSE."""
        return 10**self.holdout_rmse_log10 - 1.0


class LoadCapacityModel:
    """Per-operator load capacities C_l derived from a latency predictor."""

    def __init__(
        self,
        device: DeviceProfile,
        *,
        backend: str = "analytic",
        regressor: Optional[GradientBoostedTrees] = None,
    ) -> None:
        if backend not in ("analytic", "gbt"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "gbt" and regressor is None:
            raise ValueError("gbt backend requires a fitted regressor")
        self.device = device
        self.backend = backend
        self.cost = KernelCostModel(device)
        self.regressor = regressor
        self.report: Optional[CapacityModelReport] = None
        self._capacity_memo: Dict[tuple, int] = {}
        self.stats: Dict[str, int] = {
            "queries": 0,
            "memo_hits": 0,
            "bisections": 0,
            "batch_predicts": 0,
        }

    # ------------------------------------------------------------ training
    @classmethod
    def train(
        cls,
        device: DeviceProfile,
        graphs: Iterable[Graph],
        *,
        seed: int = 0,
        gbt_config: Optional[GBTConfig] = None,
        max_ops_per_model: int = 40,
    ) -> "LoadCapacityModel":
        """Profile ``graphs`` and fit the GBT latency regressor (paper path)."""
        profiler = LoadCapacityProfiler(device, seed=seed)
        dataset = profiler.profile_models(graphs, max_ops_per_model=max_ops_per_model)
        return cls.from_dataset(device, dataset, seed=seed, gbt_config=gbt_config)

    @classmethod
    def from_dataset(
        cls,
        device: DeviceProfile,
        dataset: ProfileDataset,
        *,
        seed: int = 0,
        gbt_config: Optional[GBTConfig] = None,
    ) -> "LoadCapacityModel":
        train, holdout = dataset.split(holdout=0.2, seed=seed)
        X, y = train.matrices()
        config = gbt_config or GBTConfig(seed=seed)
        reg = GradientBoostedTrees(config).fit(X, y)
        Xh, yh = holdout.matrices()
        model = cls(device, backend="gbt", regressor=reg)
        model.report = CapacityModelReport(
            n_samples=len(dataset),
            train_rmse_log10=reg.train_rmse_ or 0.0,
            holdout_rmse_log10=reg.score_rmse(Xh, yh) if len(holdout) else 0.0,
        )
        return model

    # ----------------------------------------------------------- prediction
    def predict_latency_ms(self, op: OpSpec, extra_bytes: int = 0) -> float:
        """Predicted kernel latency with an embedded load of ``extra_bytes``."""
        if self.backend == "analytic":
            return self.cost.time_with_load_ms(op, extra_bytes)
        assert self.regressor is not None
        log_latency = self.regressor.predict(featurize(op, extra_bytes).reshape(1, -1))[0]
        return float(10**log_latency)

    def predict_latency_ms_oracle(self, op: OpSpec, extra_bytes: int = 0) -> float:
        """Like :meth:`predict_latency_ms` via the per-row node-walk oracle."""
        if self.backend == "analytic":
            return self.cost.time_with_load_ms(op, extra_bytes)
        assert self.regressor is not None
        log_latency = self.regressor.predict_nodewalk(
            featurize(op, extra_bytes).reshape(1, -1)
        )[0]
        return float(10**log_latency)

    # ------------------------------------------------------------ capacities
    @staticmethod
    def _op_key(op: OpSpec) -> tuple:
        """Fingerprint of every op attribute the capacity depends on."""
        return (
            op.kind,
            op.op_class,
            op.flops,
            op.bytes_moved,
            op.input_bytes,
            op.output_bytes,
            op.output_spec.numel,
        )

    def _leaf_specs(self, op: OpSpec) -> List[OpSpec]:
        """Non-fused constituent ops (the op itself when not fused)."""
        from repro.fusion.fuser import fused_members, is_fused

        if not is_fused(op):
            return [op]
        leaves: List[OpSpec] = []
        for member in fused_members(op):
            leaves.extend(self._leaf_specs(member))
        return leaves

    def capacity_bytes(self, op: OpSpec) -> int:
        """Load capacity C_l of one operator, in bytes.

        The largest embedded load whose (predicted) latency stays within the
        class threshold of the base latency.  Hierarchical operators get 0.
        Fused kernels collapse to roughly the minimum of their members'
        capacities (paper §4.3: ``C_fused ~= min(C_1, ..., C_k)``) — the
        fused loop structure is paced by its least load-tolerant stage.
        """
        return self.capacity_bytes_batch([op])[0]

    def capacity_bytes_batch(self, ops: Sequence[OpSpec]) -> List[int]:
        """Load capacities for many operators with lockstep bisection.

        Resolves fused ops to their leaf members, computes every uncached
        leaf capacity in a single batch (the ``gbt`` backend advances all
        bisections simultaneously — one batched regressor call per step),
        and memoizes per op fingerprint so repeated fusion-loop queries are
        dictionary lookups.  Returns plain Python ints, identical to
        :meth:`capacity_bytes_oracle` per op.
        """
        memo = self._capacity_memo
        self.stats["queries"] += len(ops)

        resolved: List[Tuple[tuple, List[Tuple[tuple, OpSpec]]]] = []
        pending: Dict[tuple, OpSpec] = {}
        for op in ops:
            leaves = self._leaf_specs(op)
            lkeys = [self._op_key(s) for s in leaves]
            okey = lkeys[0] if len(lkeys) == 1 else ("fused", tuple(lkeys))
            resolved.append((okey, list(zip(lkeys, leaves))))
            if okey in memo:
                self.stats["memo_hits"] += 1
                continue
            for key, spec in zip(lkeys, leaves):
                if key not in memo and key not in pending:
                    pending[key] = spec

        if pending:
            keys = list(pending)
            specs = [pending[k] for k in keys]
            thresholds = [threshold_for(s) for s in specs]
            if self.backend == "analytic":
                values = [
                    0 if t <= 0.0 else self.cost.load_capacity_bytes(s, t)
                    for s, t in zip(specs, thresholds)
                ]
            else:
                values = self._gbt_capacity_lockstep(specs, thresholds)
            for key, value in zip(keys, values):
                memo[key] = int(value)

        out: List[int] = []
        for okey, leaves in resolved:
            value = memo.get(okey)
            if value is None:
                value = min(memo[key] for key, _ in leaves)
                memo[okey] = value
            out.append(value)
        return out

    @staticmethod
    def _set_load_columns(
        X: np.ndarray, extras: Sequence[int], input_bytes: Sequence[int]
    ) -> None:
        log_col, ratio_col = load_feature_columns(extras, input_bytes)
        X[:, LOAD_LOG_COL] = log_col
        X[:, LOAD_RATIO_COL] = ratio_col

    def _gbt_capacity_lockstep(
        self, specs: Sequence[OpSpec], thresholds: Sequence[float]
    ) -> List[int]:
        """Bisect all ops' capacities at once over batched regressor calls."""
        assert self.regressor is not None
        results = [0] * len(specs)
        active = [i for i, t in enumerate(thresholds) if t > 0.0]
        if not active:
            return results

        X = np.vstack([featurize(specs[i], 0) for i in active])
        self.stats["batch_predicts"] += 1
        base_log = self.regressor.predict(X)
        limit = (10.0**base_log) * (
            1.0 + np.asarray([thresholds[i] for i in active], dtype=float)
        )
        input_bytes = [max(1, specs[i].input_bytes) for i in active]
        hi0 = [max(specs[i].input_bytes * 16, 1 << 20) for i in active]

        # Ops already within the latency limit at the top of the search
        # range saturate there (same early-out as the sequential path).
        self._set_load_columns(X, hi0, input_bytes)
        self.stats["batch_predicts"] += 1
        saturated = (10.0 ** self.regressor.predict(X)) <= limit
        remaining = []
        for pos, i in enumerate(active):
            if saturated[pos]:
                results[i] = hi0[pos]
            else:
                remaining.append(pos)
        if not remaining:
            return results

        rows = np.asarray(remaining)
        Xr = np.ascontiguousarray(X[rows])
        limit_r = limit[rows]
        ib_r = [input_bytes[p] for p in remaining]
        lo = np.zeros(len(remaining), dtype=np.int64)
        hi = np.asarray([hi0[p] for p in remaining], dtype=np.int64)
        self.stats["bisections"] += len(remaining)
        for _ in range(40):
            mid = (lo + hi) // 2
            mids = [int(v) for v in mid]
            self._set_load_columns(Xr, mids, ib_r)
            self.stats["batch_predicts"] += 1
            ok = (10.0 ** self.regressor.predict(Xr)) <= limit_r
            lo = np.where(ok, mid, lo)
            hi = np.where(ok, hi, mid)
        for pos, p in enumerate(remaining):
            results[active[p]] = int(lo[pos])
        return results

    def capacity_bytes_oracle(self, op: OpSpec) -> int:
        """Sequential reference path (pre-batching), for differential tests.

        One scalar 40-step bisection per op with a fresh single-row
        node-walk predict per step — no memo, no batching.
        """
        from repro.fusion.fuser import fused_members, is_fused

        if is_fused(op):
            return min(self.capacity_bytes_oracle(m) for m in fused_members(op))
        threshold = threshold_for(op)
        if threshold <= 0.0:
            return 0
        if self.backend == "analytic":
            return self.cost.load_capacity_bytes(op, threshold)
        # GBT backend: bisect over the regressor's predictions.
        base = self.predict_latency_ms_oracle(op, 0)
        limit = base * (1.0 + threshold)
        lo, hi = 0, max(op.input_bytes * 16, 1 << 20)
        if self.predict_latency_ms_oracle(op, hi) <= limit:
            return hi
        for _ in range(40):
            mid = (lo + hi) // 2
            if self.predict_latency_ms_oracle(op, mid) <= limit:
                lo = mid
            else:
                hi = mid
        return lo

    def capacity_chunks(self, op: OpSpec, chunk_bytes: int) -> int:
        """C_l expressed in whole chunks (the solver's unit)."""
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        return self.capacity_bytes(op) // chunk_bytes

    def capacity_chunks_batch(self, ops: Sequence[OpSpec], chunk_bytes: int) -> List[int]:
        """Batched :meth:`capacity_chunks` over the lockstep capacity path."""
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        return [c // chunk_bytes for c in self.capacity_bytes_batch(ops)]


def analytic_capacity_model(device: DeviceProfile) -> LoadCapacityModel:
    """Exact capacity model straight from the simulator's cost model."""
    return LoadCapacityModel(device, backend="analytic")
