"""The trained load-capacity model: per-layer C_l for the LC-OPG solver.

Combines the class thresholds (0% / 20% / 300%, paper §4.2) with a latency
predictor.  Two predictor backends:

- ``analytic`` — invert the simulator's cost model directly (exact);
- ``gbt`` — the paper's approach: train the gradient-boosted regressor on
  profiled samples and invert the *prediction* by bisection.

Both yield a :class:`LoadCapacityModel` exposing ``capacity_bytes(op)``,
which the solver consumes as C_l (converted to chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.capacity.classify import threshold_for
from repro.capacity.features import featurize
from repro.capacity.gbt import GBTConfig, GradientBoostedTrees
from repro.capacity.profiler import LoadCapacityProfiler, ProfileDataset
from repro.gpusim.device import DeviceProfile
from repro.gpusim.kernels import KernelCostModel
from repro.graph.dag import Graph
from repro.graph.ops import OpSpec


@dataclass
class CapacityModelReport:
    """Fit diagnostics (Figure 4 reproduction)."""

    n_samples: int
    train_rmse_log10: float
    holdout_rmse_log10: float

    @property
    def holdout_mean_rel_error(self) -> float:
        """Approximate mean relative latency error implied by log-RMSE."""
        return 10**self.holdout_rmse_log10 - 1.0


class LoadCapacityModel:
    """Per-operator load capacities C_l derived from a latency predictor."""

    def __init__(
        self,
        device: DeviceProfile,
        *,
        backend: str = "analytic",
        regressor: Optional[GradientBoostedTrees] = None,
    ) -> None:
        if backend not in ("analytic", "gbt"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "gbt" and regressor is None:
            raise ValueError("gbt backend requires a fitted regressor")
        self.device = device
        self.backend = backend
        self.cost = KernelCostModel(device)
        self.regressor = regressor
        self.report: Optional[CapacityModelReport] = None

    # ------------------------------------------------------------ training
    @classmethod
    def train(
        cls,
        device: DeviceProfile,
        graphs: Iterable[Graph],
        *,
        seed: int = 0,
        gbt_config: Optional[GBTConfig] = None,
        max_ops_per_model: int = 40,
    ) -> "LoadCapacityModel":
        """Profile ``graphs`` and fit the GBT latency regressor (paper path)."""
        profiler = LoadCapacityProfiler(device, seed=seed)
        dataset = profiler.profile_models(graphs, max_ops_per_model=max_ops_per_model)
        return cls.from_dataset(device, dataset, seed=seed, gbt_config=gbt_config)

    @classmethod
    def from_dataset(
        cls,
        device: DeviceProfile,
        dataset: ProfileDataset,
        *,
        seed: int = 0,
        gbt_config: Optional[GBTConfig] = None,
    ) -> "LoadCapacityModel":
        train, holdout = dataset.split(holdout=0.2, seed=seed)
        X, y = train.matrices()
        config = gbt_config or GBTConfig(seed=seed)
        reg = GradientBoostedTrees(config).fit(X, y)
        Xh, yh = holdout.matrices()
        model = cls(device, backend="gbt", regressor=reg)
        model.report = CapacityModelReport(
            n_samples=len(dataset),
            train_rmse_log10=reg.train_rmse_ or 0.0,
            holdout_rmse_log10=reg.score_rmse(Xh, yh) if len(holdout) else 0.0,
        )
        return model

    # ----------------------------------------------------------- prediction
    def predict_latency_ms(self, op: OpSpec, extra_bytes: int = 0) -> float:
        """Predicted kernel latency with an embedded load of ``extra_bytes``."""
        if self.backend == "analytic":
            return self.cost.time_with_load_ms(op, extra_bytes)
        assert self.regressor is not None
        log_latency = self.regressor.predict(featurize(op, extra_bytes).reshape(1, -1))[0]
        return float(10**log_latency)

    def capacity_bytes(self, op: OpSpec) -> int:
        """Load capacity C_l of one operator, in bytes.

        The largest embedded load whose (predicted) latency stays within the
        class threshold of the base latency.  Hierarchical operators get 0.
        Fused kernels collapse to roughly the minimum of their members'
        capacities (paper §4.3: ``C_fused ~= min(C_1, ..., C_k)``) — the
        fused loop structure is paced by its least load-tolerant stage.
        """
        from repro.fusion.fuser import fused_members, is_fused

        if is_fused(op):
            return min(self.capacity_bytes(m) for m in fused_members(op))
        threshold = threshold_for(op)
        if threshold <= 0.0:
            return 0
        if self.backend == "analytic":
            return self.cost.load_capacity_bytes(op, threshold)
        # GBT backend: bisect over the regressor's predictions.
        base = self.predict_latency_ms(op, 0)
        limit = base * (1.0 + threshold)
        lo, hi = 0, max(op.input_bytes * 16, 1 << 20)
        if self.predict_latency_ms(op, hi) <= limit:
            return hi
        for _ in range(40):
            mid = (lo + hi) // 2
            if self.predict_latency_ms(op, mid) <= limit:
                lo = mid
            else:
                hi = mid
        return lo

    def capacity_chunks(self, op: OpSpec, chunk_bytes: int) -> int:
        """C_l expressed in whole chunks (the solver's unit)."""
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        return self.capacity_bytes(op) // chunk_bytes


def analytic_capacity_model(device: DeviceProfile) -> LoadCapacityModel:
    """Exact capacity model straight from the simulator's cost model."""
    return LoadCapacityModel(device, backend="analytic")
