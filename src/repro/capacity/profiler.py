"""Load-capacity profiling harness (paper §2.3 Figure 2 and §4.2 Figure 4).

The paper measures each kernel's latency while forcing it to stream varying
amounts of additional weight data, across operators sampled from more than
ten models.  Here the simulator's kernel cost model plays the role of the
physical GPU: the profiler samples (operator, load ratio) points, perturbs
them with measurement noise, and emits a dataset the GBT regressor trains
on.  The same harness produces the Figure 2 sensitivity curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.capacity.features import featurize_batch
from repro.gpusim.device import DeviceProfile
from repro.gpusim.kernels import KernelCostModel
from repro.graph.dag import Graph
from repro.graph.ops import OpClass, OpSpec

#: Load ratios swept per operator (multiples of the kernel's input bytes),
#: matching Figure 2's x-axis range.
DEFAULT_LOAD_RATIOS: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


@dataclass
class ProfileSample:
    """One measured point: an operator run with an embedded load."""

    op: OpSpec
    extra_bytes: int
    latency_ms: float


@dataclass
class ProfileDataset:
    """Collected samples plus the matrices the regressor consumes."""

    samples: List[ProfileSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """(X, y) with y = log10 latency (latencies span ~5 decades)."""
        X = featurize_batch((s.op, s.extra_bytes) for s in self.samples)
        y = np.log10(np.array([max(1e-6, s.latency_ms) for s in self.samples]))
        return X, y

    def split(self, holdout: float = 0.2, seed: int = 0) -> Tuple["ProfileDataset", "ProfileDataset"]:
        """Deterministic train/holdout split."""
        rng = np.random.default_rng(seed)
        idx = rng.permutation(len(self.samples))
        cut = int(len(idx) * (1.0 - holdout))
        train = ProfileDataset([self.samples[i] for i in idx[:cut]])
        test = ProfileDataset([self.samples[i] for i in idx[cut:]])
        return train, test


class LoadCapacityProfiler:
    """Samples kernel latencies under varying embedded loads.

    ``noise`` is the relative measurement jitter (lognormal), seeded for
    reproducibility — physical profiling has run-to-run variance, and the
    regressor should be trained against noisy observations as the paper's
    was.
    """

    def __init__(self, device: DeviceProfile, *, noise: float = 0.03, seed: int = 0) -> None:
        self.device = device
        self.cost = KernelCostModel(device)
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def measure(self, op: OpSpec, extra_bytes: int) -> float:
        """One noisy latency observation (the simulator is ground truth)."""
        true = self.cost.time_with_load_ms(op, extra_bytes)
        if self.noise <= 0:
            return true
        return float(true * self._rng.lognormal(mean=0.0, sigma=self.noise))

    def profile_op(self, op: OpSpec, ratios: Sequence[float] = DEFAULT_LOAD_RATIOS) -> List[ProfileSample]:
        """Sweep one operator across load ratios."""
        samples = []
        for r in ratios:
            extra = int(op.input_bytes * r)
            samples.append(ProfileSample(op, extra, self.measure(op, extra)))
        return samples

    def profile_graph(
        self,
        graph: Graph,
        *,
        max_ops: int = 60,
        ratios: Sequence[float] = DEFAULT_LOAD_RATIOS,
    ) -> ProfileDataset:
        """Strategically sample up to ``max_ops`` operators from a model.

        Sampling is stratified by operator class so hierarchical operators
        (rare but critical) are always represented.
        """
        by_class: Dict[OpClass, List[OpSpec]] = {}
        for node in graph.nodes():
            if node.op_class is OpClass.LAYOUT:
                continue
            by_class.setdefault(node.op_class, []).append(node.spec)
        dataset = ProfileDataset()
        classes = [c for c in by_class if by_class[c]]
        per_class = max(1, max_ops // max(1, len(classes)))
        for cls in classes:
            ops = by_class[cls]
            step = max(1, len(ops) // per_class)
            for op in ops[::step][:per_class]:
                dataset.samples.extend(self.profile_op(op, ratios))
        return dataset

    def profile_models(self, graphs: Iterable[Graph], *, max_ops_per_model: int = 40) -> ProfileDataset:
        """Profile a fleet of models (the paper uses >10)."""
        dataset = ProfileDataset()
        for g in graphs:
            dataset.samples.extend(self.profile_graph(g, max_ops=max_ops_per_model).samples)
        return dataset

    # ----------------------------------------------------------- Figure 2
    def sensitivity_curve(
        self, op: OpSpec, ratios: Sequence[float] = DEFAULT_LOAD_RATIOS
    ) -> List[Tuple[float, float]]:
        """(load ratio, latency increase ms) series — one Figure 2 line.

        Uses the noiseless model so the curve is the clean analytic shape.
        """
        base = self.cost.base_time_ms(op)
        out = []
        for r in ratios:
            extra = int(op.input_bytes * r)
            out.append((r, self.cost.time_with_load_ms(op, extra) - base))
        return out

    def threshold_crossing(self, op: OpSpec, threshold: float, *, max_ratio: float = 16.0) -> Optional[float]:
        """Smallest load ratio where slowdown exceeds ``threshold`` (bisection).

        Returns None when the operator never crosses within ``max_ratio`` —
        Figure 2's 20%/30% markers.
        """
        if self.cost.slowdown_fraction(op, int(op.input_bytes * max_ratio)) < threshold:
            return None
        lo, hi = 0.0, max_ratio
        for _ in range(48):
            mid = (lo + hi) / 2
            if self.cost.slowdown_fraction(op, int(op.input_bytes * mid)) < threshold:
                lo = mid
            else:
                hi = mid
        return hi
