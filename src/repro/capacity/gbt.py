"""Gradient-boosted regression trees on numpy (XGBoost substitute).

The paper trains an XGBoost regressor to predict kernel latency under
varying additional loads (§4.2, Figure 4).  XGBoost is not available
offline, so this module implements the same model family from scratch:
squared-error gradient boosting over exact-split regression trees, with
shrinkage, subsampling, and depth control.  The feature space is small
(around ten features) and datasets are thousands of rows, so exact greedy
splitting is fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float = 0.0
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """CART regression tree with exact greedy splits on squared error."""

    def __init__(self, *, max_depth: int = 4, min_samples_leaf: int = 4, min_gain: float = 1e-12) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: Optional[_TreeNode] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> Optional[Tuple[int, float]]:
        n, d = X.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = self.min_gain
        best: Optional[Tuple[int, float]] = None
        for f in range(d):
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            # Prefix sums let us evaluate every split in O(n).
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue  # cannot split between equal feature values
                nl = i + 1
                nr = n - nl
                sl, sql = csum[i], csq[i]
                sr, sqr = total_sum - sl, total_sq - sql
                sse = (sql - sl * sl / nl) + (sqr - sr * sr / nr)
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


@dataclass
class GBTConfig:
    """Hyperparameters of the boosted ensemble."""

    n_estimators: int = 120
    learning_rate: float = 0.1
    max_depth: int = 4
    min_samples_leaf: int = 4
    subsample: float = 0.9
    seed: int = 0


class GradientBoostedTrees:
    """Squared-error gradient boosting: F_{m}(x) = F_{m-1}(x) + lr * tree_m(x).

    With squared error the negative gradient is the residual, so each stage
    fits a regression tree to the current residuals — functionally the same
    core as XGBoost's default regressor (without second-order terms).
    """

    def __init__(self, config: Optional[GBTConfig] = None) -> None:
        self.config = config or GBTConfig()
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0
        self.train_rmse_: Optional[float] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty with matching length")
        rng = np.random.default_rng(self.config.seed)
        self._base = float(y.mean())
        pred = np.full(len(y), self._base)
        self._trees = []
        n = len(y)
        sample = max(self.config.min_samples_leaf * 2, int(n * self.config.subsample))
        for _ in range(self.config.n_estimators):
            residual = y - pred
            if sample < n:
                idx = rng.choice(n, size=sample, replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.config.max_depth,
                min_samples_leaf=self.config.min_samples_leaf,
            ).fit(X[idx], residual[idx])
            update = tree.predict(X)
            pred = pred + self.config.learning_rate * update
            self._trees.append(tree)
        self.train_rmse_ = float(np.sqrt(((y - pred) ** 2).mean()))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        pred = np.full(len(X), self._base)
        for tree in self._trees:
            pred = pred + self.config.learning_rate * tree.predict(X)
        return pred

    def score_rmse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Root-mean-squared error on a held-out set."""
        return float(np.sqrt(((self.predict(X) - np.asarray(y, dtype=float)) ** 2).mean()))
