"""Gradient-boosted regression trees on numpy (XGBoost substitute).

The paper trains an XGBoost regressor to predict kernel latency under
varying additional loads (§4.2, Figure 4).  XGBoost is not available
offline, so this module implements the same model family from scratch:
squared-error gradient boosting with shrinkage, subsampling, and depth
control.  Two tree builders share one compiled representation:

- ``tree_method="hist"`` (default) — LightGBM-style histogram splits.
  Features are pre-binned **once per fit** into small integer codes; each
  tree level accumulates per-node (count, Σy, Σy²) histograms with a single
  flattened ``bincount`` over all nodes × features, derives the larger
  sibling of every split by the parent−child subtraction trick, and picks
  the best split per node from cumulative sums — no Python loop over split
  points.  Bin boundaries are midpoints between distinct feature values
  (all of them when a feature has ≤ ``max_bins`` distinct values, so small
  features split exactly; quantile-spaced otherwise).
- ``tree_method="exact"`` — the seed's exact greedy CART splits
  (:class:`RegressionTree`), kept as the differential oracle.

Either way a fitted tree is compiled into a :class:`FlatTree` — parallel
(feature, threshold, left, right, value) arrays — and whole matrices are
predicted by iterative vectorized descent, bitwise-identical to the
per-row node walk (``predict_nodewalk``) because the per-element
comparisons and leaf values are the same IEEE operations in the same
order.  Boosting's per-stage full-X re-predict runs in code space
(``predict_binned``), which lands every row in the same leaf as the
real-threshold descent: with codes from ``searchsorted(B, x, "left")``,
``code ≤ t  ⇔  x ≤ B[t]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float = 0.0
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class FlatTree:
    """A fitted regression tree compiled to parallel arrays.

    ``feature[i] < 0`` marks node ``i`` as a leaf; internal nodes route a
    row to ``left[i]`` when ``row[feature[i]] <= threshold[i]``, else to
    ``right[i]``.  ``bin_threshold`` carries the same splits as integer bin
    codes for trees grown on a :class:`_BinnedMatrix` (None for exact-split
    trees), enabling the code-space descent used by boosting's per-stage
    training-set re-predict.
    """

    def __init__(self, feature, threshold, left, right, value, *, bin_threshold=None) -> None:
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.value = np.asarray(value, dtype=np.float64)
        self.bin_threshold = (
            None if bin_threshold is None else np.asarray(bin_threshold, dtype=np.int64)
        )

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def _descend(self, M: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Route every row of ``M`` to its leaf; returns the leaf values."""
        idx = np.zeros(len(M), dtype=np.int64)
        if not len(M) or self.feature[0] < 0:
            return self.value[idx]
        rows = np.arange(len(M))
        while len(rows):
            node = idx[rows]
            f = self.feature[node]
            go_left = M[rows, f] <= thresholds[node]
            nxt = np.where(go_left, self.left[node], self.right[node])
            idx[rows] = nxt
            rows = rows[self.feature[nxt] >= 0]
        return self.value[idx]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized descent over real-valued features."""
        return self._descend(np.asarray(X, dtype=float), self.threshold)

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Descent in bin-code space (hist-grown trees only).

        Identical leaf assignment to :meth:`predict` on the matrix the codes
        were binned from: ``code ≤ t ⇔ x ≤ boundary[t]``.
        """
        if self.bin_threshold is None:
            raise RuntimeError("tree was not grown on binned data")
        return self._descend(codes, self.bin_threshold)

    def predict_nodewalk(self, X: np.ndarray) -> np.ndarray:
        """Per-row node walk — the seed implementation's predict path,
        kept as the bitwise oracle for :meth:`predict`."""
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            j = 0
            while self.feature[j] >= 0:
                j = self.left[j] if row[self.feature[j]] <= self.threshold[j] else self.right[j]
            out[i] = self.value[j]
        return out


class RegressionTree:
    """CART regression tree with exact greedy splits on squared error.

    The seed builder, kept as the differential oracle for the histogram
    path; ``flatten()`` compiles it to a :class:`FlatTree` for batched
    inference.
    """

    def __init__(self, *, max_depth: int = 4, min_samples_leaf: int = 4, min_gain: float = 1e-12) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: Optional[_TreeNode] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> Optional[Tuple[int, float]]:
        n, d = X.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = self.min_gain
        best: Optional[Tuple[int, float]] = None
        for f in range(d):
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            # Prefix sums let us evaluate every split in O(n).
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue  # cannot split between equal feature values
                nl = i + 1
                nr = n - nl
                sl, sql = csum[i], csq[i]
                sr, sqr = total_sum - sl, total_sq - sql
                sse = (sql - sl * sl / nl) + (sqr - sr * sr / nr)
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def flatten(self) -> FlatTree:
        """Compile the fitted node chain into parallel arrays."""
        if self._root is None:
            raise RuntimeError("tree not fitted")
        feat: List[int] = []
        thr: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[float] = []

        def add(node: _TreeNode) -> int:
            i = len(feat)
            feat.append(-1)
            thr.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            if not node.is_leaf:
                feat[i] = int(node.feature)
                thr[i] = node.threshold
                left[i] = add(node.left)
                right[i] = add(node.right)
            return i

        add(self._root)
        return FlatTree(feat, thr, left, right, value)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


# --------------------------------------------------------------- histograms
def _bin_boundaries(col: np.ndarray, max_bins: int) -> np.ndarray:
    """Split-candidate boundaries for one feature column.

    With ≤ ``max_bins`` distinct values the boundaries are *all* midpoints
    between consecutive distinct values — the exact builder's candidate set,
    so small features lose nothing to binning.  Otherwise boundaries sit at
    sample quantiles (density-aware), snapped to midpoints between the two
    distinct values they fall between so every boundary separates data.
    """
    u = np.unique(col)
    if len(u) <= 1:
        return np.empty(0)
    if len(u) <= max_bins:
        return (u[:-1] + u[1:]) / 2.0
    n = len(col)
    xs = np.sort(col, kind="stable")
    qpos = (np.arange(1, max_bins) * n) // max_bins
    j = np.searchsorted(u, xs[qpos], side="left")
    j = j[j >= 1]
    return np.unique((u[j - 1] + u[j]) / 2.0)


class _BinnedMatrix:
    """A feature matrix pre-binned to small integer codes, once per fit.

    ``codes[i, f] = searchsorted(boundaries[f], X[i, f], side="left")``, so
    for any boundary index ``t``: ``codes[i, f] <= t  ⇔  X[i, f] <=
    boundaries[f][t]`` — code-space descent is exactly real-threshold
    descent on the binned matrix.
    """

    def __init__(self, X: np.ndarray, max_bins: int) -> None:
        n, d = X.shape
        self.boundaries: List[np.ndarray] = []
        codes = np.empty((n, d), dtype=np.int64)
        for f in range(d):
            b = _bin_boundaries(X[:, f], max_bins)
            self.boundaries.append(b)
            codes[:, f] = np.searchsorted(b, X[:, f], side="left")
        self.codes = codes
        #: Variable-width histogram layout: feature ``f`` owns the absolute
        #: bin range ``[offsets[f], offsets[f] + n_bins[f])``, so features
        #: with two distinct values cost two histogram slots, not
        #: ``max_bins`` — the flattened keyspace is Σ bins, not d·max_bins.
        self.n_bins = np.array([len(b) + 1 for b in self.boundaries], dtype=np.int64)
        self.offsets = np.concatenate(([0], np.cumsum(self.n_bins)[:-1]))
        self.total_bins = int(self.n_bins.sum())
        #: Codes with the per-feature offset pre-added — the grower's
        #: flattened-bincount keys need only the node-slot offset on top.
        self.codes_off = codes + self.offsets


def _grow_hist_tree(
    codes_off: np.ndarray,
    y: np.ndarray,
    binned: "_BinnedMatrix",
    *,
    max_depth: int,
    min_samples_leaf: int,
    min_gain: float = 1e-12,
) -> FlatTree:
    """Level-wise histogram tree growth, vectorized across nodes × features.

    Each level runs one flattened ``bincount`` over the rows that landed in
    this level's *smaller* children (keys ``slot·Σbins + offset[f] + code``,
    with the feature offset pre-baked into ``codes_off``); the larger
    sibling's histograms come from the parent−child subtraction trick.
    Best splits per node fall out of cumulative sums of the (count, Σy)
    histograms — maximizing the squared-error gain ``sse_node − (sse_l +
    sse_r)`` is maximizing ``sl²/nl + sr²/nr`` (the Σy² terms cancel), so
    no y² histogram is needed and no Python loop touches split points.
    """
    n, d = codes_off.shape
    y = np.asarray(y, dtype=np.float64)
    boundaries = binned.boundaries
    offsets = binned.offsets
    B = binned.total_bins
    #: feature owning each absolute bin, for decoding argmax winners
    seg = np.repeat(np.arange(d, dtype=np.int64), binned.n_bins)

    feat: List[int] = []
    thr: List[float] = []
    bint: List[int] = []
    left: List[int] = []
    right: List[int] = []
    value: List[float] = []

    def new_node(mean: float) -> int:
        feat.append(-1)
        thr.append(0.0)
        bint.append(-1)
        left.append(-1)
        right.append(-1)
        value.append(float(mean))
        return len(feat) - 1

    def hists(rows: np.ndarray, slot_of_row: np.ndarray, n_slots: int):
        size = n_slots * B
        keys = (slot_of_row[:, None] * B + codes_off[rows]).ravel()
        cnt = np.bincount(keys, minlength=size).reshape(n_slots, B)
        s = np.bincount(keys, weights=np.repeat(y[rows], d), minlength=size).reshape(n_slots, B)
        return cnt, s

    new_node(y.mean() if n else 0.0)
    if n < 2 * min_samples_leaf:
        return FlatTree(feat, thr, left, right, value, bin_threshold=bint)

    active_rows = np.arange(n)
    row_slot = np.zeros(n, dtype=np.int64)
    level_ids = np.array([0], dtype=np.int64)
    hc, hs = hists(active_rows, row_slot, 1)

    for _depth in range(max_depth):
        n_slots = len(level_ids)
        # Global cumsum crosses feature borders; per-feature prefix sums are
        # recovered by subtracting each feature's segment base.
        cum_c = np.cumsum(hc, axis=1)
        cum_s = np.cumsum(hs, axis=1)
        base_c = np.zeros((n_slots, d))
        base_s = np.zeros((n_slots, d))
        base_c[:, 1:] = cum_c[:, offsets[1:] - 1]
        base_s[:, 1:] = cum_s[:, offsets[1:] - 1]
        nl = cum_c - base_c[:, seg]
        sl = cum_s - base_s[:, seg]
        tot_c = nl[:, offsets[0] + binned.n_bins[0] - 1]
        tot_s = sl[:, offsets[0] + binned.n_bins[0] - 1]
        nr = tot_c[:, None] - nl
        valid = (nl >= min_samples_leaf) & (nr >= min_samples_leaf)
        sr = tot_s[:, None] - sl
        with np.errstate(divide="ignore", invalid="ignore"):
            score = sl * sl / nl + sr * sr / nr
        # gain = score − tot_s²/tot_c (per node); -inf disqualifies a bin.
        gain = np.where(valid, score, -np.inf)
        gain -= (tot_s * tot_s / np.maximum(tot_c, 1))[:, None]
        best = np.argmax(gain, axis=1)
        best_gain = gain[np.arange(n_slots), best]
        best_f = seg[best]
        best_t = best - offsets[best_f]
        do_split = (best_gain > min_gain) & (tot_c >= 2 * min_samples_leaf)
        if not do_split.any():
            break

        split_slots = np.nonzero(do_split)[0]
        k = len(split_slots)
        sf = best_f[split_slots]
        st = best_t[split_slots]
        sb = best[split_slots]
        nl_k = nl[split_slots, sb]
        sl_k = sl[split_slots, sb]
        nr_k = tot_c[split_slots] - nl_k
        sr_k = tot_s[split_slots] - sl_k
        lids = np.empty(k, dtype=np.int64)
        rids = np.empty(k, dtype=np.int64)
        for i in range(k):
            nid = int(level_ids[split_slots[i]])
            f = int(sf[i])
            t = int(st[i])
            feat[nid] = f
            bint[nid] = t
            thr[nid] = float(boundaries[f][t])
            lids[i] = new_node(sl_k[i] / nl_k[i])
            rids[i] = new_node(sr_k[i] / nr_k[i])
            left[nid] = int(lids[i])
            right[nid] = int(rids[i])

        # Route this level's rows: rows in non-splitting slots settle into
        # their (already-final) leaves and drop out of the active set.  The
        # offset codes compare against the absolute winning bin directly.
        slot_map = np.full(n_slots, -1, dtype=np.int64)
        slot_map[split_slots] = np.arange(k)
        pos = slot_map[row_slot]
        keep = pos >= 0
        active_rows = active_rows[keep]
        pos = pos[keep]
        go_left = codes_off[active_rows, sf[pos]] <= sb[pos]
        row_slot = np.where(go_left, 2 * pos, 2 * pos + 1)

        # Child histograms: one flattened bincount over the smaller children
        # only; every larger sibling is parent − smaller.
        n_next = 2 * k
        arange_k = np.arange(k)
        small_is_left = nl_k <= nr_k
        small_slot = np.where(small_is_left, 2 * arange_k, 2 * arange_k + 1)
        big_slot = np.where(small_is_left, 2 * arange_k + 1, 2 * arange_k)
        in_small = np.zeros(n_next, dtype=bool)
        in_small[small_slot] = True
        sel = in_small[row_slot]
        parent_c, parent_s = hc[split_slots], hs[split_slots]
        hc, hs = hists(active_rows[sel], row_slot[sel], n_next)
        hc[big_slot] = parent_c - hc[small_slot]
        hs[big_slot] = parent_s - hs[small_slot]
        level_ids = np.empty(n_next, dtype=np.int64)
        level_ids[2 * arange_k] = lids
        level_ids[2 * arange_k + 1] = rids
    return FlatTree(feat, thr, left, right, value, bin_threshold=bint)


# ----------------------------------------------------------------- boosting
@dataclass
class GBTConfig:
    """Hyperparameters of the boosted ensemble."""

    n_estimators: int = 120
    learning_rate: float = 0.1
    max_depth: int = 4
    min_samples_leaf: int = 4
    subsample: float = 0.9
    seed: int = 0
    #: "hist" — histogram-binned splits (the fast default); "exact" — the
    #: seed's exact greedy splits, kept as the differential oracle.
    tree_method: str = "hist"
    #: Maximum histogram bins per feature ("hist" only).
    max_bins: int = 256

    def __post_init__(self) -> None:
        if self.tree_method not in ("hist", "exact"):
            raise ValueError(f"unknown tree_method {self.tree_method!r}")
        if self.max_bins < 2:
            raise ValueError("max_bins must be >= 2")


class GradientBoostedTrees:
    """Squared-error gradient boosting: F_{m}(x) = F_{m-1}(x) + lr * tree_m(x).

    With squared error the negative gradient is the residual, so each stage
    fits a regression tree to the current residuals — functionally the same
    core as XGBoost's default regressor (without second-order terms).
    Stages are :class:`FlatTree` objects whatever the ``tree_method``, so
    ``predict``/``score_rmse`` run columnar over whole matrices; the
    per-stage training-set re-predict runs in pre-binned code space for
    "hist" (identical leaf assignment, see :class:`_BinnedMatrix`).
    """

    def __init__(self, config: Optional[GBTConfig] = None) -> None:
        self.config = config or GBTConfig()
        self._trees: List[FlatTree] = []
        self._base: float = 0.0
        self.train_rmse_: Optional[float] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty with matching length")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._base = float(y.mean())
        pred = np.full(len(y), self._base)
        self._trees = []
        n = len(y)
        sample = max(cfg.min_samples_leaf * 2, int(n * cfg.subsample))
        hist = cfg.tree_method == "hist"
        binned = _BinnedMatrix(X, cfg.max_bins) if hist else None
        for _ in range(cfg.n_estimators):
            residual = y - pred
            if sample < n:
                idx = rng.choice(n, size=sample, replace=False)
            else:
                idx = np.arange(n)
            if hist:
                tree = _grow_hist_tree(
                    binned.codes_off[idx],
                    residual[idx],
                    binned,
                    max_depth=cfg.max_depth,
                    min_samples_leaf=cfg.min_samples_leaf,
                )
                update = tree.predict_binned(binned.codes)
            else:
                tree = RegressionTree(
                    max_depth=cfg.max_depth,
                    min_samples_leaf=cfg.min_samples_leaf,
                ).fit(X[idx], residual[idx]).flatten()
                update = tree.predict(X)
            pred = pred + cfg.learning_rate * update
            self._trees.append(tree)
        self.train_rmse_ = float(np.sqrt(((y - pred) ** 2).mean()))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Columnar ensemble prediction (vectorized descent per stage)."""
        if not self._trees:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        pred = np.full(len(X), self._base)
        for tree in self._trees:
            pred = pred + self.config.learning_rate * tree.predict(X)
        return pred

    def predict_nodewalk(self, X: np.ndarray) -> np.ndarray:
        """Per-row node-walk oracle — the seed predict path, bit for bit."""
        if not self._trees:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        pred = np.full(len(X), self._base)
        for tree in self._trees:
            pred = pred + self.config.learning_rate * tree.predict_nodewalk(X)
        return pred

    def score_rmse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Root-mean-squared error on a held-out set."""
        return float(np.sqrt(((self.predict(X) - np.asarray(y, dtype=float)) ** 2).mean()))
