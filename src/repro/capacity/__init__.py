"""Load-capacity subsystem: operator classification, profiling, and the
GBT latency regressor that hands per-layer capacities C_l to the solver."""

from repro.capacity.classify import (
    CLASS_THRESHOLDS,
    TABLE5_ROWS,
    can_host_loads,
    classify,
    threshold_for,
    threshold_for_kind,
)
from repro.capacity.cache import (
    capacity_model_key,
    capacity_store,
    set_capacity_store,
    trained_capacity_model,
)
from repro.capacity.gbt import FlatTree, GBTConfig, GradientBoostedTrees, RegressionTree
from repro.capacity.model import (
    CapacityModelReport,
    LoadCapacityModel,
    analytic_capacity_model,
)
from repro.capacity.profiler import (
    DEFAULT_LOAD_RATIOS,
    LoadCapacityProfiler,
    ProfileDataset,
    ProfileSample,
)

__all__ = [
    "CLASS_THRESHOLDS",
    "TABLE5_ROWS",
    "can_host_loads",
    "classify",
    "threshold_for",
    "threshold_for_kind",
    "FlatTree",
    "GBTConfig",
    "GradientBoostedTrees",
    "RegressionTree",
    "capacity_model_key",
    "capacity_store",
    "set_capacity_store",
    "trained_capacity_model",
    "CapacityModelReport",
    "LoadCapacityModel",
    "analytic_capacity_model",
    "DEFAULT_LOAD_RATIOS",
    "LoadCapacityProfiler",
    "ProfileDataset",
    "ProfileSample",
]
