"""Operator classification and load-capacity thresholds (paper Table 5, §4.2).

The paper sorts operators into three classes and assigns each a latency-
growth threshold that defines its load capacity:

==============  ================  ===============  ===================  =========
Class           Memory bandwidth  L.C. tolerance   Compute intensity    Threshold
==============  ================  ===============  ===================  =========
Elemental       Low               Medium           Low                  300%
Reusable        Medium            High             High                 20%
Hierarchical    High              Low              Medium               0%
==============  ================  ===============  ===================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.ops import OpClass, OpKind, OpSpec, op_class

#: Latency-growth threshold per class (paper §4.2): the embedded load a
#: kernel may carry is capped where its latency grows by this fraction.
CLASS_THRESHOLDS: Dict[OpClass, float] = {
    OpClass.ELEMENTAL: 3.00,
    OpClass.REUSABLE: 0.20,
    OpClass.HIERARCHICAL: 0.00,
    OpClass.LAYOUT: 0.00,  # layout ops never host loads (SmartMem removes them)
}


@dataclass(frozen=True)
class ClassCharacteristics:
    """Qualitative characterization row (Table 5)."""

    op_class: OpClass
    memory_bandwidth: str
    lc_tolerance: str
    compute_intensity: str
    threshold: float
    examples: str


TABLE5_ROWS = [
    ClassCharacteristics(OpClass.ELEMENTAL, "Low", "Medium", "Low", 3.00, "ReLU, Add"),
    ClassCharacteristics(OpClass.REUSABLE, "Medium", "High", "High", 0.20, "Conv, MatMul"),
    ClassCharacteristics(OpClass.HIERARCHICAL, "High", "Low", "Medium", 0.00, "LayerNorm, Softmax"),
]


def classify(op: OpSpec) -> OpClass:
    """Load-capacity class of an operator node."""
    return op.op_class


def threshold_for(op: OpSpec) -> float:
    """Latency-growth threshold governing this operator's load capacity."""
    return CLASS_THRESHOLDS[op.op_class]


def threshold_for_kind(kind: OpKind) -> float:
    return CLASS_THRESHOLDS[op_class(kind)]


def can_host_loads(op: OpSpec) -> bool:
    """Whether an operator may carry any embedded weight loading at all.

    Hierarchical operators are excluded outright (0% threshold); layout ops
    do not survive lowering in the FlashMem pipeline.
    """
    return threshold_for(op) > 0.0
