"""Persistent capacity-model caching (``ArtifactStore`` kind ``"capacity-model"``).

Training the paper's GBT latency regressor — profile a model zoo under
embedded loads, fit a few hundred histogram trees — is the expensive part
of the ``gbt`` capacity backend, and it is pure function of
(device, profile configuration, GBT configuration, seed).  This module
gives it the same read-through treatment compiled plans and pricing tables
already get: sweeps, the compile service, and fleet replay train each
(device, profile-set) regressor once and warm-reuse it across processes.

The store hook mirrors ``repro.gpusim.pricing``: the experiment layer
installs the active :class:`~repro.core.store.ArtifactStore` via
:func:`set_capacity_store` (this module must not import the experiment
layer).  An in-process dict sits in front of the store so repeated
``trained_capacity_model`` calls within one process are lookups.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.capacity.gbt import GBTConfig
from repro.capacity.model import LoadCapacityModel
from repro.capacity.profiler import (
    DEFAULT_LOAD_RATIOS,
    LoadCapacityProfiler,
    ProfileDataset,
)
from repro.gpusim.device import DeviceProfile, get_device
from repro.graph.models import EVALUATED_MODELS, load_model

#: The profile set the default ``gbt`` backend trains on: every model the
#: paper evaluates (the paper profiles "more than ten models", §4.2).
DEFAULT_PROFILE_MODELS: Tuple[str, ...] = tuple(EVALUATED_MODELS)

#: Stratified per-model op budget; 24 ops × 8 load ratios × 11 models is a
#: fig4-scale dataset (~2k samples) that profiles in well under a second.
DEFAULT_MAX_OPS_PER_MODEL = 24

#: Relative lognormal measurement jitter (the profiler's default).
DEFAULT_PROFILE_NOISE = 0.03

#: Persistent store, or None (in-process caching only) — installed by the
#: experiment layer via :func:`set_capacity_store`.
_CAPACITY_STORE = None

#: In-process model cache keyed by the same fingerprint as the store entry.
_MODELS: Dict[tuple, LoadCapacityModel] = {}

#: Process-global counters: ``trains`` regressor fits this process actually
#: ran, ``store_hits`` warm loads.  The warm-reuse benchmark bar asserts a
#: warm store-cached rerun keeps ``trains`` at 0.
STATS: Dict[str, int] = {"trains": 0, "store_hits": 0}


def set_capacity_store(store) -> Optional[object]:
    """Install the persistent store for trained capacity models.

    Accepts None to disable.  Returns the previously installed store.
    """
    global _CAPACITY_STORE
    previous = _CAPACITY_STORE
    _CAPACITY_STORE = store
    return previous


def capacity_store() -> Optional[object]:
    """The active persistent store, or None when disabled."""
    return _CAPACITY_STORE


def clear_capacity_cache() -> None:
    """Drop in-process cached models (the persistent store is untouched)."""
    _MODELS.clear()


def capacity_model_key(
    device_name: str,
    *,
    models: Sequence[str],
    max_ops_per_model: int,
    noise: float,
    ratios: Sequence[float],
    gbt_config: GBTConfig,
    seed: int,
) -> Dict[str, Any]:
    """Artifact address of one trained capacity model.

    Keyed by everything the fitted regressor is a function of: the device,
    the profiling configuration (model set, per-model op budget, noise,
    load-ratio sweep), the GBT hyperparameters, and the seed.
    """
    return {
        "kind": "capacity-model",
        "device": device_name,
        "profile": {
            "models": [str(m) for m in models],
            "max_ops_per_model": int(max_ops_per_model),
            "noise": float(noise),
            "ratios": [float(r) for r in ratios],
        },
        "gbt": asdict(gbt_config),
        "seed": int(seed),
    }


def _profile(
    device: DeviceProfile,
    models: Sequence[str],
    *,
    max_ops_per_model: int,
    noise: float,
    ratios: Sequence[float],
    seed: int,
) -> ProfileDataset:
    profiler = LoadCapacityProfiler(device, noise=noise, seed=seed)
    dataset = ProfileDataset()
    for name in models:
        graph = load_model(name)
        part = profiler.profile_graph(graph, max_ops=max_ops_per_model, ratios=ratios)
        dataset.samples.extend(part.samples)
    return dataset


def trained_capacity_model(
    device: Union[str, DeviceProfile],
    *,
    seed: int = 0,
    models: Sequence[str] = DEFAULT_PROFILE_MODELS,
    max_ops_per_model: int = DEFAULT_MAX_OPS_PER_MODEL,
    noise: float = DEFAULT_PROFILE_NOISE,
    ratios: Sequence[float] = DEFAULT_LOAD_RATIOS,
    gbt_config: Optional[GBTConfig] = None,
) -> LoadCapacityModel:
    """The ``gbt``-backend capacity model for ``device``, read-through cached.

    Checks the in-process cache, then the persistent store; only on a full
    miss does it profile ``models`` and fit the regressor (recording the
    train in :data:`STATS` and publishing the result to the store).  The
    returned model is identical to a direct
    ``LoadCapacityModel.train(device, graphs, seed=seed)`` over the same
    profile configuration.
    """
    profile = get_device(device) if isinstance(device, str) else device
    config = gbt_config or GBTConfig(seed=seed)
    key = capacity_model_key(
        profile.name,
        models=models,
        max_ops_per_model=max_ops_per_model,
        noise=noise,
        ratios=ratios,
        gbt_config=config,
        seed=seed,
    )
    mkey = (profile.name, tuple(models), int(max_ops_per_model), float(noise),
            tuple(float(r) for r in ratios), tuple(sorted(asdict(config).items())),
            int(seed))
    cached = _MODELS.get(mkey)
    if cached is not None:
        return cached

    stored = _CAPACITY_STORE.load(key) if _CAPACITY_STORE is not None else None
    if stored is not None:
        STATS["store_hits"] += 1
        model = LoadCapacityModel(profile, backend="gbt", regressor=stored["regressor"])
        model.report = stored["report"]
    else:
        dataset = _profile(
            profile, models,
            max_ops_per_model=max_ops_per_model, noise=noise, ratios=ratios, seed=seed,
        )
        model = LoadCapacityModel.from_dataset(profile, dataset, seed=seed, gbt_config=config)
        STATS["trains"] += 1
        if _CAPACITY_STORE is not None:
            _CAPACITY_STORE.save(key, {"regressor": model.regressor, "report": model.report})
    _MODELS[mkey] = model
    return model
