"""Feature extraction for the latency regressor (paper Figure 4).

The paper's profiler varies Global Work Size (GWS), Local Work Size (LWS),
operator type, and the volume of concurrently streamed data, then trains a
regressor on the resulting latencies.  We derive GWS/LWS from operator
shapes the way a mobile OpenCL backend would pick them.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.graph.ops import OpClass, OpSpec

FEATURE_NAMES: List[str] = [
    "log_flops",
    "log_bytes_moved",
    "log_output_bytes",
    "log_gws",
    "log_lws",
    "arithmetic_intensity",
    "is_elemental",
    "is_reusable",
    "is_hierarchical",
    "log_extra_bytes",
    "extra_ratio",
]

#: Indices of the two load-dependent feature columns — the only columns the
#: batched capacity bisection rewrites between regressor calls.
LOAD_LOG_COL = FEATURE_NAMES.index("log_extra_bytes")
LOAD_RATIO_COL = FEATURE_NAMES.index("extra_ratio")


def global_work_size(op: OpSpec) -> int:
    """GWS: one work-item per output element, texel-packed (RGBA -> /4)."""
    return max(1, op.output_spec.numel // 4)


def local_work_size(op: OpSpec) -> int:
    """LWS heuristic: largest power-of-two workgroup <= 256 dividing GWS-ish."""
    gws = global_work_size(op)
    lws = 256
    while lws > 1 and gws < lws * 4:
        lws //= 2
    return lws


def _log(x: float) -> float:
    return math.log10(max(1.0, float(x)))


def featurize(op: OpSpec, extra_bytes: int = 0) -> np.ndarray:
    """Feature vector for one (operator, embedded load) configuration."""
    cls = op.op_class
    input_bytes = max(1, op.input_bytes)
    return np.array(
        [
            _log(op.flops),
            _log(op.bytes_moved),
            _log(op.output_bytes),
            _log(global_work_size(op)),
            _log(local_work_size(op)),
            min(1e4, op.arithmetic_intensity),
            1.0 if cls is OpClass.ELEMENTAL else 0.0,
            1.0 if cls is OpClass.REUSABLE else 0.0,
            1.0 if cls is OpClass.HIERARCHICAL else 0.0,
            _log(extra_bytes),
            min(50.0, extra_bytes / input_bytes),
        ],
        dtype=float,
    )


def featurize_batch(ops_and_loads) -> np.ndarray:
    """Stack feature vectors for an iterable of (op, extra_bytes) pairs."""
    rows = [featurize(op, extra) for op, extra in ops_and_loads]
    if not rows:
        return np.empty((0, len(FEATURE_NAMES)))
    return np.vstack(rows)


def load_feature_columns(extras, input_bytes) -> Tuple[List[float], List[float]]:
    """The two load-dependent columns for batches of (extra, input) bytes.

    Computed with the *same scalar operations* :func:`featurize` uses
    (``math.log10``, int/int true division, ``min``), so writing these into
    columns :data:`LOAD_LOG_COL`/:data:`LOAD_RATIO_COL` of a base feature
    matrix reproduces per-row ``featurize(op, extra)`` output bit for bit —
    the property the lockstep capacity bisection's batch-vs-sequential
    equivalence rests on.  ``extras`` must be Python ints and
    ``input_bytes`` the per-op ``max(1, op.input_bytes)``.
    """
    log_col = [math.log10(max(1.0, float(e))) for e in extras]
    ratio_col = [min(50.0, e / b) for e, b in zip(extras, input_bytes)]
    return log_col, ratio_col
