"""Unix-socket JSON-lines front end for the plan-compilation daemon.

Protocol: one JSON object per line, one reply line per request, over a
persistent connection.  Ops:

- ``{"op": "ping"}`` → ``{"ok": true, "op": "ping"}``
- ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}`` (ServiceStats)
- ``{"op": "compile", "model": ..., "device": ..., ...}`` (op defaults to
  compile; remaining fields are :meth:`CompileRequest.to_payload` fields) →
  ``{"ok": true, "plan": {...}, "source": ..., "coalesced": ..., ...}``

Errors come back as ``{"ok": false, "error": "..."}`` on the same line; a
malformed or failing request never takes the connection (or the daemon)
down.  Concurrent requests from many connections coalesce in the daemon
exactly like in-process submissions.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
from typing import Any, Dict, Optional

from repro.service.daemon import PlanCompilationService, ServiceError
from repro.service.request import CompileRequest

#: Default rendezvous path for ``repro serve`` / ``repro compile --via-service``.
DEFAULT_SOCKET = ".repro-service.sock"


def _reply_payload(reply) -> Dict[str, Any]:
    """Wire form of one ServiceReply (plan as parsed JSON, not a string)."""
    return {
        "ok": True,
        "model": reply.request.model,
        "device": reply.request.device,
        "source": reply.source,
        "coalesced": reply.coalesced,
        "wall_s": round(reply.wall_s, 4),
        "worker_pid": reply.worker_pid,
        "preload_ratio": reply.plan.preload_ratio,
        "solver_status": reply.plan.stats.solver_status,
        "plan": json.loads(reply.plan.to_json()),
    }


class ServiceServer:
    """Asyncio unix-socket server wrapping one :class:`PlanCompilationService`."""

    def __init__(self, service: PlanCompilationService, socket_path: str) -> None:
        self.service = service
        self.socket_path = str(socket_path)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead daemon
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            op = payload.pop("op", "compile")
            if op == "ping":
                return {"ok": True, "op": "ping", "pid": os.getpid()}
            if op == "stats":
                return {"ok": True, "stats": self.service.stats.snapshot()}
            if op != "compile":
                raise ValueError(f"unknown op {op!r}")
            request = CompileRequest.from_payload(payload)
            reply = await self.service.submit(request)
            return _reply_payload(reply)
        except (ServiceError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


async def run_server(socket_path: str, *, workers: int = 1,
                     cache_dir: Optional[str] = None, max_batch: int = 64,
                     ready: Optional[Any] = None,
                     stop: Optional[asyncio.Event] = None) -> None:
    """Run the daemon + socket server until cancelled (or ``stop`` is set).

    ``ready`` is an optional callable invoked once the socket is listening
    (the CLI prints its banner there; tests use it to synchronize).
    """
    async with PlanCompilationService(
        workers=workers, cache_dir=cache_dir, max_batch=max_batch
    ) as service:
        server = ServiceServer(service, socket_path)
        await server.start()
        if ready is not None:
            ready()
        try:
            if stop is None:
                await asyncio.Event().wait()  # serve forever (until cancelled)
            else:
                await stop.wait()
        finally:
            await server.close()


class ServiceClient:
    """Blocking JSON-lines client over one persistent unix-socket connection."""

    def __init__(self, socket_path: str, *, timeout: float = 600.0) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        return json.loads(line)

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def compile(self, request: CompileRequest) -> Dict[str, Any]:
        """Request one compilation; raises :class:`ServiceError` on failure."""
        response = self.request({"op": "compile", **request.to_payload()})
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()
