"""Persistent pre-warmed pool the plan-compilation service fans out over.

Reuses the PR-6 sweep pre-warm machinery
(:func:`repro.sweep.runner.prewarm_executor`): process spawn, module
imports, recursion headroom, and store initialization are all paid at
``prewarm()`` time, before the first request hits the pool, so the served
request path carries compile work only.

Two execution modes:

- ``workers >= 1`` — a :class:`ProcessPoolExecutor` whose workers each
  initialize a worker-local :class:`~repro.service.store.ReadThroughStore`
  (private first, shared fallback, private-only writes);
- ``workers == 0`` — an in-process single-thread executor, the test/debug
  seam: compiles run inside the daemon process, so tests can monkeypatch
  the solver and count invocations directly.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.sweep.runner import PathLike, prewarm_executor

#: Compiled-model graphs are node chains thousands of frames deep; the pool
#: pickles them outside any ``_deep_recursion`` scope (result marshalling
#: happens in executor machinery), so both sides raise the limit up front.
RECURSION_LIMIT = 20_000

#: Marker for "inline mode never swapped the store" (None is a valid store).
_UNSET = object()

#: Subdirectory of the shared cache root holding per-worker private stores.
WORKER_LOCAL_DIR = "worker-local"


def raise_recursion_limit(limit: int = RECURSION_LIMIT) -> None:
    """Idempotently grow the interpreter recursion limit to ``limit``."""
    if sys.getrecursionlimit() < limit:
        sys.setrecursionlimit(limit)


def _service_worker_init(shared_dir: Optional[str]) -> None:
    """Worker-side pre-warm: imports, recursion headroom, read-through store.

    Runs once per worker process under ``prewarm()``'s barrier, so none of
    this cost lands on a served request.
    """
    raise_recursion_limit()
    from repro.experiments import common  # noqa: F401 — import cost is the point
    from repro.gpusim import pricing  # noqa: F401

    if shared_dir is not None:
        from repro.service.store import ReadThroughStore

        private = os.path.join(shared_dir, WORKER_LOCAL_DIR, str(os.getpid()))
        common.swap_store(ReadThroughStore(private, shared_dir))


def compile_request_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one compile request in this process (pool worker or inline).

    Returns a small reply dict; the heavyweight
    :class:`~repro.core.flashmem.CompiledModel` travels via the worker-local
    store when one is configured (``path`` names the private entry whose
    bytes the daemon publishes), and is pickled straight through the pool
    only in the store-less configuration (``value``).
    """
    from repro.experiments import common
    from repro.service.request import CompileRequest, execute_compile

    start = time.perf_counter()
    request = CompileRequest.from_payload(payload).normalized()
    key = request.store_key()
    store = common.cache_store()
    reply: Dict[str, Any] = {"pid": os.getpid(), "path": None, "value": None}
    if store is not None:
        cached = store.load(key)
        if cached is not None:
            # Rare but real: the artifact landed (another worker's publish,
            # or a pre-existing cache) between dispatch and execution.
            reply.update(source="worker-store", path=str(store.path_for(key)),
                         wall_s=time.perf_counter() - start)
            return reply
    compiled = execute_compile(request)
    if store is not None:
        reply["path"] = str(store.save(key, compiled))
    else:
        reply["value"] = compiled
    reply.update(source="compiled", wall_s=time.perf_counter() - start)
    return reply


class CompilePool:
    """Pre-warmed executor for compile requests; a context manager so the
    pool (and, in inline mode, the borrowed global store slot) is released
    on exception paths too."""

    def __init__(self, *, workers: int = 1,
                 cache_dir: Optional[PathLike] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline mode)")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._pool = None
        self._prev_store: Any = _UNSET

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "CompilePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def prewarm(self, *, barrier_s: float = 0.05) -> None:
        """Spawn and initialize every worker now; idempotent."""
        if self._pool is not None:
            return
        raise_recursion_limit()  # daemon side unpickles pool results
        if self.workers == 0:
            from repro.core.store import ArtifactStore
            from repro.experiments import common

            # Inline mode scopes the process-global store to the pool's
            # lifetime (restored by close()): compiles must see exactly the
            # service's store, not whatever the host process had installed.
            store = ArtifactStore(self.cache_dir) if self.cache_dir is not None else None
            self._prev_store = common.swap_store(store)
            self._pool = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="compile-inline")
            return
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_service_worker_init,
            initargs=(self.cache_dir,),
        )
        prewarm_executor(self._pool, self.workers, barrier_s)

    def submit(self, payload: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        """Dispatch one request payload; prewarms lazily if needed."""
        if self._pool is None:
            self.prewarm()
        return self._pool.submit(compile_request_job, payload)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._prev_store is not _UNSET:
            from repro.experiments import common

            common.swap_store(self._prev_store)
            self._prev_store = _UNSET
