"""Plan-compilation service: the cloud-side component of FlashMem.

The paper's plans are offline, reusable deployment artifacts; a vendor
shipping FlashMem to millions of phones runs the compile pipeline
(adaptive fusion + LC-OPG) as a fleet service, not per device.  This
package is that service:

- :mod:`repro.service.request` — :class:`CompileRequest`, the
  (model, device, budget/config) unit of work, normalized and
  content-addressed against the shared :class:`~repro.core.store.ArtifactStore`;
- :mod:`repro.service.store` — :class:`ReadThroughStore`, the worker-local
  two-level store (private first, shared fallback, private-only writes);
- :mod:`repro.service.pool` — :class:`CompilePool`, the persistent
  pre-warmed process pool compilation fans out over;
- :mod:`repro.service.daemon` — :class:`PlanCompilationService`, the async
  queue → dedup → batched store lookup → pool → publish dataflow;
- :mod:`repro.service.server` — the unix-socket JSON-lines front end behind
  ``repro serve`` and the matching :class:`ServiceClient`.
"""

from repro.service.daemon import (
    PlanCompilationService,
    ServiceClosed,
    ServiceError,
    ServiceReply,
    ServiceStats,
    compile_many,
)
from repro.service.pool import CompilePool
from repro.service.request import CompileRequest, execute_compile
from repro.service.store import ReadThroughStore

__all__ = [
    "CompilePool",
    "CompileRequest",
    "PlanCompilationService",
    "ReadThroughStore",
    "ServiceClosed",
    "ServiceError",
    "ServiceReply",
    "ServiceStats",
    "compile_many",
    "execute_compile",
]
