"""Compile requests: the unit of work the plan-compilation service accepts.

A request names a model, a device, and the budget/config axes a fleet
controller would vary (solver time budget, memory/latency priority λ, the
Figure-8 preload override, and the decode-phase prompt length).  Requests
normalize to canonical device names and address the same content-addressed
``"compiled"`` artifacts the experiment pipeline stores, so a service
running default settings reuses — and feeds — the experiment cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.core.config import FlashMemConfig
from repro.core.store import stable_fingerprint
from repro.gpusim.device import get_device

#: Default LC-OPG budget, matching the standard experiment configuration
#: (``repro.experiments.common.experiment_opg_config``) so default requests
#: address the artifacts the experiment sweep already stores.
DEFAULT_TIME_LIMIT_S = 3.0


@dataclass(frozen=True, order=True)
class CompileRequest:
    """One (model, device, budget/config) compilation request.

    Frozen and orderable so requests can key dedup maps and sort
    deterministically in reports.  ``normalized()`` must be applied before
    keying: it resolves device aliases ("oneplus12" → "OnePlus 12") so two
    spellings of the same request coalesce.
    """

    model: str
    device: str = "OnePlus 12"
    #: LC-OPG solver budget in seconds — the request's *budget* axis.
    time_limit_s: float = DEFAULT_TIME_LIMIT_S
    #: Memory/latency priority λ override; None keeps the configured default.
    lam: Optional[float] = None
    #: Prompt length for decode-phase graphs; 0 = prefill graph.
    context_len: int = 0
    #: Preload-fraction override (the Figure 8 trade-off knob).
    target_preload_ratio: Optional[float] = None
    #: Capacity-model backend: "analytic" (cost-model inverse) or "gbt"
    #: (the paper's profiled regressor, store-cached per device).
    capacity_backend: str = "analytic"

    def __post_init__(self) -> None:
        if self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        if self.context_len < 0:
            raise ValueError("context_len must be >= 0")
        if self.capacity_backend not in ("analytic", "gbt"):
            raise ValueError(f"unknown capacity backend {self.capacity_backend!r}")

    # --------------------------------------------------------- normalization
    def normalized(self) -> "CompileRequest":
        """Resolve the device alias to its canonical preset name."""
        canonical = get_device(self.device).name
        if canonical == self.device:
            return self
        return replace(self, device=canonical)

    def label(self) -> str:
        suffix = f"@ctx{self.context_len}" if self.context_len else ""
        return f"{self.model}@{self.device}{suffix}"

    # ------------------------------------------------------------ addressing
    def flashmem_config(self) -> FlashMemConfig:
        """The pipeline configuration this request compiles under.

        Built from the standard experiment configuration with the request's
        budget axes applied, so a default request's config fingerprint — and
        therefore its artifact address — is identical to the experiment
        pipeline's.
        """
        from repro.experiments.common import experiment_flashmem_config

        overrides: Dict[str, Any] = {"time_limit_s": self.time_limit_s}
        if self.lam is not None:
            overrides["lam"] = self.lam
        if self.capacity_backend != "analytic":
            overrides["capacity_backend"] = self.capacity_backend
        return experiment_flashmem_config(**overrides)

    def store_key(self) -> Dict[str, Any]:
        """Content address of this request's compiled artifact."""
        from repro.experiments.common import compile_key

        key = compile_key(
            self.model, self.device, self.context_len, config=self.flashmem_config()
        )
        if self.target_preload_ratio is not None:
            key["preload_ratio"] = float(self.target_preload_ratio)
        return key

    def dedup_token(self) -> str:
        """Stable identity for request coalescing (fingerprint of the key)."""
        return stable_fingerprint(self.store_key())

    # ----------------------------------------------------------------- wire
    def to_payload(self) -> Dict[str, Any]:
        """JSON-able dict for the socket protocol and pool dispatch."""
        payload: Dict[str, Any] = {"model": self.model, "device": self.device}
        if self.time_limit_s != DEFAULT_TIME_LIMIT_S:
            payload["time_limit_s"] = self.time_limit_s
        if self.lam is not None:
            payload["lam"] = self.lam
        if self.context_len:
            payload["context_len"] = self.context_len
        if self.target_preload_ratio is not None:
            payload["target_preload_ratio"] = self.target_preload_ratio
        if self.capacity_backend != "analytic":
            payload["capacity_backend"] = self.capacity_backend
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CompileRequest":
        known = {f: payload[f] for f in (
            "model", "device", "time_limit_s", "lam", "context_len",
            "target_preload_ratio", "capacity_backend",
        ) if f in payload}
        if "model" not in known:
            raise ValueError("compile request payload lacks 'model'")
        return cls(**known)


def execute_compile(request: CompileRequest):
    """Run one compilation for ``request`` in the current process.

    The single code path shared by the pool workers, the inline (workers=0)
    service mode, and the CLI's direct ``repro compile``: whatever route a
    request takes, the plan comes from this function, which is what makes
    served plans canonically byte-identical to direct compilation.
    Returns the :class:`~repro.core.flashmem.CompiledModel`.
    """
    from repro.core.flashmem import FlashMem
    from repro.experiments import common

    request = request.normalized()
    if request.context_len:
        graph = common.cached_decode_graph(request.model, request.context_len)
    else:
        graph = common.cached_graph(request.model)
    device = get_device(request.device)
    fm = FlashMem(request.flashmem_config())
    return fm.compile(
        graph,
        device,
        capacity=common.cached_capacity(device.name, request.capacity_backend),
        target_preload_ratio=request.target_preload_ratio,
    )
