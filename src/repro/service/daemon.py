"""The plan-compilation daemon: queue → dedup → batched lookup → pool → publish.

Dataflow of one batch (see DESIGN.md "Plan-compilation service"):

1. **queue** — ``submit()`` enqueues ``(request, future)`` pairs; the single
   drain task pulls one entry and then opportunistically drains everything
   already queued, so a burst of requests is processed as one batch.
2. **dedup** — requests are grouped by content-address fingerprint.
   Duplicates of an *in-flight* compile attach to its waiter list;
   duplicates within the batch collapse into one group.  K identical
   concurrent requests therefore cost one store lookup and at most one
   compile.
3. **batched lookup** — the deduplicated keys are resolved against the
   shared :class:`ArtifactStore` in one :meth:`~ArtifactStore.load_many`
   pass (off the event loop); hits are served immediately.
4. **pool** — misses fan out over the pre-warmed
   :class:`~repro.service.pool.CompilePool`; workers consult their private
   read-through stores and write results there (never to the shared store).
5. **publish** — the daemon, the single shared-store writer, copies each
   worker's already-pickled envelope bytes into the shared store
   (:meth:`ArtifactStore.publish_bytes`) and resolves every waiter with the
   same :class:`ServiceReply` payload.

Plans served by any route are canonically byte-identical to a direct
``FlashMem.compile`` of the same request (``OverlapPlan.canonical_json``).
"""

from __future__ import annotations

import asyncio
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.flashmem import CompiledModel
from repro.core.store import ArtifactStore
from repro.service.pool import CompilePool, raise_recursion_limit
from repro.service.request import CompileRequest
from repro.service.store import unpickle_envelope
from repro.sweep.runner import PathLike


class ServiceError(RuntimeError):
    """A request failed (bad model, compile error); the service keeps going."""


class ServiceClosed(ServiceError):
    """The request cannot be served because the service is shutting down."""


@dataclass
class ServiceStats:
    """Request-traffic accounting for one service instance."""

    requests: int = 0
    #: Requests that attached to an identical compile instead of paying one
    #: themselves (in-flight attach or same-batch collapse).
    coalesced: int = 0
    #: Requests served straight from the shared store's batched lookup.
    store_hits: int = 0
    #: Compilations dispatched to the pool.
    compiles: int = 0
    failures: int = 0
    batches: int = 0
    max_batch: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "requests": self.requests, "coalesced": self.coalesced,
            "store_hits": self.store_hits, "compiles": self.compiles,
            "failures": self.failures, "batches": self.batches,
            "max_batch": self.max_batch,
        }


@dataclass
class ServiceReply:
    """What one waiter receives: the artifact plus provenance."""

    request: CompileRequest
    compiled: CompiledModel
    #: "store" (batched lookup hit), "compiled" (pool compile), or
    #: "worker-store" (worker's read-through store already had it).
    source: str
    #: True when this waiter attached to another request's compile/lookup.
    coalesced: bool
    #: Wall-clock the worker spent on the request (0 for store hits).
    wall_s: float = 0.0
    worker_pid: Optional[int] = None

    @property
    def plan(self):
        return self.compiled.plan


@dataclass
class _Inflight:
    """One dispatched compile and everyone waiting on it."""

    request: CompileRequest
    waiters: List["asyncio.Future[ServiceReply]"] = field(default_factory=list)


class PlanCompilationService:
    """Async plan-compilation daemon (use as an async context manager).

    ``workers`` sizes the compile pool (0 = in-process inline mode);
    ``cache_dir`` roots the shared artifact store (None = no persistence:
    the service still coalesces, but every unique request compiles).
    """

    def __init__(self, *, workers: int = 1, cache_dir: Optional[PathLike] = None,
                 max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.pool = CompilePool(workers=workers, cache_dir=cache_dir)
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(cache_dir) if cache_dir is not None else None
        )
        self.max_batch = max_batch
        self.stats = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._inflight: Dict[str, _Inflight] = {}
        self._drainer: Optional[asyncio.Task] = None
        self._finishers: "set[asyncio.Task]" = set()
        self._closed = False

    # -------------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "PlanCompilationService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def start(self) -> None:
        """Prewarm the pool and start the drain task; idempotent."""
        if self._drainer is not None:
            return
        raise_recursion_limit()
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        await loop.run_in_executor(None, self.pool.prewarm)
        self._drainer = loop.create_task(self._drain_loop())

    async def close(self) -> None:
        """Stop draining, fail unresolved waiters, tear the pool down."""
        self._closed = True
        if self._drainer is not None:
            self._drainer.cancel()
            await asyncio.gather(self._drainer, return_exceptions=True)
            self._drainer = None
        for task in list(self._finishers):
            task.cancel()
        if self._finishers:
            await asyncio.gather(*self._finishers, return_exceptions=True)
        if self._queue is not None:
            while not self._queue.empty():
                _, fut = self._queue.get_nowait()
                if not fut.done():
                    fut.set_exception(ServiceClosed("service closed"))
        for entry in self._inflight.values():
            for fut in entry.waiters:
                if not fut.done():
                    fut.set_exception(ServiceClosed("service closed"))
        self._inflight.clear()
        await asyncio.get_running_loop().run_in_executor(None, self.pool.close)

    # ---------------------------------------------------------------- intake
    async def submit(self, request: CompileRequest) -> ServiceReply:
        """Enqueue one request and await its reply.

        Raises :class:`ServiceError` when the request itself fails and
        :class:`ServiceClosed` when the service shuts down first.
        """
        if self._closed or self._queue is None:
            raise ServiceClosed("service is not running")
        try:
            request = request.normalized()
        except KeyError as exc:  # unknown device — fail fast, never queue
            raise ServiceError(f"invalid request: {exc}") from None
        fut: "asyncio.Future[ServiceReply]" = asyncio.get_running_loop().create_future()
        await self._queue.put((request, fut))
        return await fut

    # ----------------------------------------------------------- drain/dedup
    async def _drain_loop(self) -> None:
        while True:
            batch: List[Tuple[CompileRequest, asyncio.Future]] = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the daemon must survive
                for _, fut in batch:
                    if not fut.done():
                        fut.set_exception(ServiceError(f"batch failed: {exc}"))

    async def _process_batch(self, batch: Sequence[Tuple[CompileRequest, asyncio.Future]]) -> None:
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, len(batch))
        # Dedup pass: group by content-address token.  No awaits in this
        # loop — in-flight membership checks and attaches must be atomic
        # with respect to _finish() resolving entries.
        groups: Dict[str, List[asyncio.Future]] = {}
        leaders: Dict[str, CompileRequest] = {}
        for request, fut in batch:
            self.stats.requests += 1
            token = request.dedup_token()
            entry = self._inflight.get(token)
            if entry is not None:
                entry.waiters.append(fut)
                self.stats.coalesced += 1
                continue
            if token in groups:
                groups[token].append(fut)
                self.stats.coalesced += 1
            else:
                groups[token] = [fut]
                leaders[token] = request

        tokens = list(leaders)
        # Batched lookup: one load_many pass over the deduplicated keys,
        # off the event loop (unpickling compiled models is not cheap).
        loop = asyncio.get_running_loop()
        if self.store is not None and tokens:
            keys = [leaders[t].store_key() for t in tokens]
            values = await loop.run_in_executor(None, self.store.load_many, keys)
        else:
            values = [None] * len(tokens)

        for token, value in zip(tokens, values):
            request = leaders[token]
            waiters = groups[token]
            if value is not None:
                self.stats.store_hits += 1
                self._resolve_waiters(waiters, request, value, "store", 0.0, None)
                continue
            entry = _Inflight(request=request, waiters=waiters)
            self._inflight[token] = entry
            self.stats.compiles += 1
            pool_future = asyncio.wrap_future(
                self.pool.submit(request.to_payload()), loop=loop
            )
            task = loop.create_task(self._finish(token, entry, pool_future))
            self._finishers.add(task)
            task.add_done_callback(self._finishers.discard)

    # ------------------------------------------------------- publish/resolve
    async def _finish(self, token: str, entry: _Inflight,
                      pool_future: "asyncio.Future[Dict[str, Any]]") -> None:
        loop = asyncio.get_running_loop()
        try:
            raw = await pool_future
            compiled = await loop.run_in_executor(None, self._publish, entry.request, raw)
        except (Exception, asyncio.CancelledError) as exc:
            self._inflight.pop(token, None)
            self.stats.failures += 1
            for fut in entry.waiters:
                if not fut.done():
                    fut.set_exception(ServiceError(
                        f"compile of {entry.request.label()} failed: "
                        f"{type(exc).__name__}: {exc}"
                    ))
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        # Waiters may still be attaching while _publish runs in the thread;
        # popping before resolving closes the window (later duplicates will
        # hit the freshly published store entry instead).
        self._inflight.pop(token, None)
        self._resolve_waiters(entry.waiters, entry.request, compiled,
                              raw["source"], raw["wall_s"], raw["pid"])

    def _publish(self, request: CompileRequest, raw: Dict[str, Any]) -> CompiledModel:
        """Materialize a worker reply; publish its bytes to the shared store.

        Runs in the default thread executor.  The daemon is the only shared-
        store writer: workers hand back either the private-store path of
        their pickled envelope (copied here byte-for-byte) or, store-less,
        the compiled model itself.
        """
        if raw["path"] is None:
            return raw["value"]
        key = request.store_key()
        blob = pathlib.Path(raw["path"]).read_bytes()
        if self.store is not None:
            shared_path = self.store.path_for(key)
            if pathlib.Path(raw["path"]) != shared_path:
                self.store.publish_bytes(key, blob)
        return unpickle_envelope(blob, key, self.store.schema if self.store else None)

    def _resolve_waiters(self, waiters: List[asyncio.Future], request: CompileRequest,
                         compiled: CompiledModel, source: str, wall_s: float,
                         pid: Optional[int]) -> None:
        for i, fut in enumerate(waiters):
            if fut.done():
                continue
            fut.set_result(ServiceReply(
                request=request, compiled=compiled, source=source,
                coalesced=i > 0, wall_s=wall_s, worker_pid=pid,
            ))


def compile_many(requests: Sequence[CompileRequest], *, workers: int = 1,
                 cache_dir: Optional[PathLike] = None,
                 max_batch: int = 64) -> List[ServiceReply]:
    """One-shot convenience: serve ``requests`` on a temporary service.

    Spins a service up, submits everything concurrently (so duplicates
    coalesce exactly as they would against a long-running daemon), and
    tears it down.  The CLI's batch mode and the tests use this; the bench
    drives the service object directly to keep prewarm off the clock.
    """
    async def go() -> List[ServiceReply]:
        async with PlanCompilationService(
            workers=workers, cache_dir=cache_dir, max_batch=max_batch
        ) as svc:
            return list(await asyncio.gather(*(svc.submit(r) for r in requests)))

    return asyncio.run(go())
