"""Worker-local read-through store: private first, shared fallback.

The parallel scale-out problem with one shared :class:`ArtifactStore` is
write traffic: N workers compiling concurrently all want to persist
compiled models, pricing tables, and window caches, and although the
store's atomic writes make races *safe*, they still serialize on the same
files and directories.  The service splits the roles instead:

- every pool worker gets a :class:`ReadThroughStore` — a private
  worker-local :class:`ArtifactStore` consulted first, with the shared
  store as read-only fallback (shared hits are filled into the private
  store as raw envelope bytes so the next read is local);
- workers only ever **write** to their private store;
- the daemon process is the single shared-store writer: it publishes a
  worker's result into the shared store by copying the already-pickled
  envelope bytes (:meth:`ArtifactStore.publish_bytes`) — no re-pickle, no
  write contention.
"""

from __future__ import annotations

import pickle
from typing import Any, List, Mapping, Optional, Sequence

from repro.core.store import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    _deep_recursion,
    canonical_key,
)


def unpickle_envelope(blob: bytes, key: Mapping[str, Any], schema: int) -> Any:
    """Decode an :class:`ArtifactStore` envelope, validating key + schema.

    The daemon uses this to materialize a worker's published bytes without
    a second disk round trip; validation mirrors ``ArtifactStore.load`` so
    a mismatched envelope fails loudly instead of serving a wrong artifact.
    """
    with _deep_recursion():
        envelope = pickle.loads(blob)
    if (
        not isinstance(envelope, dict)
        or envelope.get("schema") != schema
        or envelope.get("key") != canonical_key(key)
    ):
        raise ValueError("artifact envelope does not match the requested key/schema")
    return envelope["value"]


class ReadThroughStore:
    """Two-level artifact store for service pool workers.

    Implements the subset of the :class:`ArtifactStore` interface the
    experiment layer and the pricing-table cache consume (``load`` /
    ``load_many`` / ``save`` / ``contains`` / ``path_for`` / ``stats``), so
    a worker can install it via ``repro.experiments.common.swap_store`` and
    every cache layer in the process transparently becomes read-through.
    """

    def __init__(self, private_root, shared_root, *,
                 schema: int = ARTIFACT_SCHEMA_VERSION) -> None:
        self.private = ArtifactStore(private_root, schema=schema)
        self.shared = ArtifactStore(shared_root, schema=schema)
        self.schema = schema
        #: Facade-level traffic: a hit from either level counts once.
        self.stats = StoreStats()

    # ----------------------------------------------------------- addressing
    def path_for(self, key: Mapping[str, Any]):
        return self.private.path_for(key)

    def contains(self, key: Mapping[str, Any]) -> bool:
        return self.private.contains(key) or self.shared.contains(key)

    # ------------------------------------------------------------- load/save
    def load(self, key: Mapping[str, Any]) -> Optional[Any]:
        value = self.private.load(key)
        if value is not None:
            self.stats.hits += 1
            return value
        value = self.shared.load(key)
        if value is not None:
            self.stats.hits += 1
            self._fill_private(key)
            return value
        self.stats.misses += 1
        return None

    def load_many(self, keys: Sequence[Mapping[str, Any]]) -> List[Optional[Any]]:
        return [self.load(key) for key in keys]

    def save(self, key: Mapping[str, Any], value: Any):
        """Persist into the *private* store only (contention-free)."""
        path = self.private.save(key, value)
        self.stats.stores += 1
        return path

    def _fill_private(self, key: Mapping[str, Any]) -> None:
        """Copy a shared hit's envelope bytes into the private store.

        Byte copy, not re-pickle: envelopes embed only schema + key + value,
        never the store root, so they are portable between roots.  The fill
        is an optimization — if the shared entry vanished (e.g. a racing
        quarantine) the next read simply falls through to shared again.
        """
        try:
            blob = self.shared.path_for(key).read_bytes()
        except OSError:
            return
        self.private.publish_bytes(key, blob)
