"""Figure 4 — profiling + regression model for latency prediction.

Profiles operators from the full model zoo (the paper uses >10 models),
trains the gradient-boosted-trees regressor on (operator, GWS/LWS, embedded
load) features, and reports train/holdout accuracy plus a per-class error
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.capacity.model import LoadCapacityModel
from repro.capacity.profiler import LoadCapacityProfiler
from repro.experiments.common import DEFAULT_DEVICE, cached_graph
from repro.experiments.report import render_table
from repro.gpusim.device import get_device
from repro.graph.models import EVALUATED_MODELS


@dataclass
class Fig4Result:
    n_samples: int
    train_rmse_log10: float
    holdout_rmse_log10: float
    holdout_mean_rel_error: float
    #: class -> mean relative latency error on holdout
    per_class_rel_error: Dict[str, float]

    def render(self) -> str:
        rows = [
            ("samples", self.n_samples),
            ("train RMSE (log10 ms)", self.train_rmse_log10),
            ("holdout RMSE (log10 ms)", self.holdout_rmse_log10),
            ("holdout mean rel. error", f"{self.holdout_mean_rel_error * 100:.1f}%"),
        ]
        summary = render_table(["Metric", "Value"], rows, title="Figure 4 — latency model accuracy")
        per_class = render_table(
            ["Operator class", "Mean rel. error"],
            [(k, f"{v * 100:.1f}%") for k, v in sorted(self.per_class_rel_error.items())],
        )
        return summary + "\n\n" + per_class


def run(device: str = DEFAULT_DEVICE, *, seed: int = 0, max_ops_per_model: int = 24) -> Fig4Result:
    dev = get_device(device)
    profiler = LoadCapacityProfiler(dev, seed=seed)
    graphs = [cached_graph(m) for m in EVALUATED_MODELS]
    dataset = profiler.profile_models(graphs, max_ops_per_model=max_ops_per_model)
    model = LoadCapacityModel.from_dataset(dev, dataset, seed=seed)
    assert model.report is not None

    # Per-class relative error on a fresh holdout (one columnar predict).
    _, holdout = dataset.split(holdout=0.2, seed=seed)
    Xh, _ = holdout.matrices()
    preds = model.regressor.predict(Xh) if len(holdout) else np.empty(0)
    per_class: Dict[str, List[float]] = {}
    for sample, pred in zip(holdout.samples, preds):
        rel = abs(10**pred - sample.latency_ms) / max(1e-9, sample.latency_ms)
        per_class.setdefault(sample.op.op_class.value, []).append(rel)
    return Fig4Result(
        n_samples=model.report.n_samples,
        train_rmse_log10=model.report.train_rmse_log10,
        holdout_rmse_log10=model.report.holdout_rmse_log10,
        holdout_mean_rel_error=model.report.holdout_mean_rel_error,
        per_class_rel_error={k: float(np.mean(v)) for k, v in per_class.items()},
    )
