"""Extension — preemptive multi-DNN scheduling (paper Figure 1(c)).

A latency-critical model preempts a long-running one mid-inference.  The
driver compares FlashMem (tiny resident state; victim resumes by
re-streaming its remaining layers) with a SmartMem-style preloader (victim's
full weight set stays resident under the urgent model; resuming means a full
re-initialization after eviction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import DEFAULT_DEVICE, flashmem_result, framework_result
from repro.experiments.report import render_table
from repro.gpusim.device import get_device
from repro.runtime.preemptive import flashmem_resume_factory, run_preemption_episode

VICTIM = "DeepViT"
URGENT = "ResNet50"


@dataclass
class PreemptionRow:
    runtime: str
    urgent_completion_ms: float
    session_ms: float
    peak_mb: float


@dataclass
class PreemptionResult:
    rows: List[PreemptionRow]
    victim: str = VICTIM
    urgent: str = URGENT

    def row(self, runtime: str) -> PreemptionRow:
        return next(r for r in self.rows if r.runtime == runtime)

    def render(self) -> str:
        return render_table(
            ["Runtime", "Urgent completion (ms)", "Session (ms)", "Peak (MB)"],
            [(r.runtime, r.urgent_completion_ms, r.session_ms, r.peak_mb) for r in self.rows],
            title=(
                f"Extension — preemption: {self.urgent} interrupts {self.victim} "
                "at 50% progress"
            ),
        )


def run(device: str = DEFAULT_DEVICE) -> PreemptionResult:
    dev = get_device(device)
    setup_ms = dev.gpu_setup_ms

    flash_victim = lambda: flashmem_result(VICTIM, device)
    flash_urgent = lambda: flashmem_result(URGENT, device)
    flash = run_preemption_episode(
        "FlashMem",
        flash_victim,
        flash_urgent,
        victim_resume=flashmem_resume_factory(flash_victim, setup_ms=setup_ms),
    )

    smem_victim = lambda: framework_result("SMem", VICTIM, device)
    smem_urgent = lambda: framework_result("SMem", URGENT, device)
    smem = run_preemption_episode("SMem (evict+restart)", smem_victim, smem_urgent)

    rows = [
        PreemptionRow(
            runtime=o.runtime,
            urgent_completion_ms=o.urgent_completion_ms,
            session_ms=o.session_ms,
            peak_mb=o.peak_memory_bytes / 1e6,
        )
        for o in (flash, smem)
    ]
    return PreemptionResult(rows=rows)
