"""Design-choice ablations for the LC-OPG solver (DESIGN.md §4).

Quantifies the knobs the paper motivates qualitatively:

- **CP vs greedy-only** — the hybrid mode's quality gap: total loading
  distance (residency proxy) and preload ratio under each scheduler.
- **Chunk size S** — finer chunks pack capacity better but multiply solver
  variables; sweeps S and reports preload ratio + solve time.
- **Lookback horizon** — how far ahead of i_w transforms may run; longer
  horizons stream more but grow the CP model.
- **Rolling-window size** — the incremental-scheduling granularity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.experiments.common import DEFAULT_DEVICE, cached_capacity, cached_graph
from repro.experiments.report import render_table
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan
from repro.opg.problem import OpgConfig

MODEL = "ViT"


def _distance(plan: OverlapPlan) -> int:
    return sum(s.loading_distance for s in plan.schedules.values())


@dataclass
class AblationRow:
    study: str
    setting: str
    preload_pct: float
    total_distance: int
    solve_s: float
    status: str


@dataclass
class AblationResult:
    rows: List[AblationRow] = field(default_factory=list)

    def study(self, name: str) -> List[AblationRow]:
        return [r for r in self.rows if r.study == name]

    def render(self) -> str:
        return render_table(
            ["Study", "Setting", "Preload %", "Total distance", "Solve (s)", "Status"],
            [
                (r.study, r.setting, r.preload_pct, r.total_distance, r.solve_s, r.status)
                for r in self.rows
            ],
            title=f"Solver design ablations ({MODEL})",
        )


def _solve(graph, capacity, config: OpgConfig, *, use_cp: bool = True):
    start = time.perf_counter()
    plan = LcOpgSolver(config, use_cp=use_cp).solve(graph, capacity)
    return plan, time.perf_counter() - start


def run(device: str = DEFAULT_DEVICE, *, model: str = MODEL) -> AblationResult:
    graph = cached_graph(model)
    capacity = cached_capacity(device)
    result = AblationResult()

    def add(study: str, setting: str, plan: OverlapPlan, elapsed: float) -> None:
        result.rows.append(
            AblationRow(
                study=study,
                setting=setting,
                preload_pct=plan.preload_ratio * 100,
                total_distance=_distance(plan),
                solve_s=elapsed,
                status=plan.stats.solver_status,
            )
        )

    base = dict(time_limit_s=3.0, max_nodes_per_window=500)

    # CP vs greedy-only (hybrid fallback forced on).
    for use_cp, label in ((True, "CP-SAT"), (False, "greedy-only")):
        plan, dt = _solve(graph, capacity, OpgConfig(**base), use_cp=use_cp)
        add("scheduler", label, plan, dt)

    # Chunk size sweep.
    for chunk_kb in (128, 512, 2048):
        plan, dt = _solve(graph, capacity, OpgConfig(**base, chunk_bytes=chunk_kb * 1024))
        add("chunk_size", f"{chunk_kb} KiB", plan, dt)

    # Lookback horizon sweep.
    for lookback in (4, 16, 32):
        plan, dt = _solve(graph, capacity, OpgConfig(**base, lookback=lookback))
        add("lookback", str(lookback), plan, dt)

    # Rolling-window size sweep.
    for window in (16, 48, 128):
        plan, dt = _solve(graph, capacity, OpgConfig(**base, window_weights=window))
        add("window", str(window), plan, dt)

    return result
