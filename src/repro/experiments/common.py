"""Shared infrastructure for the experiment drivers.

All drivers use one standard experiment configuration (solver budgets sized
for repeated runs) and two cache layers so Table 7, Table 8, Table 9, and
Figure 10 reuse each (model, device) compilation instead of re-solving:

- an in-process ``lru_cache`` layer (always on, exactly the seed behavior);
- an optional persistent :class:`~repro.core.store.ArtifactStore` layer,
  enabled via :func:`configure_cache`, that survives across processes —
  sweep workers and repeated CLI invocations load each other's compiled
  models and run results instead of re-solving.

Keys carry (model, device, config fingerprint) and the artifact schema
version, so a config or format change addresses fresh entries.
"""

from __future__ import annotations

import pathlib
from functools import lru_cache
from typing import Any, Dict, Optional, Union

from repro.capacity import cache as capacity_cache
from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.core.config import FlashMemConfig
from repro.core.flashmem import CompiledModel, FlashMem
from repro.core.store import ArtifactStore, flashmem_config_fingerprint
from repro.gpusim import pricing
from repro.gpusim.device import get_device
from repro.gpusim.timeline import RunResult
from repro.graph.dag import Graph
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.models import load_decode_model, load_model
from repro.opg.problem import OpgConfig
from repro.runtime.frameworks import get_profile
from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor
from repro.runtime.scenario import Scenario

#: Default evaluation device (the paper's primary target).
DEFAULT_DEVICE = "OnePlus 12"

#: The canonical single-pass prefill scenario every legacy table/figure cell
#: runs under; sweep cache probes reuse it so their keys match the cells'.
PREFILL_ONCE = Scenario.prefill(1)

#: Stored in place of a result for (framework, model) pairs the framework
#: does not support — ``ArtifactStore`` cannot distinguish a stored None
#: from a miss.
_UNSUPPORTED = "__model-not-supported__"

#: The persistent artifact store, or None (in-process caching only).
_STORE: Optional[ArtifactStore] = None


def experiment_opg_config(**overrides) -> OpgConfig:
    """Solver settings sized for experiment sweeps (seconds, not minutes)."""
    base = dict(time_limit_s=3.0, max_nodes_per_window=500)
    base.update(overrides)
    return OpgConfig(**base)


def experiment_flashmem_config(**overrides) -> FlashMemConfig:
    """Standard experiment pipeline config; ``capacity_backend``/
    ``capacity_seed`` land on the :class:`FlashMemConfig`, everything else
    on its :class:`OpgConfig`."""
    fm_kwargs = {}
    for key in ("capacity_backend", "capacity_seed"):
        if key in overrides:
            fm_kwargs[key] = overrides.pop(key)
    return FlashMemConfig(opg=experiment_opg_config(**overrides), **fm_kwargs)


# --------------------------------------------------------- persistent layer
def configure_cache(cache_dir: Union[str, pathlib.Path, None]) -> Optional[ArtifactStore]:
    """Point the persistent artifact cache at ``cache_dir`` (None disables).

    Returns the active store.  The in-process ``lru_cache`` layer is
    unaffected: values computed under any store configuration are identical
    for identical keys.
    """
    global _STORE
    _STORE = ArtifactStore(cache_dir) if cache_dir is not None else None
    pricing.set_pricing_store(_STORE)
    capacity_cache.set_capacity_store(_STORE)
    return _STORE


def cache_store() -> Optional[ArtifactStore]:
    """The active persistent store, or None when disabled."""
    return _STORE


def swap_store(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Install ``store`` (may be None) and return the previous one.

    The inline sweep path uses this to scope its cache configuration to one
    run instead of leaking it into the calling process.
    """
    global _STORE
    previous = _STORE
    _STORE = store
    pricing.set_pricing_store(store)
    capacity_cache.set_capacity_store(store)
    return previous


def cache_stats() -> Dict[str, int]:
    """Persistent-store + pricing counters (store fields zero when disabled).

    Store traffic (``hits``/``misses``/``stores``/``corrupt``) comes from the
    :class:`ArtifactStore`; ``pricing_hits``/``pricing_misses`` count the
    in-process cost-table LRU across every simulated run this process made.
    """
    stats = (_STORE.stats.snapshot() if _STORE
             else {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0})
    stats["pricing_hits"] = pricing.STATS.table_hits
    stats["pricing_misses"] = pricing.STATS.table_misses
    stats["capacity_trains"] = capacity_cache.STATS["trains"]
    stats["capacity_store_hits"] = capacity_cache.STATS["store_hits"]
    return stats


def experiment_config_fingerprint() -> str:
    """Fingerprint of the standard experiment configuration."""
    return flashmem_config_fingerprint(experiment_flashmem_config())


def _store_load(key: Dict[str, Any]) -> Optional[Any]:
    return _STORE.load(key) if _STORE is not None else None


def _store_save(key: Dict[str, Any], value: Any) -> None:
    if _STORE is not None:
        _STORE.save(key, value)


def compile_key(
    model: str,
    device_name: str,
    context_len: int = 0,
    *,
    config: Optional[FlashMemConfig] = None,
) -> Dict[str, Any]:
    """Artifact address of one compilation.

    ``config=None`` fingerprints the standard experiment configuration, so
    experiment drivers, sweep workers, and service requests running default
    settings all address the *same* stored artifact; an explicit config
    (service requests with a custom solver budget) addresses its own entry.
    """
    fingerprint = (experiment_config_fingerprint() if config is None
                   else flashmem_config_fingerprint(config))
    key = {"kind": "compiled", "model": model, "device": device_name,
           "config": fingerprint}
    if context_len:
        key["context_len"] = int(context_len)
    return key


def flashmem_run_key(
    model: str, device_name: str, scenario: Scenario
) -> Dict[str, Any]:
    return {"kind": "flashmem-run", "model": model, "device": device_name,
            "scenario": scenario.cache_key(), "config": experiment_config_fingerprint()}


def framework_run_key(
    framework: str, model: str, device_name: str, scenario: Scenario
) -> Dict[str, Any]:
    return {"kind": "framework-run", "framework": framework, "model": model,
            "device": device_name, "scenario": scenario.cache_key()}


# ------------------------------------------------------------ cached cells
@lru_cache(maxsize=64)
def cached_graph(model: str) -> Graph:
    return load_model(model)


@lru_cache(maxsize=16)
def cached_capacity(device_name: str, backend: str = "analytic") -> LoadCapacityModel:
    """Capacity model per (device, backend).

    ``gbt`` goes through the read-through capacity-model cache
    (:mod:`repro.capacity.cache`): trained once per device across
    processes sharing a store, warm-loaded everywhere else.
    """
    if backend == "gbt":
        return capacity_cache.trained_capacity_model(get_device(device_name))
    return analytic_capacity_model(get_device(device_name))


@lru_cache(maxsize=64)
def cached_compile(model: str, device_name: str) -> CompiledModel:
    """Full-pipeline FlashMem compilation, cached per (model, device)."""
    key = compile_key(model, device_name)
    stored = _store_load(key)
    if stored is not None:
        return stored
    fm = FlashMem(experiment_flashmem_config())
    compiled = fm.compile(
        cached_graph(model), get_device(device_name), capacity=cached_capacity(device_name)
    )
    _store_save(key, compiled)
    return compiled


@lru_cache(maxsize=256)
def flashmem_result(model: str, device_name: str, iterations: int = 1) -> RunResult:
    """Cached FlashMem prefill run (``iterations`` passes of the graph)."""
    scenario = Scenario.prefill(iterations)
    key = flashmem_run_key(model, device_name, scenario)
    stored = _store_load(key)
    if stored is not None:
        return stored
    fm = FlashMem(experiment_flashmem_config())
    result = fm.run(cached_compile(model, device_name), scenario=scenario)
    _store_save(key, result)
    return result


@lru_cache(maxsize=512)
def framework_result(
    framework: str, model: str, device_name: str, iterations: int = 1
) -> Optional[RunResult]:
    """Cached baseline prefill run; None when the framework lacks support.

    Baselines other than SmartMem execute the raw lowered graph (layout ops
    included); SmartMem — whose contribution is layout-transformation
    elimination — runs the layout-eliminated graph, like FlashMem.
    """
    scenario = Scenario.prefill(iterations)
    key = framework_run_key(framework, model, device_name, scenario)
    stored = _store_load(key)
    if stored is not None:
        return None if stored == _UNSUPPORTED else stored
    profile = get_profile(framework)
    graph = cached_graph(model)
    if framework == "SMem":
        graph = eliminate_layout_ops(graph)
    try:
        result: Optional[RunResult] = PreloadExecutor(profile, get_device(device_name)).run(
            graph, scenario=scenario
        )
    except ModelNotSupportedError:
        result = None
    _store_save(key, _UNSUPPORTED if result is None else result)
    return result


# ------------------------------------------------------------- decode cells
@lru_cache(maxsize=64)
def cached_decode_graph(model: str, context_len: int) -> Graph:
    return load_decode_model(model, context_len=context_len)


@lru_cache(maxsize=64)
def cached_decode_compile(model: str, device_name: str, context_len: int) -> CompiledModel:
    """Decode-phase compilation (weights resident, KV residency planned),
    cached per (model, device, prompt length)."""
    key = compile_key(model, device_name, context_len)
    stored = _store_load(key)
    if stored is not None:
        return stored
    fm = FlashMem(experiment_flashmem_config())
    compiled = fm.compile(
        cached_decode_graph(model, context_len),
        get_device(device_name),
        capacity=cached_capacity(device_name),
    )
    _store_save(key, compiled)
    return compiled


@lru_cache(maxsize=256)
def flashmem_decode_result(
    model: str, device_name: str, context_len: int, tokens: int
) -> RunResult:
    """Cached FlashMem autoregressive decode: ``tokens`` generated after a
    ``context_len``-token prompt, KV cache streamed per the residency plan."""
    scenario = Scenario.decode(tokens=tokens, context_len=context_len)
    key = flashmem_run_key(model, device_name, scenario)
    stored = _store_load(key)
    if stored is not None:
        return stored
    fm = FlashMem(experiment_flashmem_config())
    result = fm.run(cached_decode_compile(model, device_name, context_len), scenario=scenario)
    _store_save(key, result)
    return result


@lru_cache(maxsize=256)
def framework_decode_result(
    framework: str, model: str, device_name: str, context_len: int, tokens: int
) -> Optional[RunResult]:
    """Cached preloading-baseline decode (unbounded KV growth)."""
    scenario = Scenario.decode(tokens=tokens, context_len=context_len)
    key = framework_run_key(framework, model, device_name, scenario)
    stored = _store_load(key)
    if stored is not None:
        return None if stored == _UNSUPPORTED else stored
    profile = get_profile(framework)
    graph = cached_decode_graph(model, context_len)
    try:
        result: Optional[RunResult] = PreloadExecutor(profile, get_device(device_name)).run(
            graph, scenario=scenario, check_support=False
        )
    except ModelNotSupportedError:
        result = None
    _store_save(key, _UNSUPPORTED if result is None else result)
    return result


def clear_caches() -> None:
    """Drop all in-process cached compilations/results (tests use this for
    isolation).  The persistent store, if configured, is untouched."""
    for fn in (cached_graph, cached_capacity, cached_compile, flashmem_result,
               framework_result, cached_decode_graph, cached_decode_compile,
               flashmem_decode_result, framework_decode_result):
        fn.cache_clear()
    capacity_cache.clear_capacity_cache()
