"""Shared infrastructure for the experiment drivers.

All drivers use one standard experiment configuration (solver budgets sized
for repeated runs) and a process-level cache so Table 7, Table 8, Table 9,
and Figure 10 reuse each (model, device) compilation instead of re-solving.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.core.config import FlashMemConfig
from repro.core.flashmem import CompiledModel, FlashMem
from repro.gpusim.device import get_device
from repro.gpusim.timeline import RunResult
from repro.graph.dag import Graph
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.models import load_model
from repro.opg.problem import OpgConfig
from repro.runtime.frameworks import get_profile
from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor

#: Default evaluation device (the paper's primary target).
DEFAULT_DEVICE = "OnePlus 12"


def experiment_opg_config(**overrides) -> OpgConfig:
    """Solver settings sized for experiment sweeps (seconds, not minutes)."""
    base = dict(time_limit_s=3.0, max_nodes_per_window=500)
    base.update(overrides)
    return OpgConfig(**base)


def experiment_flashmem_config(**opg_overrides) -> FlashMemConfig:
    return FlashMemConfig(opg=experiment_opg_config(**opg_overrides))


@lru_cache(maxsize=64)
def cached_graph(model: str) -> Graph:
    return load_model(model)


@lru_cache(maxsize=8)
def cached_capacity(device_name: str) -> LoadCapacityModel:
    return analytic_capacity_model(get_device(device_name))


@lru_cache(maxsize=64)
def cached_compile(model: str, device_name: str) -> CompiledModel:
    """Full-pipeline FlashMem compilation, cached per (model, device)."""
    fm = FlashMem(experiment_flashmem_config())
    return fm.compile(
        cached_graph(model), get_device(device_name), capacity=cached_capacity(device_name)
    )


@lru_cache(maxsize=256)
def flashmem_result(model: str, device_name: str, iterations: int = 1) -> RunResult:
    """Cached FlashMem run."""
    fm = FlashMem(experiment_flashmem_config())
    return fm.run(cached_compile(model, device_name), iterations=iterations)


@lru_cache(maxsize=512)
def framework_result(
    framework: str, model: str, device_name: str, iterations: int = 1
) -> Optional[RunResult]:
    """Cached baseline run; None when the framework lacks support.

    Baselines other than SmartMem execute the raw lowered graph (layout ops
    included); SmartMem — whose contribution is layout-transformation
    elimination — runs the layout-eliminated graph, like FlashMem.
    """
    profile = get_profile(framework)
    graph = cached_graph(model)
    if framework == "SMem":
        graph = eliminate_layout_ops(graph)
    try:
        return PreloadExecutor(profile, get_device(device_name)).run(graph, iterations=iterations)
    except ModelNotSupportedError:
        return None


def clear_caches() -> None:
    """Drop all cached compilations/results (tests use this for isolation)."""
    for fn in (cached_graph, cached_capacity, cached_compile, flashmem_result, framework_result):
        fn.cache_clear()
