"""Table 8 — average memory consumption: every model x every framework.

Reports per-model average memory and the Mem-ReDT column (reduction over
SmartMem), plus per-framework geo-mean reductions (paper: 3.2x / 2.0x /
8.4x / 7.9x / 3.4x / 3.5x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import DEFAULT_DEVICE, flashmem_result, framework_result
from repro.experiments.report import render_table
from repro.graph.models import EVALUATED_MODELS
from repro.gpusim.timeline import geo_mean
from repro.runtime.frameworks import BASELINE_ORDER

#: Paper geo-mean memory reductions vs FlashMem.
PAPER_GEOMEAN_REDUCTION = {
    "MNN": 3.2, "NCNN": 2.0, "TVM": 8.4, "LiteRT": 7.9, "ETorch": 3.4, "SMem": 3.5,
}

#: Paper FlashMem average memory (MB).
PAPER_FLASHMEM_MB = {
    "GPTN-S": 260, "GPTN-1.3B": 554, "GPTN-2.7B": 1132, "ResNet50": 83,
    "SAM-2": 150, "ViT": 83, "DeepViT": 165, "SD-UNet": 838,
    "Whisp-M": 240, "DepA-S": 86, "DepA-L": 246,
}


@dataclass
class Table8Row:
    model: str
    baselines: Dict[str, Optional[float]]  # framework -> avg MB
    flashmem_mb: float
    mem_redt: Optional[float]  # reduction over SmartMem


@dataclass
class Table8Result:
    rows: List[Table8Row]
    geomean_reduction: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Model"] + BASELINE_ORDER + ["Ours", "Mem-ReDT"]
        rows = []
        for r in self.rows:
            cells: List = [r.model]
            cells += [r.baselines.get(fw) for fw in BASELINE_ORDER]
            cells += [r.flashmem_mb, r.mem_redt]
            rows.append(cells)
        main = render_table(headers, rows, title="Table 8 — average memory (MB)")
        geo = render_table(
            ["Framework", "Geo-mean reduction vs FlashMem", "Paper"],
            [
                (fw, self.geomean_reduction.get(fw), PAPER_GEOMEAN_REDUCTION.get(fw))
                for fw in BASELINE_ORDER
            ],
        )
        return main + "\n\n" + geo


def run(device: str = DEFAULT_DEVICE, *, models: Optional[List[str]] = None) -> Table8Result:
    models = models or EVALUATED_MODELS
    rows: List[Table8Row] = []
    reductions: Dict[str, List[float]] = {fw: [] for fw in BASELINE_ORDER}
    for model in models:
        ours = flashmem_result(model, device)
        baselines: Dict[str, Optional[float]] = {}
        smem_mb: Optional[float] = None
        for fw in BASELINE_ORDER:
            result = framework_result(fw, model, device)
            if result is None:
                baselines[fw] = None
                continue
            baselines[fw] = result.avg_memory_mb
            reductions[fw].append(result.avg_memory_mb / ours.avg_memory_mb)
            if fw == "SMem":
                smem_mb = result.avg_memory_mb
        rows.append(
            Table8Row(
                model=model,
                baselines=baselines,
                flashmem_mb=ours.avg_memory_mb,
                mem_redt=(smem_mb / ours.avg_memory_mb) if smem_mb else None,
            )
        )
    return Table8Result(
        rows=rows,
        geomean_reduction={fw: geo_mean(vals) for fw, vals in reductions.items() if vals},
    )
