"""Table 9 — power and energy consumption (DeepViT, SD-UNet).

Energy integrates the phase-power model over each run's dual-queue timeline;
the paper's structure — FlashMem draws comparable-or-higher power but an
order of magnitude less energy (83-96% savings) — follows from the far
shorter runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import DEFAULT_DEVICE, flashmem_result, framework_result
from repro.experiments.report import render_table

MODELS = ["DeepViT", "SD-UNet"]
FRAMEWORKS = ["MNN", "LiteRT", "ETorch", "SMem"]

#: Paper values: (framework, model) -> (power W, energy J)
PAPER_TABLE9: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("MNN", "DeepViT"): (6.3, 33.1), ("MNN", "SD-UNet"): (4.8, 95.2),
    ("LiteRT", "DeepViT"): (6.4, 51.3),
    ("ETorch", "DeepViT"): (3.6, 130.5),
    ("SMem", "DeepViT"): (5.2, 41.0), ("SMem", "SD-UNet"): (4.5, 134.5),
    ("Ours", "DeepViT"): (5.7, 4.5), ("Ours", "SD-UNet"): (5.6, 17.9),
}


@dataclass
class Table9Row:
    runtime: str
    model: str
    power_w: Optional[float]
    energy_j: Optional[float]


@dataclass
class Table9Result:
    rows: List[Table9Row]

    def energy_of(self, runtime: str, model: str) -> Optional[float]:
        for r in self.rows:
            if r.runtime == runtime and r.model == model:
                return r.energy_j
        return None

    def savings_vs(self, framework: str, model: str) -> Optional[float]:
        """Fractional energy saving of FlashMem vs ``framework``."""
        ours = self.energy_of("Ours", model)
        other = self.energy_of(framework, model)
        if ours is None or other is None or other == 0:
            return None
        return 1.0 - ours / other

    def render(self) -> str:
        return render_table(
            ["Runtime", "Model", "Power (W)", "Energy (J)", "Paper power", "Paper energy"],
            [
                (
                    r.runtime, r.model, r.power_w, r.energy_j,
                    *(PAPER_TABLE9.get((r.runtime, r.model), (None, None))),
                )
                for r in self.rows
            ],
            title="Table 9 — power and energy",
        )


def run(device: str = DEFAULT_DEVICE) -> Table9Result:
    rows: List[Table9Row] = []
    for model in MODELS:
        for fw in FRAMEWORKS:
            result = framework_result(fw, model, device)
            if result is None:
                rows.append(Table9Row(runtime=fw, model=model, power_w=None, energy_j=None))
            else:
                rows.append(
                    Table9Row(
                        runtime=fw, model=model,
                        power_w=result.avg_power_w, energy_j=result.energy_j,
                    )
                )
        ours = flashmem_result(model, device)
        rows.append(
            Table9Row(runtime="Ours", model=model, power_w=ours.avg_power_w, energy_j=ours.energy_j)
        )
    return Table9Result(rows=rows)
