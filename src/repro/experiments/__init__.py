"""Experiment drivers — one module per paper table/figure.

Each driver exposes ``run(...)`` returning a structured result with a
``render()`` method printing the paper's rows/series.  The benchmarks in
``benchmarks/`` wrap these drivers; they are equally usable interactively::

    from repro.experiments import table7
    print(table7.run().render())
"""

from repro.experiments import (
    ablations,
    appendix_fp32,
    background_texture,
    decode,
    fig2,
    preemption,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fleet,
    table1,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.common import clear_caches

__all__ = [
    "ablations", "appendix_fp32", "background_texture", "decode", "preemption",
    "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fleet",
    "table1", "table4", "table5", "table6", "table7", "table8", "table9",
    "clear_caches",
]
