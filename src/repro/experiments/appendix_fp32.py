"""Appendix — 32-bit floating-point configuration.

The paper footnotes that its fp32 results "show similar trends to 16-bit"
and defers them to the appendix.  This driver runs a model subset in both
precisions under FlashMem and SmartMem and checks exactly that claim: the
speedups and memory reductions hold, with fp32 roughly doubling absolute
footprints and stretching the disk-bound phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import DEFAULT_DEVICE, experiment_flashmem_config
from repro.experiments.report import render_table
from repro.core.flashmem import FlashMem
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.models import load_model
from repro.gpusim.device import get_device
from repro.runtime.frameworks import SMARTMEM
from repro.runtime.preload import PreloadExecutor

MODELS = ["ViT", "GPTN-S"]


@dataclass
class Fp32Row:
    model: str
    dtype: str
    flashmem_ms: float
    flashmem_mb: float
    smem_ms: float
    smem_mb: float

    @property
    def speedup(self) -> float:
        return self.smem_ms / self.flashmem_ms

    @property
    def mem_reduction(self) -> float:
        return self.smem_mb / self.flashmem_mb


@dataclass
class Fp32Result:
    rows: List[Fp32Row]

    def row(self, model: str, dtype: str) -> Fp32Row:
        return next(r for r in self.rows if r.model == model and r.dtype == dtype)

    def render(self) -> str:
        return render_table(
            ["Model", "Precision", "Ours (ms)", "Ours (MB)", "SMem (ms)", "SMem (MB)",
             "Speedup", "Mem-ReDT"],
            [
                (r.model, r.dtype, r.flashmem_ms, r.flashmem_mb, r.smem_ms, r.smem_mb,
                 r.speedup, r.mem_reduction)
                for r in self.rows
            ],
            title="Appendix — fp16 vs fp32 (paper: 32-bit shows similar trends)",
        )


def run(device: str = DEFAULT_DEVICE, *, models: List[str] = None) -> Fp32Result:
    dev = get_device(device)
    fm = FlashMem(experiment_flashmem_config())
    rows: List[Fp32Row] = []
    for model in models or MODELS:
        for dtype_bytes, label in ((2, "fp16"), (4, "fp32")):
            graph = load_model(model, dtype_bytes=dtype_bytes)
            ours = fm.compile_and_run(graph, dev)
            smem = PreloadExecutor(SMARTMEM, dev).run(
                eliminate_layout_ops(graph), check_support=False
            )
            rows.append(
                Fp32Row(
                    model=model,
                    dtype=label,
                    flashmem_ms=ours.latency_ms,
                    flashmem_mb=ours.avg_memory_mb,
                    smem_ms=smem.latency_ms,
                    smem_mb=smem.avg_memory_mb,
                )
            )
    return Fp32Result(rows=rows)
