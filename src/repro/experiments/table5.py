"""Table 5 — operator classification and load-capacity characteristics.

Prints the class characterization (memory bandwidth / tolerance / compute
intensity / threshold) and verifies it against the measured capacities of
representative operators on the default device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.capacity.classify import TABLE5_ROWS
from repro.capacity.model import analytic_capacity_model
from repro.experiments.common import DEFAULT_DEVICE
from repro.experiments.fig2 import representative_ops
from repro.experiments.report import render_table
from repro.gpusim.device import get_device


@dataclass
class Table5Result:
    #: (class, M.B., L.C. tolerance, C.I., threshold, examples)
    class_rows: List[tuple]
    #: (operator, class, measured capacity MB)
    measured_rows: List[tuple]

    def render(self) -> str:
        classes = render_table(
            ["Operator Type", "M.B.", "L.C. Tolerance", "C.I.", "Threshold", "Examples"],
            self.class_rows,
            title="Table 5 — operator classification",
        )
        measured = render_table(
            ["Operator", "Class", "Capacity (MB)"],
            self.measured_rows,
            title="Measured load capacities (OnePlus 12 shapes)",
        )
        return classes + "\n\n" + measured


def run(device: str = DEFAULT_DEVICE) -> Table5Result:
    class_rows = [
        (
            r.op_class.value,
            r.memory_bandwidth,
            r.lc_tolerance,
            r.compute_intensity,
            f"{r.threshold * 100:.0f}%",
            r.examples,
        )
        for r in TABLE5_ROWS
    ]
    capacity = analytic_capacity_model(get_device(device))
    reps = representative_ops()
    caps = capacity.capacity_bytes_batch(list(reps.values()))
    measured_rows = [
        (name, op.op_class.value, cap / 1e6)
        for (name, op), cap in zip(reps.items(), caps)
    ]
    return Table5Result(class_rows=class_rows, measured_rows=measured_rows)
