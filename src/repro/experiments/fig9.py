"""Figure 9 — FlashMem vs naive overlap strategies.

Runs Always-Next Loading and Same-Op-Type Prefetching plans through the
same executor and reports the slowdown relative to FlashMem's LC-OPG plan
(paper: up to 4.3x and 2.4x slower respectively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    DEFAULT_DEVICE,
    cached_capacity,
    cached_graph,
    experiment_opg_config,
    flashmem_result,
)
from repro.experiments.report import render_table
from repro.gpusim.device import get_device
from repro.graph.lowering import eliminate_layout_ops
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.naive_overlap import AlwaysNextPlanner, SameOpTypePlanner

MODELS = ["ViT", "GPTN-S", "DeepViT", "Whisp-M"]


@dataclass
class Fig9Row:
    model: str
    flashmem_ms: float
    same_next_ms: float
    always_next_ms: float

    @property
    def same_next_slowdown(self) -> float:
        return self.same_next_ms / self.flashmem_ms

    @property
    def always_next_slowdown(self) -> float:
        return self.always_next_ms / self.flashmem_ms


@dataclass
class Fig9Result:
    rows: List[Fig9Row]

    def render(self) -> str:
        return render_table(
            ["Model", "Ours (ms)", "SameNext (ms)", "x", "AlwaysNext (ms)", "x"],
            [
                (
                    r.model, r.flashmem_ms,
                    r.same_next_ms, r.same_next_slowdown,
                    r.always_next_ms, r.always_next_slowdown,
                )
                for r in self.rows
            ],
            title="Figure 9 — naive overlap strategies (paper: AlwaysNext up to 4.3x, SameNext up to 2.4x)",
        )


def run(device: str = DEFAULT_DEVICE, *, models: Optional[List[str]] = None) -> Fig9Result:
    dev = get_device(device)
    capacity = cached_capacity(device)
    cfg = experiment_opg_config()
    rows: List[Fig9Row] = []
    for model in models or MODELS:
        ours = flashmem_result(model, device)
        graph = eliminate_layout_ops(cached_graph(model))
        executor = FlashMemExecutor(dev)
        same = executor.run(
            graph,
            SameOpTypePlanner(cfg).solve(graph, capacity, device_name=device),
            runtime_name="SameNext",
        )
        always = executor.run(
            graph,
            AlwaysNextPlanner(cfg).solve(graph, capacity, device_name=device),
            runtime_name="AlwaysNext",
        )
        rows.append(
            Fig9Row(
                model=model,
                flashmem_ms=ours.latency_ms,
                same_next_ms=same.latency_ms,
                always_next_ms=always.latency_ms,
            )
        )
    return Fig9Result(rows=rows)
