"""Figure 6 — multi-model FIFO support: FlashMem vs MNN memory over time.

Four representative models run 10 interleaved iterations each in a seeded
random order.  The driver stitches the session memory timeline for both
runtimes; MNN re-initialises per invocation (repeated spikes), FlashMem
streams every invocation under its overlap plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import DEFAULT_DEVICE, flashmem_result, framework_result
from repro.experiments.report import render_table
from repro.runtime.multimodel import FifoPipeline, PipelineResult, fifo_schedule

MODELS = ["ViT", "DeepViT", "GPTN-S", "SD-UNet"]


@dataclass
class Fig6Result:
    flashmem: PipelineResult
    mnn: PipelineResult
    sequence: List[str]

    @property
    def peak_ratio(self) -> float:
        return self.mnn.peak_memory_bytes / max(1, self.flashmem.peak_memory_bytes)

    def series(self, runtime: str, resolution_ms: float = 500.0) -> List[Tuple[float, int]]:
        result = self.flashmem if runtime == "FlashMem" else self.mnn
        return result.memory.series(resolution_ms=resolution_ms, end_ms=result.total_ms)

    def render(self) -> str:
        rows = [
            ("FlashMem", self.flashmem.total_ms, self.flashmem.peak_memory_bytes / 1e6,
             self.flashmem.avg_memory_bytes / 1e6, self.flashmem.energy_j),
            ("MNN", self.mnn.total_ms, self.mnn.peak_memory_bytes / 1e6,
             self.mnn.avg_memory_bytes / 1e6, self.mnn.energy_j),
        ]
        summary = render_table(
            ["Runtime", "Session (ms)", "Peak (MB)", "Avg (MB)", "Energy (J)"],
            rows,
            title=f"Figure 6 — FIFO multi-model session ({len(self.sequence)} invocations)",
        )
        spikes = render_table(
            ["Invocation", "Model", "FlashMem peak (MB)", "MNN peak (MB)"],
            [
                (i, inv_f.model, inv_f.peak_memory_bytes / 1e6, inv_m.peak_memory_bytes / 1e6)
                for i, (inv_f, inv_m) in enumerate(
                    zip(self.flashmem.invocations[:8], self.mnn.invocations[:8])
                )
            ],
            title="First invocations",
        )
        return summary + "\n\n" + spikes


def run(device: str = DEFAULT_DEVICE, *, iterations: int = 10, seed: int = 7) -> Fig6Result:
    sequence = fifo_schedule(MODELS, iterations, seed=seed)
    flash_pipeline = FifoPipeline("FlashMem", device, lambda m: flashmem_result(m, device))

    def run_mnn(model: str):
        result = framework_result("MNN", model, device)
        assert result is not None, f"MNN must support {model} for Figure 6"
        return result

    mnn_pipeline = FifoPipeline("MNN", device, run_mnn)
    return Fig6Result(
        flashmem=flash_pipeline.run(sequence),
        mnn=mnn_pipeline.run(sequence),
        sequence=sequence,
    )
