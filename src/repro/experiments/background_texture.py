"""Background claim (§2.1): texture memory accelerates DNN kernels.

Romou reports up to 3.5x speedups from texture-backed execution over
unified-memory buffers.  This driver replays representative DNN access
patterns through the cache model (Z-order texture cache vs linear buffer
path) and reports the per-pattern effective-bandwidth advantage — the
mechanistic basis for the ExecuTorch baseline's efficiency gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import render_table
from repro.gpusim.cache import AccessPattern, PathComparison, compare_paths

PATTERN_KERNELS = {
    AccessPattern.TILED_2D: "MatMul / Conv tile reads",
    AccessPattern.ROW_LINEAR: "Elementwise scans",
    AccessPattern.COLUMN_STRIDED: "Transposed / attention K reads",
}


@dataclass
class BackgroundTextureResult:
    comparisons: List[PathComparison]

    @property
    def max_speedup(self) -> float:
        return max(c.speedup for c in self.comparisons)

    def render(self) -> str:
        return render_table(
            ["Access pattern", "Kernels", "Texture hit rate", "Linear hit rate", "Speedup"],
            [
                (
                    c.pattern.value,
                    PATTERN_KERNELS[c.pattern],
                    f"{c.texture_hit_rate * 100:.0f}%",
                    f"{c.linear_hit_rate * 100:.0f}%",
                    f"{c.speedup:.1f}x",
                )
                for c in self.comparisons
            ],
            title="Background §2.1 — texture vs unified-memory path (Romou: up to 3.5x)",
        )


def run(*, width: int = 128, height: int = 128) -> BackgroundTextureResult:
    return BackgroundTextureResult(
        comparisons=[compare_paths(p, width=width, height=height) for p in AccessPattern]
    )
