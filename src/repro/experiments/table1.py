"""Table 1 — motivation: preloading cost on the OnePlus 12 under MNN.

Reports per-model peak/average memory and the load / transformation /
inference latency split for Whisper-Medium, GPTNeo-Small, and SD-UNet, as
the paper's introduction measures with MNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import DEFAULT_DEVICE, cached_graph, framework_result
from repro.experiments.report import render_table

MODELS = ["Whisp-M", "GPTN-S", "SD-UNet"]

#: Paper-reported values for EXPERIMENTS.md comparison:
#: model -> (peak MB, avg MB, load ms, trans ms, infer ms)
PAPER_TABLE1: Dict[str, Tuple[float, float, float, float, float]] = {
    "Whisp-M": (4077, 1650, 2702, 3441, 1343),
    "GPTN-S": (1026, 610, 631, 2898, 337),
    "SD-UNet": (4858, 1800, 4159, 17588, 1647),
}


@dataclass
class Table1Row:
    model: str
    params_m: float
    peak_mb: float
    avg_mb: float
    load_ms: float
    trans_ms: float
    infer_ms: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def render(self) -> str:
        return render_table(
            ["Model", "Params(M)", "Peak(MB)", "Avg(MB)", "Load(ms)", "Trans(ms)", "Infer(ms)"],
            [
                (r.model, r.params_m, r.peak_mb, r.avg_mb, r.load_ms, r.trans_ms, r.infer_ms)
                for r in self.rows
            ],
            title="Table 1 — preloading memory/latency under MNN (OnePlus 12)",
        )


def run(device: str = DEFAULT_DEVICE) -> Table1Result:
    rows = []
    for model in MODELS:
        result = framework_result("MNN", model, device)
        assert result is not None, f"MNN must support {model} for Table 1"
        graph = cached_graph(model)
        rows.append(
            Table1Row(
                model=model,
                params_m=graph.total_params / 1e6,
                peak_mb=result.peak_memory_mb,
                avg_mb=result.avg_memory_mb,
                load_ms=result.phases.load,
                trans_ms=result.phases.transform,
                infer_ms=result.phases.execute,
            )
        )
    return Table1Result(rows=rows)
