"""Figure 7 — breakdown: incremental contribution of each optimization.

For ViT, SD-UNet, and GPTN-1.3B, measure latency speedup and memory
reduction over the SmartMem baseline as the optimisations stack up:

1. ``+OPG``       — overlap plan on the unfused graph, dedicated data-
                    loading kernels (no rewriting).
2. ``+Fusion``    — adaptive fusion added.
3. ``+Rewriting`` — branch-free pipelined kernels (full FlashMem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.experiments.common import (
    DEFAULT_DEVICE,
    cached_capacity,
    cached_graph,
    experiment_opg_config,
    framework_result,
)
from repro.experiments.report import render_table
from repro.gpusim.device import get_device

MODELS = ["ViT", "SD-UNet", "GPTN-1.3B"]
VARIANTS = ["+OPG", "+Fusion", "+Rewriting"]

#: Paper's cumulative ranges for EXPERIMENTS.md: OPG 5.3-8.1x speedup and
#: 2.1-3.8x memory; fusion adds 1.5-5.1x; rewriting adds 1.0-2.55x.
PAPER_NOTE = "OPG 5.3-8.1x, +Fusion 1.5-5.1x, +Rewriting 1.0-2.55x (latency)"


def _variant_config(variant: str) -> FlashMemConfig:
    cfg = FlashMemConfig(opg=experiment_opg_config())
    if variant == "+OPG":
        cfg.use_adaptive_fusion = False
        cfg.use_kernel_rewriting = False
    elif variant == "+Fusion":
        cfg.use_adaptive_fusion = True
        cfg.use_kernel_rewriting = False
    elif variant == "+Rewriting":
        cfg.use_adaptive_fusion = True
        cfg.use_kernel_rewriting = True
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return cfg


@dataclass
class Fig7Row:
    model: str
    variant: str
    latency_ms: float
    speedup_vs_smem: float
    avg_memory_mb: float
    mem_reduction_vs_smem: float


@dataclass
class Fig7Result:
    rows: List[Fig7Row]

    def render(self) -> str:
        return render_table(
            ["Model", "Variant", "Latency (ms)", "Speedup", "Avg mem (MB)", "Mem reduction"],
            [
                (r.model, r.variant, r.latency_ms, r.speedup_vs_smem, r.avg_memory_mb, r.mem_reduction_vs_smem)
                for r in self.rows
            ],
            title=f"Figure 7 — optimization breakdown vs SmartMem (paper: {PAPER_NOTE})",
        )


def run(device: str = DEFAULT_DEVICE, *, models: List[str] = None) -> Fig7Result:
    dev = get_device(device)
    capacity = cached_capacity(device)
    rows: List[Fig7Row] = []
    for model in models or MODELS:
        smem = framework_result("SMem", model, device)
        assert smem is not None, f"SmartMem must support {model} for Figure 7"
        graph = cached_graph(model)
        for variant in VARIANTS:
            fm = FlashMem(_variant_config(variant))
            result = fm.compile_and_run(graph, dev, capacity=capacity)
            rows.append(
                Fig7Row(
                    model=model,
                    variant=variant,
                    latency_ms=result.latency_ms,
                    speedup_vs_smem=smem.latency_ms / result.latency_ms,
                    avg_memory_mb=result.avg_memory_mb,
                    mem_reduction_vs_smem=smem.avg_memory_mb / result.avg_memory_mb,
                )
            )
    return Fig7Result(rows=rows)
