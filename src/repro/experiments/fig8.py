"""Figure 8 — memory/latency trade-off vs preload ratio.

Sweeps the preload ratio (the λ / M_peak knob exposed as
``target_preload_ratio``) and reports integrated latency, execution latency,
and average memory per model.  The paper's observation: overlapping ~49.3%
of weights costs negligible latency versus full preloading while saving
substantial memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.flashmem import FlashMem
from repro.experiments.common import (
    DEFAULT_DEVICE,
    cached_capacity,
    cached_graph,
    experiment_flashmem_config,
)
from repro.experiments.report import render_table
from repro.gpusim.device import get_device

MODELS = ["ViT", "GPTN-S", "GPTN-1.3B"]
RATIOS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class Fig8Point:
    model: str
    target_ratio: float
    achieved_ratio: float
    integrated_ms: float
    exec_ms: float
    avg_memory_mb: float


@dataclass
class Fig8Result:
    points: List[Fig8Point]

    def series(self, model: str) -> List[Fig8Point]:
        return [p for p in self.points if p.model == model]

    def render(self) -> str:
        return render_table(
            ["Model", "Target preload", "Achieved", "Integrated (ms)", "Exec (ms)", "Avg mem (MB)"],
            [
                (p.model, p.target_ratio, p.achieved_ratio, p.integrated_ms, p.exec_ms, p.avg_memory_mb)
                for p in self.points
            ],
            title="Figure 8 — memory/latency trade-off vs preload ratio",
        )


def run(device: str = DEFAULT_DEVICE, *, models: Optional[List[str]] = None) -> Fig8Result:
    dev = get_device(device)
    capacity = cached_capacity(device)
    fm = FlashMem(experiment_flashmem_config())
    points: List[Fig8Point] = []
    for model in models or MODELS:
        graph = cached_graph(model)
        for ratio in RATIOS:
            compiled = fm.compile(graph, dev, capacity=capacity, target_preload_ratio=ratio)
            result = fm.run(compiled)
            points.append(
                Fig8Point(
                    model=model,
                    target_ratio=ratio,
                    achieved_ratio=compiled.preload_ratio,
                    integrated_ms=result.latency_ms,
                    exec_ms=result.latency_ms - result.details["preload_end_ms"],
                    avg_memory_mb=result.avg_memory_mb,
                )
            )
    return Fig8Result(points=points)
