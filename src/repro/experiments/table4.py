"""Table 4 — LC-OPG solver runtime breakdown and status.

Runs the planner on the paper's scaling set (GPTN-S/1.3B/2.7B, ViT-8B,
Llama2-13B, Llama2-70B) under a wall-clock limit and reports the
process-nodes / build-model / solve phases plus the final status.

The paper uses a 128-thread workstation and a 150 s limit; this driver
defaults to a proportionally smaller budget so benches stay fast — pass
``time_limit_s=150`` to reproduce the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import DEFAULT_DEVICE, cached_capacity
from repro.experiments.report import render_table
from repro.graph.models import load_model
from repro.opg.lcopg import LcOpgSolver
from repro.opg.problem import OpgConfig

MODELS = ["GPTN-S", "GPTN-1.3B", "GPTN-2.7B", "ViT-8B", "Llama2-13B", "Llama2-70B"]

#: Paper rows: model -> (process s, build s, solve s, status)
PAPER_TABLE4: Dict[str, Tuple[float, float, float, str]] = {
    "GPTN-S": (0.010, 0.260, 45.00, "OPTIMAL"),
    "GPTN-1.3B": (0.020, 1.170, 121.00, "FEASIBLE"),
    "GPTN-2.7B": (0.050, 1.980, 121.00, "FEASIBLE"),
    "ViT-8B": (0.001, 4.110, 121.40, "FEASIBLE"),
    "Llama2-13B": (0.007, 3.566, 124.80, "FEASIBLE"),
    "Llama2-70B": (0.023, 14.456, 136.38, "FEASIBLE"),
}


@dataclass
class Table4Row:
    model: str
    layers: int
    process_s: float
    build_s: float
    solve_s: float
    status: str
    # Solver observability (not part of the paper's Table 4 row format;
    # rendered as a supplementary block below the table).
    nodes: int = 0
    nodes_per_sec: float = 0.0
    propagations: int = 0
    queue_peak: int = 0
    cp_windows: int = 0
    heuristic_windows: int = 0
    # Compile-phase split + window-reuse counters (incremental pipeline).
    cp_solve_s: float = 0.0
    exact_prover_s: float = 0.0
    greedy_s: float = 0.0
    windows_reused: int = 0
    edf_calls: int = 0


@dataclass
class Table4Result:
    rows: List[Table4Row]
    time_limit_s: float

    def render(self) -> str:
        # The paper's table keeps its exact row format; solver observability
        # (nodes/sec, propagations, queue depth) rides below as its own block.
        main = render_table(
            ["Model", "Layers", "Process (s)", "Build (s)", "Solve (s)", "Status"],
            [(r.model, r.layers, r.process_s, r.build_s, r.solve_s, r.status) for r in self.rows],
            title=f"Table 4 — LC-OPG runtime (limit {self.time_limit_s:.0f} s per model)",
        )
        solver = render_table(
            ["Model", "Nodes", "Nodes/s", "Propagations", "Queue peak", "CP win", "Greedy win"],
            [
                (
                    r.model,
                    r.nodes,
                    round(r.nodes_per_sec),
                    r.propagations,
                    r.queue_peak,
                    r.cp_windows,
                    r.heuristic_windows,
                )
                for r in self.rows
            ],
            title="Solver observability (trail-based CP core)",
        )
        phases = render_table(
            ["Model", "CP (s)", "Prover (s)", "Greedy (s)", "EDF calls", "Reused win"],
            [
                (
                    r.model,
                    round(r.cp_solve_s, 3),
                    round(r.exact_prover_s, 3),
                    round(r.greedy_s, 3),
                    r.edf_calls,
                    r.windows_reused,
                )
                for r in self.rows
            ],
            title="Compile-phase breakdown (incremental pipeline)",
        )
        return main + "\n\n" + solver + "\n\n" + phases


def run(
    device: str = DEFAULT_DEVICE,
    *,
    time_limit_s: float = 10.0,
    models: List[str] = None,
    solver: str = "trail",
) -> Table4Result:
    """``solver`` selects the CP engine: "trail" (production, bitset),
    "queue" (the PR-5 dirty-queue engine), or "naive" (the seed
    architecture, kept for A/B benchmarking)."""
    from repro.opg.cpsat.naive import NaiveCpSolver
    from repro.opg.cpsat.search import CpSolver

    factory = {
        "trail": CpSolver,
        "queue": lambda **kw: CpSolver(engine="queue", **kw),
        "naive": NaiveCpSolver,
    }[solver]
    capacity = cached_capacity(device)
    rows = []
    for model in models or MODELS:
        graph = load_model(model)
        config = OpgConfig(time_limit_s=time_limit_s, max_nodes_per_window=2000)
        plan = LcOpgSolver(config, solver_factory=factory).solve(graph, capacity, device_name=device)
        rows.append(
            Table4Row(
                model=model,
                layers=graph.num_layers,
                process_s=plan.stats.process_nodes_s,
                build_s=plan.stats.build_model_s,
                solve_s=plan.stats.solve_s,
                status=plan.stats.solver_status,
                nodes=plan.stats.nodes_explored,
                nodes_per_sec=plan.stats.nodes_per_sec,
                propagations=plan.stats.propagations,
                queue_peak=plan.stats.queue_peak,
                cp_windows=plan.stats.cp_windows,
                heuristic_windows=plan.stats.heuristic_windows,
                cp_solve_s=plan.stats.cp_solve_s,
                exact_prover_s=plan.stats.exact_prover_s,
                greedy_s=plan.stats.greedy_s,
                windows_reused=plan.stats.windows_reused,
                edf_calls=plan.stats.edf_calls,
            )
        )
    return Table4Result(rows=rows, time_limit_s=time_limit_s)
