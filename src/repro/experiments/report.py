"""Plain-text table/series rendering for the experiment drivers.

Every driver returns structured data plus a ``render()`` helper so the
benches can print the same rows the paper's tables/figures report.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], *, title: str = "") -> str:
    """Align columns and render a monospaced table."""
    str_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence[tuple], *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as aligned columns (figure data)."""
    headers = [x_label, y_label]
    return render_table(headers, points, title=name)


def ratio(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """a / b, tolerating missing values and zero denominators."""
    if a is None or b is None or b == 0:
        return None
    return a / b
