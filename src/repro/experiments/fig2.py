"""Figure 2 — kernel latency increase vs. extra data streamed alongside.

For representative operators (MatMul, Add, Activation, Softmax, LayerNorm)
the driver sweeps the extra-load ratio and reports the latency increase,
plus the ratio at which each operator crosses the 20% and 30% slowdown
markers the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.capacity.profiler import LoadCapacityProfiler
from repro.experiments.common import DEFAULT_DEVICE
from repro.experiments.report import render_table
from repro.gpusim.device import get_device
from repro.graph.ops import (
    OpKind,
    OpSpec,
    elementwise_spec,
    matmul_spec,
    normalization_spec,
    softmax_spec,
)

LOAD_RATIOS: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


def representative_ops(seq: int = 128, dim: int = 2048) -> Dict[str, OpSpec]:
    """The operator set Figure 2 profiles, at transformer-block shapes."""
    return {
        "Matmul": matmul_spec("mm", seq, dim, dim),
        "Add": elementwise_spec("add", OpKind.ADD, (seq, dim), n_inputs=2),
        "Activation": elementwise_spec("act", OpKind.ACTIVATION, (seq, dim)),
        "Softmax": softmax_spec("softmax", (16, seq, seq)),
        "LayerNorm": normalization_spec("ln", OpKind.LAYERNORM, (seq, dim)),
    }


@dataclass
class Fig2Curve:
    op: str
    #: (load ratio, latency increase ms)
    points: List[Tuple[float, float]]
    threshold_20: Optional[float]
    threshold_30: Optional[float]


@dataclass
class Fig2Result:
    curves: List[Fig2Curve]

    def render(self) -> str:
        rows = []
        for c in self.curves:
            for ratio, delta in c.points:
                rows.append((c.op, ratio, delta))
        table = render_table(
            ["Operator", "Load ratio", "Latency increase (ms)"],
            rows,
            title="Figure 2 — overlap sensitivity per operator",
        )
        marks = render_table(
            ["Operator", "20% threshold (ratio)", "30% threshold (ratio)"],
            [(c.op, c.threshold_20, c.threshold_30) for c in self.curves],
            title="Threshold crossings",
        )
        return table + "\n\n" + marks


def run(device: str = DEFAULT_DEVICE) -> Fig2Result:
    profiler = LoadCapacityProfiler(get_device(device), noise=0.0)
    curves = []
    for name, op in representative_ops().items():
        curves.append(
            Fig2Curve(
                op=name,
                points=profiler.sensitivity_curve(op, LOAD_RATIOS),
                threshold_20=profiler.threshold_crossing(op, 0.20),
                threshold_30=profiler.threshold_crossing(op, 0.30),
            )
        )
    return Fig2Result(curves=curves)
