"""Fleet experiment — device-population trace replay (ROADMAP item 3).

Replays a seeded five-minute multi-app trace (vision + speech prefill,
GPT-Neo decode turns, thermal throttle windows) over the device × runtime
grid and reports per-cell SLO attainment, p50/p99 latency, memory, and
energy, plus the engine's headline throughput in simulated device-hours
per wall-clock second.

The replay is memoized: each distinct (model, device, runtime, scenario,
throttle-state) episode simulates once and every further invocation splices
the cached columnar timeline — identical results to naive per-invocation
simulation (see ``benchmarks/test_fleet_throughput.py`` for the A/B and the
byte-identity matrix).
"""

from __future__ import annotations

SEED = 42
DURATION_S = 300.0
RATE_PER_MIN = 40.0
DEVICES = ("OnePlus 12", "Pixel 8")
RUNTIMES = ("FlashMem", "MNN")


def run(jobs: int = 1):
    # Imported lazily: repro.fleet reads the shared caches in
    # repro.experiments.common, so a module-level import here would be
    # circular through the experiments package.
    from repro.fleet.population import run_fleet
    from repro.fleet.trace import generate_trace

    trace = generate_trace(
        seed=SEED,
        duration_s=DURATION_S,
        rate_per_min=RATE_PER_MIN,
        name=f"fleet-seed{SEED}",
    )
    return run_fleet(trace, DEVICES, RUNTIMES, jobs=jobs)
