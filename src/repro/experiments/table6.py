"""Table 6 — model characterization: paper-reported vs built graphs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import cached_graph
from repro.experiments.report import render_table
from repro.graph.models import EVALUATED_MODELS, MODEL_CARDS


@dataclass
class Table6Row:
    model: str
    task: str
    paper_params_m: float
    built_params_m: float
    paper_macs_g: float
    built_macs_g: float
    paper_layers: int
    built_layers: int


@dataclass
class Table6Result:
    rows: List[Table6Row]

    def render(self) -> str:
        return render_table(
            [
                "Model", "Task",
                "Params(M) paper", "built",
                "MACs(G) paper", "built",
                "Layers paper", "built",
            ],
            [
                (
                    r.model, r.task,
                    r.paper_params_m, r.built_params_m,
                    r.paper_macs_g, r.built_macs_g,
                    r.paper_layers, r.built_layers,
                )
                for r in self.rows
            ],
            title="Table 6 — model characterization (paper vs built)",
        )


def run() -> Table6Result:
    rows = []
    for abbr in EVALUATED_MODELS:
        card = MODEL_CARDS[abbr]
        graph = cached_graph(abbr)
        rows.append(
            Table6Row(
                model=abbr,
                task=card.task,
                paper_params_m=card.paper_params_m,
                built_params_m=graph.total_params / 1e6,
                paper_macs_g=card.paper_macs_g,
                built_macs_g=graph.total_macs / 1e9,
                paper_layers=card.paper_layers,
                built_layers=graph.num_layers,
            )
        )
    return Table6Result(rows=rows)
