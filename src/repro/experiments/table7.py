"""Table 7 — end-to-end latency: every model x every framework.

Reports init/exec for the six preloading baselines, the integrated latency
for FlashMem, the per-model speedups over SmartMem and over the best
commercial framework, and the per-framework geo-mean speedups the paper
headlines (6.1x / 2.9x / 6.2x / 1.7x / 75x / 8.6x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import DEFAULT_DEVICE, flashmem_result, framework_result
from repro.experiments.report import render_table
from repro.graph.models import EVALUATED_MODELS
from repro.gpusim.timeline import geo_mean
from repro.runtime.frameworks import BASELINE_ORDER

#: Paper geo-mean speedups over FlashMem, for EXPERIMENTS.md comparison.
PAPER_GEOMEAN_SPEEDUP = {
    "MNN": 6.1, "NCNN": 2.9, "TVM": 6.2, "LiteRT": 1.7, "ETorch": 75.0, "SMem": 8.6,
}

#: Paper FlashMem integrated latencies (ms).
PAPER_FLASHMEM_MS = {
    "GPTN-S": 577, "GPTN-1.3B": 3086, "GPTN-2.7B": 7567, "ResNet50": 473,
    "SAM-2": 1267, "ViT": 347, "DeepViT": 785, "SD-UNet": 3212,
    "Whisp-M": 1565, "DepA-S": 496, "DepA-L": 1382,
}


@dataclass
class Table7Row:
    model: str
    #: framework -> (init ms, exec ms) or None when unsupported.
    baselines: Dict[str, Optional[tuple]]
    flashmem_ms: float
    speedup_smem: Optional[float]
    speedup_best_commercial: Optional[float]


@dataclass
class Table7Result:
    rows: List[Table7Row]
    geomean_speedup: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Model"]
        for fw in BASELINE_ORDER:
            headers += [f"{fw} init", f"{fw} exec"]
        headers += ["Ours (integrated)", "Speedup/SMem", "Speedup/commercial"]
        rows = []
        for r in self.rows:
            cells: List = [r.model]
            for fw in BASELINE_ORDER:
                pair = r.baselines.get(fw)
                cells += list(pair) if pair else [None, None]
            cells += [r.flashmem_ms, r.speedup_smem, r.speedup_best_commercial]
            rows.append(cells)
        main = render_table(headers, rows, title="Table 7 — end-to-end latency (ms)")
        geo = render_table(
            ["Framework", "Geo-mean speedup vs FlashMem", "Paper"],
            [
                (fw, self.geomean_speedup.get(fw), PAPER_GEOMEAN_SPEEDUP.get(fw))
                for fw in BASELINE_ORDER
            ],
        )
        return main + "\n\n" + geo


def run(device: str = DEFAULT_DEVICE, *, models: Optional[List[str]] = None) -> Table7Result:
    models = models or EVALUATED_MODELS
    rows: List[Table7Row] = []
    speedups: Dict[str, List[float]] = {fw: [] for fw in BASELINE_ORDER}
    for model in models:
        ours = flashmem_result(model, device)
        baselines: Dict[str, Optional[tuple]] = {}
        commercial: List[float] = []
        smem_total: Optional[float] = None
        for fw in BASELINE_ORDER:
            result = framework_result(fw, model, device)
            if result is None:
                baselines[fw] = None
                continue
            init = result.details["init_ms"]
            execute = result.details["exec_per_iter_ms"]
            baselines[fw] = (init, execute)
            total = result.latency_ms
            speedups[fw].append(total / ours.latency_ms)
            if fw == "SMem":
                smem_total = total
            else:
                commercial.append(total)
        rows.append(
            Table7Row(
                model=model,
                baselines=baselines,
                flashmem_ms=ours.latency_ms,
                speedup_smem=(smem_total / ours.latency_ms) if smem_total else None,
                speedup_best_commercial=(min(commercial) / ours.latency_ms) if commercial else None,
            )
        )
    return Table7Result(
        rows=rows,
        geomean_speedup={fw: geo_mean(vals) for fw, vals in speedups.items() if vals},
    )
