"""Decode figure — autoregressive LLM generation across context lengths.

Generates 64 tokens after prompts of 512-8192 tokens on three GPT-Neo
decode graphs, comparing FlashMem's planned KV residency (tiles beyond the
budget stream through the hierarchy; the resident window lives in texture
memory) against the preloading baseline (MNN profile) whose KV cache grows
without bound.  Two stories per cell:

- **tokens/sec** — FlashMem prices attention tiles at texture-read
  bandwidth and full exec efficiency; the baseline pays UM-read attention
  (the 0.55 KV bandwidth factor) at its profiled efficiency, so it falls
  behind even before memory pressure hits.
- **peak MB** — FlashMem's footprint is flat in context length (weights +
  capped KV window); the baseline's grows linearly with ``context + tokens``
  until it crosses the device budget and OOMs (the paper's empty bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import flashmem_decode_result, framework_decode_result
from repro.experiments.report import render_table

MODELS = ["GPTN-S", "GPTN-1.3B", "GPTN-2.7B"]
DEVICES = ["OnePlus 12", "Pixel 8"]
CONTEXTS = [512, 1024, 2048, 4096, 8192]
#: Tokens generated per cell; steady-state throughput is context-dependent
#: but token-count-independent (per-token cost is piecewise-constant), so a
#: short burst measures the same tokens/sec as a long one.
TOKENS = 64
BASELINE = "MNN"


@dataclass
class DecodeCell:
    model: str
    device: str
    context_len: int
    baseline_tok_s: Optional[float]
    baseline_peak_mb: Optional[float]
    baseline_oom: bool
    flashmem_tok_s: float
    flashmem_peak_mb: float
    flashmem_oom: bool
    kv_resident_mb: float
    kv_spilled_mb: float


@dataclass
class DecodeResult:
    tokens: int
    cells: List[DecodeCell]

    def render(self) -> str:
        def fmt(value, oom):
            if value is None:
                return "-"
            return "OOM" if oom else value

        return render_table(
            ["Model", "Device", "Context",
             "MNN (tok/s)", "MNN peak (MB)",
             "Ours (tok/s)", "Ours peak (MB)", "KV res/spill (MB)"],
            [
                (
                    c.model, c.device, c.context_len,
                    fmt(c.baseline_tok_s, c.baseline_oom),
                    fmt(c.baseline_peak_mb, c.baseline_oom),
                    fmt(c.flashmem_tok_s, c.flashmem_oom),
                    fmt(c.flashmem_peak_mb, c.flashmem_oom),
                    f"{c.kv_resident_mb:.0f}/{c.kv_spilled_mb:.0f}",
                )
                for c in self.cells
            ],
            title=(f"Decode — {self.tokens} generated tokens, KV residency vs "
                   "unbounded preloading (OOM = exceeded the device budget)"),
        )


def _tokens_per_second(result, tokens: int) -> float:
    decode_ms = result.details.get("decode_ms", result.latency_ms)
    return tokens / (decode_ms / 1e3) if decode_ms else 0.0


def run(
    *,
    models: Optional[List[str]] = None,
    devices: Optional[List[str]] = None,
    contexts: Optional[List[int]] = None,
    tokens: int = TOKENS,
) -> DecodeResult:
    cells: List[DecodeCell] = []
    for model in models or MODELS:
        for device in devices or DEVICES:
            for context_len in contexts or CONTEXTS:
                base = framework_decode_result(BASELINE, model, device, context_len, tokens)
                ours = flashmem_decode_result(model, device, context_len, tokens)
                cells.append(
                    DecodeCell(
                        model=model,
                        device=device,
                        context_len=context_len,
                        baseline_tok_s=_tokens_per_second(base, tokens) if base else None,
                        baseline_peak_mb=base.peak_memory_mb if base else None,
                        baseline_oom=bool(base and base.details.get("oom")),
                        flashmem_tok_s=_tokens_per_second(ours, tokens),
                        flashmem_peak_mb=ours.peak_memory_mb,
                        flashmem_oom=bool(ours.details.get("oom")),
                        kv_resident_mb=ours.details.get("kv_resident_bytes", 0) / 1e6,
                        kv_spilled_mb=ours.details.get("kv_spilled_bytes", 0) / 1e6,
                    )
                )
    return DecodeResult(tokens=tokens, cells=cells)
