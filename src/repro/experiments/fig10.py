"""Figure 10 — portability across devices: SmartMem vs FlashMem.

Runs three models on the OnePlus 11, Pixel 8, and Xiaomi Mi 6, reporting
latency and memory for SmartMem and FlashMem.  On the 6-8 GB devices the
GPTN-1.3B initialisation exceeds the memory budget under SmartMem (the
paper's empty bars), while FlashMem's streamed execution fits everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import flashmem_result, framework_result
from repro.experiments.report import render_table

DEVICES = ["OnePlus 11", "Pixel 8", "Xiaomi Mi 6"]
MODELS = ["ViT", "Whisp-M", "GPTN-1.3B"]


@dataclass
class Fig10Row:
    device: str
    model: str
    smem_ms: Optional[float]
    smem_mb: Optional[float]
    smem_oom: bool
    flashmem_ms: float
    flashmem_mb: float
    flashmem_oom: bool


@dataclass
class Fig10Result:
    rows: List[Fig10Row]

    def render(self) -> str:
        def fmt(value, oom):
            if value is None:
                return "-"
            return "OOM" if oom else value

        return render_table(
            ["Device", "Model", "SMem (ms)", "SMem (MB)", "Ours (ms)", "Ours (MB)"],
            [
                (
                    r.device, r.model,
                    fmt(r.smem_ms, r.smem_oom), fmt(r.smem_mb, r.smem_oom),
                    fmt(r.flashmem_ms, r.flashmem_oom), fmt(r.flashmem_mb, r.flashmem_oom),
                )
                for r in self.rows
            ],
            title="Figure 10 — portability (OOM = ran out of memory during initialization)",
        )


def run(*, devices: Optional[List[str]] = None, models: Optional[List[str]] = None) -> Fig10Result:
    rows: List[Fig10Row] = []
    for device in devices or DEVICES:
        for model in models or MODELS:
            smem = framework_result("SMem", model, device)
            ours = flashmem_result(model, device)
            rows.append(
                Fig10Row(
                    device=device,
                    model=model,
                    smem_ms=smem.latency_ms if smem else None,
                    smem_mb=smem.avg_memory_mb if smem else None,
                    smem_oom=bool(smem and smem.details.get("oom")),
                    flashmem_ms=ours.latency_ms,
                    flashmem_mb=ours.avg_memory_mb,
                    flashmem_oom=bool(ours.details.get("oom")),
                )
            )
    return Fig10Result(rows=rows)
