"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      — models, devices, and scenarios available.
- ``run MODEL [DEVICE]``        — compile + run one model under FlashMem,
                                  with optional baseline comparison.
                                  ``--scenario decode --tokens N --context L``
                                  simulates autoregressive generation with
                                  KV-cache streaming (default scenario:
                                  single-pass prefill).
- ``plan MODEL [--out F]``      — solve the overlap plan and print/export it.
- ``compile MODEL [DEVICE]``    — run the offline compile pipeline for one
                                  request; ``--via-service SOCKET`` sends it
                                  to a running ``repro serve`` daemon
                                  instead of compiling in-process.
- ``serve``                     — run the plan-compilation service: an async
                                  daemon that coalesces duplicate requests,
                                  batches artifact-store lookups, and fans
                                  compilation out over a pre-warmed process
                                  pool (the cloud-side component a fleet of
                                  phones would query).
- ``make-trace OUT``            — generate a seeded fleet traffic trace
                                  (arrivals, model mix, priorities, throttle
                                  windows) and write it as JSON.
- ``serve-trace TRACE``         — replay a fleet trace over the device ×
                                  runtime grid with memoized episode
                                  execution; ``--jobs N`` shards cells over
                                  a pre-warmed process pool and the report
                                  leads with simulated device-hours per
                                  wall-clock second.
- ``experiment NAME``           — regenerate one paper table/figure, or
                                  ``all`` for the full suite; supports
                                  ``--jobs N`` (parallel sweep) and a
                                  persistent artifact cache
                                  (``--cache-dir`` / ``--no-cache``).
- ``profile compile MODEL DEVICE`` — run one compile under cProfile and
                                  print the top cumulative-time hotspots
                                  (offline-compile performance triage).
- ``profile run MODEL DEVICE``  — compile once, then cProfile the simulated
                                  execution (``FlashMem.run``) and print the
                                  hotspots plus the run's pricing/replay
                                  counters (simulation hot-path triage).
- ``profile capacity MODEL DEVICE`` — time the capacity pipeline's phases
                                  (profiling, GBT fit, lockstep bisection),
                                  print the Figure 4 accuracy report and the
                                  per-op-class capacity distributions.

Device arguments accept normalized aliases ("oneplus12", "pixel8", any
case/spacing) in addition to the exact marketing names.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import FlashMemConfig
from repro.core.flashmem import FlashMem
from repro.gpusim.device import DEVICE_PRESETS, get_device
from repro.graph.models import (
    ALL_CARDS,
    DECODE_MODELS,
    EVALUATED_MODELS,
    load_decode_model,
    load_model,
)
from repro.opg.problem import OpgConfig
from repro.runtime.scenario import SCENARIO_KINDS, available_scenarios, make_scenario

EXPERIMENTS = [
    "table1", "fig2", "table4", "table5", "table6", "fig4",
    "table7", "table8", "fig6", "fig7", "fig8", "fig9", "table9", "fig10",
    "background_texture", "appendix_fp32", "ablations", "preemption", "decode",
    "fleet",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlashMem reproduction: mobile GPU memory streaming for DNN inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models, devices, and experiments")

    run_p = sub.add_parser("run", help="compile + run a model under FlashMem")
    run_p.add_argument("model", choices=sorted(set(ALL_CARDS) | set(DECODE_MODELS)))
    run_p.add_argument("device_pos", nargs="?", default=None, metavar="DEVICE",
                       help="device preset name or alias (overrides --device)")
    run_p.add_argument("--device", default="OnePlus 12",
                       help="device preset name or alias (e.g. 'oneplus12')")
    run_p.add_argument("--scenario", default="prefill", choices=list(SCENARIO_KINDS),
                       help="workload: prefill passes or autoregressive decode")
    run_p.add_argument("--iterations", type=int, default=None,
                       help="prefill passes to simulate (prefill scenario only)")
    run_p.add_argument("--tokens", type=int, default=None,
                       help="tokens to generate (decode scenario only)")
    run_p.add_argument("--context", type=int, default=None,
                       help="prompt length in tokens (decode scenario only)")
    run_p.add_argument("--preload-ratio", type=float, default=None,
                       help="force a preload fraction (Figure 8 knob)")
    run_p.add_argument("--baseline", default=None,
                       choices=["MNN", "NCNN", "TVM", "LiteRT", "ETorch", "SMem"],
                       help="also run a preloading baseline for comparison")
    run_p.add_argument("--time-limit", type=float, default=5.0,
                       help="LC-OPG solver budget in seconds")
    run_p.add_argument("--portfolio", type=int, default=0,
                       help="portfolio width K for per-window CP solves "
                            "(K-1 alternate heuristics race for certificates)")
    run_p.add_argument("--solver-stats", action="store_true",
                       help="print the per-window CP solver statistics table")
    run_p.add_argument("--capacity-backend", default="analytic",
                       choices=["analytic", "gbt"],
                       help="load-capacity model: exact cost-model inverse "
                            "or the paper's profiled GBT regressor")

    compile_p = sub.add_parser(
        "compile", help="run the offline compile pipeline for one request"
    )
    compile_p.add_argument("model", choices=sorted(set(ALL_CARDS) | set(DECODE_MODELS)))
    compile_p.add_argument("device_pos", nargs="?", default=None, metavar="DEVICE",
                           help="device preset name or alias (overrides --device)")
    compile_p.add_argument("--device", default="OnePlus 12",
                           help="device preset name or alias (e.g. 'oneplus12')")
    compile_p.add_argument("--context", type=int, default=0,
                           help="prompt length: >0 compiles the decode-phase graph")
    compile_p.add_argument("--time-limit", type=float, default=None,
                           help="LC-OPG solver budget in seconds (default 3.0)")
    compile_p.add_argument("--preload-ratio", type=float, default=None,
                           help="force a preload fraction (Figure 8 knob)")
    compile_p.add_argument("--via-service", default=None, metavar="SOCKET",
                           help="send the request to a running 'repro serve' "
                                "daemon on this unix socket instead of "
                                "compiling in-process")
    compile_p.add_argument("--capacity-backend", default="analytic",
                           choices=["analytic", "gbt"],
                           help="load-capacity model: exact cost-model inverse "
                                "or the paper's profiled GBT regressor")
    compile_p.add_argument("--out", default=None, help="write the plan JSON here")

    serve_p = sub.add_parser(
        "serve", help="run the plan-compilation service daemon"
    )
    serve_p.add_argument("--socket", default=None,
                         help="unix socket to listen on "
                              "(default: .repro-service.sock)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="compile pool size (0 = in-process inline mode)")
    serve_p.add_argument("--max-batch", type=int, default=64,
                         help="max requests drained per dedup/lookup batch")
    serve_p.add_argument("--cache-dir", default=None,
                         help="shared artifact store directory "
                              "(default: $REPRO_CACHE_DIR or .artifact-cache)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="serve without a persistent store "
                              "(every unique request compiles)")

    make_trace_p = sub.add_parser(
        "make-trace", help="generate a seeded fleet traffic trace (JSON)"
    )
    make_trace_p.add_argument("out", help="path to write the trace JSON to")
    make_trace_p.add_argument("--seed", type=int, default=0)
    make_trace_p.add_argument("--duration-s", type=float, default=600.0,
                              help="trace length in seconds (default 600)")
    make_trace_p.add_argument("--rate-per-min", type=float, default=30.0,
                              help="mean arrivals per minute (default 30)")
    make_trace_p.add_argument("--invocations", type=int, default=None,
                              help="pin the exact invocation count "
                                   "(overrides the duration-derived count)")

    serve_trace_p = sub.add_parser(
        "serve-trace",
        help="replay a fleet trace over the device x runtime grid",
    )
    serve_trace_p.add_argument("trace", help="trace JSON (see 'repro make-trace')")
    serve_trace_p.add_argument("--jobs", type=int, default=1,
                               help="worker processes for the cell grid "
                                    "(default 1 = inline)")
    serve_trace_p.add_argument("--devices", nargs="+", default=None,
                               help="device presets to replay on "
                                    "(default: OnePlus 12, Pixel 8)")
    serve_trace_p.add_argument("--runtimes", nargs="+", default=None,
                               help="runtimes to replay under "
                                    "(default: FlashMem, MNN)")
    serve_trace_p.add_argument("--slo-multiplier", type=float, default=None,
                               help="SLO budget as a multiple of the nominal "
                                    "episode latency (default 3.0)")
    serve_trace_p.add_argument("--naive", action="store_true",
                               help="disable episode memoization (simulate "
                                    "every invocation; the benchmark baseline)")
    serve_trace_p.add_argument("--cache-dir", default=None,
                               help="persistent artifact cache directory "
                                    "(default: $REPRO_CACHE_DIR or .artifact-cache)")
    serve_trace_p.add_argument("--no-cache", action="store_true",
                               help="replay without a persistent store")

    plan_p = sub.add_parser("plan", help="solve and inspect an overlap plan")
    plan_p.add_argument("model", choices=sorted(ALL_CARDS))
    plan_p.add_argument("--device", default="OnePlus 12",
                       help="device preset name or alias (e.g. 'oneplus12')")
    plan_p.add_argument("--time-limit", type=float, default=5.0)
    plan_p.add_argument("--portfolio", type=int, default=0,
                        help="portfolio width K for per-window CP solves")
    plan_p.add_argument("--out", default=None, help="write the plan JSON here")
    plan_p.add_argument("--solver-stats", action="store_true",
                       help="print the per-window CP solver statistics table")

    prof_p = sub.add_parser("profile", help="profile an offline pipeline stage")
    prof_sub = prof_p.add_subparsers(dest="profile_what", required=True)
    prof_compile = prof_sub.add_parser(
        "compile", help="cProfile one FlashMem.compile and print hotspots"
    )
    prof_compile.add_argument("model", choices=sorted(ALL_CARDS))
    prof_compile.add_argument("device", help="device preset name or alias")
    prof_compile.add_argument("--top", type=int, default=25,
                              help="number of hotspot rows to print (default 25)")
    prof_compile.add_argument("--time-limit", type=float, default=5.0,
                              help="LC-OPG solver budget in seconds")
    prof_compile.add_argument("--portfolio", type=int, default=0,
                              help="portfolio width K for per-window CP solves")
    prof_run = prof_sub.add_parser(
        "run", help="cProfile one FlashMem.run (simulation hot path) and print hotspots"
    )
    prof_run.add_argument("model", choices=sorted(set(ALL_CARDS) | set(DECODE_MODELS)))
    prof_run.add_argument("device", help="device preset name or alias")
    prof_run.add_argument("--scenario", default="prefill", choices=list(SCENARIO_KINDS),
                          help="workload: prefill passes or autoregressive decode")
    prof_run.add_argument("--iterations", type=int, default=None,
                          help="inference iterations to simulate "
                               "(prefill scenario only; default 10)")
    prof_run.add_argument("--tokens", type=int, default=None,
                          help="tokens to generate (decode scenario only; default 256)")
    prof_run.add_argument("--context", type=int, default=None,
                          help="prompt length in tokens (decode scenario only)")
    prof_run.add_argument("--top", type=int, default=25,
                          help="number of hotspot rows to print (default 25)")
    prof_run.add_argument("--time-limit", type=float, default=5.0,
                          help="LC-OPG solver budget for the (unprofiled) compile")
    prof_run.add_argument("--no-cost-tables", action="store_true",
                          help="price kernels with the scalar per-node model")
    prof_run.add_argument("--no-extrapolate", action="store_true",
                          help="simulate every iteration instead of replaying steady state")
    prof_capacity = prof_sub.add_parser(
        "capacity",
        help="time the capacity pipeline (profile/fit/bisect) and print "
             "per-class capacity distributions plus the Figure 4 report",
    )
    prof_capacity.add_argument("model", choices=sorted(ALL_CARDS))
    prof_capacity.add_argument("device", help="device preset name or alias")
    prof_capacity.add_argument("--seed", type=int, default=0,
                               help="profiling/regression seed (default 0)")
    prof_capacity.add_argument("--max-ops", type=int, default=24,
                               help="stratified per-model profiling op budget "
                                    "(default 24)")

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=EXPERIMENTS + ["all"],
                       help='driver name, or "all" for the full suite')
    exp_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (default 1 = serial)")
    exp_p.add_argument("--cache-dir", default=None,
                       help="persistent artifact cache directory "
                            "(default: $REPRO_CACHE_DIR or .artifact-cache)")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent cache (cold-run measurement)")
    exp_p.add_argument("--results-dir", default=None,
                       help='write rendered outputs here (default: results/ for "all")')
    return parser


def _cmd_list() -> int:
    print("Evaluated models (paper Table 6):")
    for abbr in EVALUATED_MODELS:
        card = ALL_CARDS[abbr]
        print(f"  {abbr:11s} {card.full_name:24s} {card.task}")
    print("\nSolver-scaling models (paper Table 4): "
          + ", ".join(sorted(set(ALL_CARDS) - set(EVALUATED_MODELS))))
    print("\nDevices:")
    for device in DEVICE_PRESETS.values():
        print(f"  {device.name:12s} {device.gpu:15s} {device.ram_bytes / 2**30:.0f} GB RAM")
    print("\nScenarios:")
    for kind, description in available_scenarios().items():
        print(f"  {kind:11s} {description}")
    print("\nDecode-phase models (--scenario decode): " + ", ".join(DECODE_MODELS))
    print("\nExperiments: " + ", ".join(EXPERIMENTS))
    return 0


def _print_solver_stats(plan) -> None:
    """Per-window CP solver observability table (``--solver-stats``)."""
    stats = plan.stats
    print(f"Solver stats: {stats.nodes_explored} nodes over {stats.cp_windows} CP windows "
          f"({stats.nodes_per_sec:.0f} nodes/s); "
          f"{stats.windows_reused} of {stats.windows} windows replayed from cache")
    print(f"  tightenings {stats.propagations}; constraint evals: "
          f"linear {stats.prop_linear}, implication {stats.prop_implication}; "
          f"queue peak {stats.queue_peak}")
    print(f"  time: propagate {stats.time_propagate_s:.3f}s, "
          f"branch {stats.time_branch_s:.3f}s, bound {stats.time_bound_s:.3f}s")
    print(f"  compile phases: cp {stats.cp_solve_s:.3f}s, "
          f"prover {stats.exact_prover_s:.3f}s, greedy {stats.greedy_s:.3f}s, "
          f"build {stats.build_model_s:.3f}s ({stats.edf_calls} EDF oracle calls)")
    if not stats.window_stats:
        return
    header = f"  {'win':>4s} {'status':9s} {'nodes':>8s} {'nodes/s':>9s} {'props':>9s} {'qpeak':>6s} {'wall s':>8s}"
    print(header)
    for w in stats.window_stats:
        print(f"  {w['window']:>4d} {w['status']:9s} {w['nodes']:>8d} "
              f"{w['nodes_per_sec']:>9.0f} {w['propagations']:>9d} "
              f"{w['queue_peak']:>6d} {w['wall_time_s']:>8.3f}")


def _print_fusion_iterations(report) -> None:
    """Per-adaptive-fusion-iteration compile breakdown (window reuse + phases)."""
    print(f"Adaptive fusion: {report.total_windows_reused} of {report.total_windows} "
          f"windows reused across {len(report.solver_iterations)} solves "
          f"({report.window_reuse_rate * 100:.0f}%)")
    print(f"  {'iter':>4s} {'status':9s} {'windows':>7s} {'reused':>6s} "
          f"{'cp s':>7s} {'prover s':>8s} {'greedy s':>8s} {'edf':>6s}")
    for it in report.solver_iterations:
        print(f"  {it['iteration']:>4d} {it['status']:9s} {it['windows']:>7d} "
              f"{it['windows_reused']:>6d} {it['cp_solve_s']:>7.3f} "
              f"{it['exact_prover_s']:>8.3f} {it['greedy_s']:>8.3f} {it['edf_calls']:>6d}")


def _cmd_profile_run(args: argparse.Namespace) -> int:
    """``repro profile run MODEL DEVICE``: cProfile the simulation hot path."""
    import cProfile
    import pstats

    from repro.gpusim import pricing

    device = get_device(args.device)
    if args.scenario == "decode":
        scenario = make_scenario(
            "decode", iterations=args.iterations,
            tokens=args.tokens if args.tokens is not None else 256,
            context_len=args.context,
        )
    else:
        scenario = make_scenario(
            "prefill",
            iterations=args.iterations if args.iterations is not None else 10,
            tokens=args.tokens, context_len=args.context,
        )
    graph = _load_cli_graph(args.model, scenario)
    config = FlashMemConfig(opg=OpgConfig(time_limit_s=args.time_limit))
    fm = FlashMem(config)
    print(f"Compiling {graph.summary()} for {device.name} (not profiled) ...")
    compiled = fm.compile(graph, device)
    before = pricing.STATS.snapshot()
    print(f"Profiling run: {scenario.describe()}, "
          f"cost tables {'off' if args.no_cost_tables else 'on'}, "
          f"extrapolation {'off' if args.no_extrapolate else 'on'} ...")
    profiler = cProfile.Profile()
    profiler.enable()
    result = fm.run(
        compiled,
        scenario=scenario,
        use_cost_tables=not args.no_cost_tables,
        extrapolate=not args.no_extrapolate,
    )
    profiler.disable()
    delta = pricing.STATS.delta_since(before)
    print(f"run finished: {result.latency_ms:.0f} ms simulated in "
          f"{result.details.get('sim_s', 0.0) * 1e3:.1f} ms wall; "
          f"pricing tables {int(delta['table_hits'])} hit / "
          f"{int(delta['table_misses'])} miss, "
          f"{int(delta['replayed_iterations'])} iteration(s) extrapolated")
    print(f"top {args.top} functions by cumulative time:")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile compile MODEL DEVICE``: cProfile one compile."""
    import cProfile
    import pstats

    device = get_device(args.device)
    graph = load_model(args.model)
    config = FlashMemConfig(
        opg=OpgConfig(time_limit_s=args.time_limit, portfolio=args.portfolio)
    )
    fm = FlashMem(config)
    print(f"Profiling compile of {graph.summary()} for {device.name} ...")
    profiler = cProfile.Profile()
    profiler.enable()
    compiled = fm.compile(graph, device)
    profiler.disable()
    stats = compiled.plan.stats
    print(f"compile finished in {compiled.compile_s:.2f}s "
          f"(status {stats.solver_status})")
    print(f"  phase split: process {stats.process_nodes_s:.3f}s, "
          f"build {stats.build_model_s:.3f}s, cp {stats.cp_solve_s:.3f}s, "
          f"prover {stats.exact_prover_s:.3f}s, greedy {stats.greedy_s:.3f}s "
          f"({stats.edf_calls} EDF oracle calls; "
          f"{stats.windows_reused}/{stats.windows} windows replayed)")
    print(f"top {args.top} functions by cumulative time:")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    if compiled.fusion_report is not None and compiled.fusion_report.solver_iterations:
        _print_fusion_iterations(compiled.fusion_report)
    return 0


def _cmd_profile_capacity(args: argparse.Namespace) -> int:
    """``repro profile capacity MODEL DEVICE``: capacity-pipeline triage."""
    import time as _time
    from collections import defaultdict

    from repro.capacity.model import LoadCapacityModel
    from repro.capacity.profiler import LoadCapacityProfiler

    device = get_device(args.device)
    graph = load_model(args.model)
    profiler = LoadCapacityProfiler(device, seed=args.seed)
    t0 = _time.perf_counter()
    dataset = profiler.profile_graph(graph, max_ops=args.max_ops)
    profile_s = _time.perf_counter() - t0
    t0 = _time.perf_counter()
    model = LoadCapacityModel.from_dataset(device, dataset, seed=args.seed)
    fit_s = _time.perf_counter() - t0
    ops = [n.spec for n in graph.nodes()]
    t0 = _time.perf_counter()
    caps = model.capacity_bytes_batch(ops)
    bisect_s = _time.perf_counter() - t0

    assert model.report is not None and model.regressor is not None
    cfg = model.regressor.config
    print(f"capacity pipeline for {graph.summary()} on {device.name} (gbt backend):")
    print(f"  phases: profile {profile_s:.3f}s ({len(dataset)} samples), "
          f"fit {fit_s:.3f}s ({cfg.n_estimators} '{cfg.tree_method}' trees), "
          f"capacities {bisect_s:.3f}s ({len(ops)} ops -> "
          f"{model.stats['bisections']} lockstep bisections, "
          f"{model.stats['batch_predicts']} batched predicts)")
    rep = model.report
    print(f"  figure-4 report: {rep.n_samples} samples, "
          f"train RMSE {rep.train_rmse_log10:.4f}, "
          f"holdout RMSE {rep.holdout_rmse_log10:.4f} log10-ms "
          f"(~{rep.holdout_mean_rel_error * 100:.1f}% rel. latency error)")
    by_class = defaultdict(list)
    for op, cap in zip(ops, caps):
        by_class[op.op_class.value].append(cap / 1e6)
    print("  per-class load-capacity distribution (MB):")
    print(f"    {'class':14s} {'ops':>5s} {'min':>9s} {'median':>9s} {'max':>9s}")
    for cls in sorted(by_class):
        vals = sorted(by_class[cls])
        print(f"    {cls:14s} {len(vals):>5d} {vals[0]:>9.2f} "
              f"{vals[len(vals) // 2]:>9.2f} {vals[-1]:>9.2f}")
    return 0


def _resolve_cli_scenario(args: argparse.Namespace):
    """Build the Scenario a ``run``/``profile run`` invocation asked for."""
    if args.scenario == "decode":
        return make_scenario(
            "decode", iterations=args.iterations,
            tokens=args.tokens if args.tokens is not None else 64,
            context_len=args.context,
        )
    return make_scenario(
        "prefill", iterations=args.iterations,
        tokens=args.tokens, context_len=args.context,
    )


def _load_cli_graph(model: str, scenario):
    """Prefill scenarios run the zoo graph; decode needs a decode-phase graph
    sized for the prompt (KV caches registered, flash-attention kernels)."""
    if scenario.is_decode:
        if model not in DECODE_MODELS:
            raise SystemExit(
                f"error: {model} has no decode-phase builder; "
                f"decode models: {', '.join(DECODE_MODELS)}"
            )
        return load_decode_model(model, context_len=scenario.context_len)
    return load_model(model)


def _cmd_run(args: argparse.Namespace) -> int:
    device = get_device(args.device_pos or args.device)
    try:
        scenario = _resolve_cli_scenario(args)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    graph = _load_cli_graph(args.model, scenario)
    config = FlashMemConfig(
        opg=OpgConfig(time_limit_s=args.time_limit, portfolio=args.portfolio),
        capacity_backend=args.capacity_backend,
    )
    fm = FlashMem(config)
    print(f"Compiling {graph.summary()} for {device.name} ({scenario.describe()}) ...")
    compiled = fm.compile(graph, device, target_preload_ratio=args.preload_ratio)
    print(f"  plan: {compiled.plan.stats.solver_status}, "
          f"preload {compiled.preload_ratio * 100:.1f}% "
          f"(compiled in {compiled.compile_s:.2f}s)")
    if args.solver_stats:
        _print_solver_stats(compiled.plan)
        if compiled.fusion_report is not None and compiled.fusion_report.solver_iterations:
            _print_fusion_iterations(compiled.fusion_report)
    result = fm.run(compiled, scenario=scenario)
    print(f"FlashMem: {result.latency_ms:.0f} ms, "
          f"avg {result.avg_memory_mb:.0f} MB, peak {result.peak_memory_mb:.0f} MB, "
          f"{result.energy_j:.1f} J")
    if scenario.is_decode:
        decode_ms = result.details.get("decode_ms", result.latency_ms)
        print(f"  decode: {result.details.get('ms_per_token', 0.0):.2f} ms/token "
              f"({scenario.tokens / (decode_ms / 1e3):.1f} tok/s), "
              f"KV resident {result.details.get('kv_resident_bytes', 0) / 1e6:.0f} MB"
              + (", spilled "
                 f"{result.details.get('kv_spilled_bytes', 0) / 1e6:.0f} MB"
                 if result.details.get("kv_spilled_bytes") else ""))
    if args.baseline:
        from repro.runtime.frameworks import get_profile
        from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor

        try:
            base = PreloadExecutor(get_profile(args.baseline), device).run(
                graph, scenario=scenario, check_support=not scenario.is_decode
            )
        except ModelNotSupportedError:
            print(f"{args.baseline}: model not supported")
            return 0
        print(f"{args.baseline}: {base.latency_ms:.0f} ms, avg {base.avg_memory_mb:.0f} MB")
        print(f"Speedup {base.latency_ms / result.latency_ms:.1f}x, "
              f"memory reduction {base.avg_memory_bytes / result.avg_memory_bytes:.1f}x")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    """``repro compile MODEL [DEVICE]``: one request, direct or via service."""
    import json

    from repro.service.request import CompileRequest, execute_compile

    try:
        request = CompileRequest(
            model=args.model,
            device=args.device_pos or args.device,
            time_limit_s=args.time_limit if args.time_limit is not None else 3.0,
            context_len=args.context,
            target_preload_ratio=args.preload_ratio,
            capacity_backend=args.capacity_backend,
        ).normalized()
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.via_service:
        from repro.service.daemon import ServiceError
        from repro.service.server import ServiceClient

        try:
            with ServiceClient(args.via_service) as client:
                response = client.compile(request)
        except (OSError, ServiceError) as exc:
            raise SystemExit(f"error: service at {args.via_service}: {exc}")
        print(f"{request.label()}: {response['solver_status']}, "
              f"preload {response['preload_ratio'] * 100:.1f}% "
              f"(served from {response['source']}"
              + (", coalesced" if response["coalesced"] else "")
              + (f", {response['wall_s']:.2f}s worker wall" if response["wall_s"] else "")
              + ")")
        plan_json = json.dumps(response["plan"], indent=2)
    else:
        compiled = execute_compile(request)
        plan = compiled.plan
        print(f"{request.label()}: {plan.stats.solver_status}, "
              f"preload {plan.preload_ratio * 100:.1f}% "
              f"(compiled in-process in {compiled.compile_s:.2f}s)")
        plan_json = plan.to_json()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(plan_json)
        print(f"  plan written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the plan-compilation daemon until interrupted."""
    import asyncio

    from repro.service.server import DEFAULT_SOCKET, run_server
    from repro.sweep.suite import DEFAULT_CACHE_DIR

    socket_path = args.socket or DEFAULT_SOCKET
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    )

    def ready() -> None:
        print(f"plan-compilation service listening on {socket_path} "
              f"({args.workers} worker(s), cache "
              f"{cache_dir if cache_dir else 'disabled'}); Ctrl-C to stop",
              flush=True)

    try:
        asyncio.run(run_server(
            socket_path, workers=args.workers, cache_dir=cache_dir,
            max_batch=args.max_batch, ready=ready,
        ))
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.capacity.model import analytic_capacity_model
    from repro.opg.lcopg import LcOpgSolver

    device = get_device(args.device)
    graph = load_model(args.model)
    config = OpgConfig(time_limit_s=args.time_limit, portfolio=args.portfolio)
    plan = LcOpgSolver(config).solve(
        graph, analytic_capacity_model(device), device_name=device.name
    )
    stats = plan.stats
    print(f"{plan.model} on {plan.device}: {stats.solver_status}")
    print(f"  windows {stats.windows} (cp {stats.cp_windows}, heuristic {stats.heuristic_windows})")
    print(f"  solve {stats.solve_s:.2f}s, build {stats.build_model_s:.2f}s")
    print(f"  preload {plan.preload_ratio * 100:.1f}% "
          f"({len(plan.preloaded_weights)} of {len(plan.schedules)} weights)")
    if args.solver_stats:
        _print_solver_stats(plan)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(plan.to_json())
        print(f"  plan written to {args.out}")
    return 0


def _cmd_make_trace(args: argparse.Namespace) -> int:
    """``repro make-trace OUT``: generate and save a seeded fleet trace."""
    from repro.fleet.trace import generate_trace

    trace = generate_trace(
        seed=args.seed,
        duration_s=args.duration_s,
        rate_per_min=args.rate_per_min,
        invocations=args.invocations,
    )
    path = trace.save(args.out)
    print(trace.describe())
    print(f"trace written to {path}")
    return 0


def _cmd_serve_trace(args: argparse.Namespace) -> int:
    """``repro serve-trace TRACE``: replay a trace over the fleet grid."""
    from repro.fleet.population import DEFAULT_DEVICES, DEFAULT_RUNTIMES, run_fleet
    from repro.fleet.replay import DEFAULT_SLO_MULTIPLIER
    from repro.fleet.trace import Trace
    from repro.sweep.suite import DEFAULT_CACHE_DIR

    try:
        trace = Trace.load(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot load trace {args.trace}: {exc}")
    devices = tuple(get_device(d).name for d in (args.devices or DEFAULT_DEVICES))
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    )
    report = run_fleet(
        trace,
        devices,
        tuple(args.runtimes or DEFAULT_RUNTIMES),
        jobs=args.jobs,
        cache_dir=cache_dir,
        slo_multiplier=(args.slo_multiplier if args.slo_multiplier is not None
                        else DEFAULT_SLO_MULTIPLIER),
        memoize=not args.naive,
    )
    print(report.render(), end="")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.sweep.suite import DEFAULT_CACHE_DIR, run_suite

    names = EXPERIMENTS if args.name == "all" else [args.name]
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    )
    results_dir = args.results_dir or ("results" if args.name == "all" else None)
    report = run_suite(
        names,
        jobs=args.jobs,
        cache_dir=cache_dir,
        results_dir=results_dir,
        progress=print if args.name == "all" else None,
    )
    if args.name != "all":
        text = report.text_for(args.name)
        if text is not None:
            print(text)
    if report.written:
        print(f"wrote {len(report.written)} rendered outputs to {results_dir}/")
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "make-trace":
        return _cmd_make_trace(args)
    if args.command == "serve-trace":
        return _cmd_serve_trace(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "profile":
        if args.profile_what == "run":
            return _cmd_profile_run(args)
        if args.profile_what == "capacity":
            return _cmd_profile_capacity(args)
        return _cmd_profile(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
