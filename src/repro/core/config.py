"""FlashMem end-to-end configuration.

Wraps the OPG hyperparameters with the pipeline switches the paper's
breakdown study toggles (Figure 7): the OPG solver, adaptive fusion, and
kernel rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.opg.problem import OpgConfig


@dataclass
class FlashMemConfig:
    """Pipeline configuration.

    Attributes:
        opg: overlap-plan hyperparameters (M_peak, λ, μ, α, chunk size,
            solver limits).
        use_cp: solve windows with the CP model (False = pure greedy — the
            hybrid fallback mode forced on).
        use_adaptive_fusion: run the fusion + unfuse co-optimisation loop.
        use_kernel_rewriting: embed transforms in rewritten compute kernels;
            off, chunks move via dedicated data-loading kernels.
        capacity_backend: "analytic" (exact inverse of the cost model) or
            "gbt" (the paper's profiling + regression path; histogram
            training + store-cached models make it a first-class compile
            configuration).
        capacity_seed: seed for profiling/regression determinism.
    """

    opg: OpgConfig = field(default_factory=OpgConfig)
    use_cp: bool = True
    use_adaptive_fusion: bool = True
    use_kernel_rewriting: bool = True
    capacity_backend: str = "analytic"
    capacity_seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity_backend not in ("analytic", "gbt"):
            raise ValueError(f"unknown capacity backend {self.capacity_backend!r}")

    @classmethod
    def memory_priority(cls) -> "FlashMemConfig":
        """The paper's default: M_peak 500 MB, λ ~ 0.9 (§3.2)."""
        return cls(opg=OpgConfig(m_peak_bytes=500 * 1024 * 1024, lam=0.9))

    @classmethod
    def latency_priority(cls, *, preload_ratio: float = 0.8) -> "FlashMemConfig":
        """Preload-heavy configuration (λ -> 1): lower execution latency at
        the cost of a larger resident set (Figure 8's right end)."""
        lam = min(1.0, 0.9 + preload_ratio * 0.1)
        return cls(opg=OpgConfig(m_peak_bytes=1024 * 1024 * 1024, lam=lam))

    @classmethod
    def fast_solver(cls) -> "FlashMemConfig":
        """Tight solver budget for tests and quick experiments."""
        return cls(opg=OpgConfig(time_limit_s=2.0, max_nodes_per_window=500))
