"""FlashMem core: configuration and the end-to-end compile/run facade."""

from repro.core.config import FlashMemConfig
from repro.core.flashmem import CompiledModel, FlashMem
from repro.core.store import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactStore,
    PlanStore,
    config_fingerprint,
    flashmem_config_fingerprint,
    stable_fingerprint,
)

__all__ = [
    "FlashMemConfig", "CompiledModel", "FlashMem",
    "ArtifactStore", "ARTIFACT_SCHEMA_VERSION", "PlanStore",
    "config_fingerprint", "flashmem_config_fingerprint", "stable_fingerprint",
]
