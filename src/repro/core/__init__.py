"""FlashMem core: configuration and the end-to-end compile/run facade."""

from repro.core.config import FlashMemConfig
from repro.core.flashmem import CompiledModel, FlashMem
from repro.core.store import PlanStore, config_fingerprint

__all__ = ["FlashMemConfig", "CompiledModel", "FlashMem", "PlanStore", "config_fingerprint"]
