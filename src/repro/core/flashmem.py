"""FlashMem public facade: compile a model, run it, inspect the artifacts.

The workflow of the paper's Figure 3::

    parse model -> capacity prediction -> LC-OPG overlap plan
        -> (adaptive fusion on constraint failure) -> kernel rewriting
        -> plan-driven streamed execution

Typical use::

    from repro import FlashMem, FlashMemConfig, load_model, oneplus_12

    fm = FlashMem(FlashMemConfig.memory_priority())
    compiled = fm.compile(load_model("ViT"), oneplus_12())
    result = fm.run(compiled)
    print(result.latency_ms, result.avg_memory_mb)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.core.config import FlashMemConfig
from repro.fusion.adaptive import AdaptiveFusionPlanner, AdaptiveFusionReport
from repro.graph.dag import Graph
from repro.graph.lowering import eliminate_layout_ops
from repro.gpusim.device import DeviceProfile
from repro.gpusim.timeline import RunResult
from repro.kernels.codegen import ExecStyle, KernelBundle
from repro.kernels.rewriter import KernelRewriter
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan
from repro.runtime.executor import FlashMemExecutor


@dataclass
class CompiledModel:
    """Everything FlashMem produces offline for one (model, device) pair."""

    graph: Graph            # the executed graph (layout-eliminated, fused)
    plan: OverlapPlan
    bundle: KernelBundle
    device: DeviceProfile
    fusion_report: Optional[AdaptiveFusionReport] = None
    #: End-to-end wall-clock of ``FlashMem.compile`` (offline cost metric).
    compile_s: float = 0.0

    @property
    def preload_ratio(self) -> float:
        return self.plan.preload_ratio


class FlashMem:
    """The memory-streaming framework, end to end."""

    def __init__(self, config: Optional[FlashMemConfig] = None) -> None:
        self.config = config or FlashMemConfig()

    # ------------------------------------------------------------- pipeline
    def capacity_model(
        self, device: DeviceProfile, *, profile_graphs: Optional[Iterable[Graph]] = None
    ) -> LoadCapacityModel:
        """Build the load-capacity model for ``device``.

        The "gbt" backend profiles ``profile_graphs`` (required) and trains
        the regression model the way the paper does; "analytic" inverts the
        simulator's cost model exactly.
        """
        if self.config.capacity_backend == "gbt":
            if profile_graphs is None:
                raise ValueError("gbt capacity backend requires profile_graphs")
            return LoadCapacityModel.train(device, profile_graphs, seed=self.config.capacity_seed)
        return analytic_capacity_model(device)

    def compile(
        self,
        graph: Graph,
        device: DeviceProfile,
        *,
        capacity: Optional[LoadCapacityModel] = None,
        target_preload_ratio: Optional[float] = None,
    ) -> CompiledModel:
        """Produce the overlap plan and kernel bundle for ``graph``.

        ``target_preload_ratio`` overrides the λ-derived preload fraction
        (the Figure 8 trade-off knob).
        """
        compile_start = time.perf_counter()
        cfg = self.config
        capacity = capacity or self.capacity_model(device)
        solver = LcOpgSolver(cfg.opg, use_cp=cfg.use_cp)
        lowered = eliminate_layout_ops(graph)
        fusion_report: Optional[AdaptiveFusionReport] = None
        if cfg.use_adaptive_fusion:
            planner = AdaptiveFusionPlanner(solver, capacity)
            executed, plan, fusion_report = planner.plan(lowered, device_name=device.name)
            if target_preload_ratio is not None:
                plan = solver.solve(
                    executed, capacity, device_name=device.name, target_preload_ratio=target_preload_ratio
                )
        else:
            executed = lowered
            plan = solver.solve(
                executed, capacity, device_name=device.name, target_preload_ratio=target_preload_ratio
            )
        style = ExecStyle.PIPELINED if cfg.use_kernel_rewriting else ExecStyle.RESIDENT
        bundle = KernelRewriter(style=style).rewrite_graph(executed, plan)
        return CompiledModel(
            graph=executed,
            plan=plan,
            bundle=bundle,
            device=device,
            fusion_report=fusion_report,
            compile_s=time.perf_counter() - compile_start,
        )

    def run(
        self,
        compiled: CompiledModel,
        *,
        iterations: int = 1,
        use_cost_tables: Optional[bool] = None,
        extrapolate: Optional[bool] = None,
    ) -> RunResult:
        """Execute a compiled model on the simulator.

        ``use_cost_tables``/``extrapolate`` thread through to
        :meth:`FlashMemExecutor.run` (byte-identical escape hatches for the
        differential tests; None uses the module defaults).
        """
        executor = FlashMemExecutor(
            compiled.device, rewriting=self.config.use_kernel_rewriting
        )
        return executor.run(
            compiled.graph,
            compiled.plan,
            compiled.bundle,
            iterations=iterations,
            use_cost_tables=use_cost_tables,
            extrapolate=extrapolate,
        )

    def compile_and_run(
        self,
        graph: Graph,
        device: DeviceProfile,
        *,
        iterations: int = 1,
        capacity: Optional[LoadCapacityModel] = None,
        target_preload_ratio: Optional[float] = None,
    ) -> RunResult:
        """One-shot convenience: compile then run."""
        compiled = self.compile(
            graph, device, capacity=capacity, target_preload_ratio=target_preload_ratio
        )
        return self.run(compiled, iterations=iterations)
