"""FlashMem public facade: compile a model, run it, inspect the artifacts.

The workflow of the paper's Figure 3::

    parse model -> capacity prediction -> LC-OPG overlap plan
        -> (adaptive fusion on constraint failure) -> kernel rewriting
        -> plan-driven streamed execution

Typical use::

    from repro import FlashMem, FlashMemConfig, load_model, oneplus_12

    fm = FlashMem(FlashMemConfig.memory_priority())
    compiled = fm.compile(load_model("ViT"), oneplus_12())
    result = fm.run(compiled)
    print(result.latency_ms, result.avg_memory_mb)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.capacity.model import LoadCapacityModel, analytic_capacity_model
from repro.core.config import FlashMemConfig
from repro.fusion.adaptive import AdaptiveFusionPlanner, AdaptiveFusionReport
from repro.graph.dag import Graph
from repro.graph.lowering import eliminate_layout_ops
from repro.graph.ops import OpKind
from repro.gpusim.device import DeviceProfile
from repro.gpusim.timeline import RunResult
from repro.kernels.codegen import ExecStyle, KernelBundle
from repro.kernels.rewriter import KernelRewriter
from repro.opg.lcopg import LcOpgSolver, plan_kv_residency
from repro.opg.plan import OverlapPlan
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.scenario import Scenario


@dataclass
class CompiledModel:
    """Everything FlashMem produces offline for one (model, device) pair."""

    graph: Graph            # the executed graph (layout-eliminated, fused)
    plan: OverlapPlan
    bundle: KernelBundle
    device: DeviceProfile
    fusion_report: Optional[AdaptiveFusionReport] = None
    #: End-to-end wall-clock of ``FlashMem.compile`` (offline cost metric).
    compile_s: float = 0.0

    @property
    def preload_ratio(self) -> float:
        return self.plan.preload_ratio


class FlashMem:
    """The memory-streaming framework, end to end."""

    def __init__(self, config: Optional[FlashMemConfig] = None) -> None:
        self.config = config or FlashMemConfig()

    # ------------------------------------------------------------- pipeline
    def capacity_model(
        self, device: DeviceProfile, *, profile_graphs: Optional[Iterable[Graph]] = None
    ) -> LoadCapacityModel:
        """Build the load-capacity model for ``device``.

        The "gbt" backend trains the regression model the way the paper
        does: over explicit ``profile_graphs`` when given, otherwise over
        the standard model-zoo profile set via the read-through
        capacity-model cache (:mod:`repro.capacity.cache` — trained once
        per device, warm-loaded from the artifact store afterwards).
        "analytic" inverts the simulator's cost model exactly.
        """
        if self.config.capacity_backend == "gbt":
            if profile_graphs is not None:
                return LoadCapacityModel.train(
                    device, profile_graphs, seed=self.config.capacity_seed
                )
            from repro.capacity.cache import trained_capacity_model

            return trained_capacity_model(device, seed=self.config.capacity_seed)
        return analytic_capacity_model(device)

    def compile(
        self,
        graph: Graph,
        device: DeviceProfile,
        *,
        capacity: Optional[LoadCapacityModel] = None,
        target_preload_ratio: Optional[float] = None,
    ) -> CompiledModel:
        """Produce the overlap plan and kernel bundle for ``graph``.

        ``target_preload_ratio`` overrides the λ-derived preload fraction
        (the Figure 8 trade-off knob).
        """
        compile_start = time.perf_counter()
        cfg = self.config
        capacity = capacity or self.capacity_model(device)
        solver = LcOpgSolver(cfg.opg, use_cp=cfg.use_cp)
        lowered = eliminate_layout_ops(graph)
        decode_graph = bool(lowered.kv_cache_specs())
        if decode_graph and target_preload_ratio is None:
            # Decode-phase graphs: weights are steady-state resident.  The
            # single-pass streaming trade-off does not apply — a streamed
            # weight would be re-fetched from disk on *every* generated
            # token, paying the full disk pass per token — so W defaults to
            # as much as the device can hold: everything when it fits,
            # otherwise the largest fraction that leaves room for the
            # activations, the process baseline, and at least one resident
            # KV tile per cache (models too big to preload decode slowly but
            # *bounded*, where the preloading baselines just OOM).  The
            # remaining streaming axis is the KV cache (plan_kv_residency
            # below).  An explicit target_preload_ratio still overrides
            # (the differential tests use it to exercise streamed-weight
            # decode).
            from repro.runtime.executor import FLASHMEM_BASELINE_MB

            tile_sizes = {
                int(n.spec.attrs["tile_tokens"])
                for n in lowered.nodes()
                if n.kind is OpKind.FLASH_ATTENTION
            }
            kv_tile_bytes = lowered.kv_bytes_per_token() * max(tile_sizes, default=0)
            headroom = (
                int(device.ram_budget_bytes * 0.95)
                - int(FLASHMEM_BASELINE_MB * 1e6)
                - lowered.peak_activation_bytes()
                - kv_tile_bytes
            )
            total_w = lowered.total_weight_bytes
            target_preload_ratio = 1.0 if total_w <= headroom else max(0.0, headroom / total_w)
        fusion_report: Optional[AdaptiveFusionReport] = None
        if cfg.use_adaptive_fusion and not decode_graph:
            planner = AdaptiveFusionPlanner(solver, capacity)
            executed, plan, fusion_report = planner.plan(lowered, device_name=device.name)
            if target_preload_ratio is not None:
                plan = solver.solve(
                    executed, capacity, device_name=device.name, target_preload_ratio=target_preload_ratio
                )
        else:
            # Adaptive fusion exists to repair streaming-capacity constraint
            # failures; with decode's full-preload default there is nothing
            # to stream, so decode graphs skip straight to the solve.
            executed = lowered
            plan = solver.solve(
                executed, capacity, device_name=device.name, target_preload_ratio=target_preload_ratio
            )
        if decode_graph:
            plan.kv_plan = plan_kv_residency(executed, plan, device, cfg.opg)
        style = ExecStyle.PIPELINED if cfg.use_kernel_rewriting else ExecStyle.RESIDENT
        bundle = KernelRewriter(style=style).rewrite_graph(executed, plan)
        return CompiledModel(
            graph=executed,
            plan=plan,
            bundle=bundle,
            device=device,
            fusion_report=fusion_report,
            compile_s=time.perf_counter() - compile_start,
        )

    def run(
        self,
        compiled: CompiledModel,
        *,
        scenario: Optional[Scenario] = None,
        iterations: Optional[int] = None,
        use_cost_tables: Optional[bool] = None,
        extrapolate: Optional[bool] = None,
    ) -> RunResult:
        """Execute a compiled model on the simulator.

        ``scenario`` selects the workload (:meth:`Scenario.prefill` passes,
        or :meth:`Scenario.decode` autoregressive generation — the latter
        needs a decode-phase graph so the plan carries a KV residency
        policy).  The bare ``iterations=`` spelling is a deprecated prefill
        shim resolved by the executor.

        ``use_cost_tables``/``extrapolate`` thread through to
        :meth:`FlashMemExecutor.run` (byte-identical escape hatches for the
        differential tests; None uses the module defaults).
        """
        executor = FlashMemExecutor(
            compiled.device, rewriting=self.config.use_kernel_rewriting
        )
        return executor.run(
            compiled.graph,
            compiled.plan,
            compiled.bundle,
            scenario=scenario,
            iterations=iterations,
            use_cost_tables=use_cost_tables,
            extrapolate=extrapolate,
        )

    def compile_and_run(
        self,
        graph: Graph,
        device: DeviceProfile,
        *,
        scenario: Optional[Scenario] = None,
        iterations: Optional[int] = None,
        capacity: Optional[LoadCapacityModel] = None,
        target_preload_ratio: Optional[float] = None,
    ) -> RunResult:
        """One-shot convenience: compile then run."""
        compiled = self.compile(
            graph, device, capacity=capacity, target_preload_ratio=target_preload_ratio
        )
        return self.run(compiled, scenario=scenario, iterations=iterations)
