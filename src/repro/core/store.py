"""Plan store: persist and reuse overlap plans on disk.

The paper emphasises that LC-OPG runs *offline* and its plans are reusable
deployment artifacts ("generating a reusable overlap plan that incurs no
runtime overhead").  The store keys plans by (model, device, configuration
fingerprint), so repeated launches skip the solver entirely — exactly the
artifact flow a production deployment of FlashMem would ship.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import asdict
from typing import Optional

from repro.opg.plan import OverlapPlan
from repro.opg.problem import OpgConfig


def config_fingerprint(config: OpgConfig) -> str:
    """Stable short hash of the solver hyperparameters."""
    payload = asdict(config)
    payload["preload_hint_weights"] = sorted(payload["preload_hint_weights"])
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class PlanStore:
    """Directory-backed store of overlap plans."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, model: str, device: str, config: OpgConfig) -> pathlib.Path:
        safe = lambda s: "".join(c if c.isalnum() or c in "-._" else "_" for c in s)
        name = f"{safe(model)}__{safe(device)}__{config_fingerprint(config)}.json"
        return self.root / name

    def load(self, model: str, device: str, config: OpgConfig) -> Optional[OverlapPlan]:
        """Return the stored plan, or None when absent or unreadable."""
        path = self._path(model, device, config)
        if not path.exists():
            return None
        try:
            return OverlapPlan.from_json(path.read_text())
        except (ValueError, KeyError, TypeError):
            return None  # corrupt artifact: treat as a miss

    def save(self, plan: OverlapPlan, config: OpgConfig) -> pathlib.Path:
        """Atomically persist the plan.

        Writes to a ``.tmp`` sibling and ``os.replace``s into place, so a
        crash mid-write can never leave a truncated artifact that ``load``
        would silently treat as a miss forever (the ``.tmp`` suffix also
        keeps partial writes out of :meth:`entries`' ``*.json`` glob).
        """
        path = self._path(plan.model, plan.device, config)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(plan.to_json())
        os.replace(tmp, path)
        return path

    def get_or_solve(self, graph, capacity_model, config: OpgConfig, *, device_name: str) -> OverlapPlan:
        """Cached solve: load a stored plan or run LC-OPG and persist it."""
        cached = self.load(graph.name, device_name, config)
        if cached is not None:
            return cached
        from repro.opg.lcopg import LcOpgSolver

        plan = LcOpgSolver(config).solve(graph, capacity_model, device_name=device_name)
        self.save(plan, config)
        return plan

    def entries(self):
        """(model, device, fingerprint) triples currently stored."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            parts = path.stem.split("__")
            if len(parts) == 3:
                out.append(tuple(parts))
        return out
