"""Artifact stores: persist and reuse offline compilation products on disk.

The paper emphasises that LC-OPG runs *offline* and its plans are reusable
deployment artifacts ("generating a reusable overlap plan that incurs no
runtime overhead").  Two stores implement that flow:

- :class:`ArtifactStore` — the general, content-addressed store behind the
  experiment pipeline.  It persists arbitrary pickled artifacts (compiled
  models, run results, trained capacity models, rendered driver outputs)
  keyed by a structured key
  dict; the path is derived from a digest of the key plus the artifact
  schema version, so a schema bump or any key change addresses a fresh
  entry.  Writes are atomic (unique tmp file + ``os.replace``) so racing
  writers can never tear an entry, and unreadable entries are quarantined
  to a ``.corrupt`` sibling instead of being silently re-missed forever.
- :class:`PlanStore` — the original plan-only store, kept with its
  human-readable ``model__device__fingerprint.json`` layout for plan
  inspection and the ``plan`` CLI flow.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import pickle
import sys
import warnings
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.opg.plan import OverlapPlan
from repro.opg.problem import OpgConfig

#: Version of the on-disk artifact format.  Bump whenever the pickled
#: payload types change shape; old entries then simply address different
#: paths and age out instead of being mis-loaded.  v3: plans carry a
#: ``kv_plan`` (decode KV residency), run keys fold in the Scenario.
ARTIFACT_SCHEMA_VERSION = 3


def _canonical_default(value):
    """JSON fallback for key/fingerprint payloads: sets become sorted lists."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unfingerprintable value of type {type(value).__name__}: {value!r}")


def canonical_key(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Round-trip a key through canonical JSON (sorted, sets normalised)."""
    return json.loads(json.dumps(payload, sort_keys=True, default=_canonical_default))


def stable_fingerprint(payload: Mapping[str, Any]) -> str:
    """Stable short hash of a JSON-able payload."""
    blob = json.dumps(payload, sort_keys=True, default=_canonical_default).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def config_fingerprint(config: OpgConfig) -> str:
    """Stable short hash of the solver hyperparameters."""
    return stable_fingerprint(asdict(config))


def flashmem_config_fingerprint(config) -> str:
    """Stable short hash of a full :class:`FlashMemConfig` (OPG included)."""
    return stable_fingerprint(asdict(config))


def _sanitize(text: str) -> str:
    return "".join(c if c.isalnum() or c in "-._" else "_" for c in text)


@contextlib.contextmanager
def _deep_recursion(limit: int = 20_000):
    """Temporarily raise the recursion limit for (un)pickling.

    Compiled-model graphs are node chains thousands of links deep (a
    GPTN-2.7B ``CompiledModel`` needs ~2.1k frames), and the stock limit of
    1000 is largely consumed already when saving from inside a driver under
    pytest.  20k frames is ~10x the deepest evaluated model and far below
    C-stack danger territory.
    """
    old = sys.getrecursionlimit()
    if old < limit:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _atomic_write_bytes(path: pathlib.Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a writer-unique tmp file + rename.

    ``os.replace`` is atomic on POSIX, so concurrent writers of the same
    entry race benignly: both succeed, the last rename wins, and a reader
    never observes a torn file.  The pid-tagged tmp name keeps two
    processes from clobbering each other's half-written temporaries.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


def _quarantine_artifact(path: pathlib.Path, reason: str, *, store: str) -> pathlib.Path:
    """Move an unreadable artifact to a ``.corrupt`` sibling and warn."""
    dest = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, dest)
    except OSError:  # racing reader already quarantined it
        pass
    warnings.warn(
        f"{store}: quarantined corrupt artifact {path.name} -> {dest.name} ({reason}); "
        "it will be re-solved and re-saved once",
        RuntimeWarning,
        stacklevel=3,
    )
    return dest


@dataclass
class StoreStats:
    """Hit/miss accounting for one store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}

    def delta_since(self, before: Mapping[str, int]) -> Dict[str, int]:
        now = self.snapshot()
        return {k: now[k] - before.get(k, 0) for k in now}


class ArtifactStore:
    """Content-addressed store of pickled experiment artifacts.

    Keys are flat dicts that must include ``"kind"`` (the artifact family —
    e.g. ``"flashmem-run"``); remaining fields identify the cell, typically
    (model, device, config fingerprint).  The schema version participates in
    the digest, so a format bump invalidates every old entry at once.

    ``load`` verifies that the stored envelope echoes the requested key and
    schema; any unreadable or mismatched entry is quarantined to a
    ``.corrupt`` sibling (visible, re-solved once) rather than treated as a
    permanent silent miss.  Storing ``None`` is indistinguishable from a
    miss — encode absent results with a sentinel value instead.
    """

    def __init__(self, root, *, schema: int = ARTIFACT_SCHEMA_VERSION) -> None:
        self.root = pathlib.Path(root)
        self.schema = schema
        self.stats = StoreStats()
        self.root.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------- addressing
    def path_for(self, key: Mapping[str, Any]) -> pathlib.Path:
        kind = key["kind"]
        digest = stable_fingerprint({"schema": self.schema, **canonical_key(key)})
        label = "__".join(
            _sanitize(str(v)) for k, v in sorted(key.items())
            if k != "kind" and isinstance(v, str)
        )
        name = f"{label[:80]}__{digest}.pkl" if label else f"{digest}.pkl"
        return self.root / _sanitize(str(kind)) / name

    def contains(self, key: Mapping[str, Any]) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------- load/save
    def load(self, key: Mapping[str, Any]) -> Optional[Any]:
        """Return the stored artifact, or None on miss/quarantine."""
        with _deep_recursion():
            return self._load_one(key)

    def load_many(self, keys: Sequence[Mapping[str, Any]]) -> List[Optional[Any]]:
        """Batched :meth:`load`: one value (or None) per key, in order.

        The batch shares a single recursion-limit bump instead of paying the
        ``sys.setrecursionlimit`` round trip per entry; misses cost only a
        ``path.exists`` check (no envelope is opened), which is what makes
        this the right primitive for a dedup pass over many candidate keys —
        see :mod:`repro.service.daemon`.  Use :meth:`contains` when only
        existence matters and the value is not needed at all.
        """
        with _deep_recursion():
            return [self._load_one(key) for key in keys]

    def _load_one(self, key: Mapping[str, Any]) -> Optional[Any]:
        """One load, assuming the caller already holds ``_deep_recursion``."""
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != self.schema
                or envelope.get("key") != canonical_key(key)
            ):
                raise ValueError("artifact key/schema does not match its address")
        except Exception as exc:  # pickle/EOF/attribute errors, bad envelope
            self.stats.misses += 1
            self.stats.corrupt += 1
            _quarantine_artifact(path, f"{type(exc).__name__}: {exc}", store="ArtifactStore")
            return None
        self.stats.hits += 1
        return envelope["value"]

    def save(self, key: Mapping[str, Any], value: Any) -> pathlib.Path:
        """Atomically persist ``value`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"schema": self.schema, "key": canonical_key(key), "value": value}
        with _deep_recursion():
            blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(path, blob)
        self.stats.stores += 1
        return path

    def publish_bytes(self, key: Mapping[str, Any], blob: bytes) -> pathlib.Path:
        """Atomically install an already-pickled envelope under ``key``.

        ``blob`` must be the exact envelope bytes another :class:`ArtifactStore`
        instance with the same schema produced for the same key (envelopes
        embed only schema + key + value, never the store root, so they are
        portable between roots).  This is the zero-re-pickle publish path the
        plan-compilation service uses: workers save into worker-local stores,
        and the single daemon process copies the raw bytes into the shared
        store — one writer, no pickling on the publish side, no contention.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, blob)
        self.stats.stores += 1
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))


class PlanStore:
    """Directory-backed store of overlap plans."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, model: str, device: str, config: OpgConfig) -> pathlib.Path:
        name = f"{_sanitize(model)}__{_sanitize(device)}__{config_fingerprint(config)}.json"
        return self.root / name

    def load(self, model: str, device: str, config: OpgConfig) -> Optional[OverlapPlan]:
        """Return the stored plan, or None when absent or quarantined.

        A corrupt artifact is renamed to a ``.corrupt`` sibling with a
        warning, so it is re-solved exactly once instead of being re-parsed
        (and silently missed) on every launch.
        """
        path = self._path(model, device, config)
        if not path.exists():
            return None
        try:
            return OverlapPlan.from_json(path.read_text())
        except (ValueError, KeyError, TypeError) as exc:
            _quarantine_artifact(path, f"{type(exc).__name__}: {exc}", store="PlanStore")
            return None

    def save(self, plan: OverlapPlan, config: OpgConfig) -> pathlib.Path:
        """Atomically persist the plan.

        Writes to a writer-unique ``.tmp`` sibling and ``os.replace``s into
        place, so a crash mid-write can never leave a truncated artifact
        (the ``.tmp`` suffix also keeps partial writes out of
        :meth:`entries`' ``*.json`` glob).
        """
        path = self._path(plan.model, plan.device, config)
        _atomic_write_bytes(path, plan.to_json().encode())
        return path

    def get_or_solve(self, graph, capacity_model, config: OpgConfig, *, device_name: str) -> OverlapPlan:
        """Cached solve: load a stored plan or run LC-OPG and persist it."""
        cached = self.load(graph.name, device_name, config)
        if cached is not None:
            return cached
        from repro.opg.lcopg import LcOpgSolver

        plan = LcOpgSolver(config).solve(graph, capacity_model, device_name=device_name)
        self.save(plan, config)
        return plan

    def entries(self):
        """(model, device, fingerprint) triples currently stored."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            parts = path.stem.split("__")
            if len(parts) == 3:
                out.append(tuple(parts))
        return out
