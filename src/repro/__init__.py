"""FlashMem reproduction: GPU memory-hierarchy optimizations for modern DNN
workloads on mobile (ASPLOS 2026).

Public API quickstart::

    from repro import FlashMem, FlashMemConfig, load_model, oneplus_12

    fm = FlashMem(FlashMemConfig.memory_priority())
    result = fm.compile_and_run(load_model("ViT"), oneplus_12())
    print(f"{result.latency_ms:.0f} ms, {result.avg_memory_mb:.0f} MB avg")

Subpackages: ``repro.graph`` (model IR + zoo), ``repro.gpusim`` (mobile GPU
simulator), ``repro.capacity`` (load-capacity profiling + GBT), ``repro.opg``
(CP-SAT substrate + LC-OPG solver), ``repro.fusion`` (adaptive fusion),
``repro.kernels`` (template-based rewriting), ``repro.runtime`` (executors),
``repro.experiments`` (per-table/figure drivers).
"""

from repro.core import CompiledModel, FlashMem, FlashMemConfig
from repro.gpusim import (
    DeviceProfile,
    RunResult,
    get_device,
    oneplus_11,
    oneplus_12,
    pixel_8,
    xiaomi_mi6,
)
from repro.graph.models import (
    DECODE_MODELS,
    EVALUATED_MODELS,
    available_models,
    load_decode_model,
    load_model,
)
from repro.opg import OpgConfig, OverlapPlan
from repro.runtime.scenario import Scenario, available_scenarios

__version__ = "1.0.0"

__all__ = [
    "CompiledModel",
    "FlashMem",
    "FlashMemConfig",
    "DeviceProfile",
    "RunResult",
    "get_device",
    "oneplus_11",
    "oneplus_12",
    "pixel_8",
    "xiaomi_mi6",
    "DECODE_MODELS",
    "EVALUATED_MODELS",
    "available_models",
    "load_decode_model",
    "load_model",
    "OpgConfig",
    "OverlapPlan",
    "Scenario",
    "available_scenarios",
    "__version__",
]
