"""Operator fusion pass (paper §4.3).

Fuses linear chains of operators into single kernels the way DNNFusion-class
mobile compilers do: a *reusable* anchor (MatMul/Conv) absorbs the trailing
*elemental* ops that consume its output ("MatMul+Add+GeLU"), and runs of
elemental ops merge together.  Hierarchical operators are never fused into a
group (their stage synchronisation must own the kernel) and act as fusion
barriers.

Fusion shrinks kernel-launch overhead and intermediate tensors, but a fused
kernel's load capacity collapses to roughly ``min(C_i)`` of its members
(§4.3) — the tension the adaptive protocol in
:mod:`repro.fusion.adaptive` resolves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.dag import Graph, Node
from repro.graph.ops import OpClass, OpKind, OpSpec

#: OpSpec attr key carrying the member specs of a fused node.
FUSED_MEMBERS = "fused_members"

#: Decode-phase operators that own their kernel outright: the KV append
#: mutates persistent cache state, and the tiled attention kernel's
#: online-softmax loop (plus its tile-streaming schedule) cannot host a
#: fused epilogue.  Both act as fusion barriers, like hierarchical ops.
UNFUSABLE_KINDS = (OpKind.KV_APPEND, OpKind.FLASH_ATTENTION)


def is_fused(spec: OpSpec) -> bool:
    return FUSED_MEMBERS in spec.attrs


def fused_members(spec: OpSpec) -> List[OpSpec]:
    """Member specs of a fused node (itself, if not fused)."""
    return list(spec.attrs.get(FUSED_MEMBERS, [spec]))


def make_fused_spec(name: str, members: Sequence[OpSpec]) -> OpSpec:
    """Combine a chain of member specs into one fused-kernel spec.

    The fused kernel reads the first member's inputs, writes the last
    member's output, carries every member's weights, does the summed
    arithmetic, and is classified by its dominant member (reusable if any
    member is reusable — the anchor defines the kernel's loop structure).
    """
    if not members:
        raise ValueError("fused spec needs at least one member")
    anchor = next((m for m in members if m.op_class is OpClass.REUSABLE), members[0])
    weights = [w for m in members for w in m.weights]
    # Intermediate tensors stay in registers/local memory: only the chain's
    # boundary tensors count as memory traffic.
    return OpSpec(
        kind=anchor.kind,
        name=name,
        flops=sum(m.flops for m in members),
        input_specs=members[0].input_specs,
        output_spec=members[-1].output_spec,
        weights=weights,
        attrs={FUSED_MEMBERS: list(members), "anchor": anchor.name},
    )


def _fusable_follower(node: Node) -> bool:
    """Whether ``node`` may be absorbed into the group feeding it."""
    if node.op_class is not OpClass.ELEMENTAL:
        return False
    # Single predecessor inside the chain, i.e. a pure pipeline stage.
    return len(node.inputs) <= 2  # residual adds keep a second (external) input


def fuse_graph(graph: Graph, *, max_group: int = 4) -> Graph:
    """Produce a fused graph.

    Grouping rule: walk the execution order; start a group at a reusable or
    elemental node and extend it while the next node (a) is the unique
    consumer of the group's tail, (b) is elemental, and (c) the group stays
    under ``max_group`` members.  Hierarchical and layout nodes pass through
    unfused.
    """
    graph.freeze()
    groups: List[List[Node]] = []
    group_of: Dict[str, int] = {}
    for node in graph.nodes():
        if node.op_class in (OpClass.HIERARCHICAL, OpClass.LAYOUT) or node.kind in UNFUSABLE_KINDS:
            group_of[node.name] = len(groups)
            groups.append([node])
            continue
        # Try to join the group of the producing node.
        join: Optional[int] = None
        if (
            _fusable_follower(node)
            and node.inputs
        ):
            producer = node.inputs[0]
            gid = group_of.get(producer.name)
            if gid is not None:
                group = groups[gid]
                tail = group[-1]
                if (
                    tail.name == producer.name
                    and len(tail.outputs) == 1
                    and len(group) < max_group
                    and tail.op_class is not OpClass.HIERARCHICAL
                    and tail.op_class is not OpClass.LAYOUT
                    and tail.kind not in UNFUSABLE_KINDS
                    # Every other parent must come from an earlier group, or
                    # the rebuilt DAG would contain a forward edge (cycle).
                    and all(group_of[p.name] <= gid for p in node.inputs)
                ):
                    join = gid
        if join is not None:
            group_of[node.name] = join
            groups[join].append(node)
        else:
            group_of[node.name] = len(groups)
            groups.append([node])

    # Rebuild the graph with one node per group.
    out = Graph(graph.name)
    for cache in graph.kv_cache_specs():
        out.register_kv_cache(cache)
    new_nodes: List[Node] = []
    for gid, group in enumerate(groups):
        if len(group) == 1:
            spec = group[0].spec
        else:
            spec = make_fused_spec("+".join(n.name for n in group), [n.spec for n in group])
        member_names = {n.name for n in group}
        input_gids: List[int] = []
        seen = set()
        for member in group:
            for parent in member.inputs:
                if parent.name in member_names:
                    continue
                pgid = group_of[parent.name]
                if pgid not in seen:
                    seen.add(pgid)
                    input_gids.append(pgid)
        inputs = [new_nodes[pgid] for pgid in input_gids]
        new_nodes.append(out.add(spec, inputs=inputs))
    return out.freeze()


def unfuse_node(spec: OpSpec) -> List[OpSpec]:
    """Split a fused spec back into sub-kernels by operator class.

    Operator-specific rule ① from §4.3: a Reusable+Elemental fusion splits
    into the reusable prefix and the elemental suffix (e.g.
    "MatMul+Add+GeLU" -> "MatMul+Add" and "GeLU"), restoring one capacity
    boundary.  Non-fused or two-member specs split fully into members.
    """
    members = fused_members(spec)
    if len(members) <= 1:
        return [spec]
    if len(members) == 2:
        return list(members)
    # Keep the reusable anchor with its first follower; split off the rest.
    head = members[:-1]
    tail = members[-1:]
    head_spec = head[0] if len(head) == 1 else make_fused_spec("+".join(m.name for m in head), head)
    tail_spec = tail[0]
    return [head_spec, tail_spec]


def fusion_stats(graph: Graph) -> Dict[str, int]:
    """Counts: total nodes, fused nodes, members absorbed."""
    graph.freeze()
    fused_nodes = [n for n in graph.nodes() if is_fused(n.spec)]
    absorbed = sum(len(fused_members(n.spec)) - 1 for n in fused_nodes)
    return {
        "nodes": len(graph),
        "fused_nodes": len(fused_nodes),
        "absorbed_members": absorbed,
    }
