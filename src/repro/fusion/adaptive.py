"""Adaptive fusion protocol (paper §4.3, "Adaptive Fusion Triggering").

The loop the paper describes:

① *Identify critical fusions* — rank fused kernels by their fusion penalty
   and take the top candidates.
② *Split feasibility check* — a candidate splits only if the sub-kernels
   recover enough capacity: ``C_v1 + C_v2 >= (1 + α) · C_fused``.
③ *Iterative refinement* — rebuild the graph with the splits applied and
   re-invoke the LC-OPG solver; repeat while the plan still shows
   fusion-induced preload pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.capacity.model import LoadCapacityModel
from repro.fusion.fuser import fuse_graph, is_fused, unfuse_node
from repro.fusion.penalty import fusion_penalties, plan_pressure
from repro.graph.dag import Graph
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan


@dataclass
class AdaptiveFusionReport:
    """Trace of the adaptive loop."""

    iterations: int = 0
    splits_applied: int = 0
    splits_rejected: int = 0
    pressure_history: List[float] = field(default_factory=list)
    #: Per-solver-invocation compile breakdown (one dict per LC-OPG solve in
    #: the loop): window reuse counts and the phase wall-clock split.  This
    #: is where the incremental-compile win shows up — iterations after the
    #: first should report most windows reused and near-zero CP/prover time.
    solver_iterations: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total_windows(self) -> int:
        return sum(int(it["windows"]) for it in self.solver_iterations)

    @property
    def total_windows_reused(self) -> int:
        return sum(int(it["windows_reused"]) for it in self.solver_iterations)

    @property
    def window_reuse_rate(self) -> float:
        total = self.total_windows
        return self.total_windows_reused / total if total else 0.0


def _solver_iteration_record(iteration: int, plan: OverlapPlan) -> Dict[str, object]:
    """Flatten one solve's PlanStats into the report's per-iteration row."""
    s = plan.stats
    return {
        "iteration": iteration,
        "status": s.solver_status,
        "windows": s.windows,
        "windows_reused": s.windows_reused,
        "solve_s": round(s.solve_s, 6),
        "build_model_s": round(s.build_model_s, 6),
        "cp_solve_s": round(s.cp_solve_s, 6),
        "exact_prover_s": round(s.exact_prover_s, 6),
        "greedy_s": round(s.greedy_s, 6),
        "edf_calls": s.edf_calls,
        "nodes_explored": s.nodes_explored,
    }


def split_feasible(
    spec, capacity_model: LoadCapacityModel, *, alpha: float = 0.25
) -> Optional[Tuple[object, object]]:
    """Check §4.3's capacity-gain condition for splitting a fused node.

    Returns the (head, tail) sub-specs when
    ``C_head + C_tail >= (1 + alpha) * C_fused``, else None.
    """
    if not is_fused(spec):
        return None
    parts = unfuse_node(spec)
    if len(parts) < 2:
        return None
    head, tail = parts[0], parts[1]
    c_fused = capacity_model.capacity_bytes(spec)
    c_split = capacity_model.capacity_bytes(head) + capacity_model.capacity_bytes(tail)
    if c_split >= (1.0 + alpha) * max(1, c_fused):
        return head, tail
    return None


def apply_splits(graph: Graph, splits: Dict[str, Tuple[object, object]]) -> Graph:
    """Rebuild ``graph`` with the given fused nodes replaced by (head, tail)."""
    graph.freeze()
    out = Graph(graph.name)
    for cache in graph.kv_cache_specs():
        out.register_kv_cache(cache)
    mapping: Dict[str, object] = {}
    for node in graph.nodes():
        inputs = [mapping[p.name] for p in node.inputs]
        if node.name in splits:
            head, tail = splits[node.name]
            head_node = out.add(head, inputs=inputs)
            tail_node = out.add(tail, inputs=[head_node])
            mapping[node.name] = tail_node
        else:
            mapping[node.name] = out.add(node.spec, inputs=inputs)
    return out.freeze()


class AdaptiveFusionPlanner:
    """Fusion + LC-OPG co-optimisation.

    ``plan()`` returns the final (graph, plan, report) triple: the fused
    graph after any splits, its overlap plan, and the loop trace.
    """

    def __init__(
        self,
        solver: LcOpgSolver,
        capacity_model: LoadCapacityModel,
        *,
        max_iterations: int = 6,
        top_candidates: int = 16,
        pressure_threshold: float = 0.02,
    ) -> None:
        self.solver = solver
        self.capacity_model = capacity_model
        self.max_iterations = max_iterations
        self.top_candidates = top_candidates
        self.pressure_threshold = pressure_threshold

    def plan(self, graph: Graph, *, device_name: str = "") -> Tuple[Graph, OverlapPlan, AdaptiveFusionReport]:
        report = AdaptiveFusionReport()
        cfg = self.solver.config
        fused = fuse_graph(graph)
        plan = self.solver.solve(fused, self.capacity_model, device_name=device_name)
        report.solver_iterations.append(_solver_iteration_record(0, plan))
        report.pressure_history.append(plan_pressure(plan, fused))
        best = (fused, plan, report.pressure_history[-1])

        while report.iterations < self.max_iterations:
            pressure = report.pressure_history[-1]
            if pressure <= self.pressure_threshold:
                break
            # ① identify critical fusions
            candidates = fusion_penalties(fused, plan, lam=cfg.lam, mu=cfg.mu)[: self.top_candidates]
            if not candidates:
                break
            # ② split feasibility check — one lockstep capacity batch over
            # every candidate's fused spec and its (head, tail) sub-specs
            # instead of per-candidate sequential bisections (the per-op
            # memo makes repeat candidates across iterations free).
            splits: Dict[str, Tuple[object, object]] = {}
            triples: List[Tuple[str, object, object, object]] = []
            for cand in candidates:
                spec = fused.node(cand.node).spec
                parts = unfuse_node(spec) if is_fused(spec) else []
                if len(parts) < 2:
                    report.splits_rejected += 1
                    continue
                triples.append((cand.node, spec, parts[0], parts[1]))
            if triples:
                caps = self.capacity_model.capacity_bytes_batch(
                    [op for t in triples for op in t[1:]]
                )
                for i, (name, _, head, tail) in enumerate(triples):
                    c_fused, c_head, c_tail = caps[3 * i : 3 * i + 3]
                    if c_head + c_tail >= (1.0 + cfg.alpha) * max(1, c_fused):
                        splits[name] = (head, tail)
                    else:
                        report.splits_rejected += 1
            if not splits:
                break
            # ③ iterative refinement
            fused = apply_splits(fused, splits)
            report.splits_applied += len(splits)
            report.iterations += 1
            plan = self.solver.solve(fused, self.capacity_model, device_name=device_name)
            report.solver_iterations.append(_solver_iteration_record(report.iterations, plan))
            new_pressure = plan_pressure(plan, fused)
            report.pressure_history.append(new_pressure)
            if new_pressure < best[2]:
                best = (fused, plan, new_pressure)
            if new_pressure >= pressure:
                break  # no improvement; stop refining
        fused, plan, _ = best
        return fused, plan, report
