"""Fusion penalty scores (paper §4.3).

``Penalty(v_fused) = λ|W_new| + μ·Δz_w`` — the preload bytes a fusion forced
into W plus the loading distance it cost the affected weights.  The adaptive
protocol ranks fused kernels by this score to pick splitting candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fusion.fuser import is_fused
from repro.graph.dag import Graph
from repro.opg.plan import OverlapPlan


@dataclass(frozen=True)
class FusionPenalty:
    """Penalty attribution for one fused node."""

    node: str
    layer: int
    preload_bytes: int   # |W_new|: preloaded weight bytes owned by the node
    distance_cost: int   # Δz proxy: extra loading distance of its weights
    score: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node}: score={self.score:.1f} (preload={self.preload_bytes}, Δz={self.distance_cost})"


def fusion_penalties(
    graph: Graph, plan: OverlapPlan, *, lam: float = 0.9, mu: float = 0.1
) -> List[FusionPenalty]:
    """Score every fused node in ``graph`` against the solved ``plan``.

    A fused node is penalised for (a) its own weights that ended up
    preloaded (fusion collapsed the capacity that could have streamed them)
    and (b) the loading distance of the weights it *does* stream beyond the
    minimum of 1 layer (capacity starvation pushes transforms earlier).
    Scores are in MB-equivalents so λ and μ weigh comparable magnitudes.
    """
    penalties: List[FusionPenalty] = []
    for node in graph.nodes():
        if not is_fused(node.spec):
            continue
        preload_bytes = 0
        distance_cost = 0
        for w in node.weights:
            sched = plan.schedules.get(w.name)
            if sched is None:
                continue
            if sched.preloaded:
                preload_bytes += sched.nbytes
            else:
                distance_cost += max(0, sched.loading_distance - 1)
        score = lam * (preload_bytes / 1e6) + mu * distance_cost
        if score > 0:
            penalties.append(
                FusionPenalty(
                    node=node.name,
                    layer=node.index,
                    preload_bytes=preload_bytes,
                    distance_cost=distance_cost,
                    score=score,
                )
            )
    penalties.sort(key=lambda p: p.score, reverse=True)
    return penalties


def plan_pressure(plan: OverlapPlan, graph: Graph) -> float:
    """Fraction of *streamable* weight bytes the plan had to preload anyway.

    Weights whose consumers are the first layers are excluded — they are in
    W by construction, not because of fusion.  This is the residual-capacity
    violation signal that triggers the adaptive protocol.
    """
    first_use: Dict[str, int] = graph.weight_first_use()
    avoidable = 0
    total = 0
    for name, sched in plan.schedules.items():
        if first_use.get(name, 1) == 0:
            continue
        total += sched.nbytes
        if sched.preloaded:
            avoidable += sched.nbytes
    return avoidable / total if total else 0.0
