"""Operator fusion: fusion pass, penalty scoring, adaptive unfusing (§4.3)."""

from repro.fusion.adaptive import (
    AdaptiveFusionPlanner,
    AdaptiveFusionReport,
    apply_splits,
    split_feasible,
)
from repro.fusion.fuser import (
    FUSED_MEMBERS,
    fuse_graph,
    fused_members,
    fusion_stats,
    is_fused,
    make_fused_spec,
    unfuse_node,
)
from repro.fusion.penalty import FusionPenalty, fusion_penalties, plan_pressure

__all__ = [
    "AdaptiveFusionPlanner",
    "AdaptiveFusionReport",
    "apply_splits",
    "split_feasible",
    "FUSED_MEMBERS",
    "fuse_graph",
    "fused_members",
    "fusion_stats",
    "is_fused",
    "make_fused_spec",
    "unfuse_node",
    "FusionPenalty",
    "fusion_penalties",
    "plan_pressure",
]
