"""Minimal text-template engine (Jinja substitute, see DESIGN.md).

The paper instantiates GPU kernels from Jinja templates (§4.4).  Jinja is
not installable offline, so this module implements the subset the kernel
templates need:

- ``{{ expr }}`` substitution, with dotted attribute/key lookup;
- ``{% for x in xs %} ... {% endfor %}`` loops (with ``loop.index0``);
- ``{% if expr %} ... {% elif expr %} ... {% else %} ... {% endif %}``;
- truthiness, ``not``, and ``==`` / ``!=`` comparisons in conditions.

Templates are compiled to a node tree once and rendered against a context
dict.  Anything fancier (filters, macros, inheritance) is out of scope.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union


class TemplateError(Exception):
    """Raised on syntax errors or unresolvable expressions."""


_TOKEN_RE = re.compile(r"({{.*?}}|{%.*?%})", re.DOTALL)


# ------------------------------------------------------------------ nodes
@dataclass
class _Text:
    text: str


@dataclass
class _Expr:
    expr: str


@dataclass
class _For:
    var: str
    iterable: str
    body: List[Any] = field(default_factory=list)


@dataclass
class _If:
    #: (condition or None for else, body) in order.
    branches: List[Tuple[Optional[str], List[Any]]] = field(default_factory=list)


Node = Union[_Text, _Expr, _For, _If]


def _lookup(expr: str, context: Dict[str, Any]) -> Any:
    """Resolve a dotted path (or int/str literal) against the context."""
    expr = expr.strip()
    if not expr:
        raise TemplateError("empty expression")
    if expr.isdigit() or (expr[0] == "-" and expr[1:].isdigit()):
        return int(expr)
    if len(expr) >= 2 and expr[0] == expr[-1] and expr[0] in "'\"":
        return expr[1:-1]
    parts = expr.split(".")
    try:
        value: Any = context[parts[0]]
    except KeyError:
        raise TemplateError(f"undefined variable {parts[0]!r}") from None
    for attr in parts[1:]:
        if isinstance(value, dict):
            try:
                value = value[attr]
            except KeyError:
                raise TemplateError(f"no key {attr!r} in {parts[0]!r}") from None
        elif hasattr(value, attr):
            value = getattr(value, attr)
        else:
            raise TemplateError(f"cannot resolve {expr!r} at {attr!r}")
    return value


def _evaluate_condition(expr: str, context: Dict[str, Any]) -> bool:
    expr = expr.strip()
    for op, fn in (("==", lambda a, b: a == b), ("!=", lambda a, b: a != b)):
        if op in expr:
            left, right = expr.split(op, 1)
            return fn(_lookup(left, context), _lookup(right, context))
    if expr.startswith("not "):
        return not bool(_lookup(expr[4:], context))
    return bool(_lookup(expr, context))


class Template:
    """A compiled template; render with a context dict."""

    def __init__(self, source: str) -> None:
        self.source = source
        tokens = [t for t in _TOKEN_RE.split(source) if t]
        self._nodes, rest = self._parse(tokens, 0, ())
        if rest != len(tokens):
            raise TemplateError("unexpected trailing block tag")

    # ------------------------------------------------------------- parsing
    def _parse(self, tokens: List[str], pos: int, stop: Tuple[str, ...]) -> Tuple[List[Node], int]:
        nodes: List[Node] = []
        while pos < len(tokens):
            tok = tokens[pos]
            if tok.startswith("{{"):
                nodes.append(_Expr(tok[2:-2].strip()))
                pos += 1
            elif tok.startswith("{%"):
                tag = tok[2:-2].strip()
                keyword = tag.split(None, 1)[0]
                if keyword in stop:
                    return nodes, pos
                if keyword == "for":
                    m = re.fullmatch(r"for\s+(\w+)\s+in\s+(.+)", tag)
                    if not m:
                        raise TemplateError(f"malformed for tag: {tag!r}")
                    body, pos = self._parse(tokens, pos + 1, ("endfor",))
                    if pos >= len(tokens):
                        raise TemplateError("unterminated for block")
                    pos += 1  # consume endfor
                    nodes.append(_For(var=m.group(1), iterable=m.group(2), body=body))
                elif keyword == "if":
                    node = _If()
                    cond: Optional[str] = tag[2:].strip()
                    while True:
                        body, pos = self._parse(tokens, pos + 1, ("elif", "else", "endif"))
                        if pos >= len(tokens):
                            raise TemplateError("unterminated if block")
                        node.branches.append((cond, body))
                        closer = tokens[pos][2:-2].strip()
                        if closer.startswith("elif"):
                            cond = closer[4:].strip()
                            continue
                        if closer == "else":
                            cond = None
                            continue
                        break  # endif
                    pos += 1  # consume endif
                    nodes.append(node)
                else:
                    raise TemplateError(f"unknown tag {keyword!r}")
            else:
                nodes.append(_Text(tok))
                pos += 1
        if stop:
            raise TemplateError(f"expected one of {stop} before end of template")
        return nodes, pos

    # ------------------------------------------------------------ rendering
    def render(self, **context: Any) -> str:
        out: List[str] = []
        self._render_nodes(self._nodes, dict(context), out)
        return "".join(out)

    def _render_nodes(self, nodes: List[Node], context: Dict[str, Any], out: List[str]) -> None:
        for node in nodes:
            if isinstance(node, _Text):
                out.append(node.text)
            elif isinstance(node, _Expr):
                out.append(str(_lookup(node.expr, context)))
            elif isinstance(node, _For):
                iterable = _lookup(node.iterable, context)
                items = list(iterable)
                for i, item in enumerate(items):
                    scope = dict(context)
                    scope[node.var] = item
                    scope["loop"] = {
                        "index0": i,
                        "index": i + 1,
                        "first": i == 0,
                        "last": i == len(items) - 1,
                    }
                    self._render_nodes(node.body, scope, out)
            elif isinstance(node, _If):
                for cond, body in node.branches:
                    if cond is None or _evaluate_condition(cond, context):
                        self._render_nodes(body, context, out)
                        break
