"""Kernel program objects — what the rewriter emits and the runtime prices.

A :class:`KernelProgram` is the simulated analogue of a compiled OpenCL
kernel: the rendered source plus the schedule metadata the cost model needs
(how many bytes of weights ride along, whether the loop is pipelined and
branch-free).  The execution styles map to the paper's Figure 5 comparison:

- ``RESIDENT``   — no embedded loads (weights already in texture memory).
- ``BRANCHY``    — naive conditional interleave: warp divergence penalty.
- ``PIPELINED``  — FlashMem's branch-free software pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.gpusim.device import DeviceProfile
from repro.gpusim.kernels import KernelCostModel
from repro.graph.ops import OpSpec


class ExecStyle(enum.Enum):
    RESIDENT = "resident"
    BRANCHY = "branchy"
    PIPELINED = "pipelined"


#: Relative latency penalty of the divergent interleave (§4.4: conditional
#: checks "cause warp-level branch divergence and reduce SIMT efficiency").
BRANCH_DIVERGENCE_PENALTY = 0.35


@dataclass
class KernelProgram:
    """One instantiated kernel: source text + costing metadata."""

    name: str
    op: OpSpec
    source: str
    style: ExecStyle
    #: Weight bytes this kernel streams UM -> TM while computing.
    embedded_load_bytes: int = 0
    #: (weight name, bytes) detail of the embedded segments.
    segments: List[tuple] = field(default_factory=list)

    @property
    def branch_free(self) -> bool:
        return self.style is not ExecStyle.BRANCHY

    @property
    def pipelined(self) -> bool:
        return self.style is ExecStyle.PIPELINED

    def time_ms(self, device: DeviceProfile, *, efficiency: float = 1.0) -> float:
        """Latency of this kernel on ``device``.

        Pipelined kernels pay the interference model's (mostly hidden)
        embedded-load cost; branchy kernels additionally pay the divergence
        penalty on their whole body.
        """
        cost = KernelCostModel(device)
        base = cost.time_with_load_ms(self.op, self.embedded_load_bytes, efficiency=efficiency)
        if self.style is ExecStyle.BRANCHY and self.embedded_load_bytes > 0:
            return base * (1.0 + BRANCH_DIVERGENCE_PENALTY)
        return base


@dataclass
class KernelBundle:
    """All programs for one model, indexed by layer."""

    model: str
    programs: Dict[int, KernelProgram] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.programs)

    def total_embedded_bytes(self) -> int:
        return sum(p.embedded_load_bytes for p in self.programs.values())

    def styles(self) -> Dict[ExecStyle, int]:
        out: Dict[ExecStyle, int] = {}
        for p in self.programs.values():
            out[p.style] = out.get(p.style, 0) + 1
        return out
