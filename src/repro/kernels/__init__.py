"""Kernel rewriting: template engine, kernel templates, rewriter (§4.4)."""

from repro.kernels.codegen import (
    BRANCH_DIVERGENCE_PENALTY,
    ExecStyle,
    KernelBundle,
    KernelProgram,
)
from repro.kernels.rewriter import KernelRewriter, transform_kernel_source
from repro.kernels.templating import Template, TemplateError

__all__ = [
    "BRANCH_DIVERGENCE_PENALTY",
    "ExecStyle",
    "KernelBundle",
    "KernelProgram",
    "KernelRewriter",
    "transform_kernel_source",
    "Template",
    "TemplateError",
]
