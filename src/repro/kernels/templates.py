"""Kernel templates (paper §4.4, Figure 5).

Each template renders an OpenCL-flavoured *simulated kernel program*.  The
strings are faithful to the structures the paper contrasts:

- :data:`NAIVE_MATMUL` — Figure 5(a): plain load-then-compute MAC loop.
- :data:`BRANCHY_INTERLEAVED` — the strawman the paper warns about: per-
  thread conditionals deciding load vs compute (warp divergence).
- :data:`PIPELINED_MATMUL` — Figure 5(b): branch-free software pipeline —
  every iteration prefetches the *next* tile of the streamed weight while
  computing the current one, plus an epilogue draining the pipeline.
- :data:`ELEMENTAL_STREAM` — elementwise kernel with vectorised embedded
  loads appended to its linear pass.
- :data:`TRANSFORM_KERNEL` — a dedicated layout-transformation kernel (the
  preloading frameworks' path FlashMem avoids).

The simulator never parses the source — cost comes from the accompanying
:class:`~repro.kernels.codegen.KernelProgram` metadata — but the rendered
text makes plans inspectable and keeps the rewriter honest about what each
schedule means.
"""

NAIVE_MATMUL = """\
// {{ name }}: naive matmul (Figure 5a) — all operands resident in texture
__kernel void {{ name }}(
    __read_only image2d_t tensor_a,
    __read_only image2d_t tensor_b,
    __write_only image2d_t output)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    half4 acc = (half4)(0.0h);
    for (int k = 0; k < {{ k_tiles }}; ++k) {
        half4 a = read_imageh(tensor_a, sampler, (int2)(k, gy));
        half4 b = read_imageh(tensor_b, sampler, (int2)(gx, k));
        acc = fma(a, b, acc);                    // MAC
    }
    write_imageh(output, (int2)(gx, gy), acc);
}
"""

BRANCHY_INTERLEAVED = """\
// {{ name }}: naive interleave — conditional load/compute causes
// warp-level branch divergence (the approach §4.4 rejects)
__kernel void {{ name }}(
    __read_only image2d_t tensor_a,
    __read_only image2d_t tensor_b,
    __global const half* staged_weight,
    __write_only image2d_t weight_texture,
    __write_only image2d_t output)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    half4 acc = (half4)(0.0h);
    for (int k = 0; k < {{ k_tiles }}; ++k) {
        if (gx % {{ load_stride }} == 0) {       // DIVERGENT: some threads load
            vstore_half4(vload4(k, staged_weight), k,
                         (__global half*)weight_texture);
        } else {                                  // ... while others compute
            half4 a = read_imageh(tensor_a, sampler, (int2)(k, gy));
            half4 b = read_imageh(tensor_b, sampler, (int2)(gx, k));
            acc = fma(a, b, acc);
        }
    }
    write_imageh(output, (int2)(gx, gy), acc);
}
"""

PIPELINED_MATMUL = """\
// {{ name }}: branch-free pipelined matmul + embedded weight loading
// (Figure 5b) — prefetch tile t+1 of TensorL while computing tile t.
__kernel void {{ name }}(
    __read_only image2d_t tensor_a,
    __read_only image2d_t tensor_b,
    __global const half* staged_weights,   // {{ stream_bytes }} B staged in UM
    __write_only image2d_t weight_texture, // 2.5D destination tiles
    __write_only image2d_t output)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    half4 acc = (half4)(0.0h);
    // Prologue: issue the first prefetch before any arithmetic.
    half4 staged = vload4(gx, staged_weights);
    for (int t = 0; t < {{ pipeline_tiles }}; ++t) {
        // 1) commit the tile prefetched last iteration (uniform, no branch)
        write_imageh(weight_texture, (int2)(gx, t), staged);
        // 2) issue the next prefetch — latency hides behind the MACs below
        staged = vload4(gx + (t + 1) * {{ tile_stride }}, staged_weights);
        // 3) compute the current block
{% for u in unroll %}        acc = fma(read_imageh(tensor_a, sampler, (int2)({{ u }} + t * {{ unroll_len }}, gy)),
                  read_imageh(tensor_b, sampler, (int2)(gx, {{ u }} + t * {{ unroll_len }})), acc);
{% endfor %}    }
    // Epilogue: drain remaining arithmetic with the pipeline disengaged.
    for (int k = {{ pipeline_tiles }} * {{ unroll_len }}; k < {{ k_tiles }}; ++k) {
        acc = fma(read_imageh(tensor_a, sampler, (int2)(k, gy)),
                  read_imageh(tensor_b, sampler, (int2)(gx, k)), acc);
    }
    write_imageh(output, (int2)(gx, gy), acc);
}
"""

ELEMENTAL_STREAM = """\
// {{ name }}: elementwise {{ op }} with vectorised embedded loads —
// the linear pass leaves the texture path idle, so up to 300% extra
// data rides along (Table 5 threshold for elemental operators).
__kernel void {{ name }}(
    __read_only image2d_t input{% if binary %},
    __read_only image2d_t input_b{% endif %},
{% if stream_bytes != 0 %}    __global const half* staged_weights,
    __write_only image2d_t weight_texture,
{% endif %}    __write_only image2d_t output)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    half4 v = read_imageh(input, sampler, (int2)(gx, gy));
{% if binary %}    v += read_imageh(input_b, sampler, (int2)(gx, gy));
{% else %}    v = {{ op }}(v);
{% endif %}    write_imageh(output, (int2)(gx, gy), v);
{% if stream_bytes != 0 %}    // Embedded load: uniform across the warp, no divergence.
    write_imageh(weight_texture, (int2)(gx, gy),
                 vload4(gy * get_global_size(0) + gx, staged_weights));
{% endif %}}
"""

TRANSFORM_KERNEL = """\
// {{ name }}: dedicated 2.5D layout transformation ({{ nbytes }} B).
// This is the standalone pass preloading frameworks pay per tensor at
// initialization; FlashMem's rewriting folds it into compute kernels.
__kernel void {{ name }}(
    __global const half* linear_weights,
    __write_only image2d_t weight_texture)
{
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    const int row = gy * {{ texture_width }} + gx;
    write_imageh(weight_texture, (int2)(gx, gy), vload4(row, linear_weights));
}
"""
