"""Template-based kernel rewriting (paper §4.4).

Given a lowered graph and its overlap plan, instantiate a kernel program per
layer: layers the plan assigns embedded loads get the branch-free pipelined
template with the staged byte count baked in; everything else gets the plain
resident-weights template.  No model-specific kernel code is written by hand
— exactly the engineering claim the paper makes for its Jinja pipeline.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.graph.dag import Graph, Node
from repro.graph.ops import OpKind
from repro.kernels import templates
from repro.kernels.codegen import ExecStyle, KernelBundle, KernelProgram
from repro.kernels.templating import Template
from repro.opg.plan import OverlapPlan

_NAIVE = Template(templates.NAIVE_MATMUL)
_BRANCHY = Template(templates.BRANCHY_INTERLEAVED)
_PIPELINED = Template(templates.PIPELINED_MATMUL)
_ELEMENTAL = Template(templates.ELEMENTAL_STREAM)
_TRANSFORM = Template(templates.TRANSFORM_KERNEL)

_UNROLL = 4


def _sanitize(name: str) -> str:
    return "k_" + "".join(c if c.isalnum() else "_" for c in name)


class KernelRewriter:
    """Instantiates kernel programs from the computational graph + plan.

    ``style`` selects how layers with embedded loads are generated:
    PIPELINED (FlashMem), BRANCHY (the divergent strawman, for the
    ablation), or RESIDENT (ignore embedded loads — used by runtimes that
    transform weights with dedicated kernels instead).
    """

    def __init__(self, *, style: ExecStyle = ExecStyle.PIPELINED) -> None:
        self.style = style

    def rewrite_graph(self, graph: Graph, plan: Optional[OverlapPlan] = None) -> KernelBundle:
        bundle = KernelBundle(model=graph.name)
        # Byte-exact per-layer staging from the schedules' segment offsets
        # (the last segment of a weight is usually a partial chunk).
        per_layer: dict = {}
        if plan is not None and self.style is not ExecStyle.RESIDENT:
            for name, sched in plan.schedules.items():
                if sched.preloaded:
                    continue
                for seg in sched.segments():
                    per_layer.setdefault(seg.layer, []).append(
                        (name, seg.end_offset - seg.start_offset)
                    )
        for node in graph.nodes():
            segments = per_layer.get(node.index, [])
            embedded = sum(nbytes for _, nbytes in segments)
            bundle.programs[node.index] = self.rewrite_node(node, embedded, segments)
        return bundle

    def rewrite_node(self, node: Node, embedded_bytes: int, segments=()) -> KernelProgram:
        name = _sanitize(node.name)
        style = self.style if embedded_bytes > 0 else ExecStyle.RESIDENT
        source = self._render(node, name, style, embedded_bytes)
        return KernelProgram(
            name=name,
            op=node.spec,
            source=source,
            style=style,
            embedded_load_bytes=embedded_bytes,
            segments=list(segments),
        )

    def _render(self, node: Node, name: str, style: ExecStyle, embedded_bytes: int) -> str:
        spec = node.spec
        k_tiles = max(1, int(spec.attrs.get("k", spec.input_specs[0].shape[-1])) // 4)
        if spec.kind in (OpKind.MATMUL, OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D, OpKind.ATTENTION_SCORE):
            if style is ExecStyle.PIPELINED and embedded_bytes > 0:
                pipeline_tiles = max(1, k_tiles // _UNROLL)
                return _PIPELINED.render(
                    name=name,
                    k_tiles=k_tiles,
                    pipeline_tiles=pipeline_tiles,
                    unroll=list(range(_UNROLL)),
                    unroll_len=_UNROLL,
                    tile_stride=max(1, embedded_bytes // (8 * pipeline_tiles)),
                    stream_bytes=embedded_bytes,
                )
            if style is ExecStyle.BRANCHY and embedded_bytes > 0:
                return _BRANCHY.render(name=name, k_tiles=k_tiles, load_stride=8)
            return _NAIVE.render(name=name, k_tiles=k_tiles)
        # Elemental / hierarchical / everything else uses the linear-pass
        # template (hierarchical layers never get embedded loads by plan).
        op_fn = {
            OpKind.GELU: "gelu_approx",
            OpKind.ACTIVATION: "relu",
            OpKind.SOFTMAX: "softmax_stage",
            OpKind.LAYERNORM: "layernorm_stage",
        }.get(spec.kind, "copy")
        return _ELEMENTAL.render(
            name=name,
            op=op_fn,
            binary=len(spec.input_specs) > 1,
            stream_bytes=embedded_bytes,
        )


def transform_kernel_source(weight_name: str, nbytes: int) -> str:
    """Source of a dedicated transformation kernel for one weight.

    This is the path preloading frameworks (and FlashMem's own preloaded
    set W) use at initialization.
    """
    width = max(1, int(math.sqrt(max(1, nbytes // 8))))
    return _TRANSFORM.render(name=_sanitize(weight_name) + "_xform", nbytes=nbytes, texture_width=width)
