"""Low-level operator definitions for the DNN graph IR.

The paper lowers each model to a DAG of *low-level operator nodes* (Table 6
"# Layers" counts these, not high-level blocks).  Every node carries enough
shape information for the simulator's roofline cost model (FLOPs, bytes read
and written) and for the load-capacity classifier (operator kind).

Operator taxonomy follows Table 5 of the paper:

- **Elemental** operators (elementwise arithmetic, activations) stream their
  inputs linearly, are memory-bound, and tolerate a *medium* amount of
  concurrent data loading.
- **Reusable** operators (Conv, MatMul) have structured reuse and high
  arithmetic intensity; they tolerate a *high* concurrent load.
- **Hierarchical** operators (Softmax, LayerNorm, reductions) synchronise in
  stages and tolerate essentially *no* concurrent load.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


class OpKind(enum.Enum):
    """Low-level operator kinds produced by graph lowering."""

    MATMUL = "MatMul"
    CONV2D = "Conv2D"
    DEPTHWISE_CONV2D = "DepthwiseConv2D"
    ADD = "Add"
    MUL = "Mul"
    ACTIVATION = "Activation"
    GELU = "GeLU"
    SOFTMAX = "Softmax"
    LAYERNORM = "LayerNorm"
    GROUPNORM = "GroupNorm"
    BATCHNORM = "BatchNorm"
    POOL = "Pool"
    EMBEDDING = "Embedding"
    RESHAPE = "Reshape"
    TRANSPOSE = "Transpose"
    CONCAT = "Concat"
    SLICE = "Slice"
    UPSAMPLE = "Upsample"
    ATTENTION_SCORE = "AttentionScore"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OpClass(enum.Enum):
    """Load-capacity classification of an operator (paper Table 5)."""

    ELEMENTAL = "elemental"
    REUSABLE = "reusable"
    HIERARCHICAL = "hierarchical"
    LAYOUT = "layout"  # Reshape/Transpose/Slice: pure layout, near-zero cost

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Mapping from operator kind to its load-capacity class.
OP_CLASS: Dict[OpKind, OpClass] = {
    OpKind.MATMUL: OpClass.REUSABLE,
    OpKind.CONV2D: OpClass.REUSABLE,
    OpKind.DEPTHWISE_CONV2D: OpClass.REUSABLE,
    OpKind.ATTENTION_SCORE: OpClass.REUSABLE,
    OpKind.ADD: OpClass.ELEMENTAL,
    OpKind.MUL: OpClass.ELEMENTAL,
    OpKind.ACTIVATION: OpClass.ELEMENTAL,
    OpKind.GELU: OpClass.ELEMENTAL,
    OpKind.EMBEDDING: OpClass.ELEMENTAL,
    OpKind.UPSAMPLE: OpClass.ELEMENTAL,
    OpKind.POOL: OpClass.ELEMENTAL,
    OpKind.SOFTMAX: OpClass.HIERARCHICAL,
    OpKind.LAYERNORM: OpClass.HIERARCHICAL,
    OpKind.GROUPNORM: OpClass.HIERARCHICAL,
    OpKind.BATCHNORM: OpClass.HIERARCHICAL,
    OpKind.RESHAPE: OpClass.LAYOUT,
    OpKind.TRANSPOSE: OpClass.LAYOUT,
    OpKind.CONCAT: OpClass.LAYOUT,
    OpKind.SLICE: OpClass.LAYOUT,
}


def op_class(kind: OpKind) -> OpClass:
    """Return the load-capacity class for an operator kind."""
    return OP_CLASS[kind]


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of a tensor flowing through (or stored by) the graph.

    ``dtype_bytes`` defaults to 2 (fp16), matching the paper's primary
    experimental configuration.
    """

    shape: Tuple[int, ...]
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("TensorSpec requires a non-empty shape")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"TensorSpec dims must be positive, got {self.shape}")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    @property
    def numel(self) -> int:
        """Number of scalar elements."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return self.numel * self.dtype_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(d) for d in self.shape) + f":{self.dtype_bytes}B"


@dataclass(frozen=True)
class WeightSpec:
    """A weight tensor owned by one operator node.

    Weights are the streaming unit of FlashMem: the OPG solver decides when
    each weight moves disk -> unified memory (``z_w``) and in which chunks it
    is transformed into texture memory (``x_{w, l}``).
    """

    name: str
    tensor: TensorSpec

    @property
    def nbytes(self) -> int:
        return self.tensor.nbytes

    @property
    def numel(self) -> int:
        return self.tensor.numel

    def chunk_count(self, chunk_bytes: int) -> int:
        """Number of fixed-size chunks T(w) the weight splits into."""
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        return max(1, math.ceil(self.nbytes / chunk_bytes))


@dataclass
class OpSpec:
    """One low-level operator node prior to insertion in a :class:`~repro.graph.dag.Graph`.

    Attributes:
        kind: operator kind; determines the cost model and load class.
        name: unique human-readable node name.
        flops: multiply-accumulate count * 2 (we store FLOPs, i.e. 2*MACs for
            compute ops; elementwise ops count one FLOP per element).
        input_specs: activation inputs (weights are carried separately).
        output_spec: the produced activation tensor.
        weights: weight tensors this node consumes.
        attrs: free-form attributes (kernel size, heads, etc.).
    """

    kind: OpKind
    name: str
    flops: int
    input_specs: Sequence[TensorSpec]
    output_spec: TensorSpec
    weights: Sequence[WeightSpec] = field(default_factory=tuple)
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError("flops must be non-negative")
        self.weights = tuple(self.weights)
        self.input_specs = tuple(self.input_specs)

    @property
    def op_class(self) -> OpClass:
        return op_class(self.kind)

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (FLOPs / 2, floor)."""
        return self.flops // 2

    @property
    def weight_bytes(self) -> int:
        return sum(w.nbytes for w in self.weights)

    @property
    def input_bytes(self) -> int:
        return sum(t.nbytes for t in self.input_specs)

    @property
    def output_bytes(self) -> int:
        return self.output_spec.nbytes

    @property
    def bytes_moved(self) -> int:
        """Total bytes touched by the kernel (activations + weights).

        Used by the roofline cost model as the memory-traffic term.
        """
        return self.input_bytes + self.output_bytes + self.weight_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; >1 means increasingly compute-bound."""
        moved = self.bytes_moved
        return self.flops / moved if moved else 0.0


def matmul_spec(
    name: str,
    m: int,
    k: int,
    n: int,
    *,
    dtype_bytes: int = 2,
    weight_name: Optional[str] = None,
    bias: bool = False,
) -> OpSpec:
    """Build an ``(m, k) x (k, n)`` MatMul node with an ``(k, n)`` weight.

    ``weight_name`` defaults to ``{name}.w``.  When ``bias`` is set an
    ``(n,)`` bias weight is attached as well (fused bias add).
    """
    wname = weight_name or f"{name}.w"
    weights = [WeightSpec(wname, TensorSpec((k, n), dtype_bytes))]
    if bias:
        weights.append(WeightSpec(f"{name}.b", TensorSpec((n,), dtype_bytes)))
    return OpSpec(
        kind=OpKind.MATMUL,
        name=name,
        flops=2 * m * k * n,
        input_specs=[TensorSpec((m, k), dtype_bytes)],
        output_spec=TensorSpec((m, n), dtype_bytes),
        weights=weights,
        attrs={"m": m, "k": k, "n": n},
    )


def conv2d_spec(
    name: str,
    h: int,
    w: int,
    c_in: int,
    c_out: int,
    kernel: int,
    *,
    stride: int = 1,
    dtype_bytes: int = 2,
    depthwise: bool = False,
    bias: bool = True,
) -> OpSpec:
    """Build a Conv2D (or depthwise Conv2D) node.

    ``h``/``w`` are the *input* spatial dims; output dims are computed from
    ``stride`` with 'same' padding semantics.
    """
    if kernel <= 0 or stride <= 0:
        raise ValueError("kernel and stride must be positive")
    oh = max(1, math.ceil(h / stride))
    ow = max(1, math.ceil(w / stride))
    if depthwise:
        if c_in != c_out:
            raise ValueError("depthwise conv requires c_in == c_out")
        wshape: Tuple[int, ...] = (c_in, kernel, kernel)
        flops = 2 * oh * ow * c_in * kernel * kernel
        kind = OpKind.DEPTHWISE_CONV2D
    else:
        wshape = (c_out, c_in, kernel, kernel)
        flops = 2 * oh * ow * c_out * c_in * kernel * kernel
        kind = OpKind.CONV2D
    weights = [WeightSpec(f"{name}.w", TensorSpec(wshape, dtype_bytes))]
    if bias:
        weights.append(WeightSpec(f"{name}.b", TensorSpec((c_out,), dtype_bytes)))
    return OpSpec(
        kind=kind,
        name=name,
        flops=flops,
        input_specs=[TensorSpec((c_in, h, w), dtype_bytes)],
        output_spec=TensorSpec((c_out, oh, ow), dtype_bytes),
        weights=weights,
        attrs={"kernel": kernel, "stride": stride},
    )


def elementwise_spec(
    name: str,
    kind: OpKind,
    shape: Tuple[int, ...],
    *,
    n_inputs: int = 1,
    dtype_bytes: int = 2,
    flops_per_elem: int = 1,
) -> OpSpec:
    """Build an elementwise node (Add/Mul/Activation/GeLU/...)."""
    if op_class(kind) is not OpClass.ELEMENTAL:
        raise ValueError(f"{kind} is not an elemental operator")
    t = TensorSpec(shape, dtype_bytes)
    return OpSpec(
        kind=kind,
        name=name,
        flops=flops_per_elem * t.numel,
        input_specs=[t] * n_inputs,
        output_spec=t,
    )


def normalization_spec(
    name: str,
    kind: OpKind,
    shape: Tuple[int, ...],
    *,
    channels: Optional[int] = None,
    dtype_bytes: int = 2,
) -> OpSpec:
    """Build a hierarchical normalisation node (LayerNorm/GroupNorm/...).

    Carries small per-channel scale/shift weights.
    """
    if op_class(kind) is not OpClass.HIERARCHICAL:
        raise ValueError(f"{kind} is not a hierarchical operator")
    t = TensorSpec(shape, dtype_bytes)
    c = channels if channels is not None else shape[-1]
    weights = [
        WeightSpec(f"{name}.gamma", TensorSpec((c,), dtype_bytes)),
        WeightSpec(f"{name}.beta", TensorSpec((c,), dtype_bytes)),
    ]
    # Normalisations do ~5 passes worth of arithmetic per element
    return OpSpec(
        kind=kind,
        name=name,
        flops=5 * t.numel,
        input_specs=[t],
        output_spec=t,
        weights=weights,
    )


def softmax_spec(name: str, shape: Tuple[int, ...], *, dtype_bytes: int = 2) -> OpSpec:
    """Build a Softmax node (hierarchical: max, exp, sum, divide stages)."""
    t = TensorSpec(shape, dtype_bytes)
    return OpSpec(
        kind=OpKind.SOFTMAX,
        name=name,
        flops=4 * t.numel,
        input_specs=[t],
        output_spec=t,
    )


def layout_spec(
    name: str,
    kind: OpKind,
    in_shape: Tuple[int, ...],
    out_shape: Tuple[int, ...],
    *,
    dtype_bytes: int = 2,
) -> OpSpec:
    """Build a layout node (Reshape/Transpose/Concat/Slice).

    Under SmartMem-style 2.5D layouts most of these are eliminated; they
    remain in the IR so the lowering/fusion passes have something to remove.
    """
    if op_class(kind) is not OpClass.LAYOUT:
        raise ValueError(f"{kind} is not a layout operator")
    return OpSpec(
        kind=kind,
        name=name,
        flops=0,
        input_specs=[TensorSpec(in_shape, dtype_bytes)],
        output_spec=TensorSpec(out_shape, dtype_bytes),
    )
