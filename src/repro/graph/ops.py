"""Low-level operator definitions for the DNN graph IR.

The paper lowers each model to a DAG of *low-level operator nodes* (Table 6
"# Layers" counts these, not high-level blocks).  Every node carries enough
shape information for the simulator's roofline cost model (FLOPs, bytes read
and written) and for the load-capacity classifier (operator kind).

Operator taxonomy follows Table 5 of the paper:

- **Elemental** operators (elementwise arithmetic, activations) stream their
  inputs linearly, are memory-bound, and tolerate a *medium* amount of
  concurrent data loading.
- **Reusable** operators (Conv, MatMul) have structured reuse and high
  arithmetic intensity; they tolerate a *high* concurrent load.
- **Hierarchical** operators (Softmax, LayerNorm, reductions) synchronise in
  stages and tolerate essentially *no* concurrent load.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


class OpKind(enum.Enum):
    """Low-level operator kinds produced by graph lowering."""

    MATMUL = "MatMul"
    CONV2D = "Conv2D"
    DEPTHWISE_CONV2D = "DepthwiseConv2D"
    ADD = "Add"
    MUL = "Mul"
    ACTIVATION = "Activation"
    GELU = "GeLU"
    SOFTMAX = "Softmax"
    LAYERNORM = "LayerNorm"
    GROUPNORM = "GroupNorm"
    BATCHNORM = "BatchNorm"
    POOL = "Pool"
    EMBEDDING = "Embedding"
    RESHAPE = "Reshape"
    TRANSPOSE = "Transpose"
    CONCAT = "Concat"
    SLICE = "Slice"
    UPSAMPLE = "Upsample"
    ATTENTION_SCORE = "AttentionScore"
    KV_APPEND = "KVAppend"
    FLASH_ATTENTION = "FlashAttention"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OpClass(enum.Enum):
    """Load-capacity classification of an operator (paper Table 5)."""

    ELEMENTAL = "elemental"
    REUSABLE = "reusable"
    HIERARCHICAL = "hierarchical"
    LAYOUT = "layout"  # Reshape/Transpose/Slice: pure layout, near-zero cost

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Mapping from operator kind to its load-capacity class.
OP_CLASS: Dict[OpKind, OpClass] = {
    OpKind.MATMUL: OpClass.REUSABLE,
    OpKind.CONV2D: OpClass.REUSABLE,
    OpKind.DEPTHWISE_CONV2D: OpClass.REUSABLE,
    OpKind.ATTENTION_SCORE: OpClass.REUSABLE,
    OpKind.FLASH_ATTENTION: OpClass.REUSABLE,
    OpKind.ADD: OpClass.ELEMENTAL,
    OpKind.KV_APPEND: OpClass.ELEMENTAL,
    OpKind.MUL: OpClass.ELEMENTAL,
    OpKind.ACTIVATION: OpClass.ELEMENTAL,
    OpKind.GELU: OpClass.ELEMENTAL,
    OpKind.EMBEDDING: OpClass.ELEMENTAL,
    OpKind.UPSAMPLE: OpClass.ELEMENTAL,
    OpKind.POOL: OpClass.ELEMENTAL,
    OpKind.SOFTMAX: OpClass.HIERARCHICAL,
    OpKind.LAYERNORM: OpClass.HIERARCHICAL,
    OpKind.GROUPNORM: OpClass.HIERARCHICAL,
    OpKind.BATCHNORM: OpClass.HIERARCHICAL,
    OpKind.RESHAPE: OpClass.LAYOUT,
    OpKind.TRANSPOSE: OpClass.LAYOUT,
    OpKind.CONCAT: OpClass.LAYOUT,
    OpKind.SLICE: OpClass.LAYOUT,
}


def op_class(kind: OpKind) -> OpClass:
    """Return the load-capacity class for an operator kind."""
    return OP_CLASS[kind]


#: Default K/V tokens per FlashAttention tile — the granularity at which the
#: decode runtime grows, spills and streams KV-cache state.  Shared by the
#: graph builders, the tiled kernel cost model and the residency planner so
#: the three layers agree on tile boundaries.
FLASH_TILE_TOKENS = 256


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of a tensor flowing through (or stored by) the graph.

    ``dtype_bytes`` defaults to 2 (fp16), matching the paper's primary
    experimental configuration.
    """

    shape: Tuple[int, ...]
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("TensorSpec requires a non-empty shape")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"TensorSpec dims must be positive, got {self.shape}")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    @property
    def numel(self) -> int:
        """Number of scalar elements."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return self.numel * self.dtype_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(d) for d in self.shape) + f":{self.dtype_bytes}B"


@dataclass(frozen=True)
class WeightSpec:
    """A weight tensor owned by one operator node.

    Weights are the streaming unit of FlashMem: the OPG solver decides when
    each weight moves disk -> unified memory (``z_w``) and in which chunks it
    is transformed into texture memory (``x_{w, l}``).
    """

    name: str
    tensor: TensorSpec

    @property
    def nbytes(self) -> int:
        return self.tensor.nbytes

    @property
    def numel(self) -> int:
        return self.tensor.numel

    def chunk_count(self, chunk_bytes: int) -> int:
        """Number of fixed-size chunks T(w) the weight splits into."""
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        return max(1, math.ceil(self.nbytes / chunk_bytes))


@dataclass(frozen=True)
class KVCacheSpec:
    """A per-layer key/value cache: the growing tensor of the decode phase.

    Unlike a :class:`WeightSpec`, a KV cache is written *during* execution —
    one (K, V) row pair per generated token — so its footprint is a function
    of the number of tokens attended over, not a constant.  The residency
    planner (``opg.lcopg.plan_kv_residency``) decides how many tile-sized
    slices of it stay resident in GPU memory; older tiles spill to disk and
    are re-streamed through the tiled attention kernel.
    """

    name: str
    heads: int
    head_dim: int
    max_context: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.heads <= 0 or self.head_dim <= 0:
            raise ValueError("heads and head_dim must be positive")
        if self.max_context <= 0:
            raise ValueError("max_context must be positive")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    @property
    def token_bytes(self) -> int:
        """Bytes appended per decoded token (one K row + one V row)."""
        return 2 * self.heads * self.head_dim * self.dtype_bytes

    def bytes_at(self, tokens: int) -> int:
        """Cache footprint after ``tokens`` tokens are cached."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return tokens * self.token_bytes

    def tile_bytes(self, tile_tokens: int) -> int:
        """Bytes of one attention tile (``tile_tokens`` K rows + V rows)."""
        if tile_tokens <= 0:
            raise ValueError("tile_tokens must be positive")
        return tile_tokens * self.token_bytes


@dataclass
class OpSpec:
    """One low-level operator node prior to insertion in a :class:`~repro.graph.dag.Graph`.

    Attributes:
        kind: operator kind; determines the cost model and load class.
        name: unique human-readable node name.
        flops: multiply-accumulate count * 2 (we store FLOPs, i.e. 2*MACs for
            compute ops; elementwise ops count one FLOP per element).
        input_specs: activation inputs (weights are carried separately).
        output_spec: the produced activation tensor.
        weights: weight tensors this node consumes.
        attrs: free-form attributes (kernel size, heads, etc.).
    """

    kind: OpKind
    name: str
    flops: int
    input_specs: Sequence[TensorSpec]
    output_spec: TensorSpec
    weights: Sequence[WeightSpec] = field(default_factory=tuple)
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError("flops must be non-negative")
        self.weights = tuple(self.weights)
        self.input_specs = tuple(self.input_specs)

    @property
    def op_class(self) -> OpClass:
        return op_class(self.kind)

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (FLOPs / 2, floor)."""
        return self.flops // 2

    @property
    def weight_bytes(self) -> int:
        return sum(w.nbytes for w in self.weights)

    @property
    def input_bytes(self) -> int:
        return sum(t.nbytes for t in self.input_specs)

    @property
    def output_bytes(self) -> int:
        return self.output_spec.nbytes

    @property
    def bytes_moved(self) -> int:
        """Total bytes touched by the kernel (activations + weights).

        Used by the roofline cost model as the memory-traffic term.
        """
        return self.input_bytes + self.output_bytes + self.weight_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; >1 means increasingly compute-bound."""
        moved = self.bytes_moved
        return self.flops / moved if moved else 0.0


def matmul_spec(
    name: str,
    m: int,
    k: int,
    n: int,
    *,
    dtype_bytes: int = 2,
    weight_name: Optional[str] = None,
    bias: bool = False,
) -> OpSpec:
    """Build an ``(m, k) x (k, n)`` MatMul node with an ``(k, n)`` weight.

    ``weight_name`` defaults to ``{name}.w``.  When ``bias`` is set an
    ``(n,)`` bias weight is attached as well (fused bias add).
    """
    wname = weight_name or f"{name}.w"
    weights = [WeightSpec(wname, TensorSpec((k, n), dtype_bytes))]
    if bias:
        weights.append(WeightSpec(f"{name}.b", TensorSpec((n,), dtype_bytes)))
    return OpSpec(
        kind=OpKind.MATMUL,
        name=name,
        flops=2 * m * k * n,
        input_specs=[TensorSpec((m, k), dtype_bytes)],
        output_spec=TensorSpec((m, n), dtype_bytes),
        weights=weights,
        attrs={"m": m, "k": k, "n": n},
    )


def conv2d_spec(
    name: str,
    h: int,
    w: int,
    c_in: int,
    c_out: int,
    kernel: int,
    *,
    stride: int = 1,
    dtype_bytes: int = 2,
    depthwise: bool = False,
    bias: bool = True,
) -> OpSpec:
    """Build a Conv2D (or depthwise Conv2D) node.

    ``h``/``w`` are the *input* spatial dims; output dims are computed from
    ``stride`` with 'same' padding semantics.
    """
    if kernel <= 0 or stride <= 0:
        raise ValueError("kernel and stride must be positive")
    oh = max(1, math.ceil(h / stride))
    ow = max(1, math.ceil(w / stride))
    if depthwise:
        if c_in != c_out:
            raise ValueError("depthwise conv requires c_in == c_out")
        wshape: Tuple[int, ...] = (c_in, kernel, kernel)
        flops = 2 * oh * ow * c_in * kernel * kernel
        kind = OpKind.DEPTHWISE_CONV2D
    else:
        wshape = (c_out, c_in, kernel, kernel)
        flops = 2 * oh * ow * c_out * c_in * kernel * kernel
        kind = OpKind.CONV2D
    weights = [WeightSpec(f"{name}.w", TensorSpec(wshape, dtype_bytes))]
    if bias:
        weights.append(WeightSpec(f"{name}.b", TensorSpec((c_out,), dtype_bytes)))
    return OpSpec(
        kind=kind,
        name=name,
        flops=flops,
        input_specs=[TensorSpec((c_in, h, w), dtype_bytes)],
        output_spec=TensorSpec((c_out, oh, ow), dtype_bytes),
        weights=weights,
        attrs={"kernel": kernel, "stride": stride},
    )


def elementwise_spec(
    name: str,
    kind: OpKind,
    shape: Tuple[int, ...],
    *,
    n_inputs: int = 1,
    dtype_bytes: int = 2,
    flops_per_elem: int = 1,
) -> OpSpec:
    """Build an elementwise node (Add/Mul/Activation/GeLU/...)."""
    if op_class(kind) is not OpClass.ELEMENTAL:
        raise ValueError(f"{kind} is not an elemental operator")
    t = TensorSpec(shape, dtype_bytes)
    return OpSpec(
        kind=kind,
        name=name,
        flops=flops_per_elem * t.numel,
        input_specs=[t] * n_inputs,
        output_spec=t,
    )


def normalization_spec(
    name: str,
    kind: OpKind,
    shape: Tuple[int, ...],
    *,
    channels: Optional[int] = None,
    dtype_bytes: int = 2,
) -> OpSpec:
    """Build a hierarchical normalisation node (LayerNorm/GroupNorm/...).

    Carries small per-channel scale/shift weights.
    """
    if op_class(kind) is not OpClass.HIERARCHICAL:
        raise ValueError(f"{kind} is not a hierarchical operator")
    t = TensorSpec(shape, dtype_bytes)
    c = channels if channels is not None else shape[-1]
    weights = [
        WeightSpec(f"{name}.gamma", TensorSpec((c,), dtype_bytes)),
        WeightSpec(f"{name}.beta", TensorSpec((c,), dtype_bytes)),
    ]
    # Normalisations do ~5 passes worth of arithmetic per element
    return OpSpec(
        kind=kind,
        name=name,
        flops=5 * t.numel,
        input_specs=[t],
        output_spec=t,
        weights=weights,
    )


def softmax_spec(name: str, shape: Tuple[int, ...], *, dtype_bytes: int = 2) -> OpSpec:
    """Build a Softmax node (hierarchical: max, exp, sum, divide stages)."""
    t = TensorSpec(shape, dtype_bytes)
    return OpSpec(
        kind=OpKind.SOFTMAX,
        name=name,
        flops=4 * t.numel,
        input_specs=[t],
        output_spec=t,
    )


def kv_append_spec(
    name: str,
    cache: KVCacheSpec,
) -> OpSpec:
    """Build the per-token KV-cache append node.

    Consumes the current token's K and V projections and writes one row pair
    into ``cache``.  Elemental: a strided copy of ``cache.token_bytes`` bytes.
    The executor applies the cache-growth (and spill) memory deltas at this
    node's completion time.
    """
    dim = cache.heads * cache.head_dim
    row = TensorSpec((1, dim), cache.dtype_bytes)
    return OpSpec(
        kind=OpKind.KV_APPEND,
        name=name,
        flops=2 * dim,
        input_specs=[row, row],
        output_spec=TensorSpec((2, dim), cache.dtype_bytes),
        attrs={"kv_cache": cache.name},
    )


def flash_attention_spec(
    name: str,
    cache: KVCacheSpec,
    *,
    context_len: int,
    tile_tokens: int,
) -> OpSpec:
    """Build a tiled single-query (decode) attention node over ``cache``.

    FLOPs cover the QK^T dot products and the PV accumulation over
    ``context_len`` cached tokens.  ``input_specs`` carry only the query row
    and one double-buffered K/V *tile* — the kernel's actual working set.
    The cached context itself is not an activation: its bytes live in the KV
    cache, whose residency the runtime accounts explicitly (capped resident
    tiles under FlashMem, the full cache under preloading baselines), so the
    activation footprint stays context-independent.  The runtime re-prices
    this node per context-length segment with
    :class:`repro.gpusim.kernels.FlashAttentionKernel`, which adds the
    tile-residency/streaming split the static spec cannot express.
    """
    if context_len <= 0:
        raise ValueError("context_len must be positive")
    if tile_tokens <= 0:
        raise ValueError("tile_tokens must be positive")
    dim = cache.heads * cache.head_dim
    q = TensorSpec((1, dim), cache.dtype_bytes)
    kv = TensorSpec((2, tile_tokens, dim), cache.dtype_bytes)
    return OpSpec(
        kind=OpKind.FLASH_ATTENTION,
        name=name,
        flops=4 * dim * context_len,
        input_specs=[q, kv],
        output_spec=q,
        attrs={
            "kv_cache": cache.name,
            "heads": cache.heads,
            "head_dim": cache.head_dim,
            "context_len": context_len,
            "tile_tokens": tile_tokens,
        },
    )


def layout_spec(
    name: str,
    kind: OpKind,
    in_shape: Tuple[int, ...],
    out_shape: Tuple[int, ...],
    *,
    dtype_bytes: int = 2,
) -> OpSpec:
    """Build a layout node (Reshape/Transpose/Concat/Slice).

    Under SmartMem-style 2.5D layouts most of these are eliminated; they
    remain in the IR so the lowering/fusion passes have something to remove.
    """
    if op_class(kind) is not OpClass.LAYOUT:
        raise ValueError(f"{kind} is not a layout operator")
    return OpSpec(
        kind=kind,
        name=name,
        flops=0,
        input_specs=[TensorSpec(in_shape, dtype_bytes)],
        output_spec=TensorSpec(out_shape, dtype_bytes),
    )
