"""Transformer-family model builders.

Each builder produces a lowered operator graph whose parameter count and MAC
count land close to the paper's Table 6 characterization.  Weight *values*
never matter to the evaluation (latency/memory/energy depend only on shapes),
so no pretrained checkpoints are involved — see DESIGN.md substitutions.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import GraphBuilder
from repro.graph.dag import Graph
from repro.graph.ops import FLASH_TILE_TOKENS

#: How many tokens past the initial context a decode graph can generate
#: before its KV caches hit ``max_context`` (when the caller doesn't pin it).
DECODE_HEADROOM_TOKENS = 2048


def build_gpt_neo(
    name: str,
    *,
    dim: int,
    blocks: int,
    heads: int,
    vocab: int = 50257,
    seq: int = 128,
    dtype_bytes: int = 2,
) -> Graph:
    """GPT-Neo style decoder-only transformer.

    Lowering per block: LayerNorm, Q/K/V matmuls, layout transposes,
    attention score, softmax, context matmul, reshape, output projection,
    residual add, then the MLP sub-block (LN, fc1, GeLU, fc2, add).
    """
    b = GraphBuilder(name, dtype_bytes=dtype_bytes)
    b.embedding(seq, vocab, dim)
    tok = b.cursor
    b.embedding(seq, 2048, dim)  # learned position embeddings
    pos = b.cursor
    b.add((seq, dim), tok, pos)
    for _ in range(blocks):
        b.transformer_block(seq, dim, heads)
    b.layernorm((seq, dim))
    b.linear(seq, dim, vocab, bias=False)  # untied LM head
    return b.finish()


def gpt_neo_small(seq: int = 128, *, dtype_bytes: int = 2) -> Graph:
    """GPT-Neo 125M-class model (paper GPTN-S: 164 M params, 16 GMACs)."""
    return build_gpt_neo("GPTN-S", dim=768, blocks=12, heads=12, seq=seq, dtype_bytes=dtype_bytes)


def gpt_neo_1p3b(seq: int = 128, *, dtype_bytes: int = 2) -> Graph:
    """GPT-Neo 1.3B (paper GPTN-1.3B: 1419 M params, 170 GMACs)."""
    return build_gpt_neo("GPTN-1.3B", dim=2048, blocks=24, heads=16, seq=seq, dtype_bytes=dtype_bytes)


def gpt_neo_2p7b(seq: int = 128, *, dtype_bytes: int = 2) -> Graph:
    """GPT-Neo 2.7B (paper GPTN-2.7B: 2781 M params, 342 GMACs)."""
    return build_gpt_neo("GPTN-2.7B", dim=2560, blocks=32, heads=20, seq=seq, dtype_bytes=dtype_bytes)


def build_gpt_neo_decode(
    name: str,
    *,
    dim: int,
    blocks: int,
    heads: int,
    vocab: int = 50257,
    context_len: int,
    max_context: Optional[int] = None,
    tile_tokens: int = FLASH_TILE_TOKENS,
    dtype_bytes: int = 2,
) -> Graph:
    """GPT-Neo style decoder in the autoregressive *decode* phase.

    The graph prices ONE token step: single-row projections, a KV-cache
    append per block, and a tiled FlashAttention kernel attending over the
    ``context_len`` tokens cached so far.  The runtime re-executes (or
    extrapolates) this graph per generated token, growing each block's
    KV cache as it goes; ``max_context`` bounds that growth.
    """
    if max_context is None:
        max_context = context_len + DECODE_HEADROOM_TOKENS
    b = GraphBuilder(f"{name}@dec{context_len}", dtype_bytes=dtype_bytes)
    b.embedding(1, vocab, dim)
    tok = b.cursor
    b.embedding(1, max_context, dim)  # learned position embeddings
    pos = b.cursor
    b.add((1, dim), tok, pos)
    for _ in range(blocks):
        b.decode_attention_block(
            dim, heads, context_len=context_len, max_context=max_context, tile_tokens=tile_tokens
        )
        b.mlp_block(1, dim, 4 * dim)
    b.layernorm((1, dim))
    b.linear(1, dim, vocab, bias=False)  # untied LM head
    return b.finish()


def build_llama_decode(
    name: str,
    *,
    dim: int,
    blocks: int,
    heads: int,
    vocab: int = 32000,
    context_len: int,
    max_context: Optional[int] = None,
    tile_tokens: int = FLASH_TILE_TOKENS,
    dtype_bytes: int = 2,
) -> Graph:
    """Llama-2 style decoder (gated MLP, no biases) in the decode phase."""
    if max_context is None:
        max_context = context_len + DECODE_HEADROOM_TOKENS
    b = GraphBuilder(f"{name}@dec{context_len}", dtype_bytes=dtype_bytes)
    b.embedding(1, vocab, dim)
    hidden = int(dim * 8 / 3 // 256 * 256) or dim * 2
    for _ in range(blocks):
        b.decode_attention_block(
            dim, heads, context_len=context_len, max_context=max_context,
            tile_tokens=tile_tokens, bias=False,
        )
        entry = b.cursor
        b.layernorm((1, dim))
        ln = b.cursor
        gate = b.linear(1, dim, hidden, bias=False, inputs=[ln])
        b.activation((1, hidden))
        act = b.cursor
        up = b.linear(1, dim, hidden, bias=False, inputs=[ln])
        b.mul((1, hidden), act, up)
        down = b.linear(1, hidden, dim, bias=False)
        b.add((1, dim), entry, down)
    b.layernorm((1, dim))
    b.linear(1, dim, vocab, bias=False)
    return b.finish()


def build_vit(
    name: str,
    *,
    dim: int,
    blocks: int,
    heads: int,
    seq: int = 197,
    patch: int = 16,
    classes: int = 1000,
    dtype_bytes: int = 2,
) -> Graph:
    """ViT-style encoder: patch embedding, transformer blocks, class head."""
    b = GraphBuilder(name, dtype_bytes=dtype_bytes)
    # Patch embedding as a matmul over flattened patches.
    b.embedding(seq, seq + 1, dim)  # position table (stand-in source node)
    b.linear(seq, 3 * patch * patch, dim)
    for _ in range(blocks):
        b.transformer_block(seq, dim, heads)
    b.layernorm((seq, dim))
    b.linear(1, dim, classes)
    return b.finish()


def vit(seq: int = 197, *, dtype_bytes: int = 2) -> Graph:
    """ViT (paper: 103 M params, 21 GMACs)."""
    return build_vit("ViT", dim=768, blocks=14, heads=12, seq=seq, dtype_bytes=dtype_bytes)


def deepvit(seq: int = 197, *, dtype_bytes: int = 2) -> Graph:
    """DeepViT (paper: 204 M params, 42 GMACs) — deeper ViT stack."""
    return build_vit("DeepViT", dim=768, blocks=28, heads=12, seq=seq, dtype_bytes=dtype_bytes)


def vit_8b(seq: int = 197, *, dtype_bytes: int = 2) -> Graph:
    """ViT-8B solver-scaling variant (paper Table 4 only)."""
    return build_vit("ViT-8B", dim=4096, blocks=40, heads=32, seq=seq, dtype_bytes=dtype_bytes)


def build_whisper(
    name: str,
    *,
    dim: int,
    enc_blocks: int,
    dec_blocks: int,
    heads: int,
    enc_seq: int,
    dec_seq: int,
    vocab: int = 51865,
    dtype_bytes: int = 2,
) -> Graph:
    """Whisper-style encoder-decoder with cross-attention in the decoder."""
    b = GraphBuilder(name, dtype_bytes=dtype_bytes)
    # Audio frontend: two convs over mel spectrogram.
    b.embedding(enc_seq, enc_seq, dim)  # positional table source
    b.linear(enc_seq, 80 * 3, dim)  # conv1 as matmul over mel patches
    b.gelu((enc_seq, dim))
    b.linear(enc_seq, dim * 3, dim)  # conv2
    b.gelu((enc_seq, dim))
    for _ in range(enc_blocks):
        b.transformer_block(enc_seq, dim, heads)
    b.layernorm((enc_seq, dim))
    encoder_out = b.cursor
    # Decoder
    b.embedding(dec_seq, vocab, dim)
    for _ in range(dec_blocks):
        b.attention_block(dec_seq, dim, heads)  # self-attention
        # Cross-attention: Q from decoder, K/V from encoder output.
        entry = b.cursor
        b.layernorm((dec_seq, dim))
        ln = b.cursor
        q = b.linear(dec_seq, dim, dim, inputs=[ln])
        k = b.linear(enc_seq, dim, dim, inputs=[encoder_out])
        v = b.linear(enc_seq, dim, dim, inputs=[encoder_out])
        from repro.graph.ops import OpKind, OpSpec, TensorSpec

        score = OpSpec(
            kind=OpKind.ATTENTION_SCORE,
            name=b.fresh_name("xattn_score"),
            flops=2 * heads * dec_seq * (dim // heads) * enc_seq,
            input_specs=[
                TensorSpec((heads, dec_seq, dim // heads), dtype_bytes),
                TensorSpec((heads, dim // heads, enc_seq), dtype_bytes),
            ],
            output_spec=TensorSpec((heads, dec_seq, enc_seq), dtype_bytes),
        )
        s = b.raw(score, inputs=[q, k])
        b.softmax((heads, dec_seq, enc_seq))
        sm = b.cursor
        ctx = OpSpec(
            kind=OpKind.ATTENTION_SCORE,
            name=b.fresh_name("xattn_ctx"),
            flops=2 * heads * dec_seq * enc_seq * (dim // heads),
            input_specs=[
                TensorSpec((heads, dec_seq, enc_seq), dtype_bytes),
                TensorSpec((heads, enc_seq, dim // heads), dtype_bytes),
            ],
            output_spec=TensorSpec((dec_seq, dim), dtype_bytes),
        )
        c = b.raw(ctx, inputs=[sm, v])
        proj = b.linear(dec_seq, dim, dim, inputs=[c])
        b.add((dec_seq, dim), entry, proj)
        b.mlp_block(dec_seq, dim, dim * 4)
    b.layernorm((dec_seq, dim))
    b.linear_tied(dec_seq, dim, vocab)  # head tied to token embedding
    return b.finish()


def whisper_medium(*, dtype_bytes: int = 2) -> Graph:
    """Whisper-Medium-class model (paper Whisp-M: 356 M params, 55 GMACs)."""
    return build_whisper(
        "Whisp-M",
        dim=1024,
        enc_blocks=11,
        dec_blocks=10,
        heads=16,
        enc_seq=300,
        dec_seq=48,
        dtype_bytes=dtype_bytes,
    )


def build_llama(name: str, *, dim: int, blocks: int, heads: int, seq: int = 128, vocab: int = 32000) -> Graph:
    """Llama-2 style decoder (gated MLP, no biases) for solver-scaling runs."""
    b = GraphBuilder(name)
    b.embedding(seq, vocab, dim)
    hidden = int(dim * 8 / 3 // 256 * 256) or dim * 2
    for _ in range(blocks):
        b.attention_block(seq, dim, heads, bias=False)
        entry = b.cursor
        b.layernorm((seq, dim))
        ln = b.cursor
        gate = b.linear(seq, dim, hidden, bias=False, inputs=[ln])
        b.activation((seq, hidden))
        act = b.cursor
        up = b.linear(seq, dim, hidden, bias=False, inputs=[ln])
        b.mul((seq, hidden), act, up)
        down = b.linear(seq, hidden, dim, bias=False)
        b.add((seq, dim), entry, down)
    b.layernorm((seq, dim))
    b.linear(seq, dim, vocab, bias=False)
    return b.finish()


def llama2_13b(seq: int = 128, *, dtype_bytes: int = 2) -> Graph:
    """Llama2-13B solver-scaling variant (paper Table 4 only)."""
    return build_llama("Llama2-13B", dim=5120, blocks=40, heads=40, seq=seq)


def llama2_70b(seq: int = 128, *, dtype_bytes: int = 2) -> Graph:
    """Llama2-70B solver-scaling variant (paper Table 4 only)."""
    return build_llama("Llama2-70B", dim=8192, blocks=80, heads=64, seq=seq)
