"""SAM-2 style promptable segmentation model.

SAM-2's bulk is a hierarchical (Hiera) image encoder; the mask decoder and
memory attention are comparatively small.  We model the encoder as a windowed
ViT over a large token grid plus a lightweight convolutional mask decoder,
parameterized to land near the paper's Table 6 row (215 M params, 218 GMACs,
1668 lowered layers).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dag import Graph


def sam2(tokens: int = 900, *, dtype_bytes: int = 2) -> Graph:
    """SAM-2 (paper: 215 M params, 218 GMACs)."""
    b = GraphBuilder("SAM-2", dtype_bytes=dtype_bytes)
    dim = 896
    heads = 14
    b.embedding(tokens, tokens + 1, dim)
    b.linear(tokens, 3 * 16 * 16, dim)  # patch embedding
    for _ in range(21):
        b.transformer_block(tokens, dim, heads)
    b.layernorm((tokens, dim))
    # FPN-style neck: project encoder tokens to multi-scale feature maps.
    side = int(tokens ** 0.5)
    for _ in range(2):
        b.reshape((tokens, dim), (dim, side, side))
        b.conv(side, side, dim, 256, 1)
        b.conv(side, side, 256, 256, 3)
        b.activation((256, side, side))
    # Two-way mask decoder: small cross-attention transformer + upscaler.
    prompt_tokens = 8
    for _ in range(2):
        b.attention_block(prompt_tokens + 4, 256, 8)
        b.mlp_block(prompt_tokens + 4, 256, 1024)
    b.upsample(side, side, 256)
    b.conv(side * 2, side * 2, 256, 64, 3)
    b.activation((64, side * 2, side * 2))
    b.upsample(side * 2, side * 2, 64)
    b.conv(side * 4, side * 4, 64, 32, 3)
    b.activation((32, side * 4, side * 4))
    b.conv(side * 4, side * 4, 32, 3, 1)
    return b.finish()
