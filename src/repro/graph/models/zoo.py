"""Model zoo registry for the 11 evaluated models plus solver-scaling variants.

:data:`PAPER_CHARACTERIZATION` holds the paper's Table 6 reference rows so
the Table 6 bench can print paper-vs-built side by side; :func:`load_model`
builds the lowered graph by abbreviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graph.dag import Graph
from repro.graph.models import convnet, sam, transformer


@dataclass(frozen=True)
class ModelCard:
    """Reference characterization of an evaluated model (paper Table 6)."""

    abbr: str
    full_name: str
    input_type: str
    task: str
    paper_params_m: float
    paper_macs_g: float
    paper_layers: int
    builder: Callable[[], Graph]


_CARDS: List[ModelCard] = [
    ModelCard("GPTN-S", "GPTNeo-Small", "Text", "NLP", 164, 16, 606, transformer.gpt_neo_small),
    ModelCard("GPTN-1.3B", "GPTNeo-1.3B", "Text", "NLP", 1419, 170, 1110, transformer.gpt_neo_1p3b),
    ModelCard("GPTN-2.7B", "GPTNeo-2.7B", "Text", "NLP", 2781, 342, 1446, transformer.gpt_neo_2p7b),
    ModelCard("ResNet50", "ResNet50", "Image", "Classification", 25.6, 4.1, 141, convnet.resnet50),
    ModelCard("SAM-2", "SegmentationAnything-2", "Image", "Segmentation", 215, 218, 1668, sam.sam2),
    ModelCard("ViT", "ViT", "Image", "Classification", 103, 21, 819, transformer.vit),
    ModelCard("DeepViT", "DeepViT", "Image", "Classification", 204, 42, 1395, transformer.deepvit),
    ModelCard("SD-UNet", "StableDiffusion-UNet", "Image", "Generation", 860, 78, 1271, convnet.sd_unet),
    ModelCard("Whisp-M", "Whisper-Medium", "Audio", "Speech Recognition", 356, 55, 2026, transformer.whisper_medium),
    ModelCard("DepA-S", "DepthAnything-Small", "Video", "Segmentation", 24.3, 14, 1108, convnet.depth_anything_small),
    ModelCard("DepA-L", "DepthAnything-Large", "Video", "Segmentation", 333, 180, 2007, convnet.depth_anything_large),
]

def _derived_card(
    abbr: str, full_name: str, input_type: str, task: str, builder: Callable[..., Graph]
) -> ModelCard:
    """Characterize a solver-scaling variant from its built graph.

    The paper's Table 4 doesn't report MACs/layer counts for these, and the
    previous placeholder zeros made anything that normalizes by them (decode
    throughput-per-MAC, layer-count sanity checks) divide by zero or pass
    vacuously.  Graph construction is cheap (pure dataclass assembly), so
    derive all three fields from the real topology.
    """
    graph = builder()
    return ModelCard(
        abbr,
        full_name,
        input_type,
        task,
        round(graph.total_params / 1e6, 1),
        round(graph.total_macs / 1e9, 1),
        graph.num_layers,
        builder,
    )


#: Solver-scaling variants used only by the paper's Table 4.
_SOLVER_CARDS: List[ModelCard] = [
    _derived_card("ViT-8B", "ViT-8B", "Image", "Classification", transformer.vit_8b),
    _derived_card("Llama2-13B", "Llama2-13B", "Text", "NLP", transformer.llama2_13b),
    _derived_card("Llama2-70B", "Llama2-70B", "Text", "NLP", transformer.llama2_70b),
]

MODEL_CARDS: Dict[str, ModelCard] = {c.abbr: c for c in _CARDS}
SOLVER_MODEL_CARDS: Dict[str, ModelCard] = {c.abbr: c for c in _SOLVER_CARDS}
ALL_CARDS: Dict[str, ModelCard] = {**MODEL_CARDS, **SOLVER_MODEL_CARDS}

#: Paper Table 6 rows, importable for the characterization bench.
PAPER_CHARACTERIZATION = {c.abbr: (c.paper_params_m, c.paper_macs_g, c.paper_layers) for c in _CARDS}

EVALUATED_MODELS = [c.abbr for c in _CARDS]


def available_models() -> List[str]:
    """Abbreviations of all buildable models (evaluated + solver-scaling)."""
    return list(ALL_CARDS)


#: Decode-phase builder per LLM abbreviation: same dims as the prefill
#: builders, but lowered as a single-token step over growing KV caches.
_DECODE_BUILDERS: Dict[str, Callable[..., Graph]] = {
    "GPTN-S": lambda **kw: transformer.build_gpt_neo_decode("GPTN-S", dim=768, blocks=12, heads=12, **kw),
    "GPTN-1.3B": lambda **kw: transformer.build_gpt_neo_decode("GPTN-1.3B", dim=2048, blocks=24, heads=16, **kw),
    "GPTN-2.7B": lambda **kw: transformer.build_gpt_neo_decode("GPTN-2.7B", dim=2560, blocks=32, heads=20, **kw),
    "Llama2-13B": lambda **kw: transformer.build_llama_decode("Llama2-13B", dim=5120, blocks=40, heads=40, **kw),
    "Llama2-70B": lambda **kw: transformer.build_llama_decode("Llama2-70B", dim=8192, blocks=80, heads=64, **kw),
}

#: LLMs with a decode-phase lowering (the ``--scenario decode`` candidates).
DECODE_MODELS = sorted(_DECODE_BUILDERS)


def load_decode_model(
    abbr: str,
    *,
    context_len: int,
    max_context: int = None,
    dtype_bytes: int = 2,
) -> Graph:
    """Build the single-token decode graph for an LLM by abbreviation.

    ``context_len`` is the KV-cache fill when decoding starts (the prompt /
    conversation so far); ``max_context`` bounds how far the caches may grow
    (defaults to ``context_len`` plus a generation headroom).
    """
    try:
        builder = _DECODE_BUILDERS[abbr]
    except KeyError:
        raise KeyError(
            f"model {abbr!r} has no decode lowering; available: {DECODE_MODELS}"
        ) from None
    kwargs = {"context_len": context_len, "dtype_bytes": dtype_bytes}
    if max_context is not None:
        kwargs["max_context"] = max_context
    return builder(**kwargs)


def load_model(abbr: str, *, dtype_bytes: int = 2) -> Graph:
    """Build the lowered graph for a model by its paper abbreviation.

    ``dtype_bytes=4`` builds the fp32 configuration the paper's appendix
    evaluates (same topology, doubled weight/activation footprints).

    >>> g = load_model("ResNet50")
    >>> g.total_params > 20_000_000
    True
    """
    try:
        card = ALL_CARDS[abbr]
    except KeyError:
        raise KeyError(f"unknown model {abbr!r}; available: {sorted(ALL_CARDS)}") from None
    return card.builder(dtype_bytes=dtype_bytes)
