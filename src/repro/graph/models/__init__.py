"""Model zoo: builders for every model the paper evaluates."""

from repro.graph.models.zoo import (
    ALL_CARDS,
    DECODE_MODELS,
    EVALUATED_MODELS,
    MODEL_CARDS,
    PAPER_CHARACTERIZATION,
    SOLVER_MODEL_CARDS,
    ModelCard,
    available_models,
    load_decode_model,
    load_model,
)

__all__ = [
    "ALL_CARDS",
    "DECODE_MODELS",
    "EVALUATED_MODELS",
    "MODEL_CARDS",
    "PAPER_CHARACTERIZATION",
    "SOLVER_MODEL_CARDS",
    "ModelCard",
    "available_models",
    "load_decode_model",
    "load_model",
]
