"""Convolution-family model builders: ResNet50, SD-UNet, DepthAnything.

The paper notes (§5.2, §5.4) that convolution-based models see smaller
memory/latency reductions because convolution weight transformations (e.g.
Winograd) cannot be overlapped; the simulator's cost model keys off the
Conv2D operator kind to reproduce that, so these graphs matter beyond their
Table 6 rows.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dag import Graph


def resnet50(image: int = 224, *, dtype_bytes: int = 2) -> Graph:
    """Standard ResNet50 (paper: 25.6 M params, 4.1 GMACs, 141 layers)."""
    b = GraphBuilder("ResNet50", dtype_bytes=dtype_bytes)
    h = image
    b.embedding(4, 4, 4)  # input placeholder source node
    b.conv(h, h, 3, 64, 7, stride=2)
    h //= 2
    b.batchnorm((64, h, h), 64)
    b.activation((64, h, h))
    b.pool(h, h, 64, stride=2)
    h //= 2
    stage_cfg = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ]
    c_in = 64
    for blocks, c_mid, c_out, first_stride in stage_cfg:
        for i in range(blocks):
            stride = first_stride if i == 0 else 1
            b.resnet_bottleneck(h, h, c_in, c_mid, c_out, stride=stride)
            h = max(1, -(-h // stride))
            c_in = c_out
    b.pool(h, h, c_in, stride=h)
    b.linear(1, c_in, 1000)
    return b.finish()


def _unet_res_block(b: GraphBuilder, h: int, c_in: int, c_out: int, emb_dim: int) -> None:
    """Diffusion UNet residual block: GN-act-conv x2 + time-emb proj + skip."""
    entry = b.cursor
    b.groupnorm((c_in, h, h), c_in)
    b.activation((c_in, h, h))
    b.conv(h, h, c_in, c_out, 3)
    b.linear(1, emb_dim, c_out)  # time-embedding projection
    proj = b.cursor
    b.groupnorm((c_out, h, h), c_out)
    b.activation((c_out, h, h))
    main = b.conv(h, h, c_out, c_out, 3)
    if c_in != c_out:
        skip = b.conv(h, h, c_in, c_out, 1, inputs=[entry])
    else:
        skip = entry
    b.add((c_out, h, h), main, skip)


def _unet_attn_block(b: GraphBuilder, h: int, c: int, context, heads: int = 8, ctx_dim: int = 768, ctx_seq: int = 77) -> None:
    """SD spatial transformer: self-attention + text cross-attention + GEGLU FF."""
    seq = h * h
    b.groupnorm((c, h, h), c)
    b.reshape((c, h, h), (seq, c))
    b.attention_block(seq, c, heads)
    # Cross-attention against the text-encoder context.
    entry = b.cursor
    b.layernorm((seq, c))
    ln = b.cursor
    q = b.linear(seq, c, c, bias=False, inputs=[ln])
    k = b.linear(ctx_seq, ctx_dim, c, bias=False, inputs=[context])
    v = b.linear(ctx_seq, ctx_dim, c, bias=False, inputs=[context])
    from repro.graph.ops import OpKind, OpSpec, TensorSpec

    d_h = c // heads
    score = OpSpec(
        kind=OpKind.ATTENTION_SCORE,
        name=b.fresh_name("xattn_score"),
        flops=2 * heads * seq * d_h * ctx_seq,
        input_specs=[TensorSpec((heads, seq, d_h)), TensorSpec((heads, d_h, ctx_seq))],
        output_spec=TensorSpec((heads, seq, ctx_seq)),
    )
    b.raw(score, inputs=[q, k])
    b.softmax((heads, seq, ctx_seq))
    sm = b.cursor
    ctx = OpSpec(
        kind=OpKind.ATTENTION_SCORE,
        name=b.fresh_name("xattn_ctx"),
        flops=2 * heads * seq * ctx_seq * d_h,
        input_specs=[TensorSpec((heads, seq, ctx_seq)), TensorSpec((heads, ctx_seq, d_h))],
        output_spec=TensorSpec((seq, c)),
    )
    cnode = b.raw(ctx, inputs=[sm, v])
    proj = b.linear(seq, c, c, inputs=[cnode])
    b.add((seq, c), entry, proj)
    # GEGLU feed-forward: project to 8c (value+gate halves), gate, project back.
    ff_entry = b.cursor
    b.layernorm((seq, c))
    b.linear(seq, c, 8 * c)
    b.gelu((seq, 4 * c))
    gate = b.cursor
    b.mul((seq, 4 * c), gate, gate)
    ff = b.linear(seq, 4 * c, c)
    b.add((seq, c), ff_entry, ff)
    b.reshape((seq, c), (c, h, h))


def sd_unet(latent: int = 32, *, dtype_bytes: int = 2) -> Graph:
    """Stable Diffusion UNet-class model (paper SD-UNet: 860 M params, 78 GMACs).

    Channel ladder 320/640/1280/1280 with residual + attention blocks in the
    down path, a mid block, and a residual up path, matching SD 1.x topology
    at reduced spatial resolution (latent 32x32 lands on the paper's MACs).
    """
    b = GraphBuilder("SD-UNet", dtype_bytes=dtype_bytes)
    emb = 1280
    b.embedding(77, 4, 768)  # text-encoder context placeholder (external input)
    context = b.cursor
    b.conv(latent, latent, 4, 320, 3, inputs=[])
    ladder = [(320, True), (640, True), (1280, True), (1280, False)]
    h = latent
    c_in = 320
    for c_out, with_attn in ladder:
        for _ in range(2):
            _unet_res_block(b, h, c_in, c_out, emb)
            c_in = c_out
            if with_attn:
                _unet_attn_block(b, h, c_out, context)
        if c_out != 1280 or with_attn:
            b.conv(h, h, c_out, c_out, 3, stride=2)
            h = max(1, h // 2)
    # Mid block
    _unet_res_block(b, h, c_in, c_in, emb)
    _unet_attn_block(b, h, c_in, context)
    _unet_res_block(b, h, c_in, c_in, emb)
    # Up path
    for c_out, with_attn in reversed(ladder):
        for _ in range(3):
            _unet_res_block(b, h, c_in + c_out, c_out, emb)
            c_in = c_out
            if with_attn:
                _unet_attn_block(b, h, c_out, context)
        if c_out != 320:
            b.upsample(h, h, c_out)
            h *= 2
    b.groupnorm((320, h, h), 320)
    b.activation((320, h, h))
    b.conv(h, h, 320, 4, 3)
    return b.finish()


def _dpt_head(b: GraphBuilder, tokens: int, dim: int, feat: int) -> None:
    """DPT-style dense prediction head: reassemble + fusion convs."""
    side = int(tokens ** 0.5) or 1
    for scale in (1, 2, 4, 8):
        h = max(1, side * 2 // scale)
        b.reshape((tokens, dim), (dim, side, side))
        b.conv(h, h, dim, feat, 3)
        b.activation((feat, h, h))
        b.conv(h, h, feat, feat, 3)
        b.activation((feat, h, h))
    b.conv(side, side, feat, feat // 2, 3)
    b.upsample(side, side, feat // 2)
    b.conv(side * 2, side * 2, feat // 2, 32, 3)
    b.activation((32, side * 2, side * 2))
    b.conv(side * 2, side * 2, 32, 1, 1)


def depth_anything_small(tokens: int = 450, *, dtype_bytes: int = 2) -> Graph:
    """DepthAnything-Small (paper DepA-S: 24.3 M params, 14 GMACs)."""
    b = GraphBuilder("DepA-S", dtype_bytes=dtype_bytes)
    b.embedding(tokens, tokens + 1, 384)
    b.linear(tokens, 3 * 14 * 14, 384)
    for _ in range(12):
        b.transformer_block(tokens, 384, 6)
    b.layernorm((tokens, 384))
    _dpt_head(b, tokens, 384, 128)
    return b.finish()


def depth_anything_large(tokens: int = 520, *, dtype_bytes: int = 2) -> Graph:
    """DepthAnything-Large (paper DepA-L: 333 M params, 180 GMACs)."""
    b = GraphBuilder("DepA-L", dtype_bytes=dtype_bytes)
    b.embedding(tokens, tokens + 1, 1024)
    b.linear(tokens, 3 * 14 * 14, 1024)
    for _ in range(24):
        b.transformer_block(tokens, 1024, 16)
    b.layernorm((tokens, 1024))
    _dpt_head(b, tokens, 1024, 256)
    return b.finish()
