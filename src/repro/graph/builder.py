"""Block-level graph construction helpers.

Models in the zoo are described in terms of familiar blocks (attention, MLP,
residual conv, ...).  :class:`GraphBuilder` lowers each block into the
low-level operator nodes the paper counts as "layers" (Table 6) and chains
them in execution order.  The builder keeps a running cursor so sequential
models read top-to-bottom.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.graph.dag import Graph, Node
from repro.graph.ops import (
    KVCacheSpec,
    OpKind,
    OpSpec,
    TensorSpec,
    WeightSpec,
    conv2d_spec,
    elementwise_spec,
    flash_attention_spec,
    kv_append_spec,
    layout_spec,
    matmul_spec,
    normalization_spec,
    softmax_spec,
)


class GraphBuilder:
    """Builds a :class:`~repro.graph.dag.Graph` block by block.

    The builder tracks a *cursor* (the most recently produced node) so calls
    chain naturally; methods return the node they produce, which can be used
    to wire residual connections.
    """

    def __init__(self, name: str, *, dtype_bytes: int = 2, fine: bool = True) -> None:
        self.graph = Graph(name)
        self.dtype_bytes = dtype_bytes
        #: Fine lowering emits bias adds, attention scale and mask as their
        #: own elemental kernels (as un-fused mobile runtimes do); coarse
        #: lowering folds them into the producing op.
        self.fine = fine
        self.cursor: Optional[Node] = None
        self._counter = 0

    # --------------------------------------------------------------- plumbing
    def _name(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    def _add(self, spec: OpSpec, inputs: Optional[Sequence[Node]] = None) -> Node:
        if inputs is None:
            inputs = [self.cursor] if self.cursor is not None else []
        node = self.graph.add(spec, inputs=list(inputs))
        self.cursor = node
        return node

    def raw(self, spec: OpSpec, inputs: Optional[Sequence[Node]] = None) -> Node:
        """Insert a hand-built :class:`OpSpec` (escape hatch for exotic blocks)."""
        return self._add(spec, inputs)

    def fresh_name(self, base: str) -> str:
        """Allocate a unique node name with the builder's counter."""
        return self._name(base)

    def finish(self) -> Graph:
        """Freeze and return the built graph."""
        return self.graph.freeze()

    # ------------------------------------------------------------- primitives
    def embedding(self, seq: int, vocab: int, dim: int) -> Node:
        """Token embedding lookup: (seq,) ids -> (seq, dim)."""
        spec = OpSpec(
            kind=OpKind.EMBEDDING,
            name=self._name("embed"),
            flops=seq * dim,
            input_specs=[TensorSpec((seq,), 4)],
            output_spec=TensorSpec((seq, dim), self.dtype_bytes),
            weights=[WeightSpec(self._name("embed") + ".w", TensorSpec((vocab, dim), self.dtype_bytes))],
        )
        return self._add(spec, inputs=[])

    def linear(self, m: int, k: int, n: int, *, bias: bool = True, inputs: Optional[Sequence[Node]] = None) -> Node:
        """Dense layer: (m, k) x (k, n).

        With fine lowering the bias lands in a separate Add kernel carrying
        the bias weight; otherwise it is folded into the MatMul node.
        """
        if bias and self.fine:
            self._add(
                matmul_spec(self._name("matmul"), m, k, n, dtype_bytes=self.dtype_bytes, bias=False),
                inputs=inputs,
            )
            return self.bias_add((m, n), n)
        return self._add(
            matmul_spec(self._name("matmul"), m, k, n, dtype_bytes=self.dtype_bytes, bias=bias),
            inputs=inputs,
        )

    def linear_tied(self, m: int, k: int, n: int, *, inputs: Optional[Sequence[Node]] = None) -> Node:
        """Dense layer whose weight is tied to another node (e.g. LM head
        sharing the token embedding).  Carries no weight of its own."""
        name = self._name("matmul_tied")
        spec = OpSpec(
            kind=OpKind.MATMUL,
            name=name,
            flops=2 * m * k * n,
            input_specs=[TensorSpec((m, k), self.dtype_bytes)],
            output_spec=TensorSpec((m, n), self.dtype_bytes),
            attrs={"m": m, "k": k, "n": n, "tied": True},
        )
        return self._add(spec, inputs=inputs)

    def bias_add(self, shape: Tuple[int, ...], channels: int) -> Node:
        """Elementwise add of a learned per-channel bias."""
        t = TensorSpec(shape, self.dtype_bytes)
        name = self._name("bias_add")
        spec = OpSpec(
            kind=OpKind.ADD,
            name=name,
            flops=t.numel,
            input_specs=[t],
            output_spec=t,
            weights=[WeightSpec(f"{name}.b", TensorSpec((channels,), self.dtype_bytes))],
        )
        return self._add(spec)

    def conv(
        self,
        h: int,
        w: int,
        c_in: int,
        c_out: int,
        kernel: int,
        *,
        stride: int = 1,
        depthwise: bool = False,
        inputs: Optional[Sequence[Node]] = None,
    ) -> Node:
        return self._add(
            conv2d_spec(
                self._name("conv"),
                h,
                w,
                c_in,
                c_out,
                kernel,
                stride=stride,
                dtype_bytes=self.dtype_bytes,
                depthwise=depthwise,
            ),
            inputs=inputs,
        )

    def activation(self, shape: Tuple[int, ...], *, kind: OpKind = OpKind.ACTIVATION) -> Node:
        return self._add(elementwise_spec(self._name("act"), kind, shape, dtype_bytes=self.dtype_bytes))

    def gelu(self, shape: Tuple[int, ...]) -> Node:
        return self._add(
            elementwise_spec(self._name("gelu"), OpKind.GELU, shape, dtype_bytes=self.dtype_bytes, flops_per_elem=8)
        )

    def add(self, shape: Tuple[int, ...], lhs: Node, rhs: Node) -> Node:
        return self._add(
            elementwise_spec(self._name("add"), OpKind.ADD, shape, n_inputs=2, dtype_bytes=self.dtype_bytes),
            inputs=[lhs, rhs],
        )

    def mul(self, shape: Tuple[int, ...], lhs: Node, rhs: Node) -> Node:
        return self._add(
            elementwise_spec(self._name("mul"), OpKind.MUL, shape, n_inputs=2, dtype_bytes=self.dtype_bytes),
            inputs=[lhs, rhs],
        )

    def layernorm(self, shape: Tuple[int, ...]) -> Node:
        return self._add(normalization_spec(self._name("ln"), OpKind.LAYERNORM, shape, dtype_bytes=self.dtype_bytes))

    def groupnorm(self, shape: Tuple[int, ...], channels: int) -> Node:
        return self._add(
            normalization_spec(
                self._name("gn"), OpKind.GROUPNORM, shape, channels=channels, dtype_bytes=self.dtype_bytes
            )
        )

    def batchnorm(self, shape: Tuple[int, ...], channels: int) -> Node:
        return self._add(
            normalization_spec(
                self._name("bn"), OpKind.BATCHNORM, shape, channels=channels, dtype_bytes=self.dtype_bytes
            )
        )

    def softmax(self, shape: Tuple[int, ...]) -> Node:
        return self._add(softmax_spec(self._name("softmax"), shape, dtype_bytes=self.dtype_bytes))

    def pool(self, h: int, w: int, c: int, *, stride: int = 2) -> Node:
        oh, ow = max(1, h // stride), max(1, w // stride)
        spec = OpSpec(
            kind=OpKind.POOL,
            name=self._name("pool"),
            flops=c * h * w,
            input_specs=[TensorSpec((c, h, w), self.dtype_bytes)],
            output_spec=TensorSpec((c, oh, ow), self.dtype_bytes),
        )
        return self._add(spec)

    def upsample(self, h: int, w: int, c: int, *, factor: int = 2) -> Node:
        spec = OpSpec(
            kind=OpKind.UPSAMPLE,
            name=self._name("upsample"),
            flops=c * h * w * factor * factor,
            input_specs=[TensorSpec((c, h, w), self.dtype_bytes)],
            output_spec=TensorSpec((c, h * factor, w * factor), self.dtype_bytes),
        )
        return self._add(spec)

    def reshape(self, in_shape: Tuple[int, ...], out_shape: Tuple[int, ...]) -> Node:
        return self._add(
            layout_spec(self._name("reshape"), OpKind.RESHAPE, in_shape, out_shape, dtype_bytes=self.dtype_bytes)
        )

    def transpose(self, in_shape: Tuple[int, ...], out_shape: Tuple[int, ...]) -> Node:
        return self._add(
            layout_spec(self._name("transpose"), OpKind.TRANSPOSE, in_shape, out_shape, dtype_bytes=self.dtype_bytes)
        )

    # ----------------------------------------------------------------- blocks
    def attention_block(self, seq: int, dim: int, heads: int, *, with_layout_ops: bool = True, bias: bool = True) -> Node:
        """Multi-head self-attention lowered to operator nodes.

        Produces: LN, Q/K/V projections, (optional transpose layout ops),
        attention score matmul, softmax, attention-value matmul, output
        projection, residual add.
        """
        if dim % heads:
            raise ValueError("dim must divide heads")
        entry = self.cursor
        if entry is None:
            raise ValueError("attention_block needs a cursor (add an embedding/input first)")
        self.layernorm((seq, dim))
        ln = self.cursor
        q = self.linear(seq, dim, dim, bias=bias, inputs=[ln])
        k = self.linear(seq, dim, dim, bias=bias, inputs=[ln])
        v = self.linear(seq, dim, dim, bias=bias, inputs=[ln])
        if with_layout_ops:
            q = self.transpose((seq, dim), (heads, seq, dim // heads))
            self.cursor = k
            k = self.transpose((seq, dim), (heads, dim // heads, seq))
        # Scores: heads x (seq, d_h) x (d_h, seq)
        score = OpSpec(
            kind=OpKind.ATTENTION_SCORE,
            name=self._name("attn_score"),
            flops=2 * heads * seq * (dim // heads) * seq,
            input_specs=[TensorSpec((heads, seq, dim // heads), self.dtype_bytes)] * 2,
            output_spec=TensorSpec((heads, seq, seq), self.dtype_bytes),
            attrs={"heads": heads},
        )
        s = self._add(score, inputs=[q, k])
        if self.fine:
            # Scale by 1/sqrt(d_h) and add the attention mask — separate
            # elemental kernels in un-fused mobile graphs.
            shape = (heads, seq, seq)
            self._add(elementwise_spec(self._name("attn_scale"), OpKind.MUL, shape, dtype_bytes=self.dtype_bytes))
            self._add(
                elementwise_spec(
                    self._name("attn_mask"), OpKind.ADD, shape, n_inputs=2, dtype_bytes=self.dtype_bytes
                )
            )
        sm = self.softmax((heads, seq, seq))
        ctx = OpSpec(
            kind=OpKind.ATTENTION_SCORE,
            name=self._name("attn_ctx"),
            flops=2 * heads * seq * seq * (dim // heads),
            input_specs=[
                TensorSpec((heads, seq, seq), self.dtype_bytes),
                TensorSpec((heads, seq, dim // heads), self.dtype_bytes),
            ],
            output_spec=TensorSpec((seq, dim), self.dtype_bytes),
            attrs={"heads": heads},
        )
        c = self._add(ctx, inputs=[sm, v])
        if with_layout_ops:
            c = self.reshape((seq, dim), (seq, dim))
        proj = self.linear(seq, dim, dim, bias=bias, inputs=[c])
        return self.add((seq, dim), entry, proj)

    def kv_cache(self, heads: int, head_dim: int, max_context: int) -> KVCacheSpec:
        """Register a per-layer KV cache on the graph and return its spec."""
        cache = KVCacheSpec(
            name=self._name("kv_cache"),
            heads=heads,
            head_dim=head_dim,
            max_context=max_context,
            dtype_bytes=self.dtype_bytes,
        )
        return self.graph.register_kv_cache(cache)

    def decode_attention_block(
        self,
        dim: int,
        heads: int,
        *,
        context_len: int,
        max_context: int,
        tile_tokens: int,
        bias: bool = True,
    ) -> Node:
        """Single-token decode attention over a growing KV cache.

        Produces: LN, Q/K/V projections for the current token, a KV-cache
        append, one tiled FlashAttention kernel attending over the whole
        cache, output projection, residual add.  The softmax lives *inside*
        the flash kernel (online softmax), so unlike :meth:`attention_block`
        no separate hierarchical node is emitted for it.
        """
        if dim % heads:
            raise ValueError("dim must divide heads")
        entry = self.cursor
        if entry is None:
            raise ValueError("decode_attention_block needs a cursor (add an embedding/input first)")
        self.layernorm((1, dim))
        ln = self.cursor
        q = self.linear(1, dim, dim, bias=bias, inputs=[ln])
        k = self.linear(1, dim, dim, bias=bias, inputs=[ln])
        v = self.linear(1, dim, dim, bias=bias, inputs=[ln])
        cache = self.kv_cache(heads, dim // heads, max_context)
        append = self._add(kv_append_spec(self._name("kv_append"), cache), inputs=[k, v])
        attn = self._add(
            flash_attention_spec(
                self._name("flash_attn"), cache, context_len=context_len, tile_tokens=tile_tokens
            ),
            inputs=[q, append],
        )
        proj = self.linear(1, dim, dim, bias=bias, inputs=[attn])
        return self.add((1, dim), entry, proj)

    def mlp_block(self, seq: int, dim: int, hidden: int, *, bias: bool = True) -> Node:
        """Transformer MLP: LN -> fc1 -> GeLU -> fc2 -> residual add."""
        entry = self.cursor
        if entry is None:
            raise ValueError("mlp_block needs a cursor")
        self.layernorm((seq, dim))
        self.linear(seq, dim, hidden, bias=bias)
        self.gelu((seq, hidden))
        fc2 = self.linear(seq, hidden, dim, bias=bias)
        return self.add((seq, dim), entry, fc2)

    def transformer_block(self, seq: int, dim: int, heads: int, mlp_mult: int = 4, *, with_layout_ops: bool = True) -> Node:
        self.attention_block(seq, dim, heads, with_layout_ops=with_layout_ops)
        return self.mlp_block(seq, dim, dim * mlp_mult)

    def resnet_bottleneck(self, h: int, w: int, c_in: int, c_mid: int, c_out: int, *, stride: int = 1) -> Node:
        """ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with BN+ReLU, residual add."""
        entry = self.cursor
        if entry is None:
            raise ValueError("resnet_bottleneck needs a cursor")
        self.conv(h, w, c_in, c_mid, 1)
        self.batchnorm((c_mid, h, w), c_mid)
        self.activation((c_mid, h, w))
        oh, ow = max(1, -(-h // stride)), max(1, -(-w // stride))
        self.conv(h, w, c_mid, c_mid, 3, stride=stride)
        self.batchnorm((c_mid, oh, ow), c_mid)
        self.activation((c_mid, oh, ow))
        self.conv(oh, ow, c_mid, c_out, 1)
        main = self.batchnorm((c_out, oh, ow), c_out)
        if stride != 1 or c_in != c_out:
            short = self.conv(h, w, c_in, c_out, 1, stride=stride, inputs=[entry])
        else:
            short = entry
        added = self.add((c_out, oh, ow), main, short)
        return self.activation((c_out, oh, ow))

    def conv_block(self, h: int, w: int, c_in: int, c_out: int, kernel: int = 3, *, stride: int = 1, norm: str = "group") -> Node:
        """Conv + norm + activation (SiLU-style), as in diffusion UNets."""
        self.conv(h, w, c_in, c_out, kernel, stride=stride)
        oh, ow = max(1, -(-h // stride)), max(1, -(-w // stride))
        if norm == "group":
            self.groupnorm((c_out, oh, ow), c_out)
        elif norm == "batch":
            self.batchnorm((c_out, oh, ow), c_out)
        return self.activation((c_out, oh, ow))
