"""Graph-level lowering passes.

SmartMem — the framework FlashMem builds on — systematically eliminates
layout-transformation operators (Reshape, Transpose, ...) by keeping tensors
in a 2.5D texture layout end to end.  :func:`eliminate_layout_ops` is that
substrate pass: it splices pure layout nodes out of the DAG.  FlashMem's
compiler runs it before overlap planning so the plan only schedules real
work.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.dag import Graph, Node
from repro.graph.ops import OpClass


def eliminate_layout_ops(graph: Graph) -> Graph:
    """Return a new graph with all LAYOUT-class nodes removed.

    Each layout node is spliced out by reconnecting its producers directly to
    its consumers.  Non-layout structure (including fan-in/fan-out) is
    preserved; execution order of the surviving nodes keeps the original
    relative order.
    """
    graph.freeze()
    out = Graph(graph.name)
    for cache in graph.kv_cache_specs():
        out.register_kv_cache(cache)
    # Map original node -> surviving replacement node(s) feeding consumers.
    replacement: Dict[str, List[Node]] = {}
    rebuilt: Dict[str, Node] = {}

    def resolve(orig: Node) -> List[Node]:
        """Surviving graph inputs that stand in for ``orig``'s output."""
        if orig.op_class is not OpClass.LAYOUT:
            return [rebuilt[orig.name]]
        resolved: List[Node] = []
        for parent in orig.inputs:
            resolved.extend(replacement[parent.name])
        return resolved

    for node in graph.nodes():
        if node.op_class is OpClass.LAYOUT:
            inputs: List[Node] = []
            for parent in node.inputs:
                inputs.extend(replacement[parent.name])
            replacement[node.name] = inputs
            continue
        new_inputs: List[Node] = []
        seen = set()
        for parent in node.inputs:
            for repl in replacement[parent.name]:
                if repl.name not in seen:
                    seen.add(repl.name)
                    new_inputs.append(repl)
        new_node = out.add(node.spec, inputs=new_inputs)
        rebuilt[node.name] = new_node
        replacement[node.name] = [new_node]
    return out.freeze()


def layout_op_count(graph: Graph) -> int:
    """Number of pure layout operators in the graph."""
    graph.freeze()
    return sum(1 for n in graph.nodes() if n.op_class is OpClass.LAYOUT)
