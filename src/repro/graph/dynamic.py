"""Dynamic neural networks: runtime-dependent execution paths.

The paper flags dynamic networks as the LC-OPG corner case left to future
work (§3.2): "runtime-dependent execution paths can increase solver time
due to the need to explore multiple possible execution branches".  This
module implements the straightforward extension the paper sketches:

- a :class:`DynamicModel` is a set of execution-path *variants* (each a
  plain lowered graph) with occurrence probabilities — e.g. an early-exit
  classifier or a decoder whose generated length varies;
- :func:`plan_dynamic` solves one overlap plan per variant and unifies the
  preloaded set W across them (a weight any path preloads is preloaded for
  all, so the resident set never depends on the branch taken at runtime);
- :class:`DynamicRunResult` aggregates expected and worst-case latency and
  memory over the path distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.capacity.model import LoadCapacityModel
from repro.graph.dag import Graph
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan


@dataclass(frozen=True)
class PathVariant:
    """One runtime-resolvable execution path of a dynamic model."""

    name: str
    graph: Graph
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"{self.name}: probability must be in (0, 1]")


@dataclass
class DynamicModel:
    """A model whose execution path is chosen at runtime."""

    name: str
    variants: List[PathVariant]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("dynamic model needs at least one variant")
        total = sum(v.probability for v in self.variants)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"path probabilities sum to {total}, expected 1.0")
        names = [v.name for v in self.variants]
        if len(names) != len(set(names)):
            raise ValueError("variant names must be unique")

    def variant(self, name: str) -> PathVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(f"no variant {name!r}")


@dataclass
class DynamicPlan:
    """Per-variant overlap plans with a unified preload set."""

    model: str
    plans: Dict[str, OverlapPlan]
    #: Weights preloaded on every path (union across variants).
    unified_preload: frozenset = frozenset()

    def plan_for(self, variant: str) -> OverlapPlan:
        return self.plans[variant]


def early_exit_variants(
    builder, exits: Sequence[int], probabilities: Sequence[float], *, name: str = "early-exit"
) -> DynamicModel:
    """Build a :class:`DynamicModel` from an early-exit family.

    ``builder(depth)`` must return the lowered graph that executes the
    first ``depth`` blocks and exits; ``exits``/``probabilities`` pair
    depths with how often the input takes each exit.
    """
    if len(exits) != len(probabilities):
        raise ValueError("exits and probabilities must align")
    variants = [
        PathVariant(name=f"exit@{depth}", graph=builder(depth), probability=p)
        for depth, p in zip(exits, probabilities)
    ]
    return DynamicModel(name=name, variants=variants)


def plan_dynamic(
    model: DynamicModel,
    solver: LcOpgSolver,
    capacity_model: LoadCapacityModel,
    *,
    device_name: str = "",
) -> DynamicPlan:
    """Solve every execution path, then unify the preload sets.

    Pass 1 solves each variant independently; the union of their preloaded
    weights becomes a pinned hint set; pass 2 re-solves each variant with
    that set so all paths agree on the resident W (a branch taken at
    runtime then never requires loading a weight another branch assumed
    resident, and vice versa).
    """
    first_pass = {
        v.name: solver.solve(v.graph, capacity_model, device_name=device_name)
        for v in model.variants
    }
    union: set = set()
    for plan in first_pass.values():
        union.update(plan.preloaded_weights)
    # Only pin weights that actually exist in a given variant's graph.
    plans: Dict[str, OverlapPlan] = {}
    for v in model.variants:
        present = {w.name for w, _ in v.graph.weights()}
        pinned = frozenset(union & present)
        cfg = solver.config
        if pinned == set(first_pass[v.name].preloaded_weights):
            plans[v.name] = first_pass[v.name]
            continue
        from dataclasses import replace

        pinned_cfg = replace(cfg, preload_hint_weights=frozenset(cfg.preload_hint_weights) | pinned)
        plans[v.name] = LcOpgSolver(pinned_cfg, use_cp=solver.use_cp).solve(
            v.graph, capacity_model, device_name=device_name
        )
    return DynamicPlan(model=model.name, plans=plans, unified_preload=frozenset(union))


@dataclass
class DynamicRunResult:
    """Distributional outcome of executing a dynamic model."""

    model: str
    #: variant -> (probability, RunResult)
    outcomes: Dict[str, Tuple[float, object]] = field(default_factory=dict)

    @property
    def expected_latency_ms(self) -> float:
        return sum(p * r.latency_ms for p, r in self.outcomes.values())

    @property
    def worst_latency_ms(self) -> float:
        return max(r.latency_ms for _, r in self.outcomes.values())

    @property
    def expected_avg_memory_bytes(self) -> float:
        return sum(p * r.avg_memory_bytes for p, r in self.outcomes.values())

    @property
    def worst_peak_memory_bytes(self) -> int:
        return max(r.peak_memory_bytes for _, r in self.outcomes.values())


def run_dynamic(model: DynamicModel, dynamic_plan: DynamicPlan, executor) -> DynamicRunResult:
    """Execute every path once and aggregate by probability."""
    result = DynamicRunResult(model=model.name)
    for v in model.variants:
        run = executor.run(v.graph, dynamic_plan.plan_for(v.name))
        result.outcomes[v.name] = (v.probability, run)
    return result
