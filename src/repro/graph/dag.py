"""DNN computational graph: a DAG of low-level operator nodes.

The graph is the unit FlashMem plans over.  Section 3.1 of the paper assumes
a linear execution order ``1..N`` over the lowered operators; :class:`Graph`
maintains that order (a topological order fixed at freeze time) and exposes
the quantities the OPG formulation needs:

- the weight set, with each weight's size and first-consuming layer ``i_w``;
- per-layer activation footprints (for memory accounting);
- per-layer FLOPs/bytes (for the capacity model and the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.ops import KVCacheSpec, OpClass, OpKind, OpSpec, WeightSpec


class GraphError(Exception):
    """Raised on structural errors (cycles, duplicate names, dangling edges)."""


@dataclass
class Node:
    """An operator node bound into a graph.

    ``index`` is the node's position in the frozen execution order (0-based;
    the paper's layer indices are 1-based, conversion happens at the OPG
    boundary).
    """

    spec: OpSpec
    index: int = -1
    inputs: List["Node"] = field(default_factory=list)
    outputs: List["Node"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> OpKind:
        return self.spec.kind

    @property
    def op_class(self) -> OpClass:
        return self.spec.op_class

    @property
    def weights(self) -> Tuple[WeightSpec, ...]:
        return tuple(self.spec.weights)

    @property
    def flops(self) -> int:
        return self.spec.flops

    @property
    def weight_bytes(self) -> int:
        return self.spec.weight_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name}, {self.kind}, #{self.index})"


class Graph:
    """A frozen-orderable DAG of operator nodes.

    Typical lifecycle::

        g = Graph("my-model")
        a = g.add(op_spec_a)
        b = g.add(op_spec_b, inputs=[a])
        g.freeze()                # assigns execution order
        for node in g.nodes():    # in execution order
            ...
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: Optional[List[Node]] = None
        self._kv_caches: List[KVCacheSpec] = []

    # ------------------------------------------------------------------ build
    def add(self, spec: OpSpec, inputs: Sequence[Node] = ()) -> Node:
        """Insert a node consuming the outputs of ``inputs``."""
        if self._order is not None:
            raise GraphError("graph is frozen; cannot add nodes")
        if spec.name in self._nodes:
            raise GraphError(f"duplicate node name {spec.name!r}")
        node = Node(spec=spec)
        for parent in inputs:
            if parent.name not in self._nodes:
                raise GraphError(f"input node {parent.name!r} not in graph")
            node.inputs.append(parent)
            parent.outputs.append(node)
        self._nodes[spec.name] = node
        return node

    def register_kv_cache(self, cache: KVCacheSpec) -> KVCacheSpec:
        """Register a growing KV-cache tensor owned by this graph.

        Registration is independent of freezing: caches describe runtime
        state, not dataflow structure.  Duplicate names are rejected.
        """
        if any(c.name == cache.name for c in self._kv_caches):
            raise GraphError(f"duplicate kv cache name {cache.name!r}")
        self._kv_caches.append(cache)
        return cache

    def kv_cache_specs(self) -> List[KVCacheSpec]:
        """Registered KV caches (empty for prefill-only graphs).

        Reads through ``__dict__`` so graphs pickled before KV caches
        existed (persistent artifact-store entries) unpickle cleanly.
        """
        return list(self.__dict__.get("_kv_caches", ()))

    def kv_bytes_per_token(self) -> int:
        """Total bytes appended across all caches per decoded token."""
        return sum(c.token_bytes for c in self.kv_cache_specs())

    def freeze(self) -> "Graph":
        """Fix a topological execution order.  Idempotent."""
        if self._order is not None:
            return self
        order: List[Node] = []
        indegree = {n.name: len(n.inputs) for n in self._nodes.values()}
        # Deterministic: ready nodes processed in insertion order.
        ready = [n for n in self._nodes.values() if indegree[n.name] == 0]
        seen = 0
        while ready:
            node = ready.pop(0)
            node.index = seen
            order.append(node)
            seen += 1
            for child in node.outputs:
                indegree[child.name] -= 1
                if indegree[child.name] == 0:
                    ready.append(child)
        if seen != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        self._order = order
        return self

    @property
    def frozen(self) -> bool:
        return self._order is not None

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r}") from None

    def nodes(self) -> List[Node]:
        """Nodes in execution order (requires :meth:`freeze`)."""
        if self._order is None:
            raise GraphError("graph not frozen; call freeze() first")
        return list(self._order)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    # ------------------------------------------------------------- aggregates
    @property
    def num_layers(self) -> int:
        """Lowered operator count (paper Table 6 '# Layers')."""
        return len(self._nodes)

    @property
    def total_flops(self) -> int:
        return sum(n.flops for n in self._nodes.values())

    @property
    def total_macs(self) -> int:
        return self.total_flops // 2

    def _frozen_aggregate(self, key, compute):
        """Memoize ``compute()`` under hashable ``key`` once the graph is frozen.

        ``add`` raises on a frozen graph, so every graph-derived aggregate is
        immutable from that point on; executors re-read them every simulated
        run (the runtime layer also parks its per-profile pricing rows here).
        The cache dict is created lazily so graphs unpickled from older
        artifact-store entries (no ``_agg_cache`` attribute) still work.
        """
        if self._order is None:
            return compute()
        cache = self.__dict__.setdefault("_agg_cache", {})
        if key not in cache:
            cache[key] = compute()
        return cache[key]

    @property
    def total_weight_bytes(self) -> int:
        return self._frozen_aggregate(
            "total_weight_bytes",
            lambda: sum(n.weight_bytes for n in self._nodes.values()),
        )

    @property
    def total_params(self) -> int:
        return sum(w.numel for n in self._nodes.values() for w in n.weights)

    def weights(self) -> List[Tuple[WeightSpec, Node]]:
        """All (weight, owning node) pairs in execution order."""
        out: List[Tuple[WeightSpec, Node]] = []
        for node in self.nodes():
            for w in node.weights:
                out.append((w, node))
        return out

    def weight_first_use(self) -> Dict[str, int]:
        """Map weight name -> index of the earliest consuming layer (i_w).

        In this IR each weight belongs to exactly one node, so first use is
        the owner's index; kept as a map so shared-weight extensions slot in.
        """
        return {w.name: node.index for w, node in self.weights()}

    def activation_bytes_at(self, index: int) -> int:
        """Live activation footprint while layer ``index`` executes.

        Counts the layer's inputs and output plus any earlier outputs still
        needed by later layers (residual connections).  This is the
        activation term of the simulator's memory accounting.
        """
        nodes = self.nodes()
        if not 0 <= index < len(nodes):
            raise GraphError(f"layer index {index} out of range")
        node = nodes[index]
        live = node.spec.output_bytes + node.spec.input_bytes
        for earlier in nodes[:index]:
            if any(child.index > index for child in earlier.outputs) and node not in earlier.outputs:
                live += earlier.spec.output_bytes
        return live

    def peak_activation_bytes(self) -> int:
        """Upper bound on live activations across all layers.

        Exact liveness is O(N^2); for large graphs we sample, which is fine
        for the memory model (activations are a small fraction of weights
        for the evaluated models).  Memoized on frozen graphs — executors
        query it once per simulated run.
        """
        return self._frozen_aggregate("peak_activation_bytes", self._peak_activation_bytes)

    def _peak_activation_bytes(self) -> int:
        n = self.num_layers
        if n == 0:
            return 0
        if n <= 64:
            indices: Iterable[int] = range(n)
        else:
            step = max(1, n // 64)
            indices = range(0, n, step)
        return max(self.activation_bytes_at(i) for i in indices)

    def op_histogram(self) -> Dict[OpKind, int]:
        """Count of nodes per operator kind."""
        hist: Dict[OpKind, int] = {}
        for node in self._nodes.values():
            hist[node.kind] = hist.get(node.kind, 0) + 1
        return hist

    def summary(self) -> str:
        """One-line characterization matching Table 6 columns."""
        return (
            f"{self.name}: params={self.total_params / 1e6:.1f}M "
            f"macs={self.total_macs / 1e9:.1f}G layers={self.num_layers}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, {len(self._nodes)} nodes)"
