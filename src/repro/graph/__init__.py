"""DNN computational graph IR: operators, DAG, builders, lowering, model zoo."""

from repro.graph.dag import Graph, GraphError, Node
from repro.graph.ops import OpClass, OpKind, OpSpec, TensorSpec, WeightSpec, op_class

__all__ = [
    "Graph",
    "GraphError",
    "Node",
    "OpClass",
    "OpKind",
    "OpSpec",
    "TensorSpec",
    "WeightSpec",
    "op_class",
]
