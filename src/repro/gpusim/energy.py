"""Phase-based power and energy model.

Table 9's structure — FlashMem draws slightly *more* power than SmartMem
(extra concurrent disk traffic) yet far less *energy* (much shorter runs) —
falls out of integrating phase power over the dual-queue event logs: at each
instant the draw is determined by which queues are busy (idle / IO only /
compute only / both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.gpusim.device import DeviceProfile
from repro.gpusim.queues import DualQueue


@dataclass(frozen=True)
class EnergyReport:
    """Integrated energy and mean power over one run."""

    energy_j: float
    avg_power_w: float
    compute_only_ms: float
    io_only_ms: float
    overlap_ms: float
    idle_ms: float


def _busy_intervals(events, kinds=None) -> List[Tuple[float, float]]:
    """Merge an arbitrary event list into disjoint busy intervals.

    Reference implementation over :class:`QueueEvent` rows; the measurement
    path below uses :meth:`CommandQueue.busy_intervals`, which produces the
    identical merged list in one pass off the columnar log (queue events are
    start-sorted and disjoint by construction, so the sort here is the
    identity permutation for them).
    """
    spans = sorted(
        (e.start_ms, e.end_ms)
        for e in events
        if e.duration_ms > 0 and (kinds is None or e.kind in kinds)
    )
    merged: List[Tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap_length(a: List[Tuple[float, float]], b: List[Tuple[float, float]]) -> float:
    """Total length of the intersection of two disjoint interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def measure_energy(queues: DualQueue, device: DeviceProfile, *, end_ms: float = 0.0) -> EnergyReport:
    """Integrate phase power over the run recorded in ``queues``.

    ``end_ms`` extends the accounting window beyond the last event (idle
    tail); the window starts at 0.
    """
    horizon = max(queues.makespan_ms, end_ms)
    io_busy = queues.io.busy_intervals()
    gpu_busy = queues.gpu.busy_intervals()
    io_total = sum(e - s for s, e in io_busy)
    gpu_total = sum(e - s for s, e in gpu_busy)
    overlap = _overlap_length(io_busy, gpu_busy)
    io_only = io_total - overlap
    gpu_only = gpu_total - overlap
    idle = max(0.0, horizon - io_only - gpu_only - overlap)
    rails = device.power
    energy_mj = (
        rails.overlap_w * overlap
        + rails.io_w * io_only
        + rails.compute_w * gpu_only
        + rails.idle_w * idle
    )
    energy_j = energy_mj / 1e3  # W * ms -> J
    avg_power = energy_j / (horizon / 1e3) if horizon > 0 else 0.0
    return EnergyReport(
        energy_j=energy_j,
        avg_power_w=avg_power,
        compute_only_ms=gpu_only,
        io_only_ms=io_only,
        overlap_ms=overlap,
        idle_ms=idle,
    )
