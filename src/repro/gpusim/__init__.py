"""Discrete-event simulator of the mobile GPU memory hierarchy.

Models the disk -> unified memory -> 2.5D texture memory -> SM path of
Figure 1(a): device profiles, dual command queues, memory pools with
residency accounting, an analytic kernel cost model with overlap
interference, and a phase-based energy model.
"""

from repro.gpusim.device import (
    DEVICE_PRESETS,
    DeviceProfile,
    PowerRails,
    get_device,
    oneplus_11,
    oneplus_12,
    pixel_8,
    xiaomi_mi6,
)
from repro.gpusim.engine import Simulation
from repro.gpusim.kernels import KernelCostModel
from repro.gpusim.memory import MemoryPool, OutOfMemoryError
from repro.gpusim.queues import CommandQueue, DualQueue, QueueEvent
from repro.gpusim.timeline import MemoryTimeline, Phases, RunResult, geo_mean

__all__ = [
    "DEVICE_PRESETS",
    "DeviceProfile",
    "PowerRails",
    "get_device",
    "oneplus_11",
    "oneplus_12",
    "pixel_8",
    "xiaomi_mi6",
    "Simulation",
    "KernelCostModel",
    "MemoryPool",
    "OutOfMemoryError",
    "CommandQueue",
    "DualQueue",
    "QueueEvent",
    "MemoryTimeline",
    "Phases",
    "RunResult",
    "geo_mean",
]
