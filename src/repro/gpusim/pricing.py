"""Vectorized kernel pricing: whole-graph cost tables for the simulator.

The scalar :class:`~repro.gpusim.kernels.KernelCostModel` prices one operator
per call; executors used to invoke it once per node *per iteration*, which
dominated the cold experiment-suite wall clock.  This module batches the
same arithmetic over every kernel of a run at once with numpy float64
elementwise operations.

**Bitwise contract.**  The vectorized formulas replicate the scalar methods
operation-for-operation (same IEEE-754 double ops, same association order),
so each table entry equals the corresponding scalar result *exactly* — not
approximately.  ``tests/gpusim/test_pricing_differential.py`` pins ``==``
equality across every device preset, op class, efficiency, and
``extra_bytes`` grid; the scalar model remains the differential oracle.

Tables are memoized twice:

- an in-process LRU keyed on the full pricing input (device profile plus
  one row per kernel), shared by repeated runs of the same compiled model;
- optionally the persistent :class:`~repro.core.store.ArtifactStore` from
  the experiment layer, installed via :func:`set_pricing_store` (the gpusim
  package cannot import ``repro.experiments`` — the hook keeps the
  dependency pointing outward).

:data:`STATS` counts table hits/misses, persistent-store traffic, simulated
runs, simulated wall seconds, and extrapolated iterations; executors thread
per-run deltas into ``RunResult.details`` and the sweep layer aggregates
them into the suite cache-stats line.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.gpusim.device import DeviceProfile
from repro.gpusim.kernels import CONTENTION_GAMMA, INTERFERENCE, UM_KV_BW_FACTOR
from repro.graph.ops import OpClass, OpSpec

#: One kernel's pricing inputs: everything the scalar model reads.
#: (op_class, flops, bytes_moved, output_bytes, extra_bytes, efficiency,
#:  divergent) — ``divergent`` marks BRANCHY kernels with embedded loads,
#: which pay the whole-body divergence penalty on top.
KernelRow = Tuple[OpClass, int, int, int, int, float, bool]

#: In-process table cache bound (each entry is one float64 array per run
#: shape; 256 comfortably covers the full experiment grid).
_TABLE_CACHE_MAX = 256

#: Global default for executors' ``use_cost_tables`` argument.  Benchmarks
#: flip this to False (together with the executors' extrapolation default)
#: to emulate the pre-vectorization scalar pricing path in A/B children.
COST_TABLES_DEFAULT = True

#: Class-indexed interference coefficient lookup in a fixed order.
_CLASS_ORDER = (OpClass.REUSABLE, OpClass.ELEMENTAL, OpClass.HIERARCHICAL, OpClass.LAYOUT)
_CLASS_INDEX = {cls: i for i, cls in enumerate(_CLASS_ORDER)}
_HIDE_FRACTION = np.array([INTERFERENCE[c].hide_fraction for c in _CLASS_ORDER])
_SHARE_COEFF = np.array([INTERFERENCE[c].share_coeff for c in _CLASS_ORDER])
#: Precomputed (1 + sync_penalty): the scalar path folds this constant the
#: same way, so the product stays bitwise identical.
_SYNC_FACTOR = np.array([1.0 + INTERFERENCE[c].sync_penalty for c in _CLASS_ORDER])

#: Mirror of ``codegen.KernelProgram.time_ms``'s BRANCHY factor.  Resolved
#: lazily: ``repro.kernels`` imports gpusim modules, so a module-level
#: import here would tangle package initialization order.
_DIVERGENCE_FACTOR: Optional[float] = None


def _divergence_factor() -> float:
    global _DIVERGENCE_FACTOR
    if _DIVERGENCE_FACTOR is None:
        from repro.kernels.codegen import BRANCH_DIVERGENCE_PENALTY

        _DIVERGENCE_FACTOR = 1.0 + BRANCH_DIVERGENCE_PENALTY
    return _DIVERGENCE_FACTOR


@dataclass
class SimStats:
    """Process-wide simulation hot-path counters (monotonic)."""

    table_hits: int = 0
    table_misses: int = 0
    store_hits: int = 0
    store_stores: int = 0
    runs: int = 0
    sim_s: float = 0.0
    replayed_iterations: int = 0

    _FIELDS = ("table_hits", "table_misses", "store_hits", "store_stores",
               "runs", "sim_s", "replayed_iterations")

    def snapshot(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def delta_since(self, before: Mapping[str, float]) -> Dict[str, float]:
        return {name: getattr(self, name) - before.get(name, 0) for name in self._FIELDS}


#: The live counters.  Reset only by tests (fresh SimStats via reset_stats).
STATS = SimStats()


def reset_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    global STATS
    STATS = SimStats()


# ------------------------------------------------------------- store hook
_PRICING_STORE = None  # ArtifactStore | None — installed by repro.experiments


def set_pricing_store(store) -> Optional[object]:
    """Install the persistent table store (None disables); returns previous.

    Called by ``repro.experiments.common.configure_cache``/``swap_store`` so
    sweep workers and repeated CLI invocations share priced tables without
    gpusim importing the experiment layer.
    """
    global _PRICING_STORE
    previous = _PRICING_STORE
    _PRICING_STORE = store
    return previous


def _store_key(device: DeviceProfile, rows: Tuple[KernelRow, ...]) -> Dict[str, object]:
    return {
        "kind": "pricing-table",
        "device": {
            "name": device.name,
            "um_bw": device.um_bw,
            "tm_upload_bw": device.tm_upload_bw,
            "fp16_gflops": device.fp16_gflops,
            "kernel_launch_ms": device.kernel_launch_ms,
        },
        "rows": [[cls.value, flops, moved, out, extra, eff, int(div)]
                 for cls, flops, moved, out, extra, eff, div in rows],
    }


# ------------------------------------------------------------ table build
def _compute_table(device: DeviceProfile, rows: Tuple[KernelRow, ...]) -> np.ndarray:
    """Vectorized ``KernelProgram.time_ms`` over ``rows`` (float64, exact).

    Mirrors, in order: ``KernelCostModel.base_time_ms`` (layout branch via
    ``output_bytes``), ``compute_slack_ms``, ``time_with_load_ms``, and the
    BRANCHY divergence factor from ``codegen.KernelProgram.time_ms``.
    """
    cls_idx = np.array([_CLASS_INDEX[r[0]] for r in rows], dtype=np.intp)
    flops = np.array([r[1] for r in rows], dtype=np.int64)
    moved = np.array([r[2] for r in rows], dtype=np.int64)
    out_bytes = np.array([r[3] for r in rows], dtype=np.int64)
    extra = np.array([r[4] for r in rows], dtype=np.int64)
    eff = np.array([r[5] for r in rows], dtype=np.float64)
    divergent = np.array([r[6] for r in rows], dtype=bool)

    launch = device.kernel_launch_ms
    # Scalar: (flops / (fp16_gflops * 1e6)) / efficiency — two divisions, in
    # this order (folding them would round differently).
    t_compute = (flops / (device.fp16_gflops * 1e6)) / eff
    t_memory = (moved / device.um_bw) / eff
    base = launch + np.maximum(t_compute, t_memory)
    is_layout = cls_idx == _CLASS_INDEX[OpClass.LAYOUT]
    if is_layout.any():
        base = np.where(is_layout, launch + out_bytes / device.um_bw, base)
    times = base

    loaded = extra > 0
    if loaded.any():
        slack = np.maximum(0.0, t_compute - t_memory)
        stream = extra / device.tm_upload_bw
        hidden = np.minimum(stream, slack * _HIDE_FRACTION[cls_idx])
        excess = stream - hidden
        exposed = _SHARE_COEFF[cls_idx] * excess * (1.0 + CONTENTION_GAMMA * excess / base)
        with_load = base * _SYNC_FACTOR[cls_idx] + exposed
        if divergent.any():
            with_load = np.where(divergent, with_load * _divergence_factor(), with_load)
        times = np.where(loaded, with_load, base)
    return times


class _TableCache:
    """Tiny LRU over priced tables (device + rows -> float64 array)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    def get(self, key: tuple) -> Optional[np.ndarray]:
        table = self._entries.get(key)
        if table is not None:
            self._entries.move_to_end(key)
        return table

    def put(self, key: tuple, table: np.ndarray) -> None:
        self._entries[key] = table
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


_TABLES = _TableCache(_TABLE_CACHE_MAX)


def clear_tables() -> None:
    """Drop all in-process priced tables (test isolation)."""
    _TABLES.clear()


def kernel_time_table(device: DeviceProfile, rows: Sequence[KernelRow]) -> np.ndarray:
    """Priced latencies (ms) for ``rows`` on ``device``, memoized.

    The returned array is shared between callers — treat it as read-only
    (executors call ``.tolist()`` once and loop over Python floats).
    """
    rows = tuple(rows)
    key = (device, rows)
    table = _TABLES.get(key)
    if table is not None:
        STATS.table_hits += 1
        return table
    STATS.table_misses += 1
    store = _PRICING_STORE
    store_key = None
    if store is not None:
        store_key = _store_key(device, rows)
        stored = store.load(store_key)
        if stored is not None and len(stored) == len(rows):
            STATS.store_hits += 1
            table = np.asarray(stored, dtype=np.float64)
            _TABLES.put(key, table)
            return table
    table = _compute_table(device, rows)
    table.setflags(write=False)
    _TABLES.put(key, table)
    if store is not None:
        store.save(store_key, table)
        STATS.store_stores += 1
    return table


# --------------------------------------------------- flash-attention tables
#: One tiled decode-attention call's pricing inputs: the kernel geometry
#: plus the per-call residency split.  ``resident_tiles=-1`` means "whole
#: cache resident" (the scalar oracle's ``resident_tiles=None``).
FlashRow = Tuple[int, int, int, int, int, int, bool, float]


def flash_row(
    kernel,
    kv_tokens: int,
    *,
    resident_tiles: Optional[int] = None,
    texture: bool = True,
    efficiency: float = 1.0,
) -> FlashRow:
    """Pricing-row form of one ``FlashAttentionKernel.time_ms`` call."""
    return (
        kernel.heads,
        kernel.head_dim,
        kernel.tile_tokens,
        kernel.dtype_bytes,
        kv_tokens,
        -1 if resident_tiles is None else resident_tiles,
        texture,
        efficiency,
    )


def _compute_flash_table(device: DeviceProfile, rows: Tuple[FlashRow, ...]) -> np.ndarray:
    """Vectorized ``FlashAttentionKernel.time_ms`` over ``rows`` (exact).

    Operation-for-operation mirror of the scalar oracle — same division
    order, same association — so every entry is bitwise equal to the
    corresponding scalar call (pinned by
    ``tests/gpusim/test_flash_pricing.py``).
    """
    heads = np.array([r[0] for r in rows], dtype=np.int64)
    head_dim = np.array([r[1] for r in rows], dtype=np.int64)
    tile_tokens = np.array([r[2] for r in rows], dtype=np.int64)
    dtype_bytes = np.array([r[3] for r in rows], dtype=np.int64)
    kv_tokens = np.array([r[4] for r in rows], dtype=np.int64)
    resident = np.array([r[5] for r in rows], dtype=np.int64)
    texture = np.array([r[6] for r in rows], dtype=bool)
    eff = np.array([r[7] for r in rows], dtype=np.float64)

    tile_bytes = 2 * heads * head_dim * tile_tokens * dtype_bytes
    tile_flops = 4 * heads * head_dim * tile_tokens
    n = -(-kv_tokens // tile_tokens)
    r = np.where(resident < 0, n, np.minimum(n, resident))
    s = n - r
    t_compute = (tile_flops / (device.fp16_gflops * 1e6)) / eff
    t_resident = (tile_bytes / device.um_bw) / eff
    t_resident = np.where(texture, t_resident, t_resident / UM_KV_BW_FACTOR)
    t_stream = device.disk_latency_ms + tile_bytes / device.disk_bw
    fill = np.where(s > 0, t_stream, t_resident)
    steady = s * np.maximum(t_compute, t_stream) + r * np.maximum(t_compute, t_resident)
    return device.kernel_launch_ms + fill + steady


def flash_attention_time_table(
    device: DeviceProfile, rows: Sequence[FlashRow]
) -> np.ndarray:
    """Priced tiled-attention latencies (ms) for ``rows``, memoized.

    Shares the in-process LRU with :func:`kernel_time_table` under a tagged
    key.  No persistent-store layer: flash tables are tiny (a handful of
    rows per context-length segment) and cheap to recompute.
    """
    rows = tuple(rows)
    key = (device, "flash-attention", rows)
    table = _TABLES.get(key)
    if table is not None:
        STATS.table_hits += 1
        return table
    STATS.table_misses += 1
    table = _compute_flash_table(device, rows)
    table.setflags(write=False)
    _TABLES.put(key, table)
    return table


# --------------------------------------------------------- row construction
def spec_row(
    op: OpSpec,
    *,
    extra_bytes: int = 0,
    efficiency: float = 1.0,
    divergent: bool = False,
) -> KernelRow:
    """The pricing inputs of one operator (see :data:`KernelRow`)."""
    return (op.op_class, op.flops, op.bytes_moved, op.output_bytes,
            extra_bytes, efficiency, divergent)
