"""Command queues and the two-resource overlap model.

Mobile GPUs expose independent command queues so transfers and compute can
proceed concurrently (paper §2.1).  The simulator models two serially-ordered
resources — the IO path (disk -> unified memory) and the GPU path (kernels,
including their embedded texture loads) — each as a :class:`CommandQueue`
with a busy-until clock and an event log.  Executors submit work items with
earliest-start constraints; the queue returns the completion time.

**Columnar storage.**  Events are held as parallel columns (label, start,
end, kind) with running busy-time accumulators updated at submit time, so
``busy_time_ms``/``idle_time_ms`` and the energy model's interval merge stop
re-walking per-event objects.  :class:`QueueEvent` rows are materialized
lazily (and cached) for callers that want the object view.

**Invariant.**  Because queues are in-order (an item starts at
``max(free_at, not_before)`` and ``free_at`` only moves forward), the event
columns are always start-sorted and pairwise disjoint: each start is >= the
previous end.  :meth:`CommandQueue.busy_intervals` exploits this to merge
busy spans in one pass without sorting — adjacent events coalesce exactly
when one starts the instant the previous ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class QueueEvent:
    """One completed work item on a queue."""

    label: str
    start_ms: float
    end_ms: float
    kind: str = "work"

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class CommandQueue:
    """A serially-ordered execution resource with a columnar event log."""

    __slots__ = ("name", "_free_at", "_labels", "_starts", "_ends", "_kinds",
                 "_busy_total", "_busy_by_kind", "_events_cache")

    def __init__(self, name: str) -> None:
        self.name = name
        self._free_at = 0.0
        self._labels: List[str] = []
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._kinds: List[str] = []
        # Running totals, accumulated in submit order so they are bitwise
        # identical to summing event durations left-to-right.
        self._busy_total = 0.0
        self._busy_by_kind: Dict[str, float] = {}
        self._events_cache: Optional[List[QueueEvent]] = None

    @property
    def free_at(self) -> float:
        """Earliest time new work could start."""
        return self._free_at

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def events(self) -> List[QueueEvent]:
        """The event log as (cached) :class:`QueueEvent` rows.

        Materialized on demand from the columns; treat as read-only.
        """
        cache = self._events_cache
        if cache is None or len(cache) != len(self._starts):
            cache = [
                QueueEvent(label=label, start_ms=start, end_ms=end, kind=kind)
                for label, start, end, kind in zip(
                    self._labels, self._starts, self._ends, self._kinds
                )
            ]
            self._events_cache = cache
        return cache

    def submit(self, label: str, duration_ms: float, *, not_before: float = 0.0, kind: str = "work") -> QueueEvent:
        """Enqueue a work item; returns its event (with start/end times).

        The item starts at ``max(queue free time, not_before)`` — queues are
        in-order, like real command queues without out-of-order execution.
        """
        start, end = self.submit_fast(label, duration_ms, not_before, kind)
        return QueueEvent(label=label, start_ms=start, end_ms=end, kind=kind)

    def submit_fast(self, label: str, duration_ms: float, not_before: float = 0.0,
                    kind: str = "work") -> Tuple[float, float]:
        """Hot-path submit: identical semantics, returns ``(start, end)``.

        Skips the :class:`QueueEvent` construction — executor inner loops
        only need the two floats.
        """
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        start = max(self._free_at, not_before)
        end = start + duration_ms
        self._free_at = end
        self._labels.append(label)
        self._starts.append(start)
        self._ends.append(end)
        self._kinds.append(kind)
        busy = end - start
        self._busy_total += busy
        self._busy_by_kind[kind] = self._busy_by_kind.get(kind, 0.0) + busy
        return start, end

    def advance_to(self, time_ms: float) -> None:
        """Force the queue idle until ``time_ms`` (barriers, model swaps)."""
        self._free_at = max(self._free_at, time_ms)

    def busy_time_ms(self, *, kind: Optional[str] = None) -> float:
        """Total busy time, optionally restricted to one event kind."""
        if kind is None:
            return self._busy_total
        return self._busy_by_kind.get(kind, 0.0)

    def idle_time_ms(self) -> float:
        """Gaps between events up to the queue's current horizon.

        Clamped at 0.0: ``advance_to`` can push ``free_at`` ahead of the
        submitted work (barriers), and accumulator rounding must never let
        the difference drift negative.
        """
        return max(0.0, self._free_at - self._busy_total)

    # ---------------------------------------------------------- replay API
    def replay_columns(self) -> Tuple[List[str], List[float], List[float], List[str]]:
        """The raw mutable columns ``(labels, starts, ends, kinds)``.

        For trusted bulk-append replay paths (steady-state iteration
        extrapolation in ``repro.runtime``): the caller must append rows
        that keep the class invariant (start-sorted, start >= previous end)
        and finish with :meth:`sync_clock`.
        """
        return self._labels, self._starts, self._ends, self._kinds

    def clock_state(self) -> Tuple[float, float, Dict[str, float]]:
        """Snapshot ``(free_at, busy_total, busy_by_kind)`` for a replay."""
        return self._free_at, self._busy_total, dict(self._busy_by_kind)

    def sync_clock(self, free_at: float, busy_total: float, busy_by_kind: Dict[str, float]) -> None:
        """Restore accumulator state after a bulk replay (see replay_columns)."""
        self._free_at = free_at
        self._busy_total = busy_total
        self._busy_by_kind = dict(busy_by_kind)

    def busy_intervals(self) -> List[Tuple[float, float]]:
        """Disjoint busy (start, end) intervals, merged in one pass.

        Relies on the class invariant (columns start-sorted and disjoint),
        so no sorting is needed; zero-duration events are skipped like the
        energy model always did.
        """
        merged: List[Tuple[float, float]] = []
        append = merged.append
        prev_start = prev_end = 0.0
        have = False
        for start, end in zip(self._starts, self._ends):
            if end <= start:  # zero-duration (e.g. instantaneous markers)
                continue
            if have and start <= prev_end:
                if end > prev_end:
                    prev_end = end
            else:
                if have:
                    append((prev_start, prev_end))
                prev_start, prev_end = start, end
                have = True
        if have:
            append((prev_start, prev_end))
        return merged


@dataclass
class DualQueue:
    """The IO + GPU queue pair every executor runs on."""

    io: CommandQueue = field(default_factory=lambda: CommandQueue("io"))
    gpu: CommandQueue = field(default_factory=lambda: CommandQueue("gpu"))

    @property
    def makespan_ms(self) -> float:
        """Completion time of all submitted work."""
        return max(self.io.free_at, self.gpu.free_at)

    def all_events(self) -> List[QueueEvent]:
        """Merged, time-ordered event log across both queues."""
        return sorted(self.io.events + self.gpu.events, key=lambda e: (e.start_ms, e.end_ms))
