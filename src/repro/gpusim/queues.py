"""Command queues and the two-resource overlap model.

Mobile GPUs expose independent command queues so transfers and compute can
proceed concurrently (paper §2.1).  The simulator models two serially-ordered
resources — the IO path (disk -> unified memory) and the GPU path (kernels,
including their embedded texture loads) — each as a :class:`CommandQueue`
with a busy-until clock and an event log.  Executors submit work items with
earliest-start constraints; the queue returns the completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class QueueEvent:
    """One completed work item on a queue."""

    label: str
    start_ms: float
    end_ms: float
    kind: str = "work"

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class CommandQueue:
    """A serially-ordered execution resource with an event log."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._free_at = 0.0
        self.events: List[QueueEvent] = []

    @property
    def free_at(self) -> float:
        """Earliest time new work could start."""
        return self._free_at

    def submit(self, label: str, duration_ms: float, *, not_before: float = 0.0, kind: str = "work") -> QueueEvent:
        """Enqueue a work item; returns its event (with start/end times).

        The item starts at ``max(queue free time, not_before)`` — queues are
        in-order, like real command queues without out-of-order execution.
        """
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        start = max(self._free_at, not_before)
        end = start + duration_ms
        self._free_at = end
        event = QueueEvent(label=label, start_ms=start, end_ms=end, kind=kind)
        self.events.append(event)
        return event

    def advance_to(self, time_ms: float) -> None:
        """Force the queue idle until ``time_ms`` (barriers, model swaps)."""
        self._free_at = max(self._free_at, time_ms)

    def busy_time_ms(self, *, kind: Optional[str] = None) -> float:
        """Total busy time, optionally restricted to one event kind."""
        return sum(e.duration_ms for e in self.events if kind is None or e.kind == kind)

    def idle_time_ms(self) -> float:
        """Gaps between events up to the queue's current horizon."""
        return self._free_at - self.busy_time_ms()


@dataclass
class DualQueue:
    """The IO + GPU queue pair every executor runs on."""

    io: CommandQueue = field(default_factory=lambda: CommandQueue("io"))
    gpu: CommandQueue = field(default_factory=lambda: CommandQueue("gpu"))

    @property
    def makespan_ms(self) -> float:
        """Completion time of all submitted work."""
        return max(self.io.free_at, self.gpu.free_at)

    def all_events(self) -> List[QueueEvent]:
        """Merged, time-ordered event log across both queues."""
        return sorted(self.io.events + self.gpu.events, key=lambda e: (e.start_ms, e.end_ms))
