"""Memory pools with residency accounting for unified and texture memory.

The simulator tracks every allocation's lifetime so the timeline can report
instantaneous, peak, and time-weighted-average footprints — the quantities
Tables 1 and 8 and Figures 6 and 10 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class OutOfMemoryError(Exception):
    """Raised when an allocation would exceed the device's RAM budget.

    Mirrors the paper's Figure 10 "device ran out of memory during
    initialization" empty bars.
    """

    def __init__(self, requested: int, in_use: int, budget: int) -> None:
        super().__init__(
            f"allocation of {requested / 1e6:.1f} MB exceeds budget "
            f"({in_use / 1e6:.1f} MB in use of {budget / 1e6:.1f} MB)"
        )
        self.requested = requested
        self.in_use = in_use
        self.budget = budget


@dataclass
class Allocation:
    """A live region in a pool."""

    name: str
    nbytes: int
    alloc_time_ms: float


class MemoryPool:
    """A named pool (unified memory or texture memory) with usage tracking.

    Allocations are keyed by name; double allocation or double free of a name
    is an error — the executors are expected to manage lifetimes precisely,
    and sloppy accounting here would silently corrupt the memory results.
    """

    def __init__(self, name: str, budget_bytes: Optional[int] = None) -> None:
        self.name = name
        self.budget_bytes = budget_bytes
        self._live: Dict[str, Allocation] = {}
        self._in_use = 0
        self._peak = 0
        #: (time_ms, in_use_bytes) samples, appended on every alloc/free.
        self.history: List[Tuple[float, int]] = [(0.0, 0)]

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def peak(self) -> int:
        return self._peak

    def contains(self, name: str) -> bool:
        return name in self._live

    def allocate(self, name: str, nbytes: int, time_ms: float) -> None:
        """Allocate ``nbytes`` under ``name`` at simulation time ``time_ms``."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._live:
            raise ValueError(f"{self.name}: {name!r} already allocated")
        if self.budget_bytes is not None and self._in_use + nbytes > self.budget_bytes:
            raise OutOfMemoryError(nbytes, self._in_use, self.budget_bytes)
        self._live[name] = Allocation(name, nbytes, time_ms)
        self._in_use += nbytes
        self._peak = max(self._peak, self._in_use)
        self.history.append((time_ms, self._in_use))

    def free(self, name: str, time_ms: float) -> int:
        """Free the allocation ``name``; returns its size."""
        try:
            alloc = self._live.pop(name)
        except KeyError:
            raise ValueError(f"{self.name}: {name!r} not allocated") from None
        self._in_use -= alloc.nbytes
        self.history.append((time_ms, self._in_use))
        return alloc.nbytes

    def free_all(self, time_ms: float) -> None:
        """Release every live allocation (model teardown)."""
        for name in list(self._live):
            self.free(name, time_ms)

    def size_of(self, name: str) -> int:
        return self._live[name].nbytes

    def live_names(self) -> List[str]:
        return list(self._live)

    def average_over(self, start_ms: float, end_ms: float) -> float:
        """Time-weighted average usage over [start, end] in bytes.

        History samples are step changes, so the average is the integral of
        the step function divided by the window length.
        """
        if end_ms <= start_ms:
            return float(self._in_use)
        total = 0.0
        prev_t, prev_v = start_ms, self._usage_at(start_ms)
        for t, v in self.history:
            if t <= start_ms:
                continue
            if t >= end_ms:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (end_ms - prev_t)
        return total / (end_ms - start_ms)

    def _usage_at(self, time_ms: float) -> int:
        usage = 0
        for t, v in self.history:
            if t > time_ms:
                break
            usage = v
        return usage
