"""Texture cache model: why 2.5D texture memory accelerates DNN kernels.

Background for the paper's §2.1: Romou measured up to 3.5x speedups from
running DNN kernels out of texture memory instead of plain unified-memory
buffers.  The mechanism is the texture cache — a small read-only cache
optimised for 2D spatial locality, fed by texel (RGBA) fetches — versus the
GPU's ordinary load path, which on mobile parts has no read-only cache of
comparable reach and suffers strided access patterns.

This module simulates both paths over the access patterns DNN kernels
generate (tiled matmul reads, sliding conv windows, linear elementwise
scans) and derives the *effective bandwidth* of each.  It is deliberately
not wired into the calibrated roofline model (`repro.gpusim.kernels`) —
the calibration already reflects texture-backed kernels; this model
*explains* the gap that the ExecuTorch baseline (no texture path) pays as a
profile constant, and backs the background-claims bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.gpusim.texture import TEXEL_DEPTH


class AccessPattern(enum.Enum):
    """Representative DNN kernel access patterns."""

    TILED_2D = "tiled_2d"        # matmul/conv reading 2D tiles (reuse-heavy)
    ROW_LINEAR = "row_linear"    # elementwise scan along rows
    COLUMN_STRIDED = "column_strided"  # transposed access (worst case in 1D)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated texture cache.

    Defaults approximate a mobile GPU L1 texture cache: 16 KiB, 64-byte
    lines, 4-way set associative.
    """

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    ways: int = 4

    @property
    def num_sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.ways))


class SetAssociativeCache:
    """A small LRU set-associative cache over byte addresses."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets = [dict() for _ in range(config.num_sets)]  # tag -> lru tick
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[index]
        self._tick += 1
        if tag in ways:
            ways[tag] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[tag] = self._tick
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _morton(x: int, y: int) -> int:
    """Interleave the bits of (x, y) — the Z-order curve texture hardware
    uses to store texels, so 2D-adjacent texels share cache lines in both
    dimensions."""
    result = 0
    for bit in range(16):
        result |= ((x >> bit) & 1) << (2 * bit)
        result |= ((y >> bit) & 1) << (2 * bit + 1)
    return result


def _texture_addresses(
    pattern: AccessPattern, width_texels: int, height_texels: int, texel_bytes: int, tile: int = 8
) -> Iterator[int]:
    """Texel access stream for a pattern over a (width x height) texture.

    2.5D layout: texels are stored along a Z-order curve (hardware
    swizzling), and each texel packs ``TEXEL_DEPTH`` scalars, so
    neighbouring channel reads coalesce into one address and 2D locality
    holds in both axes.
    """
    if pattern is AccessPattern.TILED_2D:
        for ty in range(0, height_texels, tile):
            for tx in range(0, width_texels, tile):
                for y in range(ty, min(ty + tile, height_texels)):
                    for x in range(tx, min(tx + tile, width_texels)):
                        yield _morton(x, y) * texel_bytes
    elif pattern is AccessPattern.ROW_LINEAR:
        for y in range(height_texels):
            for x in range(width_texels):
                yield _morton(x, y) * texel_bytes
    else:  # COLUMN_STRIDED
        for x in range(width_texels):
            for y in range(height_texels):
                yield _morton(x, y) * texel_bytes


def _linear_addresses(
    pattern: AccessPattern, width: int, height: int, elem_bytes: int, tile: int = 8
) -> Iterator[int]:
    """The same logical accesses against a flat 1D buffer (no texel packing):
    every scalar is its own address, and 2D tiles become strided in memory."""
    if pattern is AccessPattern.TILED_2D:
        for ty in range(0, height, tile):
            for tx in range(0, width, tile):
                for y in range(ty, min(ty + tile, height)):
                    for x in range(tx, min(tx + tile, width)):
                        yield (y * width + x) * elem_bytes
    elif pattern is AccessPattern.ROW_LINEAR:
        for y in range(height):
            for x in range(width):
                yield (y * width + x) * elem_bytes
    else:
        for x in range(width):
            for y in range(height):
                yield (y * width + x) * elem_bytes


@dataclass(frozen=True)
class PathComparison:
    """Hit rates and the implied bandwidth advantage of the texture path."""

    pattern: AccessPattern
    texture_hit_rate: float
    linear_hit_rate: float
    #: Effective-bandwidth ratio texture/linear given miss costs.
    speedup: float


def compare_paths(
    pattern: AccessPattern,
    *,
    width: int = 128,
    height: int = 128,
    elem_bytes: int = 2,
    config: CacheConfig = CacheConfig(),
    miss_penalty: float = 8.0,
) -> PathComparison:
    """Replay one access pattern through both memory paths.

    The texture path sees texel-packed 2D addresses through the texture
    cache; the linear path sees per-scalar addresses through an equal-sized
    cache (generous to the baseline — mobile GPUs often lack one for
    buffer loads).  ``miss_penalty`` is the cost of a miss relative to a
    hit; the speedup is the ratio of average access costs.
    """
    tex = SetAssociativeCache(config)
    # Pack scalars into texels: a (width x height) scalar grid becomes a
    # (width/TEXEL_DEPTH x height) texel grid.
    tex_width = max(1, width // TEXEL_DEPTH)
    for addr in _texture_addresses(pattern, tex_width, height, TEXEL_DEPTH * elem_bytes):
        tex.access(addr)
    lin = SetAssociativeCache(config)
    for addr in _linear_addresses(pattern, width, height, elem_bytes):
        lin.access(addr)
    tex_cost = 1.0 + (1.0 - tex.hit_rate) * miss_penalty
    lin_cost = 1.0 + (1.0 - lin.hit_rate) * miss_penalty
    # Texel packing also amortises: one texel fetch serves TEXEL_DEPTH
    # scalars, so per-scalar cost drops accordingly.
    speedup = (lin_cost / tex_cost) * (TEXEL_DEPTH * tex.hit_rate + (1 - tex.hit_rate))
    return PathComparison(
        pattern=pattern,
        texture_hit_rate=tex.hit_rate,
        linear_hit_rate=lin.hit_rate,
        speedup=speedup,
    )
