"""Analytic kernel cost model with overlap interference.

The core of the simulator: how long does one lowered operator take, and how
much does concurrently streaming extra weight bytes through the kernel slow
it down?  The interference behaviour reproduces the paper's Figure 2:

- **Reusable** kernels (MatMul/Conv) are compute-bound; their arithmetic
  pipeline leaves memory-pipeline slack that hides embedded loads, so
  latency grows slowly with the streamed ratio.
- **Elemental** kernels are memory-bound with tiny base latency; embedded
  loads share the memory pipeline roughly 1:2 with the kernel's own traffic,
  so relative growth is linear but the absolute cost stays small.
- **Hierarchical** kernels (Softmax/LayerNorm) synchronise between stages;
  any concurrent traffic lands on the critical path with amplification, so
  they effectively admit no overlap (the paper assigns them a 0% threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.gpusim.device import DeviceProfile
from repro.graph.ops import OpClass, OpKind, OpSpec

#: Superlinear contention coefficient: exposed streaming time is amplified
#: by (1 + gamma * excess / base) — cache/write-buffer thrash when a kernel
#: is crammed far past its capacity.
CONTENTION_GAMMA = 0.5

#: Relative bandwidth of reading KV tiles kept in plain unified memory vs
#: the texture path: UM-resident KV misses the texture cache and pays
#: uncoalesced strided reads, so the effective bandwidth drops.
UM_KV_BW_FACTOR = 0.55


@dataclass(frozen=True)
class InterferenceCoeffs:
    """Shape of the latency-vs-streamed-ratio curve for one operator class.

    ``hide_fraction`` — share of compute/memory slack usable to hide loads.
    ``share_coeff``   — slowdown per unit of streamed time that could not be
                        hidden (memory-pipeline sharing).
    ``sync_penalty``  — fixed relative penalty as soon as any load is
                        embedded (pipeline restructuring + barrier cost).
    """

    hide_fraction: float
    share_coeff: float
    sync_penalty: float


#: Calibrated per-class interference (see Figure 2 reproduction bench).
INTERFERENCE: Dict[OpClass, InterferenceCoeffs] = {
    OpClass.REUSABLE: InterferenceCoeffs(hide_fraction=0.90, share_coeff=0.35, sync_penalty=0.01),
    OpClass.ELEMENTAL: InterferenceCoeffs(hide_fraction=0.10, share_coeff=0.50, sync_penalty=0.02),
    OpClass.HIERARCHICAL: InterferenceCoeffs(hide_fraction=0.0, share_coeff=1.60, sync_penalty=0.10),
    OpClass.LAYOUT: InterferenceCoeffs(hide_fraction=0.0, share_coeff=1.0, sync_penalty=0.0),
}


@dataclass(frozen=True)
class FlashAttentionKernel:
    """Tiled single-query attention over a KV cache (decode phase).

    The kernel walks the cache in tiles of ``tile_tokens`` K/V rows, doing
    the QK^T dot products, online softmax and PV accumulation per tile, with
    the *next* tile's fetch double-buffered behind the *current* tile's
    arithmetic.  Per-tile cost is therefore ``max(compute, fetch)`` after an
    exposed first-tile fill, and total latency depends only on the number of
    tiles — every tile is priced full (the last one is padded and masked,
    as real tiled kernels do), which is what makes per-token decode cost
    piecewise-constant in context length (the extrapolation lever).

    Tiles come in two fetch classes, set by the residency plan: the most
    recent ``resident_tiles`` live in GPU memory (texture or unified), older
    tiles spill to disk and stream through the IO pipeline.
    """

    heads: int
    head_dim: int
    tile_tokens: int
    dtype_bytes: int = 2

    @classmethod
    def from_spec(cls, spec: OpSpec) -> "FlashAttentionKernel":
        if spec.kind is not OpKind.FLASH_ATTENTION:
            raise ValueError(f"not a FlashAttention spec: {spec.kind}")
        return cls(
            heads=spec.attrs["heads"],
            head_dim=spec.attrs["head_dim"],
            tile_tokens=spec.attrs["tile_tokens"],
            dtype_bytes=spec.output_spec.dtype_bytes,
        )

    @property
    def tile_bytes(self) -> int:
        """K + V bytes of one full tile."""
        return 2 * self.heads * self.head_dim * self.tile_tokens * self.dtype_bytes

    @property
    def tile_flops(self) -> int:
        """QK^T + PV arithmetic over one full tile."""
        return 4 * self.heads * self.head_dim * self.tile_tokens

    def tiles(self, kv_tokens: int) -> int:
        """Number of (full-priced) tiles covering ``kv_tokens`` cached rows."""
        if kv_tokens <= 0:
            raise ValueError("kv_tokens must be positive")
        return -(-kv_tokens // self.tile_tokens)

    def time_ms(
        self,
        device: DeviceProfile,
        kv_tokens: int,
        *,
        resident_tiles: int = None,
        texture: bool = True,
        efficiency: float = 1.0,
    ) -> float:
        """Latency of one decode-attention call over ``kv_tokens`` rows.

        ``resident_tiles=None`` keeps the whole cache resident (the
        preloading baselines); otherwise the oldest ``n - resident_tiles``
        tiles stream from disk.  ``texture`` selects the resident read path
        (texture cache vs :data:`UM_KV_BW_FACTOR`-degraded unified memory).

        This scalar form is the oracle the vectorized
        :func:`repro.gpusim.pricing.flash_attention_time_table` must match
        bitwise — keep the operation order in sync with it.
        """
        if efficiency <= 0:
            raise ValueError("efficiency must be positive")
        n = self.tiles(kv_tokens)
        if resident_tiles is None:
            r = n
        elif resident_tiles < 0:
            raise ValueError("resident_tiles must be non-negative")
        else:
            r = min(n, resident_tiles)
        s = n - r
        t_compute = device.compute_time_ms(self.tile_flops) / efficiency
        t_resident = device.memory_time_ms(self.tile_bytes) / efficiency
        if not texture:
            t_resident = t_resident / UM_KV_BW_FACTOR
        t_stream = device.disk_latency_ms + self.tile_bytes / device.disk_bw
        # Streamed (oldest) tiles run first; the pipeline fill exposes the
        # first tile's fetch, every later fetch hides behind compute.
        fill = t_stream if s > 0 else t_resident
        steady = s * max(t_compute, t_stream) + r * max(t_compute, t_resident)
        return device.kernel_launch_ms + fill + steady


class KernelCostModel:
    """Prices lowered operators on a device, with optional embedded loads."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device

    # ------------------------------------------------------------- base cost
    def base_time_ms(self, op: OpSpec, *, efficiency: float = 1.0) -> float:
        """Roofline latency of ``op`` without any embedded loads.

        ``efficiency`` scales the achievable compute/memory throughput —
        framework profiles use it to model less-optimised kernels (e.g.
        ExecuTorch's lack of GPU-specific tuning).
        """
        if efficiency <= 0:
            raise ValueError("efficiency must be positive")
        if op.op_class is OpClass.LAYOUT:
            # Pure layout ops are a data copy through unified memory.
            copy = op.output_bytes / self.device.um_bw
            return self.device.kernel_launch_ms + copy
        t_compute = self.device.compute_time_ms(op.flops) / efficiency
        t_memory = self.device.memory_time_ms(op.bytes_moved) / efficiency
        return self.device.kernel_launch_ms + max(t_compute, t_memory)

    def compute_slack_ms(self, op: OpSpec, *, efficiency: float = 1.0) -> float:
        """Memory-pipeline idle time while the kernel's arithmetic runs.

        This is the budget an embedded load can hide inside (compute-bound
        kernels have lots; memory-bound kernels have none).
        """
        t_compute = self.device.compute_time_ms(op.flops) / efficiency
        t_memory = self.device.memory_time_ms(op.bytes_moved) / efficiency
        return max(0.0, t_compute - t_memory)

    # ----------------------------------------------------- with embedded load
    def time_with_load_ms(self, op: OpSpec, extra_bytes: int, *, efficiency: float = 1.0) -> float:
        """Latency when the kernel also streams ``extra_bytes`` of weights.

        The streamed bytes travel the raw texture-upload path; whatever does
        not fit in the kernel's slack serialises, scaled by the class's
        memory-sharing coefficient, plus a fixed synchronisation penalty.
        The exposed part grows *superlinearly* relative to the kernel's base
        latency: a kernel crammed far past its capacity thrashes the texture
        cache and write-combining buffers (this is what makes Always-Next
        cramming expensive, Figure 9).
        """
        base = self.base_time_ms(op, efficiency=efficiency)
        if extra_bytes <= 0:
            return base
        coeffs = INTERFERENCE[op.op_class]
        stream_time = extra_bytes / self.device.tm_upload_bw
        hidden = min(stream_time, self.compute_slack_ms(op, efficiency=efficiency) * coeffs.hide_fraction)
        excess = stream_time - hidden
        exposed = coeffs.share_coeff * excess * (1.0 + CONTENTION_GAMMA * excess / base)
        return base * (1.0 + coeffs.sync_penalty) + exposed

    def slowdown_fraction(self, op: OpSpec, extra_bytes: int, *, efficiency: float = 1.0) -> float:
        """Relative latency increase from streaming ``extra_bytes``.

        This is the quantity Figure 2 plots and the load-capacity thresholds
        (0% / 20% / 300%) are defined over.
        """
        base = self.base_time_ms(op, efficiency=efficiency)
        with_load = self.time_with_load_ms(op, extra_bytes, efficiency=efficiency)
        return (with_load - base) / base

    def load_capacity_bytes(self, op: OpSpec, threshold: float, *, efficiency: float = 1.0) -> int:
        """Largest embedded load keeping slowdown within ``threshold``.

        Analytic inverse of :meth:`slowdown_fraction`.  Returns 0 when even
        an infinitesimal load breaches the threshold (hierarchical ops with
        a 0% threshold).
        """
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        base = self.base_time_ms(op, efficiency=efficiency)
        coeffs = INTERFERENCE[op.op_class]
        if base * coeffs.sync_penalty > threshold * base:
            return 0
        # Budget for exposed streaming time after the sync penalty.
        exposed_budget = threshold * base - coeffs.sync_penalty * base
        hidden_budget = self.compute_slack_ms(op, efficiency=efficiency) * coeffs.hide_fraction
        if coeffs.share_coeff <= 0:
            stream_budget = float("inf")
        else:
            # Invert share * e * (1 + gamma * e / base) = exposed_budget —
            # a quadratic in the excess streaming time e.
            a = coeffs.share_coeff * CONTENTION_GAMMA / base
            b = coeffs.share_coeff
            c = -exposed_budget
            excess = (-b + math.sqrt(b * b - 4 * a * c)) / (2 * a)
            stream_budget = hidden_budget + excess
        return max(0, int(stream_budget * self.device.tm_upload_bw))
