"""Analytic kernel cost model with overlap interference.

The core of the simulator: how long does one lowered operator take, and how
much does concurrently streaming extra weight bytes through the kernel slow
it down?  The interference behaviour reproduces the paper's Figure 2:

- **Reusable** kernels (MatMul/Conv) are compute-bound; their arithmetic
  pipeline leaves memory-pipeline slack that hides embedded loads, so
  latency grows slowly with the streamed ratio.
- **Elemental** kernels are memory-bound with tiny base latency; embedded
  loads share the memory pipeline roughly 1:2 with the kernel's own traffic,
  so relative growth is linear but the absolute cost stays small.
- **Hierarchical** kernels (Softmax/LayerNorm) synchronise between stages;
  any concurrent traffic lands on the critical path with amplification, so
  they effectively admit no overlap (the paper assigns them a 0% threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.gpusim.device import DeviceProfile
from repro.graph.ops import OpClass, OpSpec

#: Superlinear contention coefficient: exposed streaming time is amplified
#: by (1 + gamma * excess / base) — cache/write-buffer thrash when a kernel
#: is crammed far past its capacity.
CONTENTION_GAMMA = 0.5


@dataclass(frozen=True)
class InterferenceCoeffs:
    """Shape of the latency-vs-streamed-ratio curve for one operator class.

    ``hide_fraction`` — share of compute/memory slack usable to hide loads.
    ``share_coeff``   — slowdown per unit of streamed time that could not be
                        hidden (memory-pipeline sharing).
    ``sync_penalty``  — fixed relative penalty as soon as any load is
                        embedded (pipeline restructuring + barrier cost).
    """

    hide_fraction: float
    share_coeff: float
    sync_penalty: float


#: Calibrated per-class interference (see Figure 2 reproduction bench).
INTERFERENCE: Dict[OpClass, InterferenceCoeffs] = {
    OpClass.REUSABLE: InterferenceCoeffs(hide_fraction=0.90, share_coeff=0.35, sync_penalty=0.01),
    OpClass.ELEMENTAL: InterferenceCoeffs(hide_fraction=0.10, share_coeff=0.50, sync_penalty=0.02),
    OpClass.HIERARCHICAL: InterferenceCoeffs(hide_fraction=0.0, share_coeff=1.60, sync_penalty=0.10),
    OpClass.LAYOUT: InterferenceCoeffs(hide_fraction=0.0, share_coeff=1.0, sync_penalty=0.0),
}


class KernelCostModel:
    """Prices lowered operators on a device, with optional embedded loads."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device

    # ------------------------------------------------------------- base cost
    def base_time_ms(self, op: OpSpec, *, efficiency: float = 1.0) -> float:
        """Roofline latency of ``op`` without any embedded loads.

        ``efficiency`` scales the achievable compute/memory throughput —
        framework profiles use it to model less-optimised kernels (e.g.
        ExecuTorch's lack of GPU-specific tuning).
        """
        if efficiency <= 0:
            raise ValueError("efficiency must be positive")
        if op.op_class is OpClass.LAYOUT:
            # Pure layout ops are a data copy through unified memory.
            copy = op.output_bytes / self.device.um_bw
            return self.device.kernel_launch_ms + copy
        t_compute = self.device.compute_time_ms(op.flops) / efficiency
        t_memory = self.device.memory_time_ms(op.bytes_moved) / efficiency
        return self.device.kernel_launch_ms + max(t_compute, t_memory)

    def compute_slack_ms(self, op: OpSpec, *, efficiency: float = 1.0) -> float:
        """Memory-pipeline idle time while the kernel's arithmetic runs.

        This is the budget an embedded load can hide inside (compute-bound
        kernels have lots; memory-bound kernels have none).
        """
        t_compute = self.device.compute_time_ms(op.flops) / efficiency
        t_memory = self.device.memory_time_ms(op.bytes_moved) / efficiency
        return max(0.0, t_compute - t_memory)

    # ----------------------------------------------------- with embedded load
    def time_with_load_ms(self, op: OpSpec, extra_bytes: int, *, efficiency: float = 1.0) -> float:
        """Latency when the kernel also streams ``extra_bytes`` of weights.

        The streamed bytes travel the raw texture-upload path; whatever does
        not fit in the kernel's slack serialises, scaled by the class's
        memory-sharing coefficient, plus a fixed synchronisation penalty.
        The exposed part grows *superlinearly* relative to the kernel's base
        latency: a kernel crammed far past its capacity thrashes the texture
        cache and write-combining buffers (this is what makes Always-Next
        cramming expensive, Figure 9).
        """
        base = self.base_time_ms(op, efficiency=efficiency)
        if extra_bytes <= 0:
            return base
        coeffs = INTERFERENCE[op.op_class]
        stream_time = extra_bytes / self.device.tm_upload_bw
        hidden = min(stream_time, self.compute_slack_ms(op, efficiency=efficiency) * coeffs.hide_fraction)
        excess = stream_time - hidden
        exposed = coeffs.share_coeff * excess * (1.0 + CONTENTION_GAMMA * excess / base)
        return base * (1.0 + coeffs.sync_penalty) + exposed

    def slowdown_fraction(self, op: OpSpec, extra_bytes: int, *, efficiency: float = 1.0) -> float:
        """Relative latency increase from streaming ``extra_bytes``.

        This is the quantity Figure 2 plots and the load-capacity thresholds
        (0% / 20% / 300%) are defined over.
        """
        base = self.base_time_ms(op, efficiency=efficiency)
        with_load = self.time_with_load_ms(op, extra_bytes, efficiency=efficiency)
        return (with_load - base) / base

    def load_capacity_bytes(self, op: OpSpec, threshold: float, *, efficiency: float = 1.0) -> int:
        """Largest embedded load keeping slowdown within ``threshold``.

        Analytic inverse of :meth:`slowdown_fraction`.  Returns 0 when even
        an infinitesimal load breaches the threshold (hierarchical ops with
        a 0% threshold).
        """
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        base = self.base_time_ms(op, efficiency=efficiency)
        coeffs = INTERFERENCE[op.op_class]
        if base * coeffs.sync_penalty > threshold * base:
            return 0
        # Budget for exposed streaming time after the sync penalty.
        exposed_budget = threshold * base - coeffs.sync_penalty * base
        hidden_budget = self.compute_slack_ms(op, efficiency=efficiency) * coeffs.hide_fraction
        if coeffs.share_coeff <= 0:
            stream_budget = float("inf")
        else:
            # Invert share * e * (1 + gamma * e / base) = exposed_budget —
            # a quadratic in the excess streaming time e.
            a = coeffs.share_coeff * CONTENTION_GAMMA / base
            b = coeffs.share_coeff
            c = -exposed_budget
            excess = (-b + math.sqrt(b * b - 4 * a * c)) / (2 * a)
            stream_budget = hidden_budget + excess
        return max(0, int(stream_budget * self.device.tm_upload_bw))
