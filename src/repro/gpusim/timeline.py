"""Simulation result containers: memory timeline and latency phases.

Every executor produces a :class:`RunResult`; the experiment drivers read
peak/average memory, phase latencies, and energy from it.  Multi-model runs
(Figure 6) concatenate per-model results into a shared timeline.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class MemoryTimeline:
    """Step-function record of total memory in use over simulated time."""

    def __init__(self) -> None:
        #: (time_ms, total_bytes) step samples, time-sorted.
        self.samples: List[Tuple[float, int]] = [(0.0, 0)]

    def record(self, time_ms: float, total_bytes: int) -> None:
        """Append a sample; out-of-order times are inserted in place."""
        if total_bytes < 0:
            raise ValueError("memory cannot be negative")
        if self.samples and time_ms >= self.samples[-1][0]:
            self.samples.append((time_ms, total_bytes))
        else:
            idx = bisect.bisect_right([t for t, _ in self.samples], time_ms)
            self.samples.insert(idx, (time_ms, total_bytes))

    @property
    def peak_bytes(self) -> int:
        return max(v for _, v in self.samples)

    def usage_at(self, time_ms: float) -> int:
        usage = 0
        for t, v in self.samples:
            if t > time_ms:
                break
            usage = v
        return usage

    def average_bytes(self, start_ms: float = 0.0, end_ms: Optional[float] = None) -> float:
        """Time-weighted average over [start, end] (end defaults to last sample).

        The result is clamped to the value range attained over the window: a
        true time-weighted mean lies between the minimum and maximum of the
        step function, but the float integral can drift an ulp past those
        bounds (e.g. a constant timeline averaging a hair above its peak).
        """
        if end_ms is None:
            end_ms = self.samples[-1][0]
        if end_ms <= start_ms:
            return float(self.usage_at(start_ms))
        total = 0.0
        prev_t, prev_v = start_ms, self.usage_at(start_ms)
        vmin = vmax = prev_v
        for t, v in self.samples:
            if t <= start_ms:
                continue
            if t >= end_ms:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
            if v < vmin:
                vmin = v
            elif v > vmax:
                vmax = v
        total += prev_v * (end_ms - prev_t)
        average = total / (end_ms - start_ms)
        if average > vmax:
            return float(vmax)
        if average < vmin:
            return float(vmin)
        return average

    def series(self, resolution_ms: float = 50.0, end_ms: Optional[float] = None) -> List[Tuple[float, int]]:
        """Resampled (time, bytes) series for plotting (Figure 6)."""
        if resolution_ms <= 0:
            raise ValueError("resolution must be positive")
        if end_ms is None:
            end_ms = self.samples[-1][0]
        out: List[Tuple[float, int]] = []
        t = 0.0
        while t <= end_ms:
            out.append((t, self.usage_at(t)))
            t += resolution_ms
        return out


# ------------------------------------------------------- columnar merging
def session_deltas(timeline: MemoryTimeline) -> Tuple[np.ndarray, np.ndarray]:
    """A timeline's step samples as (times, deltas) columns.

    The first sample's delta is its absolute value, so ``np.cumsum(deltas)``
    reproduces the sample values exactly (values are integer byte counts and
    the deltas are int64 — the round trip is bit-exact).  This is the
    recording format multi-session merges consume: a session's contribution
    to a shared timeline is its delta train, offset to its start time.
    """
    samples = timeline.samples
    n = len(samples)
    times = np.fromiter((t for t, _ in samples), dtype=np.float64, count=n)
    values = np.fromiter((v for _, v in samples), dtype=np.int64, count=n)
    return times, np.diff(values, prepend=np.int64(0))


def merge_session_columns(
    sessions: Sequence[Tuple[float, np.ndarray, np.ndarray, float]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-session delta columns into one summed step function.

    ``sessions`` holds ``(offset_ms, times, deltas, end_ms)`` per session —
    ``times``/``deltas`` as produced by :func:`session_deltas`, ``offset_ms``
    the session's position on the shared clock, and ``end_ms`` the instant
    the session tears down.  Each session contributes its own step function
    between ``offset_ms`` and ``end_ms`` and *zero* outside that window: a
    teardown delta returning the session's running total to zero is emitted
    at ``end_ms``, so the merged floor drops only when a session actually
    ends — under concurrent sessions the remaining residents keep their
    bytes counted (the conditional form of the old absolute ``record(end,
    0)`` floor drop, which zeroed co-resident apps).

    The merge is one numpy pass: concatenate all columns, stable-sort by
    time (``np.lexsort``), cumulative-sum the deltas.  Stability extends the
    simulator's same-instant tie rule (engine ``build_timeline``) across
    session boundaries: within a session the original — already
    tie-resolved — sample order is preserved, and at a shared instant an
    earlier session's teardown free integrates before a later session's
    first allocation, so a back-to-back handoff is an exchange, not a
    transient double-residency.  Sessions must be supplied in start order.

    Returns ``(times, totals)`` columns; totals are exact int64 sums, and
    for non-overlapping sessions the columns are sample-for-sample what the
    seed per-``record`` merge loop produced.
    """
    times_parts: List[np.ndarray] = [np.zeros(1, dtype=np.float64)]
    delta_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    for offset_ms, times, deltas, end_ms in sessions:
        times = np.asarray(times, dtype=np.float64)
        deltas = np.asarray(deltas, dtype=np.int64)
        times_parts.append(times + offset_ms)
        delta_parts.append(deltas)
        # Teardown: the session's contribution returns to zero at its end.
        times_parts.append(np.array([end_ms], dtype=np.float64))
        delta_parts.append(np.array([-int(deltas.sum())], dtype=np.int64))
    all_times = np.concatenate(times_parts)
    all_deltas = np.concatenate(delta_parts)
    order = np.lexsort((all_times,))  # stable: ties keep session order
    merged_times = all_times[order]
    totals = np.cumsum(all_deltas[order])
    if len(totals) and totals.min() < 0:
        raise ValueError("memory cannot be negative")
    return merged_times, totals


def merge_sessions(
    sessions: Sequence[Tuple[float, np.ndarray, np.ndarray, float]],
) -> MemoryTimeline:
    """:func:`merge_session_columns`, materialized as a :class:`MemoryTimeline`."""
    merged_times, totals = merge_session_columns(sessions)
    timeline = MemoryTimeline()
    timeline.samples = list(zip(merged_times.tolist(), totals.tolist()))
    return timeline


@dataclass
class Phases:
    """Latency breakdown of one model run, in ms.

    ``load``      — disk -> unified memory time on the IO queue.
    ``transform`` — dedicated layout-transformation kernels (preloading path).
    ``execute``   — inference kernels (including embedded loads for FlashMem).
    ``setup``     — one-off GPU context/program setup.
    """

    setup: float = 0.0
    load: float = 0.0
    transform: float = 0.0
    execute: float = 0.0

    @property
    def init(self) -> float:
        """Initialization latency as the paper reports it (cold start)."""
        return self.setup + self.load + self.transform

    @property
    def total(self) -> float:
        return self.init + self.execute


@dataclass
class RunResult:
    """Outcome of simulating one model on one runtime."""

    model: str
    runtime: str
    device: str
    #: End-to-end wall-clock latency in ms (init + exec for preloaders;
    #: integrated for FlashMem).
    latency_ms: float
    phases: Phases
    memory: MemoryTimeline
    #: Peak bytes as accounted by the executor (UM + TM).
    peak_memory_bytes: int
    #: Time-weighted average bytes over the whole run.
    avg_memory_bytes: float
    energy_j: float = 0.0
    avg_power_w: float = 0.0
    #: Free-form executor details (preload ratio, plan stats, ...).
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / 1e6

    @property
    def avg_memory_mb(self) -> float:
        return self.avg_memory_bytes / 1e6

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.model}/{self.runtime}@{self.device}: "
            f"{self.latency_ms:.0f} ms, avg {self.avg_memory_mb:.0f} MB, "
            f"peak {self.peak_memory_mb:.0f} MB, {self.energy_j:.1f} J"
        )


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for the paper's speedup/reduction summaries)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
