"""Simulation session: binds queues, memory pools, and accounting together.

Executors (``repro.runtime``) drive a :class:`Simulation` — submitting IO
and kernel work, allocating/freeing memory at event boundaries — and then
:meth:`Simulation.finish` assembles the :class:`~repro.gpusim.timeline.RunResult`.

Memory events are recorded as (time, delta) pairs and integrated at finish
time: executors allocate at *event completion times* that do not arrive in
chronological order (a disk load finishes long before the transform kernel
enqueued after it), so the step function can only be built once all events
are known.

**Tie-breaking rule.**  Deltas at equal timestamps integrate *frees before
allocations* (sorted by (time, delta), so negative deltas come first).  An
executor that frees a unified-memory staging copy and allocates the texture
copy "at the same millisecond" models an exchange, not a transient
double-residency — integrating the allocation first would overstate peak
memory by the staging size, with the overstatement depending on executor
submission order.  ``build_timeline`` implements the rule with a numpy
lexsort + cumsum over the whole delta log.

The rule has one executor-visible escape hatch for frees that model the
*other* semantics: ``free_um(..., after_allocs=True)`` applies after the
allocations of the same instant.  A serialized model file that stays mapped
until the last tensor has been copied out of it really does coexist with
that tensor's fresh allocation for an instant — the double-residency is the
init-time transient behind Table 1's ~3x peaks, so the free must not erase
it just because both deltas carry the same timestamp.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceProfile
from repro.gpusim.energy import measure_energy
from repro.gpusim.kernels import KernelCostModel
from repro.gpusim.memory import MemoryPool
from repro.gpusim.queues import DualQueue
from repro.gpusim.timeline import MemoryTimeline, Phases, RunResult


class Simulation:
    """One simulated run of a model under some runtime on a device.

    The session enforces the device RAM budget across unified + texture
    memory combined (mobile unified architectures share physical RAM), so an
    over-eager preloader hits the paper's Figure 10 OOM condition; the
    violation is detected when the timeline is integrated at finish time.
    """

    def __init__(self, device: DeviceProfile, *, model: str, runtime: str) -> None:
        self.device = device
        self.model = model
        self.runtime = runtime
        self.queues = DualQueue()
        self.cost = KernelCostModel(device)
        # Pools validate alloc/free pairing and track sizes; the timeline is
        # integrated from the delta log at finish.
        self.um = MemoryPool("unified")
        self.tm = MemoryPool("texture")
        self.phases = Phases()
        # (time_ms, delta_bytes, rank): rank 0 integrates with the default
        # frees-before-allocs tie rule; rank 1 marks after-alloc frees.
        self._deltas: List[Tuple[float, int, int]] = []
        self._timeline: Optional[Tuple[int, MemoryTimeline]] = None
        self._finished: Optional[RunResult] = None

    # ------------------------------------------------------------- memory ops
    @property
    def total_in_use(self) -> int:
        return self.um.in_use + self.tm.in_use

    def alloc_um(self, name: str, nbytes: int, time_ms: float) -> None:
        self.um.allocate(name, nbytes, time_ms)
        self._deltas.append((time_ms, nbytes, 0))

    def free_um(self, name: str, time_ms: float, *, after_allocs: bool = False) -> None:
        """Free a unified-memory allocation.

        ``after_allocs=True`` integrates the free *after* same-timestamp
        allocations instead of before them (see the module docstring): use
        it when the freed buffer genuinely coexists for an instant with
        memory allocated at the same time — a copy-out transient — rather
        than being exchanged for it.
        """
        nbytes = self.um.free(name, time_ms)
        self._deltas.append((time_ms, -nbytes, 1 if after_allocs else 0))

    def alloc_tm(self, name: str, nbytes: int, time_ms: float) -> None:
        self.tm.allocate(name, nbytes, time_ms)
        self._deltas.append((time_ms, nbytes, 0))

    def free_tm(self, name: str, time_ms: float) -> None:
        nbytes = self.tm.free(name, time_ms)
        self._deltas.append((time_ms, -nbytes, 0))

    def free_all(self, time_ms: float) -> None:
        """Release every live allocation in both pools (model teardown),
        recording the deltas so the timeline returns to zero."""
        for name in list(self.um.live_names()):
            self.free_um(name, time_ms)
        for name in list(self.tm.live_names()):
            self.free_tm(name, time_ms)

    def raw_deltas(self) -> List[Tuple[float, int, int]]:
        """The mutable delta log, for trusted bulk-append replay paths.

        Appended ``(time_ms, delta_bytes, rank)`` entries bypass the
        :class:`MemoryPool` bookkeeping, so the caller must guarantee they
        are alloc/free balanced (the runtime's steady-state replay verifies
        this during recording).
        """
        return self._deltas

    def build_timeline(self) -> MemoryTimeline:
        """Integrate the delta log into a chronological step function.

        The integration sorts the full delta log, so it is memoised on the
        log length: ``oom`` and ``finish`` (and repeated OOM probes) share
        one timeline instead of re-sorting per call.  Any new delta
        invalidates the memo.
        """
        if self._timeline is not None and self._timeline[0] == len(self._deltas):
            return self._timeline[1]
        timeline = MemoryTimeline()
        if self._deltas:
            times = np.array([d[0] for d in self._deltas], dtype=np.float64)
            deltas = np.array([d[1] for d in self._deltas], dtype=np.int64)
            ranks = np.array([d[2] for d in self._deltas], dtype=np.int8)
            # Chronological; frees before allocs at ties, except rank-1
            # after-alloc frees which land last (see module docs).
            order = np.lexsort((deltas, ranks, times))
            totals = np.cumsum(deltas[order])
            if totals.min() < 0:
                raise ValueError("memory cannot be negative")
            # Equivalent to timeline.record per sorted delta: times arrive
            # non-decreasing, so every record would take the append path.
            timeline.samples.extend(zip(times[order].tolist(), totals.tolist()))
        self._timeline = (len(self._deltas), timeline)
        return timeline

    @property
    def oom(self) -> Optional[str]:
        """Diagnostic string if the RAM budget is ever exceeded, else None."""
        peak = self.build_timeline().peak_bytes
        if peak > self.device.ram_budget_bytes:
            return (
                f"{self.model}/{self.runtime}: peak {peak / 1e6:.0f} MB exceeds "
                f"{self.device.ram_budget_bytes / 1e6:.0f} MB budget on {self.device.name}"
            )
        return None

    # --------------------------------------------------------------- finish
    def finish(self, *, details: Optional[Dict[str, float]] = None) -> RunResult:
        """Close the run and assemble the result record."""
        end = self.queues.makespan_ms
        memory = self.build_timeline()
        report = measure_energy(self.queues, self.device, end_ms=end)
        result = RunResult(
            model=self.model,
            runtime=self.runtime,
            device=self.device.name,
            latency_ms=end,
            phases=self.phases,
            memory=memory,
            peak_memory_bytes=memory.peak_bytes,
            avg_memory_bytes=memory.average_bytes(0.0, end),
            energy_j=report.energy_j,
            avg_power_w=report.avg_power_w,
            details=dict(details or {}),
        )
        self._finished = result
        return result
