"""Device profiles for the simulated mobile GPUs.

Each profile captures the hardware quantities the paper's Figure 1(a)
hierarchy exposes: disk -> unified memory -> texture memory -> SM, plus the
compute throughput, kernel launch overhead, and the power rails the energy
model integrates.  Values are calibrated so the simulator lands in the same
magnitude range as the paper's OnePlus 12 measurements (see DESIGN.md §1).

Units: bandwidth in bytes/ms (1 GB/s == 1e6 bytes/ms), time in ms, power in
watts, memory in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

GB_PER_S = 1e6  # bytes per ms


@dataclass(frozen=True)
class PowerRails:
    """Average power draw per execution phase, in watts."""

    idle_w: float = 0.8
    io_w: float = 3.0          # disk -> unified memory streaming (SoC active)
    compute_w: float = 5.0     # GPU kernels running
    overlap_w: float = 6.2     # compute + concurrent streaming


@dataclass(frozen=True)
class DeviceProfile:
    """A simulated mobile SoC: memory hierarchy bandwidths + GPU capability.

    Attributes:
        name: marketing name of the phone.
        gpu: GPU block (Adreno/Mali).
        ram_bytes: total device RAM; runtimes that exceed a budgeted share of
            this fail with OOM (Figure 10 empty bars).
        disk_bw: effective flash sequential-read bandwidth (bytes/ms).
        disk_latency_ms: per-request latency of a flash read.
        um_bw: unified (LPDDR) memory bandwidth seen by the GPU (bytes/ms).
        tm_upload_bw: raw texture-upload path bandwidth (bytes/ms) for the
            rewritten, vectorised in-kernel loads FlashMem uses.
        fp16_gflops: *effective* fp16 arithmetic throughput, GFLOP/s, already
            discounted for achievable SM occupancy on DNN kernels.
        kernel_launch_ms: per-kernel dispatch overhead.
        gpu_setup_ms: one-off GPU context/program setup paid by every
            runtime at process start (OpenCL context + compile cache).
        os_reserve_bytes: RAM held by the OS, system services, and other
            apps; a single app may use ``ram - reserve`` before the
            low-memory killer fires.
        power: phase power rails.
    """

    name: str
    gpu: str
    ram_bytes: int
    disk_bw: float
    disk_latency_ms: float
    um_bw: float
    tm_upload_bw: float
    fp16_gflops: float
    kernel_launch_ms: float
    gpu_setup_ms: float
    os_reserve_bytes: int = int(2.8 * 1024**3)
    power: PowerRails = field(default_factory=PowerRails)

    @property
    def ram_budget_bytes(self) -> int:
        """Memory an app can use before the OS kills it."""
        return max(self.ram_bytes // 4, self.ram_bytes - self.os_reserve_bytes)

    def compute_time_ms(self, flops: int) -> float:
        """Pure arithmetic time for ``flops`` at effective throughput."""
        return flops / (self.fp16_gflops * 1e6)

    def memory_time_ms(self, nbytes: int) -> float:
        """Pure memory-traffic time for ``nbytes`` through unified memory."""
        return nbytes / self.um_bw

    def scaled(self, **overrides: object) -> "DeviceProfile":
        """Copy with fields replaced (for what-if sweeps)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def throttled(
        self,
        factor: Union[float, str],
        *,
        rails: Optional[PowerRails] = None,
    ) -> "DeviceProfile":
        """Clock-throttled copy of this profile.

        ``factor`` is a fraction of burst clocks in (0, 1], or the name of a
        preset state from :data:`THROTTLE_STATES` ("nominal", "warm", "hot",
        "critical").  GPU and memory clocks throttle together on mobile SoCs,
        so the factor scales compute throughput and the UM/TM bandwidths; the
        flash path (its own controller) and fixed launch/setup overheads are
        untouched.  ``rails=`` optionally swaps the power rails — a throttled
        SoC also draws less per phase.
        """
        if isinstance(factor, str):
            if factor not in THROTTLE_STATES:
                raise KeyError(
                    f"unknown throttle state {factor!r}; "
                    f"available: {sorted(THROTTLE_STATES)}"
                )
            factor = THROTTLE_STATES[factor]
        factor = float(factor)
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"throttle factor must be in (0, 1], got {factor}")
        if factor == 1.0 and rails is None:
            return self
        overrides: Dict[str, object] = {
            "fp16_gflops": self.fp16_gflops * factor,
            "um_bw": self.um_bw * factor,
            "tm_upload_bw": self.tm_upload_bw * factor,
        }
        if rails is not None:
            overrides["power"] = rails
        return replace(self, **overrides)  # type: ignore[arg-type]


#: Named sustained-clock states, as fractions of the burst clocks the base
#: presets are calibrated at.  The thermal governor steps down through these
#: as skin temperature rises (or the battery saver engages).
THROTTLE_STATES: Dict[str, float] = {
    "nominal": 1.00,   # burst clocks, cold chassis
    "warm": 0.85,      # sustained load, passive dissipation keeping up
    "hot": 0.70,       # governor capping GPU/memory clocks
    "critical": 0.50,  # skin-temperature limit or battery saver
}


def oneplus_12() -> DeviceProfile:
    """OnePlus 12: Adreno 750, 16 GB RAM, UFS 4.0 (primary eval device)."""
    return DeviceProfile(
        name="OnePlus 12",
        gpu="Adreno 750",
        ram_bytes=16 * 1024**3,
        disk_bw=1.00 * GB_PER_S,
        disk_latency_ms=0.08,
        um_bw=42.0 * GB_PER_S,
        tm_upload_bw=5.0 * GB_PER_S,
        fp16_gflops=650.0,
        kernel_launch_ms=0.045,
        gpu_setup_ms=300.0,
    )


def oneplus_11() -> DeviceProfile:
    """OnePlus 11: Adreno 740, 16 GB RAM, UFS 4.0."""
    return DeviceProfile(
        name="OnePlus 11",
        gpu="Adreno 740",
        ram_bytes=16 * 1024**3,
        disk_bw=0.90 * GB_PER_S,
        disk_latency_ms=0.09,
        um_bw=34.0 * GB_PER_S,
        tm_upload_bw=4.2 * GB_PER_S,
        fp16_gflops=520.0,
        kernel_launch_ms=0.05,
        gpu_setup_ms=330.0,
    )


def pixel_8() -> DeviceProfile:
    """Google Pixel 8: Mali-G715 MP7, 8 GB RAM, UFS 3.1."""
    return DeviceProfile(
        name="Pixel 8",
        gpu="Mali-G715 MP7",
        ram_bytes=8 * 1024**3,
        disk_bw=0.70 * GB_PER_S,
        disk_latency_ms=0.10,
        um_bw=27.0 * GB_PER_S,
        tm_upload_bw=3.0 * GB_PER_S,
        fp16_gflops=380.0,
        kernel_launch_ms=0.06,
        gpu_setup_ms=380.0,
    )


def xiaomi_mi6() -> DeviceProfile:
    """Xiaomi Mi 6: Adreno 540, 6 GB RAM, UFS 2.1 (oldest, most constrained)."""
    return DeviceProfile(
        name="Xiaomi Mi 6",
        gpu="Adreno 540",
        ram_bytes=6 * 1024**3,
        disk_bw=0.35 * GB_PER_S,
        disk_latency_ms=0.15,
        um_bw=14.0 * GB_PER_S,
        tm_upload_bw=1.6 * GB_PER_S,
        fp16_gflops=180.0,
        kernel_launch_ms=0.09,
        gpu_setup_ms=450.0,
    )


DEVICE_PRESETS: Dict[str, "DeviceProfile"] = {}
for _factory in (oneplus_12, oneplus_11, pixel_8, xiaomi_mi6):
    _profile = _factory()
    DEVICE_PRESETS[_profile.name] = _profile


def _normalize_device_name(name: str) -> str:
    """Canonical alias form: lowercase, alphanumerics only.

    Maps "oneplus12", "OnePlus 12", "one-plus_12", "PIXEL 8" etc. onto the
    same key, so scripts and CLI invocations don't have to reproduce the
    marketing spelling exactly.
    """
    return "".join(ch for ch in name.lower() if ch.isalnum())


_DEVICE_ALIASES: Dict[str, str] = {
    _normalize_device_name(_name): _name for _name in DEVICE_PRESETS
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device preset by marketing name or a normalized alias.

    Lookup is case- and punctuation-insensitive ("oneplus12" and
    "OnePlus 12" resolve identically).  Unknown names raise KeyError
    listing the available presets.
    """
    preset = DEVICE_PRESETS.get(name)
    if preset is not None:
        return preset
    canonical = _DEVICE_ALIASES.get(_normalize_device_name(name))
    if canonical is not None:
        return DEVICE_PRESETS[canonical]
    raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICE_PRESETS)}")
