"""2.5D texture memory layout model.

Mobile GPUs expose texture memory as 2D images with a small fixed depth —
each texel packs four scalar channels (RGBA).  The "2.5D" layout of Romou /
SmartMem reorganises an N-D tensor into a grid of (width x height) texels
with depth 4.  This module computes that geometry, the padded storage
footprint, and the cost of moving weights into it:

- :func:`texture_layout` — texel grid for a tensor.
- :func:`texture_bytes` — storage footprint including row alignment padding.
- :func:`transform_time_ms` — dedicated layout-transformation kernel cost
  (the expensive path preloading frameworks pay at init).
- :func:`winograd_expansion` — temporary memory expansion factor for conv
  weight transformation (why conv models save less memory, paper §5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import DeviceProfile
from repro.graph.ops import OpKind, TensorSpec

#: Channels per texel in 2.5D texture memory.
TEXEL_DEPTH = 4

#: Max texture dimension on mobile GPUs (OpenCL image2d limit).
MAX_TEXTURE_DIM = 16384

#: Row pitch alignment in texels.
ROW_ALIGN_TEXELS = 16


@dataclass(frozen=True)
class TextureLayout:
    """Geometry of a tensor stored as a 2.5D texture."""

    width: int       # texels per row
    height: int      # rows
    depth: int       # channels per texel (always 4)
    texel_bytes: int  # bytes per texel

    @property
    def texels(self) -> int:
        return self.width * self.height

    @property
    def nbytes(self) -> int:
        """Padded storage footprint (row pitch aligned)."""
        padded_width = math.ceil(self.width / ROW_ALIGN_TEXELS) * ROW_ALIGN_TEXELS
        return padded_width * self.height * self.texel_bytes


def texture_layout(tensor: TensorSpec) -> TextureLayout:
    """Compute the 2.5D texel grid for ``tensor``.

    The innermost dimension is packed into RGBA channels; remaining elements
    are folded into a near-square 2D grid, clamped to the hardware's maximum
    texture dimension.
    """
    texels = math.ceil(tensor.numel / TEXEL_DEPTH)
    width = min(MAX_TEXTURE_DIM, max(1, int(math.sqrt(texels))))
    height = math.ceil(texels / width)
    if height > MAX_TEXTURE_DIM:
        width = min(MAX_TEXTURE_DIM, math.ceil(texels / MAX_TEXTURE_DIM))
        height = math.ceil(texels / width)
    return TextureLayout(
        width=width,
        height=height,
        depth=TEXEL_DEPTH,
        texel_bytes=TEXEL_DEPTH * tensor.dtype_bytes,
    )


def texture_bytes(tensor: TensorSpec) -> int:
    """Padded texture footprint of ``tensor`` in bytes."""
    return texture_layout(tensor).nbytes


def winograd_expansion(kind: OpKind, kernel: int = 3) -> float:
    """Temporary memory expansion during conv weight transformation.

    F(2x2, 3x3) Winograd transforms a 3x3 kernel tile into a 4x4 tile —
    a 16/9 data expansion — and the transform needs source and destination
    live simultaneously.  Non-conv weights transform in place (factor 1).
    """
    if kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D) and kernel >= 3:
        return 16.0 / 9.0
    return 1.0


def transform_time_ms(
    nbytes: int,
    device: DeviceProfile,
    *,
    effective_bw: float,
    per_tensor_overhead_ms: float = 0.0,
) -> float:
    """Time for a *dedicated* layout-transformation pass over ``nbytes``.

    ``effective_bw`` is the framework-specific transformation throughput in
    bytes/ms; legacy frameworks pay multiple strided passes and per-tensor
    kernel dispatches, so their effective bandwidth is a small fraction of
    the raw texture-upload path (paper Table 1: "Trans." dominates init).
    """
    if effective_bw <= 0:
        raise ValueError("effective_bw must be positive")
    return per_tensor_overhead_ms + device.kernel_launch_ms + nbytes / effective_bw


def embedded_load_time_ms(nbytes: int, device: DeviceProfile) -> float:
    """Time to stream ``nbytes`` through FlashMem's in-kernel vectorised path.

    This is the raw texture-upload bandwidth — the rewritten kernels read
    weights with continuous vectorised fetches while computing, so there is
    no separate transformation pass to pay for (paper §4.4).
    """
    return nbytes / device.tm_upload_bw
