"""Episode memo: each distinct fleet episode is simulated exactly once.

An *episode* is one invocation's full simulation under a fixed
``(model, device, runtime, scenario, throttle-state)`` tuple.  A fleet trace
has thousands of invocations but only a handful of distinct episodes, so the
provider simulates each once — read-through to the persistent
:class:`~repro.core.store.ArtifactStore` (kind ``episode``) when one is
configured, exactly the compiled-model caching idiom in
:mod:`repro.experiments.common` — and answers every further invocation from
the memo.  Replay splices the cached columnar timeline at the invocation's
start offset, so a replayed session is bitwise-identical to re-simulating
(the simulator is deterministic and the columns are exact int64 deltas).

``memoize=False`` turns the provider into the naive engine (a fresh
simulation per invocation) — the A/B baseline the throughput benchmark and
the byte-identity tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.experiments import common
from repro.graph.lowering import eliminate_layout_ops
from repro.gpusim.device import THROTTLE_STATES, get_device
from repro.gpusim.timeline import RunResult, session_deltas
from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import get_profile
from repro.runtime.preload import PreloadExecutor
from repro.runtime.scenario import Scenario


@dataclass(frozen=True)
class Episode:
    """One simulated invocation, stored in replayable columnar form."""

    model: str
    device: str
    runtime: str
    scenario: Scenario
    state: str
    latency_ms: float
    energy_j: float
    peak_bytes: int
    oom: bool
    #: Memory timeline as (times, deltas) columns (see ``session_deltas``).
    times: np.ndarray
    deltas: np.ndarray

    def session(self, start_ms: float) -> Tuple[float, np.ndarray, np.ndarray, float]:
        """This episode as a merge-ready session starting at ``start_ms``."""
        return (start_ms, self.times, self.deltas, start_ms + self.latency_ms)

    @classmethod
    def from_run(
        cls,
        result: RunResult,
        *,
        scenario: Scenario,
        state: str,
    ) -> "Episode":
        times, deltas = session_deltas(result.memory)
        return cls(
            model=result.model,
            device=result.device,
            runtime=result.runtime,
            scenario=scenario,
            state=state,
            latency_ms=result.latency_ms,
            energy_j=result.energy_j,
            peak_bytes=result.peak_memory_bytes,
            oom=bool(result.details.get("oom")),
            times=times,
            deltas=deltas,
        )


def episode_key(
    model: str, device_name: str, runtime: str, scenario: Scenario, state: str
) -> Dict[str, Any]:
    """Artifact-store address of one episode."""
    return {
        "kind": "episode",
        "model": model,
        "device": device_name,
        "runtime": runtime,
        "scenario": scenario.cache_key(),
        "throttle": state,
        "config": common.experiment_config_fingerprint(),
    }


class EpisodeProvider:
    """Read-through episode cache over the deterministic simulator.

    ``get`` answers from, in order: the in-process memo, the persistent
    artifact store (when :func:`repro.experiments.common.configure_cache`
    or a pool worker's read-through store is active), and a fresh
    simulation.  With ``memoize=False`` every ``get`` simulates — the naive
    per-invocation engine used as the benchmark baseline.
    """

    def __init__(self, *, memoize: bool = True) -> None:
        self.memoize = memoize
        self._memo: Dict[Tuple[Any, ...], Episode] = {}
        #: Full simulations performed by this provider.
        self.simulated = 0
        #: ``get`` calls answered without simulating (memo or store).
        self.replayed = 0

    def get(
        self,
        model: str,
        device_name: str,
        runtime: str,
        scenario: Scenario,
        state: str = "nominal",
    ) -> Episode:
        if state not in THROTTLE_STATES:
            raise KeyError(
                f"unknown throttle state {state!r}; "
                f"available: {sorted(THROTTLE_STATES)}"
            )
        if not self.memoize:
            self.simulated += 1
            return self._simulate(model, device_name, runtime, scenario, state)
        memo_key = (model, device_name, runtime, scenario, state)
        episode = self._memo.get(memo_key)
        if episode is not None:
            self.replayed += 1
            return episode
        store = common.cache_store()
        stored: Optional[Episode] = (
            store.load(episode_key(model, device_name, runtime, scenario, state))
            if store is not None
            else None
        )
        if stored is not None:
            self.replayed += 1
            self._memo[memo_key] = stored
            return stored
        self.simulated += 1
        episode = self._simulate(model, device_name, runtime, scenario, state)
        self._memo[memo_key] = episode
        if store is not None:
            store.save(episode_key(model, device_name, runtime, scenario, state), episode)
        return episode

    # ------------------------------------------------------------ simulate
    def _simulate(
        self,
        model: str,
        device_name: str,
        runtime: str,
        scenario: Scenario,
        state: str,
    ) -> Episode:
        device = get_device(device_name).throttled(state)
        if runtime == "FlashMem":
            # Plans are compiled offline for the nominal device (the
            # compile-time artifact); the throttle is a runtime condition
            # applied at execution.
            if scenario.is_decode:
                compiled = common.cached_decode_compile(
                    model, device_name, scenario.context_len
                )
            else:
                compiled = common.cached_compile(model, device_name)
            config = common.experiment_flashmem_config()
            executor = FlashMemExecutor(
                device, rewriting=config.use_kernel_rewriting
            )
            result = executor.run(
                compiled.graph, compiled.plan, compiled.bundle, scenario=scenario
            )
        else:
            profile = get_profile(runtime)
            if scenario.is_decode:
                graph = common.cached_decode_graph(model, scenario.context_len)
            else:
                graph = common.cached_graph(model)
                if runtime == "SMem":
                    graph = eliminate_layout_ops(graph)
            result = PreloadExecutor(profile, device).run(
                graph, scenario=scenario, check_support=False
            )
        return Episode.from_run(result, scenario=scenario, state=state)
