"""Trace replay for one device × runtime cell: FIFO scheduling + SLO stats.

The device serves invocations one at a time (mobile GPUs don't space-share
DNNs): when it frees up, the highest-priority *arrived* request starts —
ties FIFO by arrival, then trace order.  Each invocation executes as the
episode matching the throttle state in force at its start, fetched from an
:class:`~repro.fleet.episode.EpisodeProvider` (memoized, or naive for the
benchmark baseline).

Latency is completion minus arrival — queueing wait included, which is what
an app observes.  The SLO target per invocation is ``slo_multiplier`` times
the *nominal* (unthrottled, no-queue) episode latency of the same work: an
invocation misses its SLO when queueing and thermal throttling together
stretch it past that budget.

The cell's memory timeline is the columnar merge of every session
(:func:`~repro.gpusim.timeline.merge_session_columns`); peak/average are
computed vectorized, and a SHA-256 over the merged columns makes whole-run
byte-identity checkable without shipping megabytes of samples around.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.fleet.episode import EpisodeProvider
from repro.fleet.trace import Trace
from repro.gpusim.timeline import merge_session_columns

#: Default latency budget: 3x the nominal solo episode latency.
DEFAULT_SLO_MULTIPLIER = 3.0


@dataclass(frozen=True)
class InvocationOutcome:
    """One scheduled invocation's timing and SLO verdict."""

    index: int
    model: str
    priority: int
    state: str
    arrival_ms: float
    start_ms: float
    end_ms: float
    slo_target_ms: float

    @property
    def latency_ms(self) -> float:
        """What the app observed: completion minus arrival (queueing included)."""
        return self.end_ms - self.arrival_ms

    @property
    def queue_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def slo_ok(self) -> bool:
        return self.latency_ms <= self.slo_target_ms


@dataclass
class CellResult:
    """Replay outcome of one trace on one device × runtime cell."""

    trace_name: str
    device: str
    runtime: str
    slo_multiplier: float
    outcomes: List[InvocationOutcome] = field(default_factory=list)
    episodes_simulated: int = 0
    invocations_replayed: int = 0
    energy_j: float = 0.0
    peak_bytes: int = 0
    avg_bytes: float = 0.0
    makespan_ms: float = 0.0
    #: SHA-256 over the merged (times, totals) columns — replay ≡ naive
    #: byte-identity is equality of this digest plus the outcome list.
    timeline_sha256: str = ""

    @property
    def invocations(self) -> int:
        return len(self.outcomes)

    def _latencies(self) -> List[float]:
        return sorted(o.latency_ms for o in self.outcomes)

    def percentile_ms(self, pct: float) -> float:
        """Nearest-rank percentile of observed latency."""
        latencies = self._latencies()
        if not latencies:
            return 0.0
        rank = max(1, int(np.ceil(pct / 100.0 * len(latencies))))
        return latencies[rank - 1]

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99.0)

    @property
    def slo_attainment(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(1 for o in self.outcomes if o.slo_ok) / len(self.outcomes)

    @property
    def device_hours(self) -> float:
        """Simulated device time this cell covers, in hours."""
        return self.makespan_ms / 3_600_000.0

    def canonical_json(self) -> str:
        """Exact (hex-float) serialization for byte-identity comparison."""
        payload: Dict[str, Any] = {
            "trace": self.trace_name,
            "device": self.device,
            "runtime": self.runtime,
            "slo_multiplier": float(self.slo_multiplier).hex(),
            "energy_j": float(self.energy_j).hex(),
            "peak_bytes": self.peak_bytes,
            "avg_bytes": float(self.avg_bytes).hex(),
            "makespan_ms": float(self.makespan_ms).hex(),
            "timeline_sha256": self.timeline_sha256,
            "outcomes": [
                [
                    o.index,
                    o.model,
                    o.priority,
                    o.state,
                    float(o.arrival_ms).hex(),
                    float(o.start_ms).hex(),
                    float(o.end_ms).hex(),
                    float(o.slo_target_ms).hex(),
                ]
                for o in self.outcomes
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def replay_trace(
    trace: Trace,
    device_name: str,
    runtime: str = "FlashMem",
    *,
    provider: Optional[EpisodeProvider] = None,
    slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
) -> CellResult:
    """Replay ``trace`` on one device under one runtime.

    ``provider`` defaults to a fresh memoized :class:`EpisodeProvider`;
    pass a shared one to reuse episodes across cells, or a
    ``memoize=False`` one for the naive baseline.
    """
    provider = provider if provider is not None else EpisodeProvider()
    simulated_before = provider.simulated
    replayed_before = provider.replayed
    result = CellResult(
        trace_name=trace.name,
        device=device_name,
        runtime=runtime,
        slo_multiplier=slo_multiplier,
    )
    invocations = trace.invocations
    n = len(invocations)
    heap: List[Any] = []  # (-priority, arrival_ms, seq)
    sessions = []
    next_arrival = 0
    free_at = 0.0
    while heap or next_arrival < n:
        now = free_at
        if not heap:
            now = max(free_at, invocations[next_arrival].arrival_ms)
        while next_arrival < n and invocations[next_arrival].arrival_ms <= now:
            inv = invocations[next_arrival]
            heapq.heappush(heap, (-inv.priority, inv.arrival_ms, next_arrival))
            next_arrival += 1
        _, _, index = heapq.heappop(heap)
        inv = invocations[index]
        start = max(now, inv.arrival_ms)
        state = trace.state_at(start)
        episode = provider.get(inv.model, device_name, runtime, inv.scenario, state)
        nominal = provider.get(inv.model, device_name, runtime, inv.scenario, "nominal")
        end = start + episode.latency_ms
        free_at = end
        sessions.append(episode.session(start))
        result.outcomes.append(
            InvocationOutcome(
                index=index,
                model=inv.model,
                priority=inv.priority,
                state=state,
                arrival_ms=inv.arrival_ms,
                start_ms=start,
                end_ms=end,
                slo_target_ms=slo_multiplier * nominal.latency_ms,
            )
        )
        result.energy_j += episode.energy_j

    result.episodes_simulated = provider.simulated - simulated_before
    result.invocations_replayed = provider.replayed - replayed_before
    result.makespan_ms = max(
        trace.duration_ms, max((o.end_ms for o in result.outcomes), default=0.0)
    )
    times, totals = merge_session_columns(sessions)
    result.peak_bytes = int(totals.max()) if len(totals) else 0
    if result.makespan_ms > 0 and len(times):
        # Step integral: totals[k] holds from times[k] to times[k+1], and the
        # final level (zero once every session tore down) to the makespan.
        held = np.diff(times)
        area = float(np.dot(totals[:-1], held))
        area += float(totals[-1]) * (result.makespan_ms - float(times[-1]))
        result.avg_bytes = area / result.makespan_ms
    digest = hashlib.sha256()
    digest.update(times.tobytes())
    digest.update(totals.tobytes())
    result.timeline_sha256 = digest.hexdigest()
    return result
