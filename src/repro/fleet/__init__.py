"""Fleet-scale trace replay: device-population simulation at device-hours/s.

A :class:`~repro.fleet.trace.Trace` describes realistic multi-app traffic —
seeded arrivals, mixed model sizes (vision prefill + LLM decode), priorities,
and thermal/battery throttle windows.  The replay engine
(:mod:`repro.fleet.replay`) schedules it FIFO per device, fetching each
distinct ``(model, device, runtime, scenario, throttle-state)`` *episode*
from a memo (:mod:`repro.fleet.episode`) that simulates it exactly once and
splices every further invocation by offsetting the cached columnar timeline.
:mod:`repro.fleet.population` fans the device × runtime grid out over a
pre-warmed process pool and reports SLO attainment / p50 / p99 / energy per
cell plus the headline simulated-device-hours-per-wall-clock-second.
"""

from repro.fleet.episode import Episode, EpisodeProvider
from repro.fleet.population import FleetReport, run_fleet
from repro.fleet.replay import CellResult, replay_trace
from repro.fleet.trace import ThrottleWindow, Trace, TraceInvocation, generate_trace

__all__ = [
    "CellResult",
    "Episode",
    "EpisodeProvider",
    "FleetReport",
    "ThrottleWindow",
    "Trace",
    "TraceInvocation",
    "generate_trace",
    "replay_trace",
    "run_fleet",
]
