"""Population fan-out: a device × runtime grid replayed over a process pool.

One fleet run shards the grid's cells over a pre-warmed
:class:`~concurrent.futures.ProcessPoolExecutor`
(:func:`repro.sweep.runner.prewarm_executor` — spawn + import + store init
paid before the timed work).  Workers share the episode/compile artifact
store through the PR-8 read-through idiom: each writes a private
``worker-local/<pid>`` layer and reads through to the shared directory, so
one worker's simulated episode is every later cell's cache hit without
write races.

The headline metric is **simulated device-hours per wall-clock second**:
how much device-population time one machine can evaluate per second.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.episode import EpisodeProvider
from repro.fleet.replay import DEFAULT_SLO_MULTIPLIER, CellResult, replay_trace
from repro.fleet.trace import Trace

#: Grid defaults: primary + most constrained device, FlashMem vs a
#: representative preloader.
DEFAULT_DEVICES = ("OnePlus 12", "Pixel 8")
DEFAULT_RUNTIMES = ("FlashMem", "MNN")


@dataclass
class FleetReport:
    """Merged outcome of one population run."""

    trace_name: str
    trace_summary: str
    cells: List[CellResult] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    cache_dir: Optional[str] = None

    @property
    def simulated_device_hours(self) -> float:
        return sum(cell.device_hours for cell in self.cells)

    @property
    def device_hours_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.simulated_device_hours / self.wall_s

    @property
    def episodes_simulated(self) -> int:
        return sum(cell.episodes_simulated for cell in self.cells)

    @property
    def invocations(self) -> int:
        return sum(cell.invocations for cell in self.cells)

    def render(self) -> str:
        """Text table for ``results/fleet.txt``."""
        lines = [
            "Fleet trace replay: device-population simulation",
            f"trace: {self.trace_summary}",
            (
                f"grid: {len(self.cells)} cells, jobs={self.jobs}, "
                f"wall {self.wall_s:.2f}s"
            ),
            (
                f"throughput: {self.simulated_device_hours:.2f} simulated "
                f"device-hours in {self.wall_s:.2f}s wall = "
                f"{self.device_hours_per_s:.1f} device-hours/s"
            ),
            (
                f"episodes simulated: {self.episodes_simulated} "
                f"(for {self.invocations} invocations)"
            ),
            "",
            (
                f"{'device':<12} {'runtime':<9} {'SLO%':>6} {'p50 ms':>9} "
                f"{'p99 ms':>9} {'peak MB':>8} {'avg MB':>7} {'energy J':>9}"
            ),
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.device:<12} {cell.runtime:<9} "
                f"{100.0 * cell.slo_attainment:>5.1f}% "
                f"{cell.p50_ms:>9.1f} {cell.p99_ms:>9.1f} "
                f"{cell.peak_bytes / 1e6:>8.0f} {cell.avg_bytes / 1e6:>7.0f} "
                f"{cell.energy_j:>9.1f}"
            )
        return "\n".join(lines) + "\n"


def _fleet_worker_init(shared_dir: Optional[str]) -> None:
    """Pool-worker pre-warm: imports + read-through store (PR-8 idiom)."""
    from repro.service.pool import WORKER_LOCAL_DIR, raise_recursion_limit

    raise_recursion_limit()
    from repro.experiments import common
    from repro.gpusim import pricing  # noqa: F401 — import cost is the point

    if shared_dir is not None:
        from repro.service.store import ReadThroughStore

        private = os.path.join(shared_dir, WORKER_LOCAL_DIR, str(os.getpid()))
        common.swap_store(ReadThroughStore(private, shared_dir))


def _replay_cell(
    trace_json: Dict[str, Any],
    device: str,
    runtime: str,
    slo_multiplier: float,
    memoize: bool,
) -> CellResult:
    """One grid cell, runnable in a pool worker or inline."""
    trace = Trace.from_json(trace_json)
    provider = EpisodeProvider(memoize=memoize)
    return replay_trace(
        trace, device, runtime, provider=provider, slo_multiplier=slo_multiplier
    )


def run_fleet(
    trace: Trace,
    devices: Sequence[str] = DEFAULT_DEVICES,
    runtimes: Sequence[str] = DEFAULT_RUNTIMES,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
    memoize: bool = True,
) -> FleetReport:
    """Replay ``trace`` over the device × runtime grid.

    ``jobs > 1`` shards cells over a pre-warmed spawn pool whose workers
    read through to ``cache_dir``; pool spawn + import + store init happen
    before the timed window, so ``wall_s`` measures replay work.  Cell
    order in the report is deterministic (device-major) regardless of
    completion order.  ``memoize=False`` runs the naive per-invocation
    engine in every cell (the benchmark baseline).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    grid: List[Tuple[str, str]] = [(d, r) for d in devices for r in runtimes]
    report = FleetReport(
        trace_name=trace.name,
        trace_summary=trace.describe(),
        jobs=jobs,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )
    trace_json = trace.to_json()
    if jobs == 1 or len(grid) <= 1:
        from repro.core.store import ArtifactStore
        from repro.experiments import common

        previous = common.swap_store(
            ArtifactStore(cache_dir) if cache_dir is not None else common.cache_store()
        )
        try:
            provider = EpisodeProvider(memoize=memoize)
            start = time.perf_counter()
            for device, runtime in grid:
                report.cells.append(
                    replay_trace(
                        trace,
                        device,
                        runtime,
                        provider=provider,
                        slo_multiplier=slo_multiplier,
                    )
                )
            report.wall_s = time.perf_counter() - start
        finally:
            common.swap_store(previous)
        report.jobs = 1
        return report

    from repro.sweep.runner import prewarm_executor

    workers = min(jobs, len(grid))
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_fleet_worker_init,
        initargs=(str(cache_dir) if cache_dir is not None else None,),
    )
    try:
        prewarm_executor(pool, workers, 0.05)
        start = time.perf_counter()
        futures = [
            pool.submit(
                _replay_cell, trace_json, device, runtime, slo_multiplier, memoize
            )
            for device, runtime in grid
        ]
        report.cells = [future.result() for future in futures]
        report.wall_s = time.perf_counter() - start
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    report.jobs = workers
    return report
