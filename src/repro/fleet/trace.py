"""Fleet traces: seeded multi-app traffic with throttle windows.

A trace is device- and runtime-independent: it records *what arrives when*
(model, scenario, priority) and *how hot the chassis is* (throttle windows
naming :data:`~repro.gpusim.device.THROTTLE_STATES` entries).  The replay
engine binds it to a concrete device × runtime cell.

Traces round-trip through JSON (``save``/``load``) so a generated trace can
be inspected, archived, and served back via ``repro serve-trace``.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.gpusim.device import THROTTLE_STATES
from repro.runtime.scenario import Scenario

TRACE_SCHEMA_VERSION = 1

#: Default interactive mix: mostly small/medium vision + speech prefill,
#: with a slice of on-device LLM decode turns.  Weights are relative
#: arrival frequencies.
DEFAULT_MODEL_MIX: Tuple[Tuple[str, Scenario, int, float], ...] = (
    # (model, scenario, priority, weight)
    ("ViT", Scenario.prefill(1), 1, 3.0),
    ("ResNet50", Scenario.prefill(1), 1, 3.0),
    ("DepA-S", Scenario.prefill(1), 0, 2.0),
    ("Whisp-M", Scenario.prefill(1), 1, 1.5),
    ("SD-UNet", Scenario.prefill(1), 0, 0.5),
    ("GPTN-S", Scenario.decode(tokens=24, context_len=128), 1, 1.0),
    ("GPTN-S", Scenario.decode(tokens=64, context_len=256), 0, 0.5),
)


def scenario_from_key(key: Dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from its :meth:`~Scenario.cache_key`."""
    if key["kind"] == "prefill":
        return Scenario.prefill(int(key["iterations"]))
    return Scenario.decode(
        tokens=int(key["tokens"]), context_len=int(key.get("context_len", 0))
    )


@dataclass(frozen=True)
class TraceInvocation:
    """One app inference request arriving at the device."""

    arrival_ms: float
    model: str
    scenario: Scenario
    priority: int = 0  # higher = more urgent (interactive vs background)

    def to_json(self) -> Dict[str, Any]:
        return {
            "arrival_ms": self.arrival_ms,
            "model": self.model,
            "scenario": self.scenario.cache_key(),
            "priority": self.priority,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TraceInvocation":
        return cls(
            arrival_ms=float(data["arrival_ms"]),
            model=str(data["model"]),
            scenario=scenario_from_key(data["scenario"]),
            priority=int(data.get("priority", 0)),
        )


@dataclass(frozen=True)
class ThrottleWindow:
    """A [start, end) window during which the SoC runs a throttle state."""

    start_ms: float
    end_ms: float
    state: str

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError("throttle window must have positive duration")
        if self.state not in THROTTLE_STATES:
            raise KeyError(
                f"unknown throttle state {self.state!r}; "
                f"available: {sorted(THROTTLE_STATES)}"
            )

    def to_json(self) -> Dict[str, Any]:
        return {"start_ms": self.start_ms, "end_ms": self.end_ms, "state": self.state}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ThrottleWindow":
        return cls(
            start_ms=float(data["start_ms"]),
            end_ms=float(data["end_ms"]),
            state=str(data["state"]),
        )


@dataclass
class Trace:
    """A seeded multi-app traffic trace plus its thermal envelope."""

    name: str
    seed: int
    duration_ms: float
    invocations: List[TraceInvocation] = field(default_factory=list)
    throttle: List[ThrottleWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        arrivals = [inv.arrival_ms for inv in self.invocations]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("trace invocations must be sorted by arrival")
        starts = [w.start_ms for w in self.throttle]
        if any(b < a for a, b in zip(starts, starts[1:])):
            raise ValueError("throttle windows must be sorted by start")

    # ------------------------------------------------------------- queries
    def state_at(self, time_ms: float) -> str:
        """Throttle state in force at ``time_ms`` ("nominal" outside windows).

        Windows are half-open [start, end); later windows win on overlap
        (the governor's most recent decision).
        """
        state = "nominal"
        for window in self.throttle:
            if window.start_ms > time_ms:
                break
            if time_ms < window.end_ms:
                state = window.state
        return state

    def factor_at(self, time_ms: float) -> float:
        return THROTTLE_STATES[self.state_at(time_ms)]

    @property
    def models(self) -> List[str]:
        return sorted({inv.model for inv in self.invocations})

    def describe(self) -> str:
        decode = sum(1 for inv in self.invocations if inv.scenario.is_decode)
        return (
            f"{self.name}: {len(self.invocations)} invocations over "
            f"{self.duration_ms / 1000:.0f}s ({decode} decode), "
            f"{len(self.models)} models, {len(self.throttle)} throttle windows"
        )

    # ---------------------------------------------------------- round trip
    def to_json(self) -> Dict[str, Any]:
        return {
            "version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "invocations": [inv.to_json() for inv in self.invocations],
            "throttle": [w.to_json() for w in self.throttle],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Trace":
        version = int(data.get("version", 0))
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace version {version} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            duration_ms=float(data["duration_ms"]),
            invocations=[TraceInvocation.from_json(i) for i in data["invocations"]],
            throttle=[ThrottleWindow.from_json(w) for w in data["throttle"]],
        )

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Trace":
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))


def generate_trace(
    *,
    seed: int = 0,
    duration_s: float = 600.0,
    rate_per_min: float = 30.0,
    mix: Optional[Sequence[Tuple[str, Scenario, int, float]]] = None,
    name: Optional[str] = None,
    invocations: Optional[int] = None,
) -> Trace:
    """Generate a seeded trace of multi-app traffic.

    Arrivals are a Poisson process at ``rate_per_min`` (exponential gaps);
    each arrival draws a (model, scenario, priority) from the weighted
    ``mix`` (default :data:`DEFAULT_MODEL_MIX`).  The thermal envelope
    alternates cool and throttled spells: each throttle window picks a
    sustained state (warm/hot/critical, biased toward warm) for a seeded
    duration — the same seed always produces the identical trace.

    ``invocations=`` overrides the duration-derived count: the trace keeps
    exactly that many arrivals (extending past ``duration_s`` if needed),
    which the throughput benchmarks use to pin trace size.
    """
    rng = random.Random(seed)
    duration_ms = duration_s * 1000.0
    gap_mean_ms = 60_000.0 / rate_per_min
    mix = tuple(mix if mix is not None else DEFAULT_MODEL_MIX)
    weights = [entry[3] for entry in mix]

    out: List[TraceInvocation] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(1.0 / gap_mean_ms)
        if invocations is None:
            if clock >= duration_ms:
                break
        elif len(out) >= invocations:
            break
        model, scenario, priority, _ = rng.choices(mix, weights=weights, k=1)[0]
        out.append(
            TraceInvocation(
                arrival_ms=clock, model=model, scenario=scenario, priority=priority
            )
        )
    span_ms = max(duration_ms, out[-1].arrival_ms if out else 0.0)

    # Thermal envelope: alternate cool spells and throttled windows.
    windows: List[ThrottleWindow] = []
    t = rng.uniform(0.3, 0.7) * min(60_000.0, span_ms)
    states = ("warm", "warm", "hot", "critical")  # biased toward mild states
    while t < span_ms:
        length = rng.uniform(10_000.0, 60_000.0)
        windows.append(
            ThrottleWindow(
                start_ms=t,
                end_ms=min(t + length, span_ms),
                state=rng.choice(states),
            )
        )
        t += length + rng.uniform(15_000.0, 90_000.0)  # cool-down gap

    return Trace(
        name=name or f"trace-seed{seed}",
        seed=seed,
        duration_ms=span_ms,
        invocations=out,
        throttle=windows,
    )
