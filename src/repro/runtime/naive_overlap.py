"""Naive overlap strategies — the Figure 9 baselines.

Both produce :class:`~repro.opg.plan.OverlapPlan` objects consumed by the
same FlashMem executor, so the comparison isolates the *scheduling policy*:

- **Always-Next Loading**: every weight is loaded and fully transformed at
  the single layer immediately before its consumer.  The GPU transformation
  step lags behind disk loading (stalls) and each host kernel is crammed far
  past its load capacity (heavy interference) — the paper measures up to
  4.3x slower than FlashMem.
- **Same-Op-Type Prefetching**: chunks may only be hosted by earlier layers
  whose operator kind matches the consumer's.  This partially respects load
  capacity but leaves compute/data movement unbalanced across the model —
  up to 2.4x slower.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.capacity.model import LoadCapacityModel
from repro.graph.dag import Graph
from repro.opg.plan import OverlapPlan, PlanStats, WeightSchedule
from repro.opg.problem import OpgConfig


class AlwaysNextPlanner:
    """Prefetch everything exactly one layer ahead (no capacity awareness)."""

    name = "AlwaysNext"

    def __init__(self, config: Optional[OpgConfig] = None) -> None:
        self.config = config or OpgConfig()

    def solve(self, graph: Graph, capacity_model: LoadCapacityModel, *, device_name: str = "") -> OverlapPlan:
        graph.freeze()
        cfg = self.config
        schedules: Dict[str, WeightSchedule] = {}
        for weight, node in graph.weights():
            i_w = node.index
            chunks = weight.chunk_count(cfg.chunk_bytes)
            if i_w == 0:
                schedules[weight.name] = WeightSchedule(
                    weight=weight.name,
                    nbytes=weight.nbytes,
                    consumer_layer=i_w,
                    preloaded=True,
                    chunk_bytes=cfg.chunk_bytes,
                    total_chunks=chunks,
                )
                continue
            host = i_w - 1
            schedules[weight.name] = WeightSchedule(
                weight=weight.name,
                nbytes=weight.nbytes,
                consumer_layer=i_w,
                preloaded=False,
                load_layer=host,
                transforms={host: chunks},
                chunk_bytes=cfg.chunk_bytes,
                total_chunks=chunks,
            )
        return OverlapPlan(
            model=graph.name,
            device=device_name,
            chunk_bytes=cfg.chunk_bytes,
            m_peak_bytes=cfg.m_peak_bytes,
            schedules=schedules,
            stats=PlanStats(solver_status="HEURISTIC"),
        )


class SameOpTypePlanner:
    """Host a weight's chunks only on earlier layers of the consumer's kind.

    Capacity-aware per host layer (it will not overfill a single kernel
    beyond its measured capacity unless there is no alternative), but blind
    to the global balance FlashMem's CP formulation optimises.
    """

    name = "SameNext"

    def __init__(self, config: Optional[OpgConfig] = None) -> None:
        self.config = config or OpgConfig()

    def solve(self, graph: Graph, capacity_model: LoadCapacityModel, *, device_name: str = "") -> OverlapPlan:
        graph.freeze()
        cfg = self.config
        nodes = graph.nodes()
        capacity = capacity_model.capacity_chunks_batch(
            [n.spec for n in nodes], cfg.chunk_bytes
        )
        remaining = list(capacity)
        schedules: Dict[str, WeightSchedule] = {}
        for weight, node in graph.weights():
            i_w = node.index
            chunks = weight.chunk_count(cfg.chunk_bytes)
            lo = max(0, i_w - cfg.lookback)
            hosts = [l for l in range(lo, i_w) if nodes[l].kind is node.kind]
            if not hosts:
                schedules[weight.name] = WeightSchedule(
                    weight=weight.name,
                    nbytes=weight.nbytes,
                    consumer_layer=i_w,
                    preloaded=True,
                    chunk_bytes=cfg.chunk_bytes,
                    total_chunks=chunks,
                )
                continue
            assignment: Dict[int, int] = {}
            left = chunks
            for l in sorted(hosts, reverse=True):
                if left == 0:
                    break
                take = min(left, max(0, remaining[l]))
                if take:
                    assignment[l] = take
                    remaining[l] -= take
                    left -= take
            if left:
                # No same-type capacity left: cram the rest at the latest
                # host (the unbalanced behaviour the paper observes).
                latest = max(hosts)
                assignment[latest] = assignment.get(latest, 0) + left
                remaining[latest] -= left
            schedules[weight.name] = WeightSchedule(
                weight=weight.name,
                nbytes=weight.nbytes,
                consumer_layer=i_w,
                preloaded=False,
                load_layer=min(assignment),
                transforms=dict(sorted(assignment.items())),
                chunk_bytes=cfg.chunk_bytes,
                total_chunks=chunks,
            )
        return OverlapPlan(
            model=graph.name,
            device=device_name,
            chunk_bytes=cfg.chunk_bytes,
            m_peak_bytes=cfg.m_peak_bytes,
            schedules=schedules,
            stats=PlanStats(solver_status="HEURISTIC"),
        )
