"""Runtimes: FlashMem streaming executor, preloading baselines, naive
overlap strategies, and the multi-model FIFO pipeline."""

from repro.runtime.executor import FlashMemExecutor
from repro.runtime.frameworks import (
    BASELINE_ORDER,
    EXECUTORCH,
    FRAMEWORK_PROFILES,
    LITERT,
    MNN,
    NCNN,
    SMARTMEM,
    TVM,
    FrameworkProfile,
    get_profile,
)
from repro.runtime.multimodel import (
    FifoPipeline,
    PipelineInvocation,
    PipelineResult,
    fifo_schedule,
)
from repro.runtime.naive_overlap import AlwaysNextPlanner, SameOpTypePlanner
from repro.runtime.preemptive import (
    PreemptionOutcome,
    flashmem_resume_factory,
    run_preemption_episode,
)
from repro.runtime.preload import ModelNotSupportedError, PreloadExecutor
from repro.runtime.scenario import (
    Scenario,
    available_scenarios,
    make_scenario,
    resolve_scenario,
)

__all__ = [
    "FlashMemExecutor",
    "Scenario",
    "available_scenarios",
    "make_scenario",
    "resolve_scenario",
    "BASELINE_ORDER",
    "EXECUTORCH",
    "FRAMEWORK_PROFILES",
    "LITERT",
    "MNN",
    "NCNN",
    "SMARTMEM",
    "TVM",
    "FrameworkProfile",
    "get_profile",
    "FifoPipeline",
    "PipelineInvocation",
    "PipelineResult",
    "fifo_schedule",
    "AlwaysNextPlanner",
    "SameOpTypePlanner",
    "PreemptionOutcome",
    "flashmem_resume_factory",
    "run_preemption_episode",
    "ModelNotSupportedError",
    "PreloadExecutor",
]
