"""Preemptive multi-DNN scheduling (paper Figure 1(c), related work Pantheon).

The paper studies FIFO pipelines and explicitly leaves preemption out of
scope, but sketches the alternative: a high-priority model interrupts a
lower-priority one mid-inference.  This extension models that policy on top
of the simulator and quantifies why FlashMem suits it:

- under a **preloading** runtime, the preempted model's full weight set is
  resident; servicing the urgent model means either keeping both resident
  (peak = sum of models) or evicting and later re-paying initialization;
- under **FlashMem**, the preempted model's resident state is only its
  preloaded set W plus in-flight chunks, so the urgent model starts almost
  immediately and the victim resumes by re-streaming from its preemption
  layer.

The scheduler replays a victim run up to the preemption instant, runs the
urgent model to completion, then resumes the victim (restart-from-layer for
FlashMem; full re-init for an evicting preloader).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.gpusim.timeline import MemoryTimeline, RunResult


@dataclass
class PreemptionOutcome:
    """Timeline of one preemption episode."""

    runtime: str
    #: Time from the urgent request to the urgent model's first kernel.
    urgent_start_delay_ms: float
    #: Urgent model's completion time measured from the request.
    urgent_completion_ms: float
    #: Total session time (victim + urgent + victim resume).
    session_ms: float
    #: Peak memory across the episode.
    peak_memory_bytes: int
    memory: MemoryTimeline


def _splice(dst: MemoryTimeline, src: MemoryTimeline, offset: float, *, until: Optional[float] = None) -> None:
    for t, v in src.samples:
        if until is not None and t > until:
            break
        dst.record(offset + t, v)


def run_preemption_episode(
    runtime: str,
    victim: Callable[[], RunResult],
    urgent: Callable[[], RunResult],
    *,
    preempt_fraction: float = 0.5,
    victim_resume: Optional[Callable[[float], RunResult]] = None,
    switch_overhead_ms: float = 5.0,
) -> PreemptionOutcome:
    """Simulate: victim runs, urgent arrives at ``preempt_fraction`` of the
    victim's span, victim pauses, urgent runs, victim resumes.

    ``victim_resume(progress_fraction)`` produces the resumed run; by
    default the victim restarts from scratch (an evicting preloader).  A
    FlashMem caller passes a resume that re-streams only the remaining
    layers (approximated as the remaining fraction of the original run
    minus the one-off setup).
    """
    if not 0.0 < preempt_fraction < 1.0:
        raise ValueError("preempt_fraction must be in (0, 1)")
    first = victim()
    preempt_at = first.latency_ms * preempt_fraction
    urgent_run = urgent()
    if victim_resume is None:
        resumed = victim()  # full restart
    else:
        resumed = victim_resume(preempt_fraction)

    memory = MemoryTimeline()
    _splice(memory, first.memory, 0.0, until=preempt_at)
    # The victim's resident state at the preemption instant stays allocated
    # while the urgent model runs (FlashMem: small; preloader: everything).
    held = first.memory.usage_at(preempt_at)
    urgent_offset = preempt_at + switch_overhead_ms
    for t, v in urgent_run.memory.samples:
        memory.record(urgent_offset + t, v + held)
    resume_offset = urgent_offset + urgent_run.latency_ms + switch_overhead_ms
    _splice(memory, resumed.memory, resume_offset)
    session_ms = resume_offset + resumed.latency_ms
    return PreemptionOutcome(
        runtime=runtime,
        urgent_start_delay_ms=switch_overhead_ms,
        urgent_completion_ms=switch_overhead_ms + urgent_run.latency_ms,
        session_ms=session_ms,
        peak_memory_bytes=memory.peak_bytes,
        memory=memory,
    )


def flashmem_resume_factory(run: Callable[[], RunResult], setup_ms: float) -> Callable[[float], RunResult]:
    """Resume model for FlashMem: re-stream only the remaining layers.

    The GPU context survives the switch, so the resumed run costs the
    remaining fraction of the post-setup span.  The returned RunResult is a
    scaled copy adequate for episode accounting.
    """

    def resume(progress_fraction: float) -> RunResult:
        full = run()
        remaining = max(0.0, (full.latency_ms - setup_ms) * (1.0 - progress_fraction))
        memory = MemoryTimeline()
        for t, v in full.memory.samples:
            if t >= setup_ms:
                scaled_t = (t - setup_ms) * (1.0 - progress_fraction)
                memory.record(scaled_t, v)
        memory.record(remaining, 0)
        return RunResult(
            model=full.model,
            runtime=full.runtime,
            device=full.device,
            latency_ms=remaining,
            phases=full.phases,
            memory=memory,
            peak_memory_bytes=memory.peak_bytes,
            avg_memory_bytes=memory.average_bytes(0.0, max(remaining, 1e-9)),
            energy_j=full.energy_j * (1.0 - progress_fraction),
            avg_power_w=full.avg_power_w,
            details=dict(full.details),
        )

    return resume
