"""Baseline framework models (paper §5.1 baselines).

Each baseline is an *executable model* of a third-party framework: a
preloading runtime on the shared simulator, parameterised by a profile
calibrated against the paper's published measurements (Tables 1, 7, 8).
SmartMem — the research prototype FlashMem extends — is the reference
profile: full preload, per-tensor 2.5D layout transformation, and the
tuned kernels our cost model is calibrated to (efficiency 1.0).

The support matrix mirrors Table 7's "-" entries (missing operators,
missing large-model support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional


@dataclass(frozen=True)
class FrameworkProfile:
    """Calibrated characteristics of one preloading framework.

    Attributes:
        name: framework name as the paper abbreviates it.
        load_bw_factor: effective disk-read speed as a fraction of the
            device's raw sequential bandwidth (parsing/copy overhead).
        transform_bw_factor: layout-transformation throughput as a fraction
            of the device's raw texture-upload bandwidth.  Legacy frameworks
            run strided per-tensor passes — a tiny fraction (paper Table 1:
            "Trans." dominates initialization).
        per_tensor_transform_ms: fixed dispatch/repacking cost per weight
            tensor during initialization.
        exec_efficiency: kernel efficiency for non-convolution operators
            (1.0 == the tuned SmartMem kernels our cost model is calibrated
            against).
        conv_exec_efficiency: kernel efficiency for convolutions (several
            frameworks have mature conv paths but weak transformer paths).
        uses_texture: whether weights live in 2.5D texture memory at all
            (ExecuTorch does not — no GPU-specific memory optimisation).
        keep_um_copy: whether the unified-memory weight copy persists for
            the whole run (instead of being freed after transformation).
        fp32_staging: weights staged in fp32 during init (2x staging size).
        mem_overhead_factor: runtime arena overhead as a fraction of weight
            bytes (graph runtime, workspace pools).
        setup_ms_factor: multiplier on the device's GPU setup cost.
        baseline_mb: resident process baseline (framework code, GPU driver
            arenas, graph metadata) present from process start.
        free_um_at_init_end: batch-free the staged unified-memory copies
            when initialization completes (SmartMem) instead of per tensor.
        supported_models: Table 7 support matrix ("-" entries excluded).
    """

    name: str
    load_bw_factor: float
    transform_bw_factor: float
    per_tensor_transform_ms: float
    exec_efficiency: float
    conv_exec_efficiency: float
    uses_texture: bool = True
    keep_um_copy: bool = False
    fp32_staging: bool = False
    mem_overhead_factor: float = 0.15
    #: Fixed workspace arena (MB) on top of the proportional overhead.
    arena_fixed_mb: float = 0.0
    #: Static planners (TVM/LiteRT) reserve arenas at module load, not at
    #: the end of weight initialization.
    arena_at_start: bool = False
    setup_ms_factor: float = 1.0
    baseline_mb: float = 90.0
    free_um_at_init_end: bool = False
    supported_models: Optional[FrozenSet[str]] = None

    def supports(self, model: str) -> bool:
        if self.supported_models is None:
            return True
        return model in self.supported_models


_ALL = frozenset(
    {
        "GPTN-S", "GPTN-1.3B", "GPTN-2.7B", "ResNet50", "SAM-2", "ViT",
        "DeepViT", "SD-UNet", "Whisp-M", "DepA-S", "DepA-L",
    }
)

MNN = FrameworkProfile(
    name="MNN",
    load_bw_factor=0.35,
    transform_bw_factor=0.022,          # ~0.11 GB/s on the OnePlus 12
    per_tensor_transform_ms=2.0,
    exec_efficiency=0.20,
    conv_exec_efficiency=1.30,
    keep_um_copy=True,
    mem_overhead_factor=0.10,
    supported_models=frozenset(_ALL - {"GPTN-1.3B", "GPTN-2.7B", "SAM-2"}),
)

NCNN = FrameworkProfile(
    name="NCNN",
    load_bw_factor=0.40,
    transform_bw_factor=0.030,
    per_tensor_transform_ms=2.0,
    exec_efficiency=0.25,               # transformer ops unsupported anyway
    conv_exec_efficiency=1.15,
    keep_um_copy=True,
    mem_overhead_factor=0.20,
    # LayerNorm etc. missing on mobile GPUs: convolution models only.
    supported_models=frozenset({"ResNet50"}),
)

TVM = FrameworkProfile(
    name="TVM",
    load_bw_factor=0.50,
    transform_bw_factor=0.035,
    per_tensor_transform_ms=1.0,
    exec_efficiency=0.055,
    conv_exec_efficiency=0.45,
    keep_um_copy=True,
    fp32_staging=True,
    mem_overhead_factor=0.80,           # static arena planning over-allocates
    arena_fixed_mb=420.0,
    arena_at_start=True,
    setup_ms_factor=0.7,                # AOT-compiled module loads fast
    supported_models=frozenset(_ALL - {"GPTN-1.3B", "GPTN-2.7B", "SAM-2", "SD-UNet"}),
)

LITERT = FrameworkProfile(
    name="LiteRT",
    load_bw_factor=0.70,
    transform_bw_factor=0.30,           # GPU delegate uploads are efficient
    per_tensor_transform_ms=0.8,
    exec_efficiency=0.60,
    conv_exec_efficiency=0.75,
    keep_um_copy=True,
    fp32_staging=True,
    mem_overhead_factor=2.50,
    arena_fixed_mb=60.0,
    arena_at_start=True,
    supported_models=frozenset({"ResNet50", "ViT", "DeepViT"}),
)

EXECUTORCH = FrameworkProfile(
    name="ETorch",
    load_bw_factor=0.55,
    transform_bw_factor=1.0,            # no texture path: nothing to transform
    per_tensor_transform_ms=0.0,
    exec_efficiency=0.0022,             # no GPU memory-hierarchy optimisation
    conv_exec_efficiency=0.0012,
    uses_texture=False,
    keep_um_copy=True,
    mem_overhead_factor=0.35,
    setup_ms_factor=0.2,                # lazy mmap-style init
    baseline_mb=60.0,                   # no GPU driver arenas
    supported_models=frozenset(
        {"GPTN-S", "GPTN-1.3B", "ResNet50", "SAM-2", "ViT", "DeepViT", "SD-UNet"}
    ),
)

SMARTMEM = FrameworkProfile(
    name="SMem",
    load_bw_factor=1.0,
    transform_bw_factor=0.013,          # ~0.065 GB/s: per-tensor 2.5D repack
    per_tensor_transform_ms=2.0,
    exec_efficiency=1.0,                # the calibration reference
    conv_exec_efficiency=1.0,
    keep_um_copy=False,                 # staging freed per tensor post-transform
    mem_overhead_factor=0.05,
    supported_models=frozenset(_ALL - {"GPTN-2.7B"}),
)

FRAMEWORK_PROFILES: Dict[str, FrameworkProfile] = {
    p.name: p for p in (MNN, NCNN, TVM, LITERT, EXECUTORCH, SMARTMEM)
}

#: Presentation order used by the paper's tables.
BASELINE_ORDER = ["MNN", "NCNN", "TVM", "LiteRT", "ETorch", "SMem"]


def get_profile(name: str) -> FrameworkProfile:
    try:
        return FRAMEWORK_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown framework {name!r}; available: {sorted(FRAMEWORK_PROFILES)}") from None
