"""Multi-model FIFO pipeline (paper §2.2, Figure 6).

Runs a sequence of distinct models on one device, stitching the per-run
memory timelines into a single session timeline.  Under a preloading
runtime every invocation pays a cold-start init (repeated memory spikes);
under FlashMem every invocation streams against its overlap plan, so the
session's peak stays bounded.

Session merging is columnar: each invocation contributes its memory
timeline as a (times, deltas) column pair offset to its start, and the
shared timeline is one numpy concat + stable sort + cumsum
(:func:`~repro.gpusim.timeline.merge_sessions`) instead of a per-sample
``record`` loop.  The old loop also force-recorded an *absolute* zero
sample after every invocation — correct back-to-back, but it zeroed the
session floor even when another app's session overlapped the boundary,
under-counting concurrent-app memory.  The columnar merge drops each
session's contribution individually at its teardown, so the floor reaches
zero only across an actual idle gap.

``run(sequence, arrivals=...)`` replays a timed trace: invocation *i*
starts at ``arrivals[i]`` and sessions may overlap (concurrent apps).
Per-invocation latencies still come from isolated runs — the pipeline
models session *memory* concurrency, not kernel-level contention (the
preemptive executor covers that); the fleet engine
(:mod:`repro.fleet.replay`) adds FIFO queueing on top for SLO accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gpusim.timeline import (
    MemoryTimeline,
    RunResult,
    merge_sessions,
    session_deltas,
)


@dataclass
class PipelineInvocation:
    """One model run inside the session."""

    model: str
    start_ms: float
    end_ms: float
    peak_memory_bytes: int
    oom: bool

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class PipelineResult:
    """Stitched outcome of a FIFO multi-model session."""

    runtime: str
    device: str
    invocations: List[PipelineInvocation] = field(default_factory=list)
    memory: MemoryTimeline = field(default_factory=MemoryTimeline)
    energy_j: float = 0.0

    @property
    def total_ms(self) -> float:
        return max((inv.end_ms for inv in self.invocations), default=0.0)

    @property
    def peak_memory_bytes(self) -> int:
        return self.memory.peak_bytes

    @property
    def avg_memory_bytes(self) -> float:
        return self.memory.average_bytes(0.0, self.total_ms)

    def latency_of(self, model: str) -> List[float]:
        return [inv.latency_ms for inv in self.invocations if inv.model == model]


def fifo_schedule(models: Sequence[str], iterations: int, *, seed: int = 0) -> List[str]:
    """The paper's Figure 6 workload: each model ``iterations`` times, in a
    seeded random interleaving."""
    sequence = [m for m in models for _ in range(iterations)]
    random.Random(seed).shuffle(sequence)
    return sequence


class FifoPipeline:
    """FIFO multi-DNN scheduler over a single-run executor.

    ``run_model`` maps a model name to a fresh :class:`RunResult` (cold
    start for preloaders, streamed for FlashMem) — the pipeline offsets each
    run onto the session clock and merges the memory timelines as a sum of
    per-session step functions.
    """

    def __init__(self, runtime: str, device: str, run_model: Callable[[str], RunResult]) -> None:
        self.runtime = runtime
        self.device = device
        self.run_model = run_model

    def run(
        self,
        sequence: Sequence[str],
        arrivals: Optional[Sequence[float]] = None,
    ) -> PipelineResult:
        """Replay ``sequence``; back-to-back by default, timed with ``arrivals``.

        Without ``arrivals`` every invocation starts the instant the
        previous one ends (the seed Figure 6 behaviour).  With ``arrivals``
        (non-decreasing, one per invocation) each session starts at its
        arrival time and overlapping sessions are *summed* — the memory of
        an app that is still resident at another app's start stays counted.
        """
        if arrivals is not None:
            if len(arrivals) != len(sequence):
                raise ValueError("arrivals must match sequence length")
            if any(b < a for a, b in zip(arrivals, arrivals[1:])):
                raise ValueError("arrivals must be non-decreasing")
        result = PipelineResult(runtime=self.runtime, device=self.device)
        clock = 0.0
        sessions: List[Tuple[float, object, object, float]] = []
        # Delta columns per distinct timeline object; holding the RunResult
        # keeps ids stable (a freed object's id could be reused).
        columns: Dict[int, Tuple[RunResult, object, object]] = {}
        for index, model in enumerate(sequence):
            run = self.run_model(model)
            cached = columns.get(id(run.memory))
            if cached is None or cached[0].memory is not run.memory:
                times, deltas = session_deltas(run.memory)
                columns[id(run.memory)] = (run, times, deltas)
            else:
                _, times, deltas = cached
            start = clock if arrivals is None else float(arrivals[index])
            end = start + run.latency_ms
            sessions.append((start, times, deltas, end))
            result.invocations.append(
                PipelineInvocation(
                    model=model,
                    start_ms=start,
                    end_ms=end,
                    peak_memory_bytes=run.peak_memory_bytes,
                    oom=bool(run.details.get("oom")),
                )
            )
            result.energy_j += run.energy_j
            clock = max(clock, end)
        result.memory = merge_sessions(sessions)
        return result
