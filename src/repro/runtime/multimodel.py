"""Multi-model FIFO pipeline (paper §2.2, Figure 6).

Runs a sequence of distinct models back-to-back on one device, stitching the
per-run memory timelines into a single session timeline.  Under a preloading
runtime every invocation pays a cold-start init (repeated memory spikes);
under FlashMem every invocation streams against its overlap plan, so the
session's peak stays bounded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.gpusim.timeline import MemoryTimeline, RunResult


@dataclass
class PipelineInvocation:
    """One model run inside the session."""

    model: str
    start_ms: float
    end_ms: float
    peak_memory_bytes: int
    oom: bool

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class PipelineResult:
    """Stitched outcome of a FIFO multi-model session."""

    runtime: str
    device: str
    invocations: List[PipelineInvocation] = field(default_factory=list)
    memory: MemoryTimeline = field(default_factory=MemoryTimeline)
    energy_j: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.invocations[-1].end_ms if self.invocations else 0.0

    @property
    def peak_memory_bytes(self) -> int:
        return self.memory.peak_bytes

    @property
    def avg_memory_bytes(self) -> float:
        return self.memory.average_bytes(0.0, self.total_ms)

    def latency_of(self, model: str) -> List[float]:
        return [inv.latency_ms for inv in self.invocations if inv.model == model]


def fifo_schedule(models: Sequence[str], iterations: int, *, seed: int = 0) -> List[str]:
    """The paper's Figure 6 workload: each model ``iterations`` times, in a
    seeded random interleaving."""
    sequence = [m for m in models for _ in range(iterations)]
    random.Random(seed).shuffle(sequence)
    return sequence


class FifoPipeline:
    """FIFO multi-DNN scheduler over a single-run executor.

    ``run_model`` maps a model name to a fresh :class:`RunResult` (cold
    start for preloaders, streamed for FlashMem) — the pipeline offsets each
    run onto the session clock and merges the memory timelines.
    """

    def __init__(self, runtime: str, device: str, run_model: Callable[[str], RunResult]) -> None:
        self.runtime = runtime
        self.device = device
        self.run_model = run_model

    def run(self, sequence: Sequence[str]) -> PipelineResult:
        result = PipelineResult(runtime=self.runtime, device=self.device)
        clock = 0.0
        for model in sequence:
            run = self.run_model(model)
            for t, v in run.memory.samples:
                result.memory.record(clock + t, v)
            end = clock + run.latency_ms
            result.invocations.append(
                PipelineInvocation(
                    model=model,
                    start_ms=clock,
                    end_ms=end,
                    peak_memory_bytes=run.peak_memory_bytes,
                    oom=bool(run.details.get("oom")),
                )
            )
            result.energy_j += run.energy_j
            result.memory.record(end, 0)
            clock = end
        return result
