"""Runtime scenarios: *what* an executor simulates, as a value.

Executors used to take a bare ``iterations=`` count, which only describes
one workload shape — repeated full forward passes (the vision/prefill
story).  The decode workload is different in every axis that matters
(per-token kernels, a growing KV cache, context-dependent cost), so the
"what to run" knob is now a first-class frozen value:

- ``Scenario.prefill(iterations)`` — N full forward passes (the historical
  behaviour; ``iterations=`` keeps working through a deprecation shim).
- ``Scenario.decode(tokens=..., context_len=...)`` — autoregressive
  generation: ``tokens`` steady-state decode steps on top of a prompt of
  ``context_len`` cached tokens.  Requires a graph built by a decode
  builder (KV caches registered, :data:`~repro.graph.ops.OpKind.KV_APPEND`
  / ``FLASH_ATTENTION`` nodes).

Scenarios are hashable and carry :meth:`Scenario.cache_key` so the
experiment layer can fold them into artifact-store keys without ad-hoc
tuples.  The registry (:func:`available_scenarios`, :func:`make_scenario`)
backs the CLI's ``--scenario`` flag.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Union


@dataclass(frozen=True)
class Scenario:
    """One executor workload description.

    Attributes:
        kind: "prefill" (repeated full passes) or "decode" (autoregressive
            generation against a KV cache).
        iterations: forward passes (prefill only).
        context_len: prompt tokens already cached when decoding starts.
        tokens: tokens to generate (decode only).
    """

    kind: str
    iterations: int = 1
    context_len: int = 0
    tokens: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r} (expected one of {SCENARIO_KINDS})"
            )
        if self.kind == "prefill":
            if self.iterations < 1:
                raise ValueError("prefill scenario requires iterations >= 1")
            if self.tokens or self.context_len:
                raise ValueError("tokens/context_len are decode-scenario fields")
        else:
            if self.tokens < 1:
                raise ValueError("decode scenario requires tokens >= 1")
            if self.context_len < 0:
                raise ValueError("context_len must be >= 0")
            if self.iterations != 1:
                raise ValueError("iterations is a prefill-scenario field")

    # ------------------------------------------------------------ factories
    @classmethod
    def prefill(cls, iterations: int = 1) -> "Scenario":
        return cls(kind="prefill", iterations=iterations)

    @classmethod
    def decode(cls, *, tokens: int, context_len: int = 0) -> "Scenario":
        return cls(kind="decode", tokens=tokens, context_len=context_len)

    # -------------------------------------------------------------- queries
    @property
    def is_decode(self) -> bool:
        return self.kind == "decode"

    def cache_key(self) -> Dict[str, int]:
        """Stable mapping for artifact-store keys (ints only, JSON-safe)."""
        if self.kind == "prefill":
            return {"kind": "prefill", "iterations": int(self.iterations)}
        return {
            "kind": "decode",
            "tokens": int(self.tokens),
            "context_len": int(self.context_len),
        }

    def describe(self) -> str:
        if self.kind == "prefill":
            return f"prefill x{self.iterations}"
        return f"decode {self.tokens} tokens @ context {self.context_len}"


#: Registered scenario kinds, in CLI display order.
SCENARIO_KINDS = ("prefill", "decode")

_DESCRIPTIONS = {
    "prefill": "repeated full forward passes (default; --iterations N)",
    "decode": "autoregressive generation over a KV cache (--tokens N --context L)",
}


def available_scenarios() -> Dict[str, str]:
    """Kind -> one-line description, for ``repro list`` and ``--help``."""
    return dict(_DESCRIPTIONS)


def make_scenario(
    kind: str,
    *,
    iterations: Optional[int] = None,
    tokens: Optional[int] = None,
    context_len: Optional[int] = None,
) -> Scenario:
    """Build a scenario from CLI-style pieces, validating the combination."""
    if kind == "prefill":
        if tokens is not None or context_len is not None:
            raise ValueError("--tokens/--context only apply to --scenario decode")
        return Scenario.prefill(1 if iterations is None else iterations)
    if kind == "decode":
        if iterations is not None:
            raise ValueError("--iterations only applies to --scenario prefill")
        if tokens is None:
            raise ValueError("--scenario decode requires --tokens")
        return Scenario.decode(tokens=tokens, context_len=context_len or 0)
    raise ValueError(f"unknown scenario {kind!r} (expected one of {SCENARIO_KINDS})")


def resolve_scenario(
    scenario: Optional[Union[Scenario, str]] = None,
    *,
    iterations: Optional[int] = None,
    stacklevel: int = 3,
) -> Scenario:
    """Normalise an executor's ``(scenario=, iterations=)`` pair.

    The historical ``iterations=N`` spelling still works but raises a
    :class:`DeprecationWarning` pointing at ``Scenario.prefill(N)``; passing
    both is ambiguous and rejected.  A bare string is looked up as a
    registered kind with its defaults (only "prefill" has usable defaults).
    """
    if scenario is not None:
        if iterations is not None:
            raise ValueError("pass either scenario= or the deprecated iterations=, not both")
        if isinstance(scenario, str):
            return make_scenario(scenario)
        return scenario
    if iterations is not None:
        warnings.warn(
            "iterations= is deprecated; pass scenario=Scenario.prefill(n) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return Scenario.prefill(iterations)
    return Scenario.prefill()
